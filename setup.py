"""Thin setup.py shim.

The environment this reproduction targets has no network access and no
``wheel`` package, so PEP 660 editable installs (``pip install -e .``) cannot
build the editable wheel.  This shim lets ``python setup.py develop`` (and
pip's legacy editable path) work offline; all real metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
