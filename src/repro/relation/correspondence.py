"""Cross-relation value correspondences (the Bellman side of Section 2).

The paper's summaries work *within* one relation and explicitly complement
Bellman, whose summaries find "co-occurrence of values across different
relations (to identify join paths and correspondences between attributes of
different relations)".  This module provides that companion: given several
relations, score attribute pairs by the containment/overlap of their active
domains, surfacing candidate join paths -- e.g. that ``EMPLOYEE.WorkDepNo``
joins ``DEPARTMENT.DepNo``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relation.relation import NULL, Relation


@dataclass(frozen=True)
class Correspondence:
    """A scored candidate join path between two attributes."""

    left_relation: str
    left_attribute: str
    right_relation: str
    right_attribute: str
    jaccard: float
    containment: float  # |L ∩ R| / min(|L|, |R|)
    shared_values: int

    def __str__(self) -> str:
        return (
            f"{self.left_relation}.{self.left_attribute} ~ "
            f"{self.right_relation}.{self.right_attribute}  "
            f"(containment={self.containment:.2f}, jaccard={self.jaccard:.2f})"
        )


def find_correspondences(
    relations: dict,
    min_containment: float = 0.5,
    min_shared: int = 2,
) -> list[Correspondence]:
    """Score attribute pairs across relations by domain overlap.

    Parameters
    ----------
    relations:
        Mapping from relation name to :class:`Relation`.
    min_containment:
        Keep pairs where at least this fraction of the smaller active
        domain appears in the other (1.0 = full foreign-key-style
        containment).
    min_shared:
        Minimum number of shared values (filters accidental overlaps of
        tiny domains).

    NULLs are excluded from domains -- a shared NULL is not evidence of a
    join path.  Results are sorted by containment then jaccard, descending.
    """
    if len(relations) < 2:
        raise ValueError("need at least two relations to correspond")

    domains = {}
    for name, relation in relations.items():
        for attribute in relation.schema.names:
            domain = {v for v in relation.domain(attribute) if v is not NULL}
            if domain:
                domains[(name, attribute)] = domain

    keys = sorted(domains)
    results = []
    for i, left in enumerate(keys):
        for right in keys[i + 1 :]:
            if left[0] == right[0]:
                continue  # same relation: within-relation duplication is
                # the paper's own tools' job, not Bellman's
            shared = domains[left] & domains[right]
            if len(shared) < min_shared:
                continue
            smaller = min(len(domains[left]), len(domains[right]))
            containment = len(shared) / smaller
            if containment < min_containment:
                continue
            union = len(domains[left] | domains[right])
            results.append(
                Correspondence(
                    left_relation=left[0],
                    left_attribute=left[1],
                    right_relation=right[0],
                    right_attribute=right[1],
                    jaccard=len(shared) / union,
                    containment=containment,
                    shared_values=len(shared),
                )
            )
    results.sort(key=lambda c: (-c.containment, -c.jaccard, c.left_relation))
    return results
