"""The ``Relation`` type: a bag of categorical tuples over a schema.

Tuples are plain Python tuples of hashable values; ``NULL`` (exposed as the
module-level sentinel, rendered as the empty CSV field) models missing
values, which the paper's integrated DBLP relation is full of.  A relation is
a *bag*: duplicate tuples are kept, because duplication is precisely what the
paper's tools mine for.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator

from repro.relation.schema import Attribute, Schema


class _Null:
    """Singleton sentinel for missing values (prints as ``NULL``)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        return (_Null, ())


#: The missing-value sentinel used throughout the library.
NULL = _Null()


class Relation:
    """A bag of tuples over a :class:`Schema`.

    Construction copies the rows into canonical tuple form and verifies
    arity.  Values may be any hashable object; use :data:`NULL` for missing
    values.

    Internally a relation has two interchangeable representations: the row
    tuples and an integer-coded :class:`repro.relation.columns.ColumnStore`
    (per-attribute value dictionaries + ``int32`` code columns).  Either can
    be the one a relation is born with -- :meth:`from_columns` builds a
    relation straight from coded columns (the CSV ingest path) and the row
    tuples materialize lazily, only when a display/join/REPL path asks for
    them.  The coded form is what the mining hot paths (partitions, matrix
    builders, fingerprints) consume via :attr:`coded`.
    """

    __slots__ = ("schema", "_rows", "_coded")

    def __init__(self, schema, rows: Iterable = ()):
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)
        arity = len(self.schema)
        canonical = []
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                raise ValueError(
                    f"row {row!r} has arity {len(row)}, schema expects {arity}"
                )
            canonical.append(row)
        self._rows = canonical
        self._coded = None

    @classmethod
    def from_columns(cls, schema, store) -> "Relation":
        """A relation whose native representation is a coded column store.

        Row tuples are not materialized until something asks for
        :attr:`rows`; the mining paths never do.
        """
        schema = schema if isinstance(schema, Schema) else Schema(schema)
        if tuple(store.names) != schema.names:
            raise ValueError(
                f"column store covers {list(store.names)!r}, "
                f"schema expects {list(schema.names)!r}"
            )
        relation = object.__new__(cls)
        relation.schema = schema
        relation._rows = None
        relation._coded = store
        return relation

    @property
    def rows(self) -> list:
        """The row tuples (materialized from the coded columns on demand)."""
        if self._rows is None:
            self._rows = self._coded.row_tuples()
        return self._rows

    @property
    def coded(self):
        """The integer-coded column store (built from the rows on demand)."""
        if self._coded is None:
            from repro.relation.columns import ColumnStore

            self._coded = ColumnStore.from_rows(self.schema.names, self._rows)
        return self._coded

    def __getstate__(self):
        # Prefer shipping the coded form: dictionaries + int32 columns pickle
        # far smaller than value tuples, and workers rebuild rows lazily.
        if self._coded is not None:
            return {"schema": self.schema, "coded": self._coded}
        return {"schema": self.schema, "rows": self._rows}

    def __setstate__(self, state):
        self.schema = state["schema"]
        self._coded = state.get("coded")
        self._rows = state.get("rows") if self._coded is None else None

    # -- basics -----------------------------------------------------------------

    def __len__(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        return self._coded.n_rows

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> tuple:
        return self.rows[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, Relation):
            return self.schema == other.schema and Counter(self.rows) == Counter(
                other.rows
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"Relation({list(self.schema.names)!r}, {len(self)} tuples)"

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names, in schema order."""
        return self.schema.names

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.schema)

    def copy(self) -> "Relation":
        """A shallow copy (rows are immutable tuples, so this is safe)."""
        return Relation(self.schema, self.rows)

    # -- columns ------------------------------------------------------------------

    def column(self, name: str) -> list:
        """All values of one attribute, in tuple order (bag semantics)."""
        position = self.schema.position(name)
        return [row[position] for row in self.rows]

    def domain(self, name: str) -> set:
        """The active domain (distinct values) of one attribute."""
        return set(self.column(name))

    def value_count(self) -> int:
        """Number of distinct attribute values across the whole relation.

        Counts *global* literals, matching the paper's counts (e.g. the DB2
        sample relation has 255 attribute values).
        """
        values: set = set()
        for row in self.rows:
            values.update(row)
        return len(values)

    # -- relational operators --------------------------------------------------------

    def project(self, names, distinct: bool = False) -> "Relation":
        """Projection onto ``names``; set semantics when ``distinct``."""
        positions = self.schema.positions(names)
        projected = [tuple(row[p] for p in positions) for row in self.rows]
        if distinct:
            projected = list(dict.fromkeys(projected))
        return Relation(self.schema.subset(names), projected)

    def select(self, predicate) -> "Relation":
        """Rows for which ``predicate(row_dict)`` is true."""
        names = self.schema.names
        kept = [
            row for row in self.rows if predicate(dict(zip(names, row)))
        ]
        return Relation(self.schema, kept)

    def where(self, name: str, value) -> "Relation":
        """Rows whose attribute ``name`` equals ``value``."""
        position = self.schema.position(name)
        return Relation(
            self.schema, [row for row in self.rows if row[position] == value]
        )

    def distinct(self) -> "Relation":
        """Set-semantics copy (first occurrence order preserved)."""
        return Relation(self.schema, dict.fromkeys(self.rows))

    def rename(self, mapping: dict) -> "Relation":
        """Rename attributes via ``mapping`` (old name -> new name)."""
        return Relation(self.schema.renamed(mapping), self.rows)

    def extended(self, rows: Iterable) -> "Relation":
        """A new relation with ``rows`` appended."""
        return Relation(self.schema, list(self.rows) + [tuple(r) for r in rows])

    def drop(self, names) -> "Relation":
        """Projection onto everything except ``names``."""
        dropped = set(names)
        kept = [name for name in self.schema.names if name not in dropped]
        return self.project(kept)

    def take(self, indices: Iterable[int]) -> "Relation":
        """The sub-bag of rows at the given indices."""
        return Relation(self.schema, [self.rows[i] for i in indices])

    # -- tuple/record access --------------------------------------------------------

    def record(self, index: int) -> dict:
        """Row ``index`` as an attribute-name -> value dict."""
        return dict(zip(self.schema.names, self.rows[index]))

    def records(self) -> Iterator[dict]:
        """Iterate rows as dicts."""
        names = self.schema.names
        for row in self.rows:
            yield dict(zip(names, row))

    # -- summaries ------------------------------------------------------------------

    def null_fraction(self, name: str) -> float:
        """Fraction of NULLs in one attribute (0.0 for an empty relation)."""
        if not self.rows:
            return 0.0
        column = self.column(name)
        return sum(1 for value in column if value is NULL) / len(column)

    def head(self, k: int = 5) -> str:
        """A small aligned-text preview, handy in examples and debugging."""
        names = self.schema.names
        shown = [[str(v) if v is not NULL else "·" for v in row] for row in self.rows[:k]]
        widths = [
            max(len(names[i]), *(len(r[i]) for r in shown)) if shown else len(names[i])
            for i in range(len(names))
        ]
        header = "  ".join(name.ljust(w) for name, w in zip(names, widths))
        lines = [header, "  ".join("-" * w for w in widths)]
        lines += ["  ".join(v.ljust(w) for v, w in zip(row, widths)) for row in shown]
        if len(self.rows) > k:
            lines.append(f"... ({len(self.rows)} tuples total)")
        return "\n".join(lines)


def from_records(records: Iterable[dict], attributes=None, source: str | None = None) -> Relation:
    """Build a relation from dict records.

    Missing keys become :data:`NULL`.  When ``attributes`` is omitted, the
    schema is the union of keys in first-seen order.
    """
    records = list(records)
    if attributes is None:
        seen: dict = {}
        for record in records:
            for key in record:
                seen.setdefault(key, None)
        attributes = list(seen)
    schema = Schema([Attribute(str(name), source) for name in attributes])
    rows = [tuple(record.get(name, NULL) for name in schema.names) for record in records]
    return Relation(schema, rows)
