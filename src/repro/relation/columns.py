"""Columnar relation storage: per-attribute dictionaries + int32 code columns.

Every attribute of a relation is dictionary-encoded at ingest: the distinct
values of the attribute get dense codes ``0, 1, 2, ...`` in first-seen order,
and the column itself becomes a NumPy ``int32`` array of codes.  This is the
substrate the hot paths consume directly:

* TANE stripped partitions group rows by ``np.argsort``/``np.unique`` over
  code columns instead of hashing value tuples per row;
* the matrix builders (``M``/``N``/``O``) derive their value catalogs from
  the dictionaries with one vectorized pass instead of re-hashing literals;
* FDEP's pair scan compares label arrays instead of value lists;
* checkpoint fingerprints hash dictionaries + columns, which makes them
  invariant to how the ingest stream was chunked.

First-seen code assignment is *chunk-size invariant by construction*: codes
depend only on the order values appear in the row stream, so streaming a
file in 1-row chunks or loading it whole yields identical dictionaries and
columns.  The pickled form round-trips (workers receive the same store the
coordinator built), and row tuples can always be rematerialized for
display/join/REPL paths via :meth:`ColumnStore.row_tuples`.
"""

from __future__ import annotations

import hashlib
import time

import numpy as np

from repro.relation.relation import NULL


class AttributeDictionary:
    """The value <-> code mapping of one attribute.

    Codes are dense ints assigned in first-seen order over the row stream.
    Values may be any hashable object; :data:`repro.relation.NULL` is an
    ordinary dictionary entry (NULL == NULL, as everywhere in this library).
    """

    __slots__ = ("codes", "values")

    def __init__(self):
        self.codes: dict = {}
        self.values: list = []

    def __len__(self) -> int:
        return len(self.values)

    def encode(self, cells) -> np.ndarray:
        """Codes of a sequence of cells, allocating new codes on first sight."""
        codes = self.codes
        values = self.values
        out = np.empty(len(cells), dtype=np.int32)
        for i, cell in enumerate(cells):
            code = codes.get(cell)
            if code is None:
                code = len(values)
                codes[cell] = code
                values.append(cell)
            out[i] = code
        return out

    def __getstate__(self):
        return self.values

    def __setstate__(self, values):
        self.values = list(values)
        self.codes = {value: code for code, value in enumerate(self.values)}


class ColumnStore:
    """Integer-coded columns of one relation, built incrementally.

    ``append_rows`` accepts row-tuple chunks as :func:`repro.relation.iter_csv`
    yields them; the per-attribute dictionaries merge across chunks simply by
    continuing their first-seen numbering.  ``dict_build_s`` accumulates the
    wall-clock spent encoding, for the benchmark's ``dict_build_s`` metric.
    """

    __slots__ = ("names", "dictionaries", "_segments", "_columns",
                 "dict_build_s", "_global_cache")

    def __init__(self, names):
        self.names = tuple(str(name) for name in names)
        self.dictionaries = tuple(AttributeDictionary() for _ in self.names)
        self._segments: list[list[np.ndarray]] = [[] for _ in self.names]
        self._columns: tuple[np.ndarray, ...] | None = None
        self.dict_build_s = 0.0
        self._global_cache: dict = {}

    @classmethod
    def from_rows(cls, names, rows) -> "ColumnStore":
        """Encode a fully materialized row list in one chunk."""
        store = cls(names)
        store.append_rows(rows)
        return store

    # -- building -----------------------------------------------------------------

    def append_rows(self, rows) -> None:
        """Encode one chunk of row tuples onto the end of every column."""
        rows = rows if isinstance(rows, list) else list(rows)
        if not rows:
            return
        start = time.perf_counter()
        arity = len(self.names)
        if arity:
            cells_by_attribute = list(zip(*rows))
            if len(cells_by_attribute) != arity:
                raise ValueError(
                    f"chunk rows have arity {len(cells_by_attribute)}, "
                    f"store expects {arity}"
                )
            for a, dictionary in enumerate(self.dictionaries):
                self._segments[a].append(dictionary.encode(cells_by_attribute[a]))
        self._columns = None
        self._global_cache.clear()
        self.dict_build_s += time.perf_counter() - start

    # -- access -------------------------------------------------------------------

    @property
    def columns(self) -> tuple[np.ndarray, ...]:
        """One ``int32`` code array per attribute, in schema order."""
        if self._columns is None:
            finalized = []
            for segments in self._segments:
                if len(segments) == 1:
                    finalized.append(segments[0])
                elif segments:
                    finalized.append(np.concatenate(segments))
                else:
                    finalized.append(np.empty(0, dtype=np.int32))
            self._columns = tuple(finalized)
            self._segments = [[column] for column in self._columns]
        return self._columns

    @property
    def n_rows(self) -> int:
        if not self.names:
            return 0
        return sum(segment.size for segment in self._segments[0])

    @property
    def arity(self) -> int:
        return len(self.names)

    def cardinalities(self) -> tuple[int, ...]:
        """Distinct-value count per attribute."""
        return tuple(len(d) for d in self.dictionaries)

    def column_values(self, position: int) -> list:
        """One attribute decoded back to literals, in row order."""
        values = self.dictionaries[position].values
        return [values[code] for code in self.columns[position].tolist()]

    def row_tuples(self) -> list[tuple]:
        """Rematerialize the row tuples (display/join/REPL paths)."""
        if not self.names:
            return []
        decoded = [self.column_values(a) for a in range(len(self.names))]
        return list(zip(*decoded)) if decoded else []

    # -- global value ids (the matrix builders' catalogs) ---------------------------

    def global_codes(self, scope: str) -> tuple[np.ndarray, list]:
        """Per-cell catalog ids plus the catalog keys, for one value scope.

        Returns ``(ids, keys)`` where ``ids`` is an ``(n_rows, arity)``
        ``int32`` matrix of catalog ids and ``keys[i]`` is the catalog key of
        id ``i`` -- the literal under ``"global"`` scope, the
        ``(attribute_name, literal)`` pair under ``"attribute"`` scope.  Ids
        are assigned in first-sight order scanning rows left to right, top to
        bottom: exactly the numbering the per-row
        :class:`repro.relation.matrices.ValueCatalog` produces.
        """
        cached = self._global_cache.get(scope)
        if cached is not None:
            return cached
        if scope not in ("global", "attribute"):
            raise ValueError(
                f"value_scope must be 'global' or 'attribute', got {scope!r}"
            )
        columns = self.columns
        n, m = self.n_rows, len(self.names)
        cards = [len(d) for d in self.dictionaries]
        offsets = np.concatenate(([0], np.cumsum(cards[:-1], dtype=np.int64))) \
            if m else np.zeros(0, dtype=np.int64)
        total = int(offsets[-1]) + cards[-1] if m else 0

        combined = np.empty((n, m), dtype=np.int64)
        for a in range(m):
            np.add(columns[a], offsets[a], out=combined[:, a])
        flat = combined.ravel()  # row-major == the catalog's scan order

        # First flat-scan position of every (attribute, code) pair, then an
        # id per catalog key in order of first appearance.  The Python loop
        # is O(sum of cardinalities), not O(n * m).
        present, first_pos = np.unique(flat, return_index=True)
        order = np.argsort(first_pos, kind="stable")
        lut = np.full(total, -1, dtype=np.int64)
        keys: list = []
        if scope == "attribute":
            lut[present[order]] = np.arange(order.size)
            attr_of = np.repeat(np.arange(m), cards)
            for key in present[order].tolist():
                a = int(attr_of[key])
                keys.append(
                    (self.names[a],
                     self.dictionaries[a].values[key - int(offsets[a])])
                )
        else:
            attr_of = np.repeat(np.arange(m), cards)
            literal_ids: dict = {}
            for key in present[order].tolist():
                a = int(attr_of[key])
                literal = self.dictionaries[a].values[key - int(offsets[a])]
                value_id = literal_ids.get(literal)
                if value_id is None:
                    value_id = len(keys)
                    literal_ids[literal] = value_id
                    keys.append(literal)
                lut[key] = value_id
        ids = lut[flat].reshape(n, m).astype(np.int32)
        result = (ids, keys)
        self._global_cache[scope] = result
        return result

    # -- identity -----------------------------------------------------------------

    def content_digest(self) -> str:
        """Hex digest of schema names, dictionaries and code columns.

        Depends only on the encoded content, never on how the ingest stream
        was chunked -- the property checkpoint fingerprints need so a resume
        under a different ``chunk_rows`` still validates.  NULL hashes
        distinctly from any string (including ``"NULL"``).
        """
        digest = hashlib.sha256()
        digest.update("\x1f".join(self.names).encode("utf-8", "surrogatepass"))
        for dictionary, column in zip(self.dictionaries, self.columns):
            digest.update(b"\x1d")
            encoded = "\x1e".join(
                "\x00" if value is NULL else repr(value)
                for value in dictionary.values
            )
            digest.update(encoded.encode("utf-8", "surrogatepass"))
            digest.update(b"\x1c")
            digest.update(np.ascontiguousarray(column, dtype="<i4").tobytes())
        return digest.hexdigest()

    def nbytes(self) -> int:
        """Resident bytes of the code columns (dictionaries excluded)."""
        return sum(column.nbytes for column in self.columns)

    # -- pickling -----------------------------------------------------------------

    def __getstate__(self):
        return {
            "names": self.names,
            "dictionaries": self.dictionaries,
            "columns": self.columns,
            "dict_build_s": self.dict_build_s,
        }

    def __setstate__(self, state):
        self.names = state["names"]
        self.dictionaries = state["dictionaries"]
        self._columns = tuple(state["columns"])
        self._segments = [[column] for column in self._columns]
        self.dict_build_s = state["dict_build_s"]
        self._global_cache = {}

    def __repr__(self) -> str:
        return (
            f"ColumnStore({list(self.names)!r}, {self.n_rows} rows, "
            f"cardinalities={list(self.cardinalities())!r})"
        )
