"""CSV input/output for relations.

All values round-trip as strings; the empty field encodes :data:`NULL`.
Consequently an empty-*string* value is indistinguishable from NULL in this
format and reads back as NULL -- the one (documented) lossy corner.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.relation.relation import NULL, Relation
from repro.relation.schema import Attribute, Schema

#: CSV rendering of the NULL sentinel.
_NULL_FIELD = ""


def read_csv(path, source: str | None = None) -> Relation:
    """Load a relation from a headered CSV file.

    Empty fields become :data:`NULL`; everything else stays a string (the
    tools are generic over value semantics, so no type sniffing is done).
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty; expected a header row") from None
        schema = Schema([Attribute(name, source) for name in header])
        rows = [
            tuple(NULL if field == _NULL_FIELD else field for field in record)
            for record in reader
        ]
    return Relation(schema, rows)


def write_csv(relation: Relation, path) -> None:
    """Write a relation to a headered CSV file (NULL as the empty field)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.names)
        for row in relation.rows:
            writer.writerow(
                [_NULL_FIELD if value is NULL else str(value) for value in row]
            )
