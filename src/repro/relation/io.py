"""CSV input/output for relations, hardened against messy real-world files.

All values round-trip as strings; the empty field encodes :data:`NULL`.
Consequently an empty-*string* value is indistinguishable from NULL in this
format and reads back as NULL -- the one (documented) lossy corner.

Ingestion runs under one of two policies:

* ``on_error="strict"`` (default) -- ragged rows, blank or duplicate
  headers, and undecodable bytes raise :class:`repro.errors.InputError` /
  :class:`repro.errors.SchemaError` with the offending line number;
* ``on_error="coerce"`` -- problems are repaired deterministically (short
  rows padded with NULL, long rows truncated, blank headers named
  ``column_N``, duplicate headers suffixed ``name.2``, bad bytes replaced)
  and counted in the accompanying :class:`IngestReport`.

A UTF-8 byte-order mark on the first header cell is stripped under both
policies -- a BOM is never data.

:func:`load_csv` is built on the streaming :func:`iter_csv` generator,
which yields the rows in bounded chunks so memory-governed callers can
checkpoint (and sample RSS) while a large file is still being read,
instead of discovering the breach only after every row is resident.
"""

from __future__ import annotations

import csv
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.budget import checkpoint
from repro.errors import InputError, SchemaError
from repro.relation.relation import NULL, Relation
from repro.relation.schema import Attribute, Schema
from repro.testing.faults import fault_point

#: CSV rendering of the NULL sentinel.
_NULL_FIELD = ""

_POLICIES = ("strict", "coerce")


@dataclass
class IngestReport:
    """What happened while loading one CSV file.

    ``clean`` is true when nothing had to be repaired or skipped; the CLI
    prints :meth:`summary` to stderr otherwise so coerced loads stay
    auditable.
    """

    path: str
    policy: str
    rows_loaded: int = 0
    padded_rows: int = 0
    truncated_rows: int = 0
    skipped_rows: int = 0
    header_repairs: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    @property
    def repaired_rows(self) -> int:
        """Rows whose arity had to be fixed (padded + truncated)."""
        return self.padded_rows + self.truncated_rows

    @property
    def clean(self) -> bool:
        return (
            not self.repaired_rows
            and not self.skipped_rows
            and not self.header_repairs
            and not self.notes
        )

    def summary(self) -> str:
        parts = [f"loaded {self.rows_loaded} rows from {self.path}"]
        if self.padded_rows:
            parts.append(f"padded {self.padded_rows} short row(s) with NULL")
        if self.truncated_rows:
            parts.append(f"truncated {self.truncated_rows} long row(s)")
        if self.skipped_rows:
            parts.append(f"skipped {self.skipped_rows} blank row(s)")
        parts.extend(self.header_repairs)
        parts.extend(self.notes)
        return "; ".join(parts)


def _clean_header(raw: list, path: Path, policy: str, report: IngestReport) -> list[str]:
    """Validate/repair the header row; returns the final attribute names."""
    header = list(raw)
    if header and header[0].startswith("\ufeff"):
        header[0] = header[0].lstrip("\ufeff")

    names: list[str] = []
    seen: set[str] = set()
    for position, cell in enumerate(header, start=1):
        name = cell.strip()
        if not name:
            if policy == "strict":
                raise SchemaError(
                    f"{path}: header cell {position} is blank",
                    path=path, line=1, column=position,
                )
            name = f"column_{position}"
            while name in seen:
                name += "_"
            report.header_repairs.append(
                f"named blank header cell {position} {name!r}"
            )
        if name in seen:
            if policy == "strict":
                stripped = [cell.strip() for cell in header]
                duplicates = sorted(
                    {n for n in stripped if stripped.count(n) > 1}
                )
                raise SchemaError(
                    f"{path}: duplicate header name(s) {duplicates}",
                    path=path, line=1, duplicates=duplicates,
                )
            suffix = 2
            while f"{name}.{suffix}" in seen:
                suffix += 1
            renamed = f"{name}.{suffix}"
            report.header_repairs.append(
                f"renamed duplicate header {name!r} to {renamed!r}"
            )
            name = renamed
        seen.add(name)
        names.append(name)
    return names


#: Rows per chunk yielded by :func:`iter_csv`.
DEFAULT_CHUNK_ROWS = 4096


def iter_csv(path, source: str | None = None, on_error: str = "strict",
             chunk_rows: int = DEFAULT_CHUNK_ROWS,
             report: IngestReport | None = None, budget=None):
    """Stream a headered CSV file as ``(schema, rows)`` chunks.

    The schema object is identical on every yield, and the first yield
    always happens once the header parses (its chunk is empty for a
    header-only file) -- consumers take the schema from the first item and
    concatenate the chunks.  Repair/skip semantics are exactly those of
    :func:`load_csv`, which is built on this generator; pass ``report`` to
    observe them (counters update as chunks are consumed and totals --
    ``rows_loaded``, the coercion note -- are final once the generator is
    exhausted).

    ``budget`` is an optional :class:`repro.budget.Budget` checkpointed
    once per chunk (``where="io.iter_csv"``), so a memory-governed load
    samples RSS while rows accumulate instead of discovering a breach only
    after the whole file is resident.  :func:`load_csv` passes none, which
    keeps its behavior byte-identical to the pre-streaming implementation.
    """
    if on_error not in _POLICIES:
        raise ValueError(f"on_error must be one of {_POLICIES}, got {on_error!r}")
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    path = Path(path)
    if report is None:
        report = IngestReport(path=str(path), policy=on_error)
    errors = "strict" if on_error == "strict" else "replace"
    try:
        handle = path.open(newline="", encoding="utf-8", errors=errors)
    except OSError as exc:
        raise InputError(f"cannot open {path}: {exc.strerror or exc}",
                         path=path) from exc
    rows_loaded = 0
    saw_replacement = False
    with handle:
        reader = csv.reader(handle)
        try:
            try:
                raw_header = next(reader)
            except StopIteration:
                raise InputError(
                    f"{path} is empty; expected a header row", path=path, line=1
                ) from None
            if not any(cell.strip() for cell in raw_header):
                raise SchemaError(
                    f"{path}: header row is blank", path=path, line=1
                )
            names = _clean_header(raw_header, path, on_error, report)
            schema = Schema([Attribute(name, source) for name in names])
            arity = len(schema)

            first_yielded = False
            chunk: list[tuple] = []
            for record in reader:
                record = fault_point("io.read_csv.row", record)
                if not record:
                    # A zero-field record is a blank line, not an all-NULL
                    # tuple (that one still has its commas).
                    if on_error == "strict":
                        raise InputError(
                            f"{path}:{reader.line_num}: blank line inside data",
                            path=path, line=reader.line_num,
                        )
                    report.skipped_rows += 1
                    continue
                if len(record) != arity:
                    if on_error == "strict":
                        raise InputError(
                            f"{path}:{reader.line_num}: row has "
                            f"{len(record)} field(s), header has {arity}",
                            path=path, line=reader.line_num,
                            expected=arity, got=len(record),
                        )
                    if len(record) < arity:
                        record = record + [_NULL_FIELD] * (arity - len(record))
                        report.padded_rows += 1
                    else:
                        record = record[:arity]
                        report.truncated_rows += 1
                if on_error == "coerce" and not saw_replacement:
                    saw_replacement = any(
                        "�" in field_ for field_ in record
                    )
                chunk.append(
                    tuple(NULL if field_ == _NULL_FIELD else field_
                          for field_ in record)
                )
                if len(chunk) >= chunk_rows:
                    rows_loaded += len(chunk)
                    report.rows_loaded = rows_loaded
                    checkpoint(budget, units=len(chunk), where="io.iter_csv")
                    yield schema, chunk
                    first_yielded = True
                    chunk = []
        except UnicodeDecodeError as exc:
            raise InputError(
                f"{path} is not valid UTF-8 (byte offset {exc.start}); "
                f"re-encode the file or load with on_error='coerce'",
                path=path, byte_offset=exc.start,
            ) from exc
        except csv.Error as exc:
            raise InputError(
                f"{path}:{reader.line_num}: malformed CSV: {exc}",
                path=path, line=reader.line_num,
            ) from exc
        if chunk or not first_yielded:
            rows_loaded += len(chunk)
            report.rows_loaded = rows_loaded
            if chunk:
                checkpoint(budget, units=len(chunk), where="io.iter_csv")
            yield schema, chunk
    if saw_replacement:
        report.notes.append(
            "data contains U+FFFD replacement characters "
            "(undecodable bytes were coerced)"
        )


def load_csv(path, source: str | None = None,
             on_error: str = "strict") -> tuple[Relation, IngestReport]:
    """Load a relation from a headered CSV file, with an ingestion report.

    Empty fields become :data:`NULL`; everything else stays a string (the
    tools are generic over value semantics, so no type sniffing is done).
    ``on_error`` selects the ``"strict"`` or ``"coerce"`` policy described
    in the module docstring.  Implemented as "exhaust :func:`iter_csv`":
    the two are the same ingestion, buffered versus streamed.

    Each chunk is dictionary-encoded as it arrives
    (:class:`repro.relation.columns.ColumnStore`), so the returned relation
    is born columnar: the mining paths consume the coded columns directly
    and row tuples only materialize if a display/join path asks for them.
    First-seen code assignment makes the encoding invariant to the chunk
    size.
    """
    from repro.relation.columns import ColumnStore

    path = Path(path)
    report = IngestReport(path=str(path), policy=on_error)
    schema = None
    store = None
    for schema, chunk in iter_csv(path, source=source, on_error=on_error,
                                  report=report):
        if store is None:
            store = ColumnStore(schema.names)
        store.append_rows(chunk)
    return Relation.from_columns(schema, store), report


def read_csv(path, source: str | None = None, on_error: str = "strict") -> Relation:
    """Load a relation from a headered CSV file (see :func:`load_csv`)."""
    relation, _ = load_csv(path, source=source, on_error=on_error)
    return relation


def fsync_directory(path) -> None:
    """fsync a directory so a rename inside it survives power loss.

    ``os.replace`` makes a write atomic with respect to *crashes of this
    process*, but the new directory entry itself lives in the page cache
    until the directory inode is flushed -- after a power cut the rename
    can vanish even though the file data was fsynced.  Best effort: on
    filesystems or platforms where directories cannot be opened or synced
    this is silently a no-op (the rename is still process-crash safe).
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        descriptor = os.open(str(path), flags)
    except OSError:
        return
    try:
        os.fsync(descriptor)
    except OSError:
        pass
    finally:
        os.close(descriptor)


@contextmanager
def atomic_write(path, mode: str = "w", encoding: str | None = "utf-8",
                 newline: str | None = None):
    """Write ``path`` atomically: temp file in the same directory, then
    ``os.replace``.

    A crash (or SIGKILL) mid-write leaves either the old content or nothing
    -- never a truncated file.  The temp file lives next to the target so
    the replace stays on one filesystem; the handle is fsynced before the
    rename so the rename never outruns the data, and the parent directory
    is fsynced after it so the rename itself survives power loss
    (:func:`fsync_directory`).  Used by every CLI ``--out`` write and by
    the checkpoint store (:mod:`repro.checkpoint`), whose snapshots exist
    precisely to survive crashes.  Pass ``mode="wb"`` (with
    ``encoding=None``) for binary payloads.
    """
    path = Path(path)
    if "b" in mode:
        encoding = None
    descriptor, temp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, mode, encoding=encoding,
                       newline=newline) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
        fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def write_csv(relation: Relation, path) -> None:
    """Write a relation to a headered CSV file (NULL as the empty field).

    The write is atomic (:func:`atomic_write`): readers never observe a
    partially-written relation, and an interrupted ``repro partition`` /
    ``redesign`` / ``dataset`` run never leaves a truncated CSV behind.
    """
    with atomic_write(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.names)
        for row in relation.rows:
            writer.writerow(
                [_NULL_FIELD if value is NULL else str(value) for value in row]
            )
