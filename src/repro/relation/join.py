"""Equi-joins and natural joins.

Section 8 builds the DB2 single relation as
``R = (E join_{WorkDepNo=DepNo} D) join_{DepNo=DepNo} P`` -- an equi-join
that merges the join attributes (the integrated relation keeps a single
department-number column, which is how 10 + 4 + 7 attributes become 19).
"""

from __future__ import annotations

from collections import defaultdict

from repro.relation.relation import Relation
from repro.relation.schema import Attribute, Schema


def equi_join(
    left: Relation,
    right: Relation,
    left_on: str,
    right_on: str,
    merge_key: bool = True,
) -> Relation:
    """Equi-join ``left`` and ``right`` on ``left_on = right_on``.

    With ``merge_key`` (the default) the right key column is dropped, so the
    result carries a single copy of the join attribute -- the behaviour the
    paper's integrated relation exhibits.  Uses a hash join.
    """
    left_pos = left.schema.position(left_on)
    right_pos = right.schema.position(right_on)

    buckets: dict = defaultdict(list)
    for row in right.rows:
        buckets[row[right_pos]].append(row)

    right_keep = [
        i for i in range(len(right.schema)) if not (merge_key and i == right_pos)
    ]

    left_names = set(left.schema.names)
    out_attrs = list(left.schema)
    for i in right_keep:
        attr = right.schema[i]
        name = attr.name
        if name in left_names:
            name = f"{attr.source or 'right'}.{name}"
            if name in left_names:
                raise ValueError(f"cannot disambiguate attribute {attr.name!r}")
        out_attrs.append(Attribute(name, attr.source))

    rows = []
    for left_row in left.rows:
        for right_row in buckets.get(left_row[left_pos], ()):
            rows.append(left_row + tuple(right_row[i] for i in right_keep))
    return Relation(Schema(out_attrs), rows)


def natural_join(left: Relation, right: Relation) -> Relation:
    """Natural join on all shared attribute names (single copy kept)."""
    shared = [name for name in left.schema.names if name in right.schema.names]
    if not shared:
        raise ValueError("natural join requires at least one shared attribute")
    if len(shared) == 1:
        return equi_join(left, right, shared[0], shared[0])

    left_positions = left.schema.positions(shared)
    right_positions = right.schema.positions(shared)
    buckets: dict = defaultdict(list)
    for row in right.rows:
        buckets[tuple(row[p] for p in right_positions)].append(row)

    right_keep = [
        i for i in range(len(right.schema)) if right.schema[i].name not in shared
    ]
    out_attrs = list(left.schema) + [right.schema[i] for i in right_keep]

    rows = []
    for left_row in left.rows:
        key = tuple(left_row[p] for p in left_positions)
        for right_row in buckets.get(key, ()):
            rows.append(left_row + tuple(right_row[i] for i in right_keep))
    return Relation(Schema(out_attrs), rows)
