"""Matrix builders: the paper's ``M``, ``N``, ``O`` and ``F`` matrices.

* ``M`` (Figure 2): tuples as distributions over the values they contain,
  ``p(v|t) = 1/m`` -- built by :func:`build_tuple_view`.
* ``N`` (Figures 3/6): values as distributions over the tuples they appear
  in, ``p(t|v) = 1/d_v`` -- built by :func:`build_value_view`.
* ``O`` (Figure 6): per-value support counts inside each attribute -- carried
  alongside ``N`` in the same view (the ADCF extension of Section 6.2).
* ``F`` (Figure 9): attributes expressed over duplicate value groups -- built
  by :func:`build_matrix_f`.

All matrices are sparse: rows are ``{column_id: mass}`` dicts, which is what
the clustering engine consumes directly.

Value identity follows the paper's generic treatment: a value is a *literal*,
shared across attributes (``value_scope="global"``, the default).  Since that
choice conflates, e.g., a NULL in ``Editor`` with a NULL in ``School`` --
deliberately so, which is exactly what makes the NULL-heavy DBLP attributes
cluster (Figure 15) -- an ``"attribute"`` scope is also offered for users who
want attribute-qualified values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.infotheory.entropy import mutual_information_rows
from repro.relation.relation import Relation


def _check_scope(value_scope: str) -> None:
    if value_scope not in ("global", "attribute"):
        raise ValueError(f"value_scope must be 'global' or 'attribute', got {value_scope!r}")


@dataclass
class ValueCatalog:
    """Assigns stable integer ids to the distinct values of a relation.

    With global scope the key is the literal itself; with attribute scope it
    is the ``(attribute_name, literal)`` pair.
    """

    scope: str
    ids: dict = field(default_factory=dict)
    keys: list = field(default_factory=list)

    def key_for(self, attribute_name: str, literal) -> object:
        """The catalog key of a literal occurring in an attribute."""
        if self.scope == "attribute":
            return (attribute_name, literal)
        return literal

    def id_for(self, attribute_name: str, literal) -> int:
        """The id of a value, allocating one on first sight."""
        key = self.key_for(attribute_name, literal)
        value_id = self.ids.get(key)
        if value_id is None:
            value_id = len(self.keys)
            self.ids[key] = value_id
            self.keys.append(key)
        return value_id

    def label(self, value_id: int) -> str:
        """Human-readable rendering of a value id."""
        key = self.keys[value_id]
        if self.scope == "attribute":
            return f"{key[0]}={key[1]!r}"
        return repr(key)

    def __len__(self) -> int:
        return len(self.keys)


@dataclass
class TupleView:
    """Matrix ``M``: each tuple as a sparse distribution over value ids.

    Attributes
    ----------
    rows:
        ``rows[t] = {value_id: 1/m}`` for the values of tuple ``t``.
    priors:
        ``p(t) = 1/n`` for every tuple.
    catalog:
        The value catalog shared by all rows.
    """

    relation: Relation
    rows: list
    priors: list
    catalog: ValueCatalog

    @property
    def n_tuples(self) -> int:
        return len(self.rows)

    @property
    def n_values(self) -> int:
        return len(self.catalog)

    def mutual_information(self) -> float:
        """``I(T; V)`` of the tuple/value joint distribution, in bits."""
        return mutual_information_rows(self.rows, self.priors)


def _catalog_from_codes(relation: Relation, value_scope: str):
    """Catalog + per-cell id matrix from the relation's coded columns.

    The coded store assigns catalog ids in the same row-major first-sight
    order the per-row :meth:`ValueCatalog.id_for` loop does, so the catalog
    is bit-identical to the legacy tuple-path one -- only the id assignment
    is a vectorized gather instead of ``n * m`` hash lookups.
    """
    ids, keys = relation.coded.global_codes(value_scope)
    catalog = ValueCatalog(scope=value_scope)
    catalog.keys = list(keys)
    catalog.ids = {key: value_id for value_id, key in enumerate(keys)}
    return catalog, ids


def build_tuple_view(relation: Relation, value_scope: str = "global") -> TupleView:
    """Build the tuple representation of Figure 2.

    Each tuple ``t`` gets ``p(t) = 1/n`` and ``p(v|t) = 1/m`` on the values
    it contains.  If the same literal occupies several attributes of one
    tuple (possible under global scope), its masses accumulate, keeping each
    row normalized.  Works directly off the relation's coded columns; the
    row tuples are never materialized.
    """
    _check_scope(value_scope)
    if not len(relation):
        raise ValueError("cannot build a tuple view of an empty relation")
    catalog, ids = _catalog_from_codes(relation, value_scope)
    cell_mass = 1.0 / len(relation.schema)
    rows = []
    for row_ids in ids.tolist():
        sparse: dict = {}
        for value_id in row_ids:
            sparse[value_id] = sparse.get(value_id, 0.0) + cell_mass
        rows.append(sparse)
    priors = [1.0 / len(rows)] * len(rows)
    return TupleView(relation=relation, rows=rows, priors=priors, catalog=catalog)


def _build_tuple_view_rows(relation: Relation, value_scope: str = "global") -> TupleView:
    """Legacy tuple-path builder (per-row catalog hashing).

    Kept as the parity oracle for the coded-column builder; the property
    suite asserts both produce identical views.
    """
    _check_scope(value_scope)
    if not relation.rows:
        raise ValueError("cannot build a tuple view of an empty relation")
    catalog = ValueCatalog(scope=value_scope)
    names = relation.schema.names
    arity = len(names)
    cell_mass = 1.0 / arity
    rows = []
    for row in relation.rows:
        sparse: dict = {}
        for name, literal in zip(names, row):
            value_id = catalog.id_for(name, literal)
            sparse[value_id] = sparse.get(value_id, 0.0) + cell_mass
        rows.append(sparse)
    priors = [1.0 / len(rows)] * len(rows)
    return TupleView(relation=relation, rows=rows, priors=priors, catalog=catalog)


@dataclass
class ValueView:
    """Matrices ``N`` and ``O``: values over tuples (or tuple clusters).

    Attributes
    ----------
    rows:
        ``rows[v] = {column: 1/d_v}`` over the tuples (or tuple clusters,
        under double clustering) in which value ``v`` appears.
    priors:
        ``p(v) = 1/d`` for every value.
    support:
        ``support[v] = {attribute_name: count}`` -- the row of matrix ``O``.
    catalog:
        Maps value ids back to literals.
    n_columns:
        Number of columns the rows range over (tuples or tuple clusters).
    """

    relation: Relation
    rows: list
    priors: list
    support: list
    catalog: ValueCatalog
    n_columns: int
    tuple_counts: list
    double_clustered: bool = False

    @property
    def n_values(self) -> int:
        return len(self.rows)

    @property
    def n_tuples(self) -> int:
        """Number of tuples in the underlying relation."""
        return len(self.relation)

    def occurrences(self, value_id: int) -> int:
        """Total occurrence count ``d_v`` of a value (row sum of ``O``)."""
        return sum(self.support[value_id].values())

    def attributes_of(self, value_id: int) -> frozenset:
        """The attributes in which a value appears at least once."""
        return frozenset(self.support[value_id])

    def mutual_information(self) -> float:
        """``I(V; T)`` of the value/tuple joint distribution, in bits."""
        return mutual_information_rows(self.rows, self.priors)


def build_value_view(
    relation: Relation,
    value_scope: str = "global",
    tuple_clusters: list | None = None,
) -> ValueView:
    """Build the value representation of Figures 3 and 6 (``N`` plus ``O``).

    When ``tuple_clusters`` is given (a cluster id per tuple, as produced by
    tuple clustering), values are expressed over the tuple *clusters* instead
    of individual tuples -- the Double Clustering scale-up of Section 6.2.

    ``N`` rows are normalized over distinct tuples containing the value;
    ``O`` counts every occurrence (so a literal filling two attributes of one
    tuple counts twice in ``O`` but once in ``N``, matching the paper's
    definitions of ``N`` as an indicator matrix and ``O`` as support counts).
    Works directly off the relation's coded columns.
    """
    _check_scope(value_scope)
    n_rows = len(relation)
    if not n_rows:
        raise ValueError("cannot build a value view of an empty relation")
    if tuple_clusters is not None and len(tuple_clusters) != n_rows:
        raise ValueError("tuple_clusters must assign a cluster to every tuple")

    catalog, ids = _catalog_from_codes(relation, value_scope)
    names = relation.schema.names
    n_values = len(catalog)
    membership: list = [{} for _ in range(n_values)]  # value_id -> {column: count}
    support: list = [{} for _ in range(n_values)]  # value_id -> {attribute: count}
    tuple_counts: list = [0] * n_values  # value_id -> number of distinct tuples

    for t, row_ids in enumerate(ids.tolist()):
        column = tuple_clusters[t] if tuple_clusters is not None else t
        seen_in_tuple: set = set()
        for name, value_id in zip(names, row_ids):
            attr_counts = support[value_id]
            attr_counts[name] = attr_counts.get(name, 0) + 1
            if value_id not in seen_in_tuple:
                seen_in_tuple.add(value_id)
                tuple_counts[value_id] += 1
                cols = membership[value_id]
                cols[column] = cols.get(column, 0) + 1
        del seen_in_tuple

    rows = []
    for cols in membership:
        d_v = sum(cols.values())
        rows.append({column: count / d_v for column, count in cols.items()})
    priors = [1.0 / len(rows)] * len(rows)
    n_columns = (
        len(set(tuple_clusters)) if tuple_clusters is not None else n_rows
    )
    return ValueView(
        relation=relation,
        rows=rows,
        priors=priors,
        support=support,
        catalog=catalog,
        n_columns=n_columns,
        tuple_counts=tuple_counts,
        double_clustered=tuple_clusters is not None,
    )


def _build_value_view_rows(
    relation: Relation,
    value_scope: str = "global",
    tuple_clusters: list | None = None,
) -> ValueView:
    """Legacy tuple-path value-view builder (per-row catalog hashing).

    Kept as the parity oracle for the coded-column builder; the property
    suite asserts both produce identical views.
    """
    _check_scope(value_scope)
    if not relation.rows:
        raise ValueError("cannot build a value view of an empty relation")
    if tuple_clusters is not None and len(tuple_clusters) != len(relation.rows):
        raise ValueError("tuple_clusters must assign a cluster to every tuple")

    catalog = ValueCatalog(scope=value_scope)
    names = relation.schema.names
    membership: list = []
    support: list = []
    tuple_counts: list = []

    for t, row in enumerate(relation.rows):
        column = tuple_clusters[t] if tuple_clusters is not None else t
        seen_in_tuple: set = set()
        for name, literal in zip(names, row):
            value_id = catalog.id_for(name, literal)
            if value_id == len(membership):
                membership.append({})
                support.append({})
                tuple_counts.append(0)
            attr_counts = support[value_id]
            attr_counts[name] = attr_counts.get(name, 0) + 1
            if value_id not in seen_in_tuple:
                seen_in_tuple.add(value_id)
                tuple_counts[value_id] += 1
                cols = membership[value_id]
                cols[column] = cols.get(column, 0) + 1
        del seen_in_tuple

    rows = []
    for cols in membership:
        d_v = sum(cols.values())
        rows.append({column: count / d_v for column, count in cols.items()})
    priors = [1.0 / len(rows)] * len(rows)
    n_columns = (
        len(set(tuple_clusters)) if tuple_clusters is not None else len(relation.rows)
    )
    return ValueView(
        relation=relation,
        rows=rows,
        priors=priors,
        support=support,
        catalog=catalog,
        n_columns=n_columns,
        tuple_counts=tuple_counts,
        double_clustered=tuple_clusters is not None,
    )


@dataclass
class MatrixF:
    """Matrix ``F`` (Figure 9): attributes over duplicate value groups.

    Attributes
    ----------
    attribute_names:
        The attributes of ``A^D`` -- those containing at least one duplicate
        value group.
    rows:
        ``rows[a] = {group_index: normalized mass}`` -- attribute ``a``'s
        distribution over the duplicate groups, from the ``O`` counts.
    counts:
        The raw (unnormalized) ``O`` counts behind ``rows``.
    groups:
        ``groups[g]`` is the tuple of value ids forming duplicate group ``g``.
    """

    attribute_names: list
    rows: list
    counts: list
    groups: list


def build_matrix_f(value_view: ValueView, duplicate_groups: list) -> MatrixF:
    """Build matrix ``F`` from the duplicate value groups ``C_V^D``.

    ``duplicate_groups`` is a list of value-id collections.  Attributes with
    no mass on any duplicate group are excluded (they are not in ``A^D``).
    """
    group_ids = [tuple(group) for group in duplicate_groups]
    per_attribute: dict = {}
    for g, group in enumerate(group_ids):
        for value_id in group:
            for attribute, count in value_view.support[value_id].items():
                row = per_attribute.setdefault(attribute, {})
                row[g] = row.get(g, 0) + count

    # Preserve schema order for reproducible dendrograms.
    ordered = [
        name for name in value_view.relation.schema.names if name in per_attribute
    ]
    counts = [per_attribute[name] for name in ordered]
    rows = []
    for raw in counts:
        total = sum(raw.values())
        rows.append({g: c / total for g, c in raw.items()})
    return MatrixF(
        attribute_names=ordered, rows=rows, counts=counts, groups=group_ids
    )
