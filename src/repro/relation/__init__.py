"""Categorical relational substrate.

The paper assumes a set ``T`` of ``n`` tuples over ``m`` attributes, each
attribute with a categorical domain, plus NULL-aware integrated relations
(Section 4 and Section 8).  This package provides that model: schemas,
relations, joins, CSV I/O, and the matrix builders (``M``, ``N``, ``O``,
``F``) that feed the information-theoretic tools.
"""

from repro.relation.correspondence import Correspondence, find_correspondences
from repro.relation.io import (
    DEFAULT_CHUNK_ROWS,
    IngestReport,
    atomic_write,
    fsync_directory,
    iter_csv,
    load_csv,
    read_csv,
    write_csv,
)
from repro.relation.join import equi_join, natural_join
from repro.relation.matrices import (
    MatrixF,
    TupleView,
    ValueView,
    build_matrix_f,
    build_tuple_view,
    build_value_view,
)
from repro.relation.relation import NULL, Relation
from repro.relation.schema import Attribute, Schema

__all__ = [
    "Attribute",
    "Correspondence",
    "DEFAULT_CHUNK_ROWS",
    "IngestReport",
    "MatrixF",
    "NULL",
    "Relation",
    "Schema",
    "TupleView",
    "ValueView",
    "atomic_write",
    "build_matrix_f",
    "build_tuple_view",
    "build_value_view",
    "equi_join",
    "find_correspondences",
    "fsync_directory",
    "iter_csv",
    "load_csv",
    "natural_join",
    "read_csv",
    "write_csv",
]
