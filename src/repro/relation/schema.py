"""Schemas: ordered collections of named categorical attributes."""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class Attribute:
    """A named categorical attribute.

    ``source`` optionally records which original relation the attribute came
    from; integrated relations built by joins carry this provenance so that
    experiments (e.g. Figure 14) can check whether attribute grouping
    recovers the source tables.
    """

    name: str
    source: str | None = None

    def __str__(self) -> str:
        return self.name


class Schema(Sequence):
    """An ordered, duplicate-free sequence of attributes."""

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes):
        resolved = [
            attr if isinstance(attr, Attribute) else Attribute(str(attr))
            for attr in attributes
        ]
        names = [attr.name for attr in resolved]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate attribute names: {duplicates}")
        self._attributes = tuple(resolved)
        self._index = {attr.name: i for i, attr in enumerate(resolved)}

    # -- Sequence protocol ---------------------------------------------------

    def __getitem__(self, position):
        if isinstance(position, slice):
            return Schema(self._attributes[position])
        return self._attributes[position]

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, item) -> bool:
        if isinstance(item, Attribute):
            return item.name in self._index
        return item in self._index

    def __eq__(self, other) -> bool:
        if isinstance(other, Schema):
            return self.names == other.names
        return NotImplemented

    def __hash__(self):
        return hash(self.names)

    def __repr__(self) -> str:
        return f"Schema({list(self.names)!r})"

    # -- lookups ---------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names, in schema order."""
        return tuple(attr.name for attr in self._attributes)

    def position(self, name: str) -> int:
        """The index of the named attribute; raises ``KeyError`` if absent."""
        if isinstance(name, Attribute):
            name = name.name
        if name not in self._index:
            raise KeyError(f"no attribute named {name!r} in {list(self.names)}")
        return self._index[name]

    def positions(self, names) -> tuple[int, ...]:
        """Indices of several attributes, in the order given."""
        return tuple(self.position(name) for name in names)

    def attribute(self, name: str) -> Attribute:
        """The :class:`Attribute` with the given name."""
        return self._attributes[self.position(name)]

    def subset(self, names) -> "Schema":
        """A new schema restricted to ``names``, in the order given."""
        return Schema([self.attribute(name) for name in names])

    def renamed(self, mapping: dict) -> "Schema":
        """A new schema with attributes renamed via ``mapping``."""
        return Schema(
            [
                Attribute(mapping.get(attr.name, attr.name), attr.source)
                for attr in self._attributes
            ]
        )
