"""The process-pool executor behind every parallel code path.

:class:`ShardedExecutor` runs picklable task functions over payload lists
and hides every process-level failure mode from its callers:

* **workers=1** (or a single payload) executes in-process -- same task
  functions, same shard layout, no pool.  This is the oracle the
  determinism suite compares higher worker counts against.
* **Worker crashes, pickling failures and task exceptions** get one
  retry: the pool is killed, a small deterministic backoff elapses, and
  the failed shard (plus everything after it) is re-dispatched to fresh
  worker processes.  A second failure within the same ``map`` degrades for
  good: the remaining payloads are re-executed sequentially in-process and
  every later ``map`` stays sequential.  Both the retry and the eventual
  outcome are recorded as :class:`ExecutorEvent` entries, so a transient
  crash (one OOM-killed worker, say) costs one backoff instead of the
  whole run's parallelism.  Timeouts skip the retry -- re-dispatching a
  stuck shard would double the wait -- and degrade immediately.  The
  parallel layer therefore never introduces a failure mode the sequential
  pipeline does not have; callers observe at worst a slowdown plus events
  for the :class:`repro.core.StructureDiscovery` health report.
* **Budgets** are enforced parent-side: each payload declares its work
  units and the parent charges them against the budget as results are
  collected, in shard order (shard-local-then-summed accounting -- see
  :mod:`repro.budget`).  A run can overshoot the unit cap by at most one
  shard.  Deadlines bound how long the parent waits on any single shard
  result.

Start methods: ``fork`` is the default where the platform offers it (no
interpreter re-import per worker), ``spawn`` otherwise; the
``REPRO_PARALLEL_START_METHOD`` environment variable or the
``start_method=`` argument overrides.  Tasks and payloads must be
picklable under either method (module-level functions, plain data).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from dataclasses import dataclass

from repro.budget import Budget, charge, checkpoint, format_bytes, read_rss
from repro.errors import MemoryLimitExceeded, ResourceLimitExceeded
from repro.parallel.shards import DEFAULT_SHARD_SIZE
from repro.testing.faults import fault_point

#: Environment variable overriding the multiprocessing start method.
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"

#: Seconds slept before the one-shot shard retry.  Fixed and small: long
#: enough for a dying worker's siblings to be reaped, short enough to be
#: invisible next to the work being retried, and deterministic so retried
#: runs stay reproducible.
RETRY_BACKOFF = 0.05

#: Floor for the post-OOM shard-size halving: shards small enough that a
#: single one cannot dominate a worker's footprint, large enough that the
#: layout stays coarse (layout changes are recorded; see ``_degrade``).
MIN_SHARD_SIZE = 16


class WorkerMemoryExceeded(MemoryLimitExceeded):
    """A worker process breached its per-worker memory cap.

    Raised worker-side by :func:`_capped_task` after the task completes
    (the RSS sample is the *evidence*; the work itself is discarded) and
    handled parent-side like a worker crash: retry once on a fresh pool,
    then sticky sequential degradation with halved shards.  Deliberately
    **not** treated as plain :class:`ResourceLimitExceeded` by the
    executor -- the parent process is not over its own cap, one worker is.
    """


def _worker_initializer():
    """Pool workers ignore SIGINT (module-level: picklable).

    A terminal Ctrl-C signals the whole foreground process group --
    coordinator *and* workers.  Workers dying of their own
    ``KeyboardInterrupt`` race the coordinator's orderly unwind (which
    already kills them via ``_shutdown_pool``) and can surface as spurious
    ``BrokenProcessPool`` noise over the real exit-130 path; under a
    supervisor the same applies to a forwarded SIGINT.  The coordinator
    alone decides when workers die.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _capped_task(payload):
    """Run a task under a per-worker RSS cap (module-level: picklable).

    Payload: ``(fn, inner_payload, cap_bytes)``.  The cap check runs after
    the task -- cooperatively, like every memory check in this codebase --
    so a breach surfaces as a typed exception on the parent's future
    instead of an opaque OOM kill.
    """
    fn, inner, cap = payload
    result = fn(inner)
    rss = read_rss()
    if rss > cap:
        raise WorkerMemoryExceeded(
            f"worker RSS {format_bytes(rss)} > per-worker cap "
            f"{format_bytes(cap)}",
            where="parallel.worker_oom", rss=rss, max_memory_bytes=cap,
        )
    return result


def resolve_workers(workers) -> int:
    """Resolve the ``workers`` knob to a concrete process count.

    ``"auto"`` means one worker per available core; integers pass through.
    """
    if workers == "auto":
        return os.cpu_count() or 1
    count = int(workers)
    if count < 1:
        raise ValueError("workers must be 'auto' or a positive integer")
    return count


def resolve_start_method(start_method: str | None = None) -> str:
    """Pick the multiprocessing start method.

    Explicit argument > :data:`START_METHOD_ENV` > ``fork`` where available
    (Linux/macOS-with-fork) > ``spawn``.
    """
    if start_method is None:
        start_method = os.environ.get(START_METHOD_ENV) or None
    available = multiprocessing.get_all_start_methods()
    if start_method is not None:
        if start_method not in available:
            raise ValueError(
                f"start method {start_method!r} not available here "
                f"(have: {', '.join(available)})"
            )
        return start_method
    return "fork" if "fork" in available else "spawn"


@dataclass
class ExecutorEvent:
    """One recorded pool-level incident (crash, timeout, dispatch failure)."""

    kind: str
    where: str
    detail: str

    def render(self) -> str:
        return f"{self.kind} at {self.where or 'map'}: {self.detail}"


class ShardedExecutor:
    """Budget-aware process pool with sequential degradation.

    Parameters
    ----------
    workers:
        ``"auto"`` (one per core) or a positive integer.  ``1`` never
        creates a pool: tasks run in-process, in order.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``None`` (resolve from the environment;
        see :func:`resolve_start_method`).
    budget:
        Default :class:`repro.budget.Budget` charged as shard results are
        collected; :meth:`map`'s own ``budget`` argument overrides it.
    task_timeout:
        Seconds the parent waits for any single shard result before
        recording a timeout event and degrading to sequential execution.
        ``None`` waits as long as the budget deadline allows (indefinitely
        without a budget).
    shard_size:
        Items per shard for callers that derive their layout from the
        executor (:data:`repro.parallel.shards.DEFAULT_SHARD_SIZE`).
        Purely a layout knob -- it must never be derived from ``workers``.
    max_worker_memory_bytes:
        Optional per-worker RSS cap.  Dispatched tasks are wrapped in
        :func:`_capped_task`; a worker found over the cap raises
        :class:`WorkerMemoryExceeded`, which the parent treats like the
        crash path (retry once, then sticky sequential) and additionally
        halves ``shard_size`` for later ``map`` calls (floored at
        :data:`MIN_SHARD_SIZE`) so the degraded run's shards are smaller.
    """

    def __init__(self, workers="auto", start_method: str | None = None,
                 budget: Budget | None = None,
                 task_timeout: float | None = None,
                 shard_size: int = DEFAULT_SHARD_SIZE,
                 max_worker_memory_bytes: int | None = None):
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if shard_size < 1:
            raise ValueError("shard_size must be positive")
        if max_worker_memory_bytes is not None and max_worker_memory_bytes <= 0:
            raise ValueError("max_worker_memory_bytes must be positive (or None)")
        self.workers = resolve_workers(workers)
        self.start_method = resolve_start_method(start_method)
        self.budget = budget
        self.task_timeout = task_timeout
        self.shard_size = shard_size
        self.max_worker_memory_bytes = max_worker_memory_bytes
        #: Pool-level incidents, for the discovery health report.
        self.events: list[ExecutorEvent] = []
        self._pool: ProcessPoolExecutor | None = None
        self._degraded = False

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        self._shutdown_pool(wait=True)

    def _shutdown_pool(self, wait: bool) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if not wait:
            # Abandoning the pool (crash/timeout degrade): kill the worker
            # processes outright.  Merely cancelling futures would leave
            # stuck workers running, and the interpreter joins pool
            # processes at exit -- the hang this layer exists to prevent.
            for process in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    process.kill()
                except Exception:
                    pass
        try:
            pool.shutdown(wait=wait, cancel_futures=True)
        except Exception:
            pass

    @property
    def parallel(self) -> bool:
        """Whether :meth:`map` currently dispatches to worker processes."""
        return self.workers > 1 and not self._degraded

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_worker_initializer,
            )
        return self._pool

    # -- execution ---------------------------------------------------------------

    def map(self, fn, payloads, units=None, where: str = "",
            budget: Budget | None = None) -> list:
        """Run ``fn`` over ``payloads``, returning results in payload order.

        ``fn`` must be a module-level function of one picklable payload.
        ``units`` optionally lists the work units each payload represents
        (same length as ``payloads``); they are charged against the budget
        as the corresponding results are collected.  The first worker or
        dispatch failure is retried once on a fresh pool after
        :data:`RETRY_BACKOFF`; a second failure (or any timeout) degrades
        to in-process execution (every incident recorded in
        :attr:`events`) -- only budget exhaustion and ``KeyboardInterrupt``
        propagate.
        """
        payloads = list(payloads)
        if units is not None:
            units = list(units)
            if len(units) != len(payloads):
                raise ValueError("units must match payloads in length")
        if budget is None:
            budget = self.budget
        if not payloads:
            return []

        if not self.parallel or len(payloads) == 1:
            return self._run_sequential(fn, payloads, units, where, budget)

        results: list = []
        position = 0  # first payload not yet collected
        retried = False
        while True:
            pending = payloads[position:]
            try:
                fault_point("parallel.worker")
                pool = self._ensure_pool()
                if self.max_worker_memory_bytes is not None:
                    cap = self.max_worker_memory_bytes
                    futures = [
                        pool.submit(_capped_task, (fn, payload, cap))
                        for payload in pending
                    ]
                else:
                    futures = [pool.submit(fn, payload) for payload in pending]
            except ResourceLimitExceeded:
                raise
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                if not retried:
                    retried = True
                    self._retry("dispatch-failure", where, exc)
                    continue
                self._degrade("dispatch-failure", where, exc)
                return results + self._run_sequential(
                    fn, pending,
                    units[position:] if units is not None else None,
                    where, budget,
                )

            retry_from = None
            for offset, future in enumerate(futures):
                index = position + offset
                try:
                    fault_point("parallel.worker_oom")
                    result = future.result(timeout=self._wait_limit(budget))
                except WorkerMemoryExceeded as exc:
                    # One worker over its cap: crash path, plus smaller
                    # shards once the pool is gone for good.
                    if not retried:
                        retried = True
                        self._retry("worker-oom", where, exc, shard=index)
                        retry_from = index
                        break
                    self._degrade("worker-oom", where, exc, shard=index)
                    self._shrink_shards()
                    return results + self._run_sequential(
                        fn, payloads[index:],
                        units[index:] if units is not None else None,
                        where, budget,
                    )
                except FutureTimeout as exc:
                    if self._deadline_hit(budget):
                        self._shutdown_pool(wait=False)
                        checkpoint(budget, units=0,
                                   where=where or "parallel.map")
                        raise ResourceLimitExceeded(
                            f"deadline exceeded waiting on shard {index} "
                            f"at {where or 'parallel.map'}",
                            where=where, shard=index,
                        ) from exc
                    # No retry for timeouts: re-dispatching a stuck shard
                    # would double the wait before any result appears.
                    self._degrade("timeout", where, exc, shard=index)
                    return results + self._run_sequential(
                        fn, payloads[index:],
                        units[index:] if units is not None else None,
                        where, budget,
                    )
                except ResourceLimitExceeded:
                    self._shutdown_pool(wait=False)
                    raise
                except KeyboardInterrupt:
                    self._shutdown_pool(wait=False)
                    raise
                except Exception as exc:
                    # BrokenProcessPool, task exceptions, unpicklable results.
                    if not retried:
                        retried = True
                        self._retry("worker-failure", where, exc, shard=index)
                        retry_from = index
                        break
                    self._degrade("worker-failure", where, exc, shard=index)
                    return results + self._run_sequential(
                        fn, payloads[index:],
                        units[index:] if units is not None else None,
                        where, budget,
                    )
                charge(budget, units=units[index] if units is not None else 0,
                       where=where or "parallel.map")
                results.append(result)
            if retry_from is None:
                return results
            position = retry_from

    def _run_sequential(self, fn, payloads, units, where, budget) -> list:
        """The in-process oracle: same tasks, same order, no pool."""
        results = []
        for index, payload in enumerate(payloads):
            checkpoint(budget, units=0, where=where or "parallel.map")
            result = fn(payload)
            charge(budget, units=units[index] if units is not None else 0,
                   where=where or "parallel.map")
            results.append(result)
        return results

    # -- failure handling --------------------------------------------------------

    @staticmethod
    def _describe(exc, shard=None) -> str:
        detail = f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__
        if shard is not None:
            detail += f" (shard {shard})"
        return detail

    def _retry(self, kind: str, where: str, exc, shard=None) -> None:
        """Record the one-shot retry and stand up fresh workers.

        The misbehaving pool is killed outright (a crashed worker breaks
        its siblings' queues anyway) and :data:`RETRY_BACKOFF` elapses
        before the caller re-dispatches the failed shard and everything
        after it.  Re-dispatched shards are pure functions of their
        payloads, so a successful retry is indistinguishable from a clean
        run in every result.
        """
        detail = self._describe(exc, shard) + "; retrying on a fresh pool"
        self.events.append(
            ExecutorEvent(kind="retry", where=where, detail=detail)
        )
        self._shutdown_pool(wait=False)
        time.sleep(RETRY_BACKOFF)

    def _degrade(self, kind: str, where: str, exc, shard=None) -> None:
        """Record the incident and retire the pool for good.

        Degradation is sticky: once a pool misbehaved past its retry,
        every later ``map`` on this executor runs in-process.  Re-executed
        shards are pure functions of their payloads, so results are
        unaffected.
        """
        detail = self._describe(exc, shard)
        self.events.append(ExecutorEvent(kind=kind, where=where, detail=detail))
        self._degraded = True
        self._shutdown_pool(wait=False)

    def _shrink_shards(self) -> None:
        """Halve the shard size after an OOM degrade (floored).

        Smaller shards mean smaller per-shard footprints for the
        in-process replay and any later executor user.  The new layout is
        recorded as an event because shard layout is an input to the
        sharded Phase-1 result -- a report produced after an OOM degrade
        is flagged degraded, never silently different.
        """
        shrunk = max(MIN_SHARD_SIZE, self.shard_size // 2)
        if shrunk < self.shard_size:
            self.shard_size = shrunk
            self.events.append(ExecutorEvent(
                kind="shard-shrink", where="parallel.worker_oom",
                detail=f"shard_size halved to {shrunk} after worker OOM",
            ))

    def _wait_limit(self, budget: Budget | None) -> float | None:
        """How long to block on one shard result."""
        limits = []
        if self.task_timeout is not None:
            limits.append(self.task_timeout)
        if budget is not None:
            remaining = budget.remaining_seconds()
            if remaining is not None:
                limits.append(max(remaining, 0.001))
        return min(limits) if limits else None

    def _deadline_hit(self, budget: Budget | None) -> bool:
        """Whether a wait expiry was the budget deadline (vs. task_timeout)."""
        if budget is None:
            return False
        remaining = budget.remaining_seconds()
        return remaining is not None and remaining <= 0.0
