"""Sharded parallel execution for the discovery pipeline.

Three pieces:

* :mod:`repro.parallel.shards` -- deterministic shard layout, a pure
  function of input size (never of the worker count);
* :mod:`repro.parallel.executor` -- the budget-aware process pool with
  sequential degradation (:class:`ShardedExecutor`);
* :mod:`repro.parallel.tasks` -- the picklable task functions the pipeline
  fans out (LIMBO Phase-1 shards and Phase-3 blocks, FDEP pair blocks,
  TANE partition chunks, AIB candidate-matrix blocks).

See ``docs/PARALLELISM.md`` for the sharding model and the determinism
guarantees.
"""

from repro.parallel.executor import (
    MIN_SHARD_SIZE,
    RETRY_BACKOFF,
    START_METHOD_ENV,
    ExecutorEvent,
    ShardedExecutor,
    WorkerMemoryExceeded,
    resolve_start_method,
    resolve_workers,
)
from repro.parallel.shards import (
    DEFAULT_SHARD_SIZE,
    MAX_SHARDS,
    pair_blocks,
    shard_bounds,
    shard_count,
)

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "MAX_SHARDS",
    "MIN_SHARD_SIZE",
    "RETRY_BACKOFF",
    "START_METHOD_ENV",
    "ExecutorEvent",
    "ShardedExecutor",
    "WorkerMemoryExceeded",
    "pair_blocks",
    "resolve_start_method",
    "resolve_workers",
    "shard_bounds",
    "shard_count",
]
