"""Deterministic shard layout: a pure function of the input size.

The cardinal rule of the parallel layer is that **the shard layout never
depends on the worker count**.  ``shard_bounds(n, shard_size)`` is a pure
function of how much data there is and the ``shard_size`` knob; whether one
process or seven execute the shards, each shard sees exactly the same slice
and produces exactly the same result.  Worker-count invariance of every
parallel code path then holds by construction instead of by luck, and the
determinism suite (``tests/test_parallel_determinism.py``) only has to
confirm it.

Pair blocks serve the quadratic fan-outs (FDEP's tuple-pair scan, AIB's
initial candidate matrix): row ``i`` of an ``n``-object upper triangle owns
``n - 1 - i`` pairs, so equal *row* ranges would be wildly unbalanced.
``pair_blocks`` splits the row range into contiguous blocks of approximately
equal *pair* counts -- still a pure function of ``(n, n_blocks)``.
"""

from __future__ import annotations

#: Default objects per shard.  Small enough that a handful of shards exist
#: for the paper's workloads (so parallelism has something to chew on),
#: large enough that per-shard overhead (pickling, process dispatch) stays
#: negligible against the shard's own work.
DEFAULT_SHARD_SIZE = 256

#: Upper bound on the number of shards regardless of input size; keeps the
#: cross-shard merge step small and the dispatch overhead bounded.
MAX_SHARDS = 32


def shard_count(n_items: int, shard_size: int = DEFAULT_SHARD_SIZE) -> int:
    """How many shards ``n_items`` split into (>= 1, <= :data:`MAX_SHARDS`)."""
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if shard_size < 1:
        raise ValueError("shard_size must be positive")
    if n_items == 0:
        return 1
    return min(-(-n_items // shard_size), MAX_SHARDS)


def shard_bounds(
    n_items: int, shard_size: int = DEFAULT_SHARD_SIZE
) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` slices covering ``range(n_items)``.

    Balanced to within one item, in index order, and -- the invariant
    everything rests on -- a pure function of ``(n_items, shard_size)``.
    """
    count = shard_count(n_items, shard_size)
    base, extra = divmod(n_items, count)
    bounds = []
    start = 0
    for shard in range(count):
        stop = start + base + (1 if shard < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def pair_blocks(n: int, n_blocks: int) -> list[tuple[int, int]]:
    """Split the upper-triangle row range ``[0, n-1)`` into contiguous
    blocks of approximately equal pair counts.

    Block ``(start, stop)`` owns every pair ``(i, j)`` with
    ``start <= i < stop`` and ``i < j < n``.  The union over blocks is
    exactly ``combinations(range(n), 2)``, each pair appearing once.
    """
    if n < 2:
        return []
    if n_blocks < 1:
        raise ValueError("n_blocks must be positive")
    total_pairs = n * (n - 1) // 2
    n_blocks = min(n_blocks, n - 1)
    target = total_pairs / n_blocks
    blocks = []
    start = 0
    accumulated = 0
    for i in range(n - 1):
        accumulated += n - 1 - i
        if accumulated >= target * (len(blocks) + 1) or i == n - 2:
            blocks.append((start, i + 1))
            start = i + 1
            if len(blocks) == n_blocks:
                break
    if start < n - 1:
        last_start, _ = blocks[-1]
        blocks[-1] = (last_start, n - 1)
    return blocks
