"""Picklable task functions dispatched by :class:`ShardedExecutor`.

Every function here takes exactly one plain-data payload and returns plain
data -- the contract that keeps them portable across both ``fork`` and
``spawn`` start methods.  None of them touch a :class:`repro.budget.Budget`
(the coordinating process charges declared units as results arrive) and all
of them are **pure functions of their payload**, which is what lets the
executor re-run any shard in-process after a pool failure without changing
the result.

Determinism: each task either reuses the exact code path of its sequential
twin (``assign_rows``, ``DenseMergeEngine.costs``, ``partition_of``) or
computes a content-based result (sets of agree sets, identical-row groups)
that is independent of how the work was split.  Combined with the fixed
shard layout of :mod:`repro.parallel.shards`, any worker count yields
bit-identical output.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.dcf import DCF
from repro.clustering.dcf_tree import DCFTree
from repro.clustering.limbo import assign_rows, summarize_identical
from repro.fd.fdep import _agree_block
from repro.fd.partitions import partition_of
from repro.kernels import DenseMergeEngine


def fit_shard(payload):
    """LIMBO Phase 1 over one tuple shard.

    Payload: ``(start, rows, priors, supports, threshold, branching,
    backend, max_leaf_entries, threshold_floor)`` where ``start`` is the
    shard's global index offset (member lists carry global indices).
    Returns the shard's leaf DCFs.

    At ``threshold <= 0`` Phase 1 degenerates to grouping identical
    conditionals (only zero-loss merges are allowed -- Section 5.2's
    ``phi = 0`` case), which :func:`summarize_identical` does in one linear
    pass instead of paying the DCF-tree's per-insert closest-entry scans;
    a ``max_leaf_entries`` buffer still applies (escalating from zero),
    keeping every shard space-bounded.  The space bound is part of the
    payload -- a pure function of the input and knobs, never of the worker
    count -- so bounded runs stay worker-count invariant.
    """
    (start, rows, priors, supports, threshold, branching, backend,
     max_leaf_entries, threshold_floor) = payload
    if threshold <= 0.0:
        leaves = summarize_identical(start, rows, priors, supports)
        if max_leaf_entries is None or len(leaves) <= max_leaf_entries:
            return leaves
        tree = DCFTree(0.0, branching=branching, backend=backend,
                       max_leaf_entries=max_leaf_entries,
                       threshold_floor=threshold_floor)
        for leaf in leaves:
            tree.insert(leaf)
        return tree.leaves()
    tree = DCFTree(threshold, branching=branching, backend=backend,
                   max_leaf_entries=max_leaf_entries,
                   threshold_floor=threshold_floor)
    for local, (row, prior) in enumerate(zip(rows, priors)):
        support = supports[local] if supports is not None else None
        tree.insert(DCF.singleton(start + local, prior, row, support=support))
    return tree.leaves()


def assign_block(payload):
    """LIMBO Phase 3 over one block of objects.

    Payload: ``(representatives, rows, priors, backend)``.  Returns the
    per-object representative indices.  Delegates to the same
    :func:`repro.clustering.limbo.assign_rows` the sequential path runs, so
    block boundaries cannot affect any assignment.
    """
    representatives, rows, priors, backend = payload
    return assign_rows(representatives, rows, priors, backend)


def agree_pairs_block(payload):
    """FDEP agree sets for one block of tuple-pair rows.

    Payload: ``(signatures, names, start, stop, n)``; the block owns the
    pairs ``(i, j)`` with ``start <= i < stop`` and ``i < j < n``.
    ``signatures`` is the ``(arity, n)`` label matrix of
    :func:`repro.fd.fdep._signature_matrix` (or the legacy per-attribute
    label lists, with ``None`` marking singletons).  Returns the set of
    distinct agree sets seen -- the union over blocks equals the sequential
    full-scan result exactly, because sets are content-based.
    """
    signatures, names, start, stop, n = payload
    if isinstance(signatures, np.ndarray):
        return _agree_block(signatures, names, start, stop)
    n_attributes = len(names)
    result: set = set()
    for i in range(start, stop):
        for j in range(i + 1, n):
            agree = frozenset(
                names[a]
                for a in range(n_attributes)
                if signatures[a][i] is not None
                and signatures[a][i] == signatures[a][j]
            )
            result.add(agree)
    return result


def partition_chunk(payload):
    """Stripped partitions for one chunk of TANE lattice candidates.

    Payload: ``(relation, candidates)`` with each candidate a sorted tuple
    of attribute names.  Returns one :class:`repro.fd.partitions.Partition`
    per candidate, computed directly from the relation --
    ``Partition.from_classes`` canonicalizes, so the result is identical to
    the sequential path's incremental ``product`` of parent partitions.
    """
    relation, candidates = payload
    return [partition_of(relation, list(attrs)) for attrs in candidates]


def reliable_subtree(payload):
    """Reliable-FD branch-and-bound over one chunk of root subtrees.

    Payload: ``(relation, jobs, mode, k, min_score, max_lhs_size)`` with
    each job a ``(rhs_name, root_name, tail_names)`` triple naming one
    set-enumeration subtree.  Returns ``(entries, counters)`` -- the
    chunk's surviving scored candidates plus its work counters.  The
    worker prunes only against its *local* top-k threshold, which is
    admissible for the global search (a subset's k-th-best score never
    exceeds the superset's), so merged results are bit-identical to the
    sequential miner's for any worker count.
    """
    relation, jobs, mode, k, min_score, max_lhs_size = payload
    from repro.fd.reliable import run_subtree_chunk

    names = list(relation.coded.names)
    positions = [
        (names.index(rhs), names.index(root),
         tuple(names.index(t) for t in tail))
        for rhs, root, tail in jobs
    ]
    return run_subtree_chunk(relation, positions, mode, k, min_score,
                             max_lhs_size)


def aib_pairwise_block(payload):
    """Initial AIB candidate costs for one block of matrix rows.

    Payload: ``(dcfs, index, start, stop)``.  Returns
    ``[(i, costs_i), ...]`` where ``costs_i`` are the quantized merge costs
    of row ``i`` against rows ``i+1 .. n-1``.  Runs the very same
    :meth:`DenseMergeEngine.costs` (including its narrow-/wide-support
    branch) the sequential dense loop runs, over an engine rebuilt from the
    same DCFs and shared column index -- bitwise-identical by construction.
    """
    dcfs, index, start, stop = payload
    n = len(dcfs)
    engine = DenseMergeEngine(dcfs, index=index)
    return [(i, engine.costs(i, range(i + 1, n))) for i in range(start, stop)]
