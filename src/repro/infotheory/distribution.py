"""A small sparse probability-distribution value type.

``SparseDistribution`` wraps a ``{outcome: mass}`` mapping with the handful of
operations the rest of the library needs: normalization, entropy, mixtures,
and divergences.  The clustering hot path works on raw dicts for speed; this
class is the convenient, validated public face of the same math.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Mapping

from repro.infotheory import divergence as _div

_NORMALIZATION_TOL = 1e-6


class SparseDistribution(Mapping):
    """An immutable sparse probability distribution over hashable outcomes."""

    __slots__ = ("_masses",)

    def __init__(self, masses: Mapping, validate: bool = True):
        cleaned = {outcome: float(mass) for outcome, mass in masses.items() if mass != 0.0}
        if validate:
            if any(mass < 0.0 for mass in cleaned.values()):
                raise ValueError("probability masses must be non-negative")
            total = sum(cleaned.values())
            if cleaned and abs(total - 1.0) > _NORMALIZATION_TOL:
                raise ValueError(f"masses must sum to 1, got {total!r}")
        self._masses = cleaned

    # -- construction ------------------------------------------------------

    @classmethod
    def from_counts(cls, counts: Mapping) -> "SparseDistribution":
        """Normalize non-negative counts into a distribution."""
        total = float(sum(counts.values()))
        if total <= 0.0:
            raise ValueError("counts must have positive total")
        return cls({k: v / total for k, v in counts.items() if v}, validate=False)

    @classmethod
    def uniform(cls, outcomes) -> "SparseDistribution":
        """The uniform distribution over the given outcomes."""
        outcomes = list(outcomes)
        if not outcomes:
            raise ValueError("need at least one outcome")
        mass = 1.0 / len(outcomes)
        return cls({outcome: mass for outcome in outcomes}, validate=False)

    @classmethod
    def point(cls, outcome) -> "SparseDistribution":
        """The point mass on a single outcome."""
        return cls({outcome: 1.0}, validate=False)

    # -- Mapping protocol ---------------------------------------------------

    def __getitem__(self, outcome) -> float:
        return self._masses.get(outcome, 0.0)

    def __iter__(self) -> Iterator:
        return iter(self._masses)

    def __len__(self) -> int:
        return len(self._masses)

    def __contains__(self, outcome) -> bool:
        return outcome in self._masses

    def __repr__(self) -> str:
        preview = ", ".join(
            f"{outcome!r}: {mass:.4f}" for outcome, mass in list(self._masses.items())[:4]
        )
        suffix = ", ..." if len(self._masses) > 4 else ""
        return f"SparseDistribution({{{preview}{suffix}}})"

    def __eq__(self, other) -> bool:
        if isinstance(other, SparseDistribution):
            return self._masses == other._masses
        return NotImplemented

    def __hash__(self):
        return hash(frozenset(self._masses.items()))

    # -- information-theoretic operations ------------------------------------

    @property
    def support(self) -> frozenset:
        """The outcomes carrying positive mass."""
        return frozenset(self._masses)

    def entropy(self, base: float = 2.0) -> float:
        """Shannon entropy of the distribution."""
        log_base = math.log(base)
        return -sum(
            mass * math.log(mass) for mass in self._masses.values() if mass > 0.0
        ) / log_base

    def mix(self, other: "SparseDistribution", w_self: float, w_other: float) -> "SparseDistribution":
        """The normalized mixture with weights proportional to the arguments."""
        total = w_self + w_other
        if total <= 0.0:
            raise ValueError("weights must have positive sum")
        blended = _div.mixture(self._masses, dict(other.items()), w_self / total, w_other / total)
        return SparseDistribution(blended, validate=False)

    def kl(self, other: "SparseDistribution", base: float = 2.0) -> float:
        """``D_KL[self || other]``."""
        return _div.kl_divergence(self._masses, dict(other.items()), base=base)

    def js(self, other: "SparseDistribution", w_self: float = 0.5, w_other: float = 0.5) -> float:
        """Weighted Jensen-Shannon divergence against ``other``."""
        return _div.jensen_shannon(self._masses, dict(other.items()), w_self, w_other)

    def as_dict(self) -> dict:
        """A plain-dict copy of the masses."""
        return dict(self._masses)
