"""Kullback-Leibler and Jensen-Shannon divergences (paper Section 3 / 5.1).

The Jensen-Shannon divergence used throughout the paper is the *weighted*
variant from Tishby et al.: for clusters ``c_i``, ``c_j`` with priors
``p(c_i)``, ``p(c_j)`` and conditionals ``p_i = p(T|c_i)``, ``p_j = p(T|c_j)``,

    p_bar = pi_i * p_i + pi_j * p_j            (pi = prior / (sum of priors))
    D_JS[p_i, p_j] = pi_i * D_KL[p_i || p_bar] + pi_j * D_KL[p_j || p_bar]

and the information loss of merging the clusters (Eq. 3) is

    delta_I(c_i, c_j) = (p(c_i) + p(c_j)) * D_JS[p_i, p_j].

All functions here work on sparse mappings ``{outcome: mass}``; the module is
the numeric hot path of the clustering engine, so it sticks to plain dicts and
``math.log``.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

_LOG2 = math.log(2.0)


def kl_divergence(p: Mapping, q: Mapping, base: float = 2.0) -> float:
    """``D_KL[p || q]`` over sparse mappings.

    Returns ``math.inf`` when ``p`` puts mass on an outcome where ``q`` has
    none (the encoding error is unbounded there).
    """
    log_base = math.log(base)
    divergence = 0.0
    for outcome, p_mass in p.items():
        if p_mass <= 0.0:
            continue
        q_mass = q.get(outcome, 0.0)
        if q_mass <= 0.0:
            return math.inf
        divergence += p_mass * math.log(p_mass / q_mass)
    return max(divergence / log_base, 0.0)


def mixture(p: Mapping, q: Mapping, w_p: float, w_q: float) -> dict:
    """The weighted mixture ``w_p * p + w_q * q`` as a sparse dict."""
    blended = {outcome: w_p * mass for outcome, mass in p.items()}
    for outcome, mass in q.items():
        blended[outcome] = blended.get(outcome, 0.0) + w_q * mass
    return blended


def _sparse_entropy_bits(p: Mapping) -> float:
    """Entropy in bits of a sparse distribution (no validation)."""
    h = 0.0
    for mass in p.values():
        if mass > 0.0:
            h -= mass * math.log(mass)
    return h / _LOG2


def jensen_shannon(
    p: Mapping, q: Mapping, w_p: float = 0.5, w_q: float = 0.5
) -> float:
    """Weighted Jensen-Shannon divergence ``D_JS[p, q]`` in bits.

    ``w_p`` and ``w_q`` are the cluster priors; they need not sum to one --
    the mixture weights are ``w / (w_p + w_q)`` as in the paper.  With the
    default equal weights this is the classic JS divergence, bounded by 1 bit.
    """
    total = w_p + w_q
    if total <= 0.0:
        raise ValueError("weights must have positive sum")
    pi_p, pi_q = w_p / total, w_q / total
    blended = mixture(p, q, pi_p, pi_q)
    # D_JS = H(p_bar) - pi_p H(p) - pi_q H(q); cheaper and more stable than
    # two explicit KL computations against the mixture.
    js = (
        _sparse_entropy_bits(blended)
        - pi_p * _sparse_entropy_bits(p)
        - pi_q * _sparse_entropy_bits(q)
    )
    return max(js, 0.0)


def information_loss(p: Mapping, q: Mapping, w_p: float, w_q: float) -> float:
    """``delta_I`` of merging two clusters (paper Eq. 3), in bits.

    ``delta_I = (w_p + w_q) * D_JS[p, q]`` with mixture weights proportional
    to the priors.  Depends only on the two clusters being merged, never on
    the rest of the clustering.
    """
    return (w_p + w_q) * jensen_shannon(p, q, w_p, w_q)
