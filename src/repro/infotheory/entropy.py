"""Entropy, conditional entropy and mutual information (paper Section 3).

The functions accept either dense ``numpy`` arrays or sparse mappings from
hashable outcomes to probability mass.  Zero-mass outcomes contribute nothing
(the usual ``0 log 0 = 0`` convention).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

import numpy as np

#: Tolerance used when validating that masses sum to one.
_NORMALIZATION_TOL = 1e-6


def _as_mass_array(p) -> np.ndarray:
    """Coerce ``p`` (array, mapping, or iterable of masses) to a 1-D array."""
    if isinstance(p, Mapping):
        return np.fromiter(p.values(), dtype=float, count=len(p))
    return np.asarray(list(p) if not isinstance(p, np.ndarray) else p, dtype=float).ravel()


def entropy(p, base: float = 2.0, validate: bool = True) -> float:
    """Shannon entropy ``H(V) = -sum p(v) log p(v)``.

    Parameters
    ----------
    p:
        A probability distribution: a dense array of masses, a mapping from
        outcomes to masses, or any iterable of masses.
    base:
        Logarithm base; 2 yields bits (the library default).
    validate:
        When true, raise ``ValueError`` if masses are negative or do not sum
        to one (within a small tolerance).
    """
    masses = _as_mass_array(p)
    if validate:
        if masses.size and masses.min() < -_NORMALIZATION_TOL:
            raise ValueError("probability masses must be non-negative")
        total = float(masses.sum())
        if masses.size and abs(total - 1.0) > _NORMALIZATION_TOL:
            raise ValueError(f"probability masses must sum to 1, got {total!r}")
    positive = masses[masses > 0.0]
    if positive.size == 0:
        return 0.0
    # `+ 0.0` normalizes the -0.0 a point mass produces.
    return float(-(positive * (np.log(positive) / math.log(base))).sum()) + 0.0


def entropy_of_counts(counts, base: float = 2.0) -> float:
    """Entropy of the empirical distribution induced by non-negative counts.

    Accepts a mapping from outcomes to counts, or an iterable of counts.
    Useful for computing the entropy of a bag of (projected) tuples without
    materializing probabilities first.
    """
    values = _as_mass_array(counts)
    if values.size and values.min() < 0:
        raise ValueError("counts must be non-negative")
    total = float(values.sum())
    if total <= 0.0:
        return 0.0
    return entropy(values / total, base=base, validate=False)


def max_entropy(n_states: int, base: float = 2.0) -> float:
    """``H_max(V) = log n`` -- the entropy of ``n`` equiprobable states."""
    if n_states < 1:
        raise ValueError("a random variable needs at least one state")
    return math.log(n_states, base)


def _joint_as_array(joint) -> np.ndarray:
    """Coerce a joint distribution to a 2-D array ``P[v, t]``."""
    if isinstance(joint, Mapping):
        # Mapping from (v, t) pairs to mass.
        rows = sorted({v for v, _ in joint})
        cols = sorted({t for _, t in joint})
        row_index = {v: i for i, v in enumerate(rows)}
        col_index = {t: j for j, t in enumerate(cols)}
        dense = np.zeros((len(rows), len(cols)))
        for (v, t), mass in joint.items():
            dense[row_index[v], col_index[t]] = mass
        return dense
    return np.asarray(joint, dtype=float)


def conditional_entropy(joint, base: float = 2.0) -> float:
    """``H(T | V)`` from a joint distribution ``P[v, t]``.

    ``joint`` is either a 2-D array whose rows range over ``V`` and columns
    over ``T``, or a mapping from ``(v, t)`` pairs to probability mass.

    ``H(T|V) = -sum_v p(v) sum_t p(t|v) log p(t|v)``
    """
    dense = _joint_as_array(joint)
    if dense.size and dense.min() < -_NORMALIZATION_TOL:
        raise ValueError("probability masses must be non-negative")
    total = float(dense.sum())
    if abs(total - 1.0) > _NORMALIZATION_TOL:
        raise ValueError(f"joint masses must sum to 1, got {total!r}")
    result = 0.0
    for row in dense:
        p_v = float(row.sum())
        if p_v > 0.0:
            result += p_v * entropy(row / p_v, base=base, validate=False)
    return result


def mutual_information(joint, base: float = 2.0) -> float:
    """``I(V; T) = H(T) - H(T|V)`` from a joint distribution ``P[v, t]``."""
    dense = _joint_as_array(joint)
    marginal_t = dense.sum(axis=0)
    return entropy(marginal_t, base=base, validate=True) - conditional_entropy(
        dense, base=base
    )


def mutual_information_rows(
    rows: Iterable[Mapping], weights: Iterable[float], base: float = 2.0
) -> float:
    """``I(V; T)`` from sparse conditional rows ``p(T|v)`` and priors ``p(v)``.

    This is the form the clustering engine uses: each object ``v`` carries a
    sparse conditional distribution over ``T`` plus a prior mass ``p(v)``.

    ``I(V;T) = sum_v p(v) sum_t p(t|v) log( p(t|v) / p(t) )``
    """
    rows = list(rows)
    weights = [float(w) for w in weights]
    if len(rows) != len(weights):
        raise ValueError("rows and weights must have the same length")
    total_weight = sum(weights)
    if rows and abs(total_weight - 1.0) > _NORMALIZATION_TOL:
        raise ValueError(f"priors must sum to 1, got {total_weight!r}")
    marginal: dict = {}
    for row, weight in zip(rows, weights):
        for t, mass in row.items():
            marginal[t] = marginal.get(t, 0.0) + weight * mass
    log_base = math.log(base)
    info = 0.0
    for row, weight in zip(rows, weights):
        if weight <= 0.0:
            continue
        for t, mass in row.items():
            if mass > 0.0:
                info += weight * mass * math.log(mass / marginal[t]) / log_base
    return max(info, 0.0)
