"""Information-theory substrate (paper Section 3).

Entropy, conditional entropy, mutual information, Kullback-Leibler and
Jensen-Shannon divergences, and a sparse probability-distribution type.
All quantities default to base-2 logarithms (bits), which is the convention
under which the Jensen-Shannon divergence is bounded above by one, as the
paper states.
"""

from repro.infotheory.distribution import SparseDistribution
from repro.infotheory.divergence import (
    information_loss,
    jensen_shannon,
    kl_divergence,
    mixture,
)
from repro.infotheory.entropy import (
    conditional_entropy,
    entropy,
    entropy_of_counts,
    max_entropy,
    mutual_information,
    mutual_information_rows,
)

__all__ = [
    "SparseDistribution",
    "conditional_entropy",
    "entropy",
    "entropy_of_counts",
    "information_loss",
    "jensen_shannon",
    "kl_divergence",
    "max_entropy",
    "mixture",
    "mutual_information",
    "mutual_information_rows",
]
