"""Independent re-certification of discovery artifacts.

Every check here re-derives what the report claims through a code path the
miners never execute: FDs by partition refinement over the coded columns
(:func:`repro.fd.verify.holds_coded`), reliable scores against a plug-in
fraction of information computed from ``np.bincount`` entropies, cluster
assignments against a from-scratch merge-cost fold (no cached
``mass_log_sum``, no packed arrays, no quantization), and dendrogram /
distribution invariants straight from the definitions.  A cheap wrong
answer here is therefore evidence of a wrong artifact, not of a shared
bug.

Tolerances: re-derived bit quantities agree with the pipeline's up to the
shared loss-quantization grid (relative ``2**-30`` plus the ``2**-40``
floor) and ``math.fsum``-vs-running-sum noise, so every comparison allows
``_BITS_TOL`` absolute plus ``_REL_TOL`` relative slack.  Anything beyond
that is a violation.

Artifacts produced by a degraded stage are *skipped*, not failed: the
report already flags them, and certifying what a fallback path never
promised would manufacture false alarms.  The certificate says which
checks were skipped and why.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

import numpy as np

from repro.fd.dependency import FD
from repro.fd.reliable import ReliableFD
from repro.fd.verify import _group_codes, holds_coded
from repro.seeding import sample_indices

#: Version stamp written into every certificate (bump on schema change).
AUDIT_VERSION = 1

_LN2 = math.log(2.0)

#: Absolute slack for re-derived bit quantities (fsum vs running sums).
_BITS_TOL = 1e-6

#: Relative slack covering the shared loss-quantization grid.
_REL_TOL = 2.0 ** -28

#: Cap on (sampled rows x summaries) cost cells in the assignment check.
_MAX_ASSIGN_CELLS = 250_000

#: Cap on the densified (summaries x value-ids) mass matrix; beyond this
#: the assignment check stays on the scalar per-summary path.
_MAX_DENSE_CELLS = 4_000_000


def _xlogx(x: float) -> float:
    return x * math.log(x) if x > 0.0 else 0.0


def _xlogx_np(x):
    """Vectorized ``x * ln x`` with the ``0 ln 0 = 0`` convention."""
    result = np.zeros_like(x, dtype=np.float64)
    positive = x > 0.0
    np.multiply(x, np.log(x, where=positive, out=np.zeros_like(result)),
                where=positive, out=result)
    return result


def _tol(reference: float) -> float:
    return _BITS_TOL + _REL_TOL * abs(reference)


# -- certificate structure ----------------------------------------------------------


@dataclass(frozen=True)
class Violation:
    """One artifact that failed independent re-verification."""

    check: str
    artifact: str
    detail: str

    def to_json(self) -> dict:
        return {"check": self.check, "artifact": self.artifact,
                "detail": self.detail}

    def __str__(self) -> str:
        return f"[{self.check}] {self.artifact}: {self.detail}"


@dataclass
class CheckResult:
    """Outcome of one audit check over a family of artifacts."""

    name: str
    status: str  # "pass" | "fail" | "skipped"
    detail: str = ""
    checked: int = 0

    def to_json(self) -> dict:
        return {"name": self.name, "status": self.status,
                "detail": self.detail, "checked": self.checked}


@dataclass
class AuditCertificate:
    """Machine-readable verdict of one audit run (``audit.json``)."""

    checks: list = field(default_factory=list)
    violations: list = field(default_factory=list)
    seed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def artifacts_checked(self) -> int:
        return sum(check.checked for check in self.checks)

    def to_json(self) -> dict:
        return {
            "version": AUDIT_VERSION,
            "ok": self.ok,
            "seed": self.seed,
            "artifacts_checked": self.artifacts_checked,
            "checks": [check.to_json() for check in self.checks],
            "violations": [violation.to_json() for violation in self.violations],
        }

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def describe(self) -> str:
        if self.ok:
            ran = sum(1 for c in self.checks if c.status == "pass")
            skipped = sum(1 for c in self.checks if c.status == "skipped")
            note = f"; {skipped} skipped" if skipped else ""
            return (f"certified: {self.artifacts_checked} artifacts across "
                    f"{ran} checks{note}")
        return (f"REJECTED: {len(self.violations)} violation(s), first: "
                f"{self.violations[0]}")

    def render(self) -> str:
        lines = [f"Audit ({'ok' if self.ok else 'REJECTED'}): "
                 f"{self.describe()}"]
        for check in self.checks:
            line = f"  [{check.status:>7}] {check.name}"
            if check.checked:
                line += f" ({check.checked} artifacts)"
            if check.detail:
                line += f": {check.detail}"
            lines.append(line)
        for violation in self.violations:
            lines.append(f"  VIOLATION {violation}")
        return "\n".join(lines)


# -- independent math ---------------------------------------------------------------


def merge_cost_bits(weight_a: float, mass_a: dict,
                    weight_b: float, mass_b: dict) -> float:
    """``delta_I`` in bits, re-derived from the joint masses.

    ``w ln w - wa ln wa - wb ln wb + sum_k [xlogx(ma) + xlogx(mb) -
    xlogx(ma + mb)]`` over the union support (terms outside ``b``'s support
    cancel exactly, so iterating ``b`` suffices).  Unquantized, folded with
    ``math.fsum`` -- deliberately not :func:`repro.clustering.dcf.merge_cost`.
    """
    w = weight_a + weight_b
    terms = [_xlogx(w) - _xlogx(weight_a) - _xlogx(weight_b)]
    for column, m_b in mass_b.items():
        m_a = mass_a.get(column, 0.0)
        terms.append(_xlogx(m_a) + _xlogx(m_b) - _xlogx(m_a + m_b))
    return max(math.fsum(terms) / _LN2, 0.0)


def _groups_entropy_bits(groups: np.ndarray, n: int) -> float:
    counts = np.bincount(groups)
    counts = counts[counts > 0]
    p = counts / float(n)
    return float(-(p * np.log2(p)).sum())


def information_fraction(relation, fd: FD) -> float:
    """Plug-in fraction of information ``I(X;Y) / H(Y)``, re-derived.

    Uses ``H(Y) + H(X) - H(XY)`` over dense group codes -- no partition
    caches, no miner state.  Conventions match
    :func:`repro.fd.fraction_of_information`: 1.0 when ``Y`` is constant
    (the FD trivially holds), clamped into ``[0, 1]``.
    """
    n = len(relation)
    if n == 0:
        return 1.0
    h_y = _groups_entropy_bits(_group_codes(relation, fd.rhs), n)
    if h_y <= 0.0:
        return 1.0
    h_x = (_groups_entropy_bits(_group_codes(relation, fd.lhs), n)
           if fd.lhs else 0.0)
    h_xy = _groups_entropy_bits(_group_codes(relation, fd.lhs | fd.rhs), n)
    return max(0.0, min(1.0, (h_y + h_x - h_xy) / h_y))


# -- the auditor --------------------------------------------------------------------


class Auditor:
    """Re-certifies every artifact of a :class:`DiscoveryReport`.

    Parameters
    ----------
    seed:
        Seeds every sampled check through :mod:`repro.seeding` scopes, so
        two audits of the same report examine exactly the same artifacts.
    row_sample:
        Tuples re-scored in the cluster-assignment check.
    fd_sample:
        Non-cover dependencies re-checked (every cover FD is always
        checked; the cover is the load-bearing artifact).
    summary_sample:
        DCF summaries examined per clustering in the distribution check.
    """

    def __init__(self, seed: int = 0, row_sample: int = 32,
                 fd_sample: int = 64, summary_sample: int = 16):
        self.seed = int(seed)
        self.row_sample = int(row_sample)
        self.fd_sample = int(fd_sample)
        self.summary_sample = int(summary_sample)

    # -- entry point -----------------------------------------------------------------

    def audit(self, report, source_relation=None, store=None,
              expected_params=None) -> AuditCertificate:
        """Audit a live report (and optionally its checkpoint store)."""
        certificate = AuditCertificate(seed=self.seed)
        self._groups_cache = {}
        self._check_dependencies(certificate, report)
        self._check_ranked(certificate, report)
        self._check_assignment(certificate, report)
        self._check_dendrogram(certificate, report)
        self._check_distributions(certificate, report)
        self._check_digests(certificate, report, source_relation, store,
                            expected_params)
        return certificate

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _stage_ok(report, stage: str) -> bool:
        outcome = report.outcome(stage)
        return outcome is not None and outcome.ok

    def _record(self, certificate, name, before, checked, detail=""):
        failed = len(certificate.violations) - before
        certificate.checks.append(CheckResult(
            name=name,
            status="fail" if failed else "pass",
            detail=detail if not failed else
            (f"{failed} violation(s)" + (f"; {detail}" if detail else "")),
            checked=checked,
        ))

    @staticmethod
    def _skip(certificate, name, detail):
        certificate.checks.append(
            CheckResult(name=name, status="skipped", detail=detail))

    # -- dependencies ----------------------------------------------------------------

    def _check_dependencies(self, certificate, report):
        if not self._stage_ok(report, "mining"):
            self._skip(certificate, "dependencies",
                       "mining degraded; dependencies not certified")
            return
        relation = report.relation
        before = len(certificate.violations)
        checked = 0
        sampled_note = ""

        cover_ok = self._stage_ok(report, "cover")
        if report.cover and cover_ok:
            for fd in report.cover:
                checked += 1
                self._verify_entry(certificate, relation, fd, "cover")
        elif report.cover and not cover_ok:
            sampled_note = "cover degraded, skipped; "

        cover_set = set(report.cover)
        extras = [entry for entry in report.dependencies
                  if entry not in cover_set] \
            if report.cover else list(report.dependencies)
        if len(extras) > self.fd_sample:
            picked = sample_indices(len(extras), self.fd_sample, self.seed,
                                    "audit.dependencies")
            extras = [extras[i] for i in picked]
            sampled_note += (f"sampled {len(extras)} of "
                             f"{len(report.dependencies)} mined dependencies")
        for entry in extras:
            checked += 1
            self._verify_entry(certificate, relation, entry, "mined")
        self._record(certificate, "dependencies", before, checked,
                     sampled_note)

    def _groups(self, relation, attributes):
        """Memoized :func:`repro.fd.verify._group_codes` for one audit pass.

        LHS attribute sets repeat heavily across a cover; caching the
        partition codes keeps the exact re-check inside the audit's
        wall-clock budget without sampling the cover.
        """
        key = frozenset(attributes)
        codes = self._groups_cache.get(key)
        if codes is None:
            from repro.fd.verify import _group_codes

            codes = _group_codes(relation, attributes)
            self._groups_cache[key] = codes
        return codes

    def _holds(self, relation, fd) -> bool:
        if len(relation) == 0:
            return True
        lhs = self._groups(relation, fd.lhs)
        both = self._groups(relation, fd.lhs | fd.rhs)
        n_lhs = int(lhs.max()) + 1 if lhs.size else 0
        n_both = int(both.max()) + 1 if both.size else 0
        return n_lhs == n_both

    def _verify_entry(self, certificate, relation, entry, family):
        if isinstance(entry, ReliableFD):
            self._verify_reliable(certificate, relation, entry, family)
        elif isinstance(entry, FD):
            if not self._holds(relation, entry):
                certificate.violations.append(Violation(
                    check="dependencies", artifact=f"{family}:{entry}",
                    detail="claimed exact dependency does not hold on the "
                           "instance (partition refinement split an "
                           "LHS class)"))
        else:  # ApproximateFD-style: carries .fd and .error
            fd = getattr(entry, "fd", None)
            error = getattr(entry, "error", None)
            if fd is None or error is None:
                certificate.violations.append(Violation(
                    check="dependencies", artifact=f"{family}:{entry!r}",
                    detail="unrecognized dependency artifact type"))
                return
            from repro.fd.verify import g3_error_coded
            actual = g3_error_coded(relation, fd)
            if abs(actual - error) > _tol(error):
                certificate.violations.append(Violation(
                    check="dependencies", artifact=f"{family}:{entry}",
                    detail=f"stated g3={error:.6f} but instance "
                           f"g3={actual:.6f}"))

    def _verify_reliable(self, certificate, relation, entry, family):
        artifact = f"{family}:{entry.fd}"
        if not (0.0 <= entry.score <= 1.0) or entry.confidence_radius < 0.0:
            certificate.violations.append(Violation(
                check="dependencies", artifact=artifact,
                detail=f"score {entry.score!r} / radius "
                       f"{entry.confidence_radius!r} out of range"))
            return
        if entry.score > entry.information + _tol(entry.information):
            certificate.violations.append(Violation(
                check="dependencies", artifact=artifact,
                detail=f"bias-corrected score {entry.score:.6f} exceeds its "
                       f"own information {entry.information:.6f}"))
            return
        recomputed = information_fraction(relation, entry.fd)
        if entry.sampled:
            # Sampled scores only promise one-sided containment: the true
            # information lies within the stated radius above the score.
            bound = recomputed + entry.confidence_radius
            if entry.score > bound + _tol(bound):
                certificate.violations.append(Violation(
                    check="dependencies", artifact=artifact,
                    detail=f"sampled score {entry.score:.6f} exceeds "
                           f"re-derived information {recomputed:.6f} + "
                           f"radius {entry.confidence_radius:.6f}"))
        else:
            if abs(recomputed - entry.information) > _tol(recomputed):
                certificate.violations.append(Violation(
                    check="dependencies", artifact=artifact,
                    detail=f"stated information {entry.information:.6f} != "
                           f"re-derived {recomputed:.6f}"))

    # -- ranking ---------------------------------------------------------------------

    def _check_ranked(self, certificate, report):
        if not self._stage_ok(report, "rank"):
            self._skip(certificate, "ranking",
                       "rank degraded; ranking not certified")
            return
        before = len(certificate.violations)
        # The rank stage collapses equal antecedents (one entry per LHS,
        # RHS union), so membership is checked against the mined
        # dependencies *after* the same collapse, not entry-for-entry.
        allowed: dict = {}
        mined = [entry.fd if isinstance(entry, ReliableFD) else
                 getattr(entry, "fd", entry)
                 for entry in list(report.dependencies) + list(report.cover)]
        for fd in mined:
            allowed.setdefault(frozenset(fd.lhs), set()).update(fd.rhs)
        for index, ranked in enumerate(report.ranked):
            lhs = frozenset(ranked.fd.lhs)
            reachable = allowed.get(lhs, set()) | set(lhs)
            if not set(ranked.fd.rhs) <= reachable:
                certificate.violations.append(Violation(
                    check="ranking", artifact=f"ranked[{index}]:{ranked.fd}",
                    detail="ranked dependency was never mined (no mined "
                           "dependency set with this antecedent covers "
                           "its consequent)"))
            if not math.isinf(ranked.rank) and ranked.rank < -_BITS_TOL:
                certificate.violations.append(Violation(
                    check="ranking", artifact=f"ranked[{index}]:{ranked.fd}",
                    detail=f"negative rank {ranked.rank!r}"))
        self._record(certificate, "ranking", before, len(report.ranked))

    # -- cluster assignments ---------------------------------------------------------

    def _check_assignment(self, certificate, report):
        if not self._stage_ok(report, "tuple_clustering"):
            self._skip(certificate, "assignment",
                       "tuple clustering degraded; assignment not certified")
            return
        clustering = report.tuple_clustering
        view = getattr(clustering, "view", None)
        limbo = getattr(clustering, "limbo", None)
        if view is None or limbo is None or not limbo.summaries:
            self._skip(certificate, "assignment", "no summaries to audit")
            return
        before = len(certificate.violations)
        summaries = [(dcf.weight, dcf.mass) for dcf in limbo.summaries]
        checked = self._verify_assignment(
            certificate, clustering.assignment, view.rows, view.priors,
            summaries, n_tuples=len(clustering.relation))
        self._record(certificate, "assignment", before, checked,
                     f"re-scored {checked} of {len(clustering.assignment)} "
                     f"tuples against {len(summaries)} summaries")

    def _verify_assignment(self, certificate, assignment, rows, priors,
                           summaries, n_tuples):
        if len(assignment) != n_tuples:
            certificate.violations.append(Violation(
                check="assignment", artifact="assignment",
                detail=f"length {len(assignment)} != {n_tuples} tuples"))
            return 0
        cap = max(4, min(self.row_sample,
                         _MAX_ASSIGN_CELLS // max(1, len(summaries))))
        picked = sample_indices(n_tuples, min(cap, n_tuples), self.seed,
                                "audit.assignment")
        dense = self._dense_summaries(summaries, rows, picked)
        for i in picked:
            i = int(i)
            label = assignment[i]
            if not (0 <= label < len(summaries)):
                certificate.violations.append(Violation(
                    check="assignment", artifact=f"cluster:tuple {i}",
                    detail=f"label {label!r} outside "
                           f"[0, {len(summaries)})"))
                continue
            prior = priors[i]
            if dense is not None:
                costs = self._row_costs(dense, rows[i], prior)
                best_index = int(np.argmin(costs))
                best = float(costs[best_index])
                cost_label = float(costs[label])
            else:
                mass_row = {k: prior * p for k, p in rows[i].items()}
                listed = [merge_cost_bits(weight, mass, prior, mass_row)
                          for weight, mass in summaries]
                best = min(listed)
                best_index = listed.index(best)
                cost_label = listed[label]
            if cost_label > best + _tol(best):
                certificate.violations.append(Violation(
                    check="assignment", artifact=f"cluster:tuple {i}",
                    detail=f"assigned summary {label} costs "
                           f"{cost_label:.9f} bits but summary "
                           f"{best_index} costs only {best:.9f}"))
        return len(picked)

    @staticmethod
    def _dense_summaries(summaries, rows, picked):
        """A dense ``(weights, xlogx(weights), mass_matrix)`` triple.

        Vectorizes the per-row cost scan when the value-id space is small
        enough; ``None`` falls the caller back to the scalar path (same
        arithmetic, one summary at a time).
        """
        max_id = -1
        for _, mass in summaries:
            if mass:
                max_id = max(max_id, max(mass))
        for i in picked:
            row = rows[int(i)]
            if row:
                max_id = max(max_id, max(row))
        n_values = max_id + 1
        if n_values <= 0 or len(summaries) * n_values > _MAX_DENSE_CELLS:
            return None
        weights = np.array([w for w, _ in summaries], dtype=np.float64)
        matrix = np.zeros((len(summaries), n_values), dtype=np.float64)
        for index, (_, mass) in enumerate(summaries):
            if mass:
                keys = np.fromiter(mass.keys(), dtype=np.int64, count=len(mass))
                values = np.fromiter(mass.values(), dtype=np.float64,
                                     count=len(mass))
                matrix[index, keys] = values
        return weights, _xlogx_np(weights), matrix

    @staticmethod
    def _row_costs(dense, row, prior):
        """Merge cost in bits of one tuple against every summary at once."""
        weights, xlogx_weights, matrix = dense
        keys = np.fromiter(row.keys(), dtype=np.int64, count=len(row))
        mass_b = prior * np.fromiter(row.values(), dtype=np.float64,
                                     count=len(row))
        mass_a = matrix[:, keys]
        merged = _xlogx_np(mass_a) + _xlogx_np(mass_b)[None, :] \
            - _xlogx_np(mass_a + mass_b[None, :])
        costs = (_xlogx_np(weights + prior) - xlogx_weights
                 - _xlogx(prior) + merged.sum(axis=1)) / _LN2
        return np.maximum(costs, 0.0)

    # -- dendrogram ------------------------------------------------------------------

    def _check_dendrogram(self, certificate, report):
        if not self._stage_ok(report, "attribute_grouping"):
            self._skip(certificate, "dendrogram",
                       "attribute grouping degraded; dendrogram not "
                       "certified")
            return
        grouping = report.attribute_grouping
        if grouping is None:
            self._skip(certificate, "dendrogram", "no attribute dendrogram")
            return
        before = len(certificate.violations)
        dendrogram = grouping.dendrogram
        checked = self._verify_merges(
            certificate, dendrogram.n_leaves,
            [(m.left, m.right, m.parent, m.loss)
             for m in dendrogram.merges])
        self._record(certificate, "dendrogram", before, checked)

    def _verify_merges(self, certificate, n_leaves, merges):
        used = set()
        previous = 0.0
        for index, (left, right, parent, loss) in enumerate(merges):
            artifact = f"merge:{index}"
            expected_parent = n_leaves + index
            if parent != expected_parent:
                certificate.violations.append(Violation(
                    check="dendrogram", artifact=artifact,
                    detail=f"parent {parent} != expected "
                           f"{expected_parent}"))
            for child in (left, right):
                if not (0 <= child < parent) or child in used:
                    certificate.violations.append(Violation(
                        check="dendrogram", artifact=artifact,
                        detail=f"child {child} invalid or merged twice"))
                used.add(child)
            if loss < -_BITS_TOL:
                certificate.violations.append(Violation(
                    check="dendrogram", artifact=artifact,
                    detail=f"negative merge loss {loss!r}"))
            if loss + _tol(previous) < previous:
                certificate.violations.append(Violation(
                    check="dendrogram", artifact=artifact,
                    detail=f"merge loss {loss!r} dropped below the "
                           f"previous merge's {previous!r} "
                           f"(agglomerative losses must not decrease)"))
            previous = max(previous, loss)
        return len(merges)

    # -- distribution invariants -----------------------------------------------------

    def _check_distributions(self, certificate, report):
        before = len(certificate.violations)
        checked = 0
        for stage, clustering in (
            ("tuple_clustering", report.tuple_clustering),
            ("value_clustering", report.value_clustering),
        ):
            if not self._stage_ok(report, stage):
                continue
            limbo = getattr(clustering, "limbo", None)
            view = getattr(clustering, "view", None)
            if view is not None and getattr(view, "priors", None):
                checked += 1
                total = math.fsum(view.priors)
                if abs(total - 1.0) > _tol(1.0):
                    certificate.violations.append(Violation(
                        check="distributions",
                        artifact=f"{stage}:priors",
                        detail=f"priors sum to {total!r}, not 1"))
            if limbo is None or not limbo.summaries:
                continue
            summaries = limbo.summaries
            picked = sample_indices(
                len(summaries), min(self.summary_sample, len(summaries)),
                self.seed, f"audit.distributions.{stage}")
            for j in picked:
                checked += 1
                self._verify_dcf(certificate, stage, int(j), summaries[int(j)])
        if checked:
            self._record(certificate, "distributions", before, checked)
        else:
            self._skip(certificate, "distributions",
                       "both clusterings degraded; invariants not certified")

    def _verify_dcf(self, certificate, stage, index, dcf):
        artifact = f"{stage}:summary {index}"
        if dcf.weight <= 0.0:
            certificate.violations.append(Violation(
                check="distributions", artifact=artifact,
                detail=f"non-positive cluster prior {dcf.weight!r}"))
            return
        if any(m < 0.0 for m in dcf.mass.values()):
            certificate.violations.append(Violation(
                check="distributions", artifact=artifact,
                detail="negative joint mass"))
            return
        conditional_sum = math.fsum(dcf.mass.values()) / dcf.weight
        if abs(conditional_sum - 1.0) > _tol(1.0):
            certificate.violations.append(Violation(
                check="distributions", artifact=artifact,
                detail=f"conditional sums to {conditional_sum!r}, not 1"))
            return
        entropy = -math.fsum(
            (m / dcf.weight) * math.log2(m / dcf.weight)
            for m in dcf.mass.values() if m > 0.0)
        bound = math.log2(len(dcf.mass)) if dcf.mass else 0.0
        if entropy < -_BITS_TOL or entropy > bound + _tol(bound):
            certificate.violations.append(Violation(
                check="distributions", artifact=artifact,
                detail=f"entropy {entropy!r} bits outside "
                       f"[0, log2({len(dcf.mass)})]"))
            return
        cached = dcf.entropy_bits()
        if abs(cached - entropy) > _tol(entropy):
            certificate.violations.append(Violation(
                check="distributions", artifact=artifact,
                detail=f"cached entropy {cached!r} != re-derived "
                       f"{entropy!r} (stale sufficient statistics)"))

    # -- digest cross-checks ---------------------------------------------------------

    def _check_digests(self, certificate, report, source_relation, store,
                       expected_params):
        if store is None:
            self._skip(certificate, "digests", "no checkpoint store attached")
            return
        from repro.checkpoint.store import relation_fingerprint
        before = len(certificate.violations)
        checked = 0
        manifest_path = store.directory / "manifest.json"
        try:
            manifest = json.loads(manifest_path.read_text("utf-8"))
        except (OSError, ValueError) as error:
            certificate.violations.append(Violation(
                check="digests", artifact="manifest",
                detail=f"unreadable checkpoint manifest: {error}"))
            self._record(certificate, "digests", before, checked)
            return
        reference = source_relation if source_relation is not None \
            else report.relation
        checked += 1
        actual = relation_fingerprint(reference)
        if manifest.get("fingerprint") != actual:
            certificate.violations.append(Violation(
                check="digests", artifact="manifest:fingerprint",
                detail=f"checkpoints keyed on "
                       f"{manifest.get('fingerprint')!r} but the relation "
                       f"hashes to {actual!r}"))
        if expected_params is not None:
            checked += 1
            if manifest.get("params") != expected_params:
                certificate.violations.append(Violation(
                    check="digests", artifact="manifest:params",
                    detail="checkpoint manifest params do not match the "
                           "run's mining parameters"))
        self._record(certificate, "digests", before, checked)


# -- standalone JSON-report auditing ------------------------------------------------


def _fd_from_json(blob) -> FD:
    return FD(frozenset(blob["lhs"]), frozenset(blob["rhs"]))


def audit_json_report(blob: dict, relation, seed: int = 0,
                      row_sample: int = 32) -> AuditCertificate:
    """Audit a serialized report (``DiscoveryReport.to_json``) against data.

    This is the ``repro audit <report> <data>`` path: given the report JSON
    and the original relation, re-verify every claim that can be re-derived
    without the live Python objects.  A report whose artifacts were
    tampered with (a flipped FD, a mislabeled cluster, a doctored merge
    loss) comes back with a violation naming the artifact.
    """
    from repro.checkpoint.store import relation_fingerprint
    from repro.relation.matrices import build_tuple_view

    certificate = AuditCertificate(seed=seed)
    auditor = Auditor(seed=seed, row_sample=row_sample)
    artifacts = blob.get("artifacts")
    if not isinstance(artifacts, dict):
        certificate.violations.append(Violation(
            check="report", artifact="report",
            detail="report JSON carries no 'artifacts' section "
                   "(produced without --out-json?)"))
        return certificate

    if not artifacts.get("healthy", blob.get("healthy", False)):
        auditor._skip(certificate, "report",
                      "report is flagged degraded; degraded artifacts are "
                      "not re-certified")
        return certificate

    # The data must be the data the report was mined from.
    stated = artifacts.get("fingerprint")
    actual = relation_fingerprint(relation)
    if stated != actual:
        certificate.violations.append(Violation(
            check="digests", artifact="relation:fingerprint",
            detail=f"report was mined from {stated!r} but the supplied "
                   f"data hashes to {actual!r}"))
        return certificate
    certificate.checks.append(CheckResult(
        name="digests", status="pass", checked=1,
        detail="relation fingerprint matches"))

    # Dependencies.
    before = len(certificate.violations)
    checked = 0
    for entry in artifacts.get("cover", []):
        checked += 1
        fd = _fd_from_json(entry)
        if not holds_coded(relation, fd):
            certificate.violations.append(Violation(
                check="dependencies", artifact=f"cover:{fd}",
                detail="claimed exact dependency does not hold on the "
                       "instance"))
    for entry in artifacts.get("dependencies", []):
        checked += 1
        fd = _fd_from_json(entry)
        if entry.get("kind") == "reliable":
            reliable = ReliableFD(
                fd=fd, score=entry["score"],
                information=entry["information"],
                sampled=entry.get("sampled", False),
                confidence_radius=entry.get("confidence_radius", 0.0))
            auditor._verify_reliable(certificate, relation, reliable, "mined")
        elif not holds_coded(relation, fd):
            certificate.violations.append(Violation(
                check="dependencies", artifact=f"mined:{fd}",
                detail="claimed exact dependency does not hold on the "
                       "instance"))
    auditor._record(certificate, "dependencies", before, checked)

    # Cluster assignment, re-scored against the serialized summaries over a
    # tuple view rebuilt from the data (deterministic given scope).
    assignment = artifacts.get("assignment")
    summaries_blob = artifacts.get("summaries")
    if assignment and summaries_blob:
        before = len(certificate.violations)
        view = build_tuple_view(
            relation, value_scope=artifacts.get("value_scope", "global"))
        summaries = [
            (entry["weight"],
             {int(column): mass for column, mass in entry["mass"].items()})
            for entry in summaries_blob
        ]
        checked = auditor._verify_assignment(
            certificate, assignment, view.rows, view.priors, summaries,
            n_tuples=len(relation))
        auditor._record(certificate, "assignment", before, checked)
    else:
        auditor._skip(certificate, "assignment",
                      "report carries no assignment/summaries")

    # Dendrogram.
    merges = artifacts.get("merges")
    if merges is not None:
        before = len(certificate.violations)
        checked = auditor._verify_merges(
            certificate, artifacts.get("n_leaves", 0),
            [(m["left"], m["right"], m["parent"], m["loss"])
             for m in merges])
        auditor._record(certificate, "dendrogram", before, checked)
    else:
        auditor._skip(certificate, "dendrogram",
                      "report carries no dendrogram")
    return certificate
