"""Independent result auditing and chaos drills.

The discovery pipeline survives faults by degrading and flagging; this
package closes the remaining trust gap by *re-deriving* every artifact a
report claims through cheap paths that share no code with the miners:

- exact FDs re-checked by partition refinement over coded columns,
- reliable/approximate FDs re-scored against an independently computed
  fraction of information (one-sided within the stated confidence radius
  for sampled entries),
- cluster assignments re-scored against the DCF summaries with a from-
  scratch merge-cost implementation,
- dendrogram structure and merge-loss monotonicity,
- distribution normalization / entropy-range invariants, and
- checkpoint / model-cache digest cross-checks.

:mod:`repro.audit.chaos` then drives the whole resilience stack through
the fault matrix (every ``FAULT_POINTS`` entry x injection mode) and
asserts the global robustness contract, with every surviving report also
passing the :class:`Auditor`.
"""

from repro.audit.auditor import (
    AUDIT_VERSION,
    AuditCertificate,
    Auditor,
    CheckResult,
    Violation,
    audit_json_report,
)
from repro.audit.chaos import (
    CHAOS_MODES,
    ChaosCell,
    ChaosContractViolation,
    campaign_cells,
    drill_registry,
    run_campaign,
    run_cell,
)

__all__ = [
    "AUDIT_VERSION",
    "AuditCertificate",
    "Auditor",
    "CHAOS_MODES",
    "ChaosCell",
    "ChaosContractViolation",
    "CheckResult",
    "Violation",
    "audit_json_report",
    "campaign_cells",
    "drill_registry",
    "run_campaign",
    "run_cell",
]
