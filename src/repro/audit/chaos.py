"""Deterministic chaos campaign over the whole fault registry.

Every entry of :data:`repro.testing.faults.FAULT_POINTS` gets a *drill*: a
recipe that builds a workload which actually reaches the point, injects the
fault in one of the :data:`CHAOS_MODES`, and asserts the global robustness
contract:

1. every failure surfaces as a *classified* error (a
   :class:`repro.errors.ReproError` subclass with a stable CLI exit code,
   or a clean HTTP error status) -- never an unclassified traceback;
2. degraded output is always flagged (a report whose artifacts differ from
   the clean baseline must not claim ``healthy``);
3. checkpoints are never poisoned (a clean resumed run over the faulted
   cell's store reproduces the baseline artifacts bit-identically);
4. every surviving report also passes the independent
   :class:`repro.audit.Auditor`.

The registry is checked against ``FAULT_POINTS`` programmatically
(:func:`drill_registry` raises if a point has no drill), so a new fault
point cannot silently escape the campaign.  Cell ordering and subset
selection are pure functions of the seed (:mod:`repro.seeding`), making the
CI subset reproducible.
"""

from __future__ import annotations

import functools
import json
import multiprocessing
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import InputError, ReproError
from repro.parallel import WorkerMemoryExceeded
from repro.seeding import derive_rng
from repro.testing.faults import FAULT_POINTS, inject

#: The three injection modes of the fault matrix.  ``raise`` fires the
#: drill's exception on every hit, ``corrupt`` rewrites the value flowing
#: through the point, ``once`` fires a single time and lets the run
#: recover (pipeline drills add a checkpointed clean re-run to prove the
#: store was not poisoned).
CHAOS_MODES = ("raise", "corrupt", "once")

_CHAOS_ERROR = RuntimeError  # default injected failure type

#: Forged RSS reading: far above any test cap, triggers the memory ladder.
_FORGED_RSS = 1 << 44


class ChaosContractViolation(AssertionError):
    """A cell broke the global robustness contract."""

    def __init__(self, point: str, mode: str, reason: str):
        super().__init__(f"[{point} x {mode}] {reason}")
        self.point = point
        self.mode = mode
        self.reason = reason


# -- corrupt / child-setup helpers (module-level: spawn-safe) -----------------------


def _rot_bytes(raw: bytes) -> bytes:
    """Flip a byte in the middle of a serialized blob (storage rot)."""
    data = bytearray(raw)
    if data:
        data[len(data) // 2] ^= 0xFF
    return bytes(data)


def _garbage_row(row):
    """Widen a CSV row: the arity-mismatch corruption ingest must police."""
    return list(row) + ["chaos-extra-cell"]


def _forge_rss(rss: int) -> int:
    return _FORGED_RSS


def _frozen_heartbeat(status):
    from repro.checkpoint import HeartbeatStatus

    return HeartbeatStatus(state="ok", age_seconds=99.0, mtime_ns=1,
                           payload={"stage": "mining", "units_used": 0,
                                    "wall_time": 0.0, "pid": -1})


def _observe(value):
    return value


def _sigkill_self(value):
    import signal

    os.kill(os.getpid(), signal.SIGKILL)


def _arm_kill_bomb(kill_attempts, attempt):
    """SIGKILL the supervised child at the top of mining on listed attempts."""
    if attempt in kill_attempts:
        ctx = inject("discovery.mining", corrupt=_sigkill_self)
        ctx.__enter__()
        _ARMED.append(ctx)


def _arm_mining_stall(stall_attempts, attempt):
    """Stall mining far past the drill's hang timeout on listed attempts."""
    if attempt in stall_attempts:
        ctx = inject("discovery.mining", delay=60.0)
        ctx.__enter__()
        _ARMED.append(ctx)


#: Entered in-child inject contexts (a collected context disarms itself).
_ARMED = []


# -- the drill registry -------------------------------------------------------------


@dataclass(frozen=True)
class Drill:
    """How to reach one fault point and which injections apply to it."""

    point: str
    runner: str  # "pipeline" | "ingest" | "supervised" | "service"
    modes: tuple
    discovery: tuple = ()  # extra StructureDiscovery kwargs, as item pairs
    raises: type = _CHAOS_ERROR
    corrupt: object = None
    checkpointed: bool = False  # give the faulted run a store + prove resume
    preseed: bool = False  # populate the store with a clean run first
    n_tuples: int = 0  # 0 = the campaign's default workload size
    notes: str = ""

    def discovery_kwargs(self) -> dict:
        return dict(self.discovery)


def _pipeline(point, modes=("raise", "once"), discovery=(), **kw):
    return Drill(point=point, runner="pipeline", modes=modes,
                 discovery=tuple(discovery), **kw)


_DRILLS = (
    _pipeline("discovery.tuple_clustering"),
    _pipeline("discovery.value_clustering"),
    _pipeline("discovery.attribute_grouping"),
    _pipeline("discovery.mining"),
    _pipeline("discovery.cover"),
    _pipeline("discovery.rank"),
    Drill(point="io.read_csv.row", runner="ingest",
          modes=("raise", "corrupt", "once"), raises=InputError,
          corrupt=_garbage_row,
          notes="strict load surfaces InputError (exit 2); coerce repairs "
                "and flags"),
    _pipeline("fd.fdep.pairs", discovery=(("miner", "fdep"),)),
    _pipeline("fd.tane.level", discovery=(("miner", "tane"),)),
    _pipeline("fd.reliable.node",
              discovery=(("fd_mode", "topk"), ("fd_k", 5))),
    _pipeline("limbo.fit"),
    _pipeline("limbo.assign"),
    _pipeline("memory.sample", modes=("corrupt", "once"),
              discovery=(("memory_limit", 256 << 20),),
              corrupt=_forge_rss,
              notes="forged RSS breach climbs the memory ladder"),
    _pipeline("limbo.buffer_overflow", modes=("raise",),
              discovery=(("max_leaf_entries", 4),),
              notes="space-bounded Phase 1 overflow path"),
    # Shard dispatch only engages past the minimum-shard threshold, so the
    # parallel drills run a wider workload than the rest of the matrix.
    _pipeline("parallel.worker", discovery=(("workers", 2),), n_tuples=200),
    _pipeline("parallel.worker_oom", discovery=(("workers", 2),),
              raises=WorkerMemoryExceeded, n_tuples=200),
    _pipeline("checkpoint.save", modes=("raise", "corrupt", "once"),
              corrupt=_rot_bytes, checkpointed=True,
              notes="rotted/failed saves must never poison a resume"),
    _pipeline("checkpoint.load", modes=("raise", "corrupt", "once"),
              corrupt=_rot_bytes, checkpointed=True, preseed=True,
              notes="rotted snapshots are quarantined and recomputed"),
    # Supervised drills pin workers=1 so the clean baseline and the
    # supervised children run the exact same (sharded) code path.
    Drill(point="supervisor.spawn", runner="supervised",
          modes=("raise", "once"), raises=OSError,
          discovery=(("workers", 1),),
          notes="unlimited spawn failure gives up classified; one failure "
                "is retried to the identical report"),
    Drill(point="supervisor.heartbeat", runner="supervised",
          modes=("corrupt",), corrupt=_frozen_heartbeat,
          discovery=(("workers", 1),),
          notes="frozen heartbeat + stalled child: reaped as a hang, "
                "resumed bit-identically, traceback journaled"),
    Drill(point="supervisor.escalate", runner="supervised",
          modes=("corrupt",), corrupt=_observe,
          discovery=(("workers", 1),),
          notes="kill-bomb makes mining a poison stage; escalation "
                "decisions flow through the point"),
    Drill(point="service.accept", runner="service", modes=("once",),
          notes="accept fault costs exactly one connection"),
    Drill(point="service.handler", runner="service", modes=("raise", "once"),
          notes="handler crashes are single clean 500s"),
    Drill(point="service.cache_load", runner="service", modes=("corrupt",),
          corrupt=_rot_bytes,
          notes="rotted cached model is quarantined and recomputed to "
                "identical answers"),
    Drill(point="service.drain", runner="service", modes=("raise",),
          notes="drain-hook failure still exits 0"),
)


def drill_registry() -> dict:
    """``{fault point: Drill}``, verified complete against the registry."""
    registry = {drill.point: drill for drill in _DRILLS}
    missing = FAULT_POINTS - set(registry)
    unknown = set(registry) - FAULT_POINTS
    if missing or unknown:
        raise AssertionError(
            f"chaos drills out of sync with FAULT_POINTS: "
            f"missing={sorted(missing)} unknown={sorted(unknown)}")
    for point, drill in registry.items():
        bad = set(drill.modes) - set(CHAOS_MODES)
        if bad or not drill.modes:
            raise AssertionError(f"drill {point}: invalid modes {bad}")
        if "corrupt" in drill.modes and drill.corrupt is None:
            raise AssertionError(f"drill {point}: corrupt mode without a "
                                 f"corrupt function")
    return registry


def campaign_cells(points=None, modes=None, sample=None, seed=0) -> list:
    """The (point, mode) cells to run, deterministically ordered.

    ``sample`` keeps a seeded subset of that size (the per-PR CI slice);
    the full matrix runs when it is ``None``.  Selection is a pure
    function of ``seed``.
    """
    registry = drill_registry()
    cells = [(point, mode)
             for point in sorted(registry)
             for mode in registry[point].modes
             if modes is None or mode in modes]
    if points is not None:
        wanted = set(points)
        cells = [cell for cell in cells if cell[0] in wanted]
    if sample is not None and sample < len(cells):
        rng = derive_rng(seed, "chaos.subset")
        picked = sorted(rng.choice(len(cells), size=sample, replace=False))
        cells = [cells[i] for i in picked]
    return cells


# -- cell results -------------------------------------------------------------------


@dataclass
class ChaosCell:
    """Outcome of one (point, mode) drill cell."""

    point: str
    mode: str
    runner: str
    status: str = "ok"  # "ok" | "skipped"
    detail: str = ""
    fired: int = 0
    flagged: bool | None = None  # report marked unhealthy
    identical: bool | None = None  # artifacts bit-identical to baseline
    classified: str | None = None  # error class when the run failed
    audited: bool | None = None  # surviving report passed the Auditor

    def render(self) -> str:
        bits = [f"{self.point:<28} {self.mode:<8} {self.status:<8}"]
        if self.classified:
            bits.append(f"error={self.classified}")
        if self.identical is not None:
            bits.append("identical" if self.identical else "diverged")
        if self.flagged:
            bits.append("flagged-degraded")
        if self.audited is not None:
            bits.append("audit=ok" if self.audited else "audit=FAIL")
        if self.detail:
            bits.append(f"({self.detail})")
        return "  ".join(bits)


# -- the campaign runner ------------------------------------------------------------


def chaos_relation(n: int = 36):
    """The deterministic workload: real FDs, duplicates, >1 cluster."""
    from repro.relation import Relation

    rows = []
    for index in range(n):
        group = index % 4
        rows.append((f"e{index}", f"d{group}", f"loc{group}", f"m{group}",
                     f"p{index % 2}"))
    return Relation(["emp", "dept", "loc", "mgr", "proj"], rows)


class ChaosCampaign:
    """Runs drill cells against shared clean baselines.

    One instance owns a scratch directory (checkpoint stores, CSV files,
    service state) and a cache of clean baseline artifacts per discovery
    configuration, so N cells over the same config pay for one baseline.
    """

    def __init__(self, base_dir=None, seed: int = 0, n_tuples: int = 36):
        self._owns_dir = base_dir is None
        self.base_dir = Path(base_dir or tempfile.mkdtemp(prefix="chaos-"))
        self.base_dir.mkdir(parents=True, exist_ok=True)
        self.seed = int(seed)
        self.n_tuples = int(n_tuples)
        self.relation = chaos_relation(n_tuples)
        self._relations: dict = {self.n_tuples: self.relation}
        self._baselines: dict = {}
        self._cells_run = 0

    def close(self):
        if self._owns_dir:
            shutil.rmtree(self.base_dir, ignore_errors=True)

    # -- shared plumbing -------------------------------------------------------------

    def _discovery(self, drill, checkpoint=None):
        from repro.core.discovery import StructureDiscovery

        kwargs = drill.discovery_kwargs()
        if checkpoint is not None:
            kwargs["checkpoint"] = checkpoint
        return StructureDiscovery(seed=self.seed, **kwargs)

    @staticmethod
    def artifact_digest(report) -> str:
        """The report's artifacts, minus health narration.

        Recovered-but-renarrated runs (e.g. a retried worker dispatch) are
        *allowed* to differ in their health lines; the contract bites when
        the artifacts themselves diverge without a degraded flag.
        """
        blob = report.to_json(top=10)
        blob.pop("verification", None)
        blob.pop("stages", None)
        blob.pop("healthy", None)
        blob["artifacts"].pop("healthy", None)
        return json.dumps(blob, sort_keys=True)

    def relation_for(self, drill):
        size = drill.n_tuples or self.n_tuples
        if size not in self._relations:
            self._relations[size] = chaos_relation(size)
        return self._relations[size]

    def baseline_digest(self, drill) -> str:
        key = ("pipeline", drill.discovery, drill.n_tuples)
        if key not in self._baselines:
            report = self._discovery(drill).run(self.relation_for(drill))
            if not report.healthy:
                raise AssertionError(
                    f"clean baseline for {drill.point} is degraded: "
                    f"{report.health()}")
            self._baselines[key] = self.artifact_digest(report)
        return self._baselines[key]

    def _workdir(self, point, mode) -> Path:
        self._cells_run += 1
        path = self.base_dir / f"{self._cells_run:03d}-{point}-{mode}" \
            .replace("/", "_")
        path.mkdir(parents=True, exist_ok=True)
        return path

    def _audit(self, report, cell):
        from repro.audit.auditor import Auditor

        certificate = Auditor(seed=self.seed).audit(report)
        cell.audited = certificate.ok
        if not certificate.ok:
            raise ChaosContractViolation(
                cell.point, cell.mode,
                f"surviving report failed the audit: "
                f"{certificate.violations[0]}")

    def _injection(self, drill, mode):
        if mode == "raise":
            return {"raises": drill.raises("chaos-injected")}
        if mode == "corrupt":
            return {"corrupt": drill.corrupt}
        # "once": the drill's primary action, a single firing.
        if drill.corrupt is not None and "raise" not in drill.modes:
            return {"corrupt": drill.corrupt, "limit": 1}
        return {"raises": drill.raises("chaos-injected"), "limit": 1}

    # -- cell dispatch ---------------------------------------------------------------

    def run_cell(self, point: str, mode: str) -> ChaosCell:
        drill = drill_registry()[point]
        if mode not in drill.modes:
            raise ValueError(f"{point} does not drill mode {mode!r}")
        cell = ChaosCell(point=point, mode=mode, runner=drill.runner)
        workdir = self._workdir(point, mode)
        runner = getattr(self, f"_run_{drill.runner}")
        runner(drill, mode, workdir, cell)
        return cell

    def run(self, points=None, modes=None, sample=None) -> list:
        return [self.run_cell(point, mode)
                for point, mode in campaign_cells(
                    points=points, modes=modes, sample=sample,
                    seed=self.seed)]

    # -- pipeline cells --------------------------------------------------------------

    def _run_pipeline(self, drill, mode, workdir, cell):
        from repro.checkpoint import CheckpointStore

        relation = self.relation_for(drill)
        baseline = self.baseline_digest(drill)
        use_store = drill.checkpointed or mode == "once"
        store_dir = workdir / "ckpt"
        if drill.preseed:
            self._discovery(drill, checkpoint=CheckpointStore(store_dir)) \
                .run(relation)
        store = CheckpointStore(store_dir, resume=drill.preseed) \
            if use_store else None

        report = None
        error = None
        with inject(drill.point, **self._injection(drill, mode)) as fault:
            try:
                report = self._discovery(drill, checkpoint=store) \
                    .run(relation)
            except Exception as caught:  # noqa: BLE001 - classified below
                error = caught
        cell.fired = fault.fired
        if fault.fired == 0:
            raise ChaosContractViolation(
                drill.point, mode, "fault point was never reached")

        if error is not None:
            self._require_classified(cell, error)
        else:
            cell.flagged = not report.healthy
            cell.identical = self.artifact_digest(report) == baseline
            if not cell.identical and not cell.flagged:
                raise ChaosContractViolation(
                    drill.point, mode,
                    "artifacts diverged from the clean baseline without a "
                    "degraded flag")
            report.render()  # degraded reports must still render
            self._audit(report, cell)

        if use_store:
            # Contract 3: whatever the faulted run left behind, a clean
            # resumed run over the same store reproduces the baseline.
            resumed = self._discovery(
                drill, checkpoint=CheckpointStore(store_dir, resume=True),
            ).run(relation)
            if self.artifact_digest(resumed) != baseline:
                raise ChaosContractViolation(
                    drill.point, mode,
                    "clean resume over the faulted store diverged: "
                    "checkpoints were poisoned")
            cell.detail = (cell.detail + "; " if cell.detail else "") + \
                "clean resume matched baseline"

    def _require_classified(self, cell, error):
        if isinstance(error, ReproError):
            cell.classified = type(error).__name__
        elif isinstance(error, KeyboardInterrupt):
            cell.classified = "KeyboardInterrupt"
        else:
            raise ChaosContractViolation(
                cell.point, cell.mode,
                f"unclassified {type(error).__name__}: {error}")

    # -- ingest cells ----------------------------------------------------------------

    def _run_ingest(self, drill, mode, workdir, cell):
        from repro.relation import load_csv, write_csv

        path = workdir / "data.csv"
        write_csv(self.relation, path)
        clean, _ = load_csv(path)

        if mode == "raise":
            with inject(drill.point, raises=InputError("chaos: row rot"),
                        after=1) as fault:
                try:
                    load_csv(path)
                except InputError as error:
                    cell.classified = type(error).__name__
                else:
                    raise ChaosContractViolation(
                        drill.point, mode,
                        "strict ingest swallowed an injected row error")
            cell.fired = fault.fired
            return

        limit = 1 if mode == "once" else None
        with inject(drill.point, corrupt=drill.corrupt, after=1,
                    limit=limit) as fault:
            try:
                load_csv(path)  # strict: must refuse
            except InputError as error:
                cell.classified = type(error).__name__
            else:
                raise ChaosContractViolation(
                    drill.point, mode,
                    "strict ingest accepted a corrupted row")
        cell.fired = fault.fired

        with inject(drill.point, corrupt=drill.corrupt, after=1,
                    limit=limit):
            repaired, ingest = load_csv(path, on_error="coerce")
        if ingest.clean:
            raise ChaosContractViolation(
                drill.point, mode, "coerced repair was not flagged")
        cell.flagged = True
        cell.identical = repaired.coded.content_digest() == \
            clean.coded.content_digest()
        cell.detail = (f"strict={cell.classified}, coerce repaired "
                       f"{ingest.rows_loaded} rows")

    # -- supervised cells ------------------------------------------------------------

    def _run_supervised(self, drill, mode, workdir, cell):
        if "fork" not in multiprocessing.get_all_start_methods():
            cell.status = "skipped"
            cell.detail = "fork start method unavailable"
            return
        from repro.checkpoint import CheckpointStore
        from repro.core.discovery import StructureDiscovery
        from repro.errors import SupervisorError
        from repro.supervisor import SupervisorConfig

        baseline = self.baseline_digest(drill)
        ckpt_dir = workdir / "ckpt"

        def supervised(config):
            return StructureDiscovery(
                seed=self.seed,
                checkpoint=CheckpointStore(ckpt_dir),
                supervise=config, **drill.discovery_kwargs(),
            )

        if drill.point == "supervisor.spawn":
            config = SupervisorConfig(
                max_restarts=0 if mode == "raise" else 2,
                backoff_base=0, jitter=0)
            injection = self._injection(drill, mode)
            with inject(drill.point, **injection) as fault:
                try:
                    report = supervised(config).run(self.relation)
                except SupervisorError as error:
                    cell.fired = fault.fired
                    cell.classified = type(error).__name__
                    if mode != "raise":
                        raise ChaosContractViolation(
                            drill.point, mode,
                            "single spawn failure was not retried")
                    self._check_incident(ckpt_dir, cell, "gave-up")
                    return
            cell.fired = fault.fired
            cell.flagged = not report.healthy
            cell.identical = self.artifact_digest(report) == baseline
            if not cell.identical:
                raise ChaosContractViolation(
                    drill.point, mode,
                    "retried spawn diverged from the baseline")
            self._audit(report, cell)
            self._check_incident(ckpt_dir, cell, "completed")
            return

        if drill.point == "supervisor.heartbeat":
            config = SupervisorConfig(
                max_restarts=2, hang_timeout=0.75, backoff_base=0, jitter=0,
                child_setup=functools.partial(_arm_mining_stall, {1}))
            with inject(drill.point, corrupt=drill.corrupt) as fault:
                report = supervised(config).run(self.relation)
            cell.fired = fault.fired
            cell.identical = self.artifact_digest(report) == baseline
            cell.flagged = not report.healthy
            if not cell.identical:
                raise ChaosContractViolation(
                    drill.point, mode,
                    "hang-resumed report diverged from the baseline")
            self._audit(report, cell)
            incident = self._check_incident(ckpt_dir, cell, "completed")
            first = incident["attempts"][0]
            if first.get("failure_class") != "hang":
                raise ChaosContractViolation(
                    drill.point, mode,
                    f"expected a journaled hang, got "
                    f"{first.get('failure_class')!r}")
            if first.get("hang_traceback"):
                cell.detail = "hang traceback journaled"
            return

        # supervisor.escalate: SIGKILL mining twice; the poison-stage
        # escalation (observed through the fault point) must still land the
        # identical report via the identity-preserving ladder rung.
        config = SupervisorConfig(
            max_restarts=5, backoff_base=0, jitter=0,
            child_setup=functools.partial(_arm_kill_bomb, {1, 2}))
        with inject(drill.point, corrupt=drill.corrupt) as fault:
            report = supervised(config).run(self.relation)
        cell.fired = fault.fired
        if fault.fired == 0:
            raise ChaosContractViolation(
                drill.point, mode, "no escalation decision was taken")
        cell.identical = self.artifact_digest(report) == baseline
        cell.flagged = not report.healthy
        if not cell.identical and not cell.flagged:
            raise ChaosContractViolation(
                drill.point, mode,
                "escalated report diverged without a degraded flag")
        self._audit(report, cell)
        self._check_incident(ckpt_dir, cell, "completed")

    def _check_incident(self, ckpt_dir, cell, outcome):
        incident_path = Path(ckpt_dir) / "incident.json"
        if not incident_path.exists():
            raise ChaosContractViolation(
                cell.point, cell.mode, "no incident.json was journaled")
        incident = json.loads(incident_path.read_text("utf-8"))
        if incident.get("outcome") != outcome:
            raise ChaosContractViolation(
                cell.point, cell.mode,
                f"incident outcome {incident.get('outcome')!r} != "
                f"{outcome!r}")
        return incident

    # -- service cells ---------------------------------------------------------------

    def _run_service(self, drill, mode, workdir, cell):
        from repro.errors import ServiceError

        handle = _ServiceHandle(workdir / "svc", seed=self.seed)
        try:
            handle.start()
            client = handle.client()
            client.create_relation("chaos", list(self.relation.attributes))
            client.append_rows(
                "chaos", [list(row) for row in self.relation.rows], seq=1)
            baseline_model = client.build_model("chaos")

            if drill.point == "service.drain":
                with inject(drill.point,
                            raises=drill.raises("chaos-injected")) as fault:
                    exit_code = handle.drain()
                cell.fired = fault.fired
                if exit_code != 0:
                    raise ChaosContractViolation(
                        drill.point, mode,
                        f"drain under fault exited {exit_code}, not 0")
                cell.classified = "clean-exit-0"
                return

            if drill.point == "service.accept":
                # An accept/parse-path fault costs exactly that one
                # connection -- mapped to a clean 500, never the daemon.
                with inject(drill.point,
                            raises=drill.raises("chaos-injected"),
                            limit=1) as fault:
                    status, _, _ = client.request_once("GET", "/stats")
                    if status != 500:
                        raise ChaosContractViolation(
                            drill.point, mode,
                            f"faulted connection answered {status}, not a "
                            f"clean 500")
                cell.fired = fault.fired
                cell.classified = "http-500"
                stats = client.call("GET", "/stats")
                if not isinstance(stats, dict) or "requests" not in stats:
                    raise ChaosContractViolation(
                        drill.point, mode,
                        "daemon did not answer after the faulted connection")
                self._verify_service(client, cell, baseline_model)
                return

            if drill.point == "service.handler":
                limit = 1 if mode == "once" else None
                with inject(drill.point,
                            raises=drill.raises("chaos-injected"),
                            limit=limit) as fault:
                    status, _, payload = client.request_once("GET", "/stats")
                    if status != 500:
                        raise ChaosContractViolation(
                            drill.point, mode,
                            f"faulted request answered {status}, not a "
                            f"clean 500")
                    if mode == "raise":
                        # Unlimited: every request fails classified, none
                        # hangs, the daemon itself stays alive.
                        try:
                            client.stats()
                        except ServiceError:
                            pass
                        else:
                            raise ChaosContractViolation(
                                drill.point, mode,
                                "unlimited handler fault produced a "
                                "success")
                cell.fired = fault.fired
                cell.classified = "http-500"
                if client.health().get("status") != "ok":
                    raise ChaosContractViolation(
                        drill.point, mode,
                        "daemon did not recover after the fault window")
                self._verify_service(client, cell, baseline_model)
                return

            # service.cache_load: rot the durable model snapshot, restart,
            # and require quarantine + recompute to identical answers.
            before = client.top_fds("chaos", k=5)
            handle.drain()
            handle = _ServiceHandle(workdir / "svc", seed=self.seed)
            with inject(drill.point, corrupt=drill.corrupt) as fault:
                handle.start()
                client = handle.client()
                client.wait_ready(10.0)
                after = client.top_fds("chaos", k=5)
            cell.fired = fault.fired
            cell.identical = after == before
            if not cell.identical:
                raise ChaosContractViolation(
                    drill.point, mode,
                    "rehydrated answers diverged after cache rot")
            self._verify_service(client, cell, baseline_model)
        finally:
            handle.stop()

    def _verify_service(self, client, cell, baseline_model):
        verdict = client.call("GET", "/relations/chaos/verify")
        if not verdict.get("ok"):
            raise ChaosContractViolation(
                cell.point, cell.mode,
                f"served model failed the audit: "
                f"{verdict.get('violations')}")
        if verdict.get("model_key") != baseline_model["model_key"]:
            raise ChaosContractViolation(
                cell.point, cell.mode,
                "served model key drifted across the fault")
        cell.audited = True


class _ServiceHandle:
    """A real daemon on its own event loop in a background thread."""

    def __init__(self, store_dir, seed=0):
        import threading

        from repro.checkpoint import CheckpointStore
        from repro.service import Daemon, DiscoveryApp

        self.store = CheckpointStore(store_dir)
        self.store.acquire_lock()
        self.daemon = Daemon(
            DiscoveryApp(self.store, params={"fd_k": 5, "seed": seed}),
            port=0)
        self.loop = None
        self.exit_code = None
        self.started = threading.Event()
        self.thread = threading.Thread(target=self._serve, daemon=True)

    def _serve(self):
        import asyncio

        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)

        async def main():
            await self.daemon.start()
            self.started.set()
            return await self.daemon.serve_forever()

        try:
            self.exit_code = self.loop.run_until_complete(main())
        finally:
            self.started.set()
            self.loop.close()

    def start(self):
        self.thread.start()
        if not self.started.wait(30.0) or not self.daemon.port:
            raise AssertionError("chaos service daemon did not start")
        return self

    def client(self, **kwargs):
        from repro.service import ServiceClient

        return ServiceClient(port=self.daemon.port, **kwargs)

    def drain(self, timeout=30.0):
        import asyncio

        future = asyncio.run_coroutine_threadsafe(
            self.daemon.drain(reason="chaos"), self.loop)
        future.result(timeout)
        self.thread.join(timeout)
        self.store.release_lock()
        return self.exit_code

    def stop(self):
        if self.thread.is_alive():
            try:
                self.drain()
            except Exception:
                pass
        else:
            self.store.release_lock()


# -- module-level conveniences ------------------------------------------------------


def run_cell(point: str, mode: str, base_dir=None, seed: int = 0) -> ChaosCell:
    """Run one drill cell in a scratch directory."""
    campaign = ChaosCampaign(base_dir=base_dir, seed=seed)
    try:
        return campaign.run_cell(point, mode)
    finally:
        campaign.close()


def run_campaign(points=None, modes=None, sample=None, seed: int = 0,
                 base_dir=None) -> list:
    """Run the (optionally sampled) fault matrix; returns the cells."""
    campaign = ChaosCampaign(base_dir=base_dir, seed=seed)
    try:
        return campaign.run(points=points, modes=modes, sample=sample)
    finally:
        campaign.close()
