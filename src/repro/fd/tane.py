"""TANE: level-wise functional-dependency discovery over stripped partitions.

Huhtala et al. (cited as [15] in the paper).  Walks the attribute-set lattice
level by level; candidate-RHS sets ``C+`` prune the search, and validity of
``X \\ {A} -> A`` is decided by comparing partition errors.  Scales with the
number of tuples far better than pairwise FDEP, at the cost of being
exponential in the number of attributes -- the right trade for the paper's
DBLP clusters (many tuples, 7 attributes).

This implementation mines exact minimal dependencies (the approximate
``g3``-thresholded variant lives in :mod:`repro.fd.verify`).
"""

from __future__ import annotations

from itertools import combinations

from repro.budget import checkpoint
from repro.fd.dependency import FD
from repro.fd.partitions import Partition, partition_of, product
from repro.testing.faults import fault_point


#: Minimum missing next-level candidates before their partitions fan out.
_PARALLEL_MIN_CANDIDATES = 8

#: Candidates per parallel partition chunk.
_CANDIDATE_CHUNK = 16


def _partition_bytes(part: Partition) -> int:
    """Deterministic byte estimate of one stripped partition's footprint."""
    return 96 + 64 * len(part.classes) + 8 * sum(len(c) for c in part.classes)


def tane(
    relation,
    max_lhs_size: int | None = None,
    allow_empty_lhs: bool = False,
    budget=None,
    executor=None,
    stats: dict | None = None,
) -> list[FD]:
    """Mine all minimal functional dependencies ``X -> A`` of the instance.

    Parameters
    ----------
    relation:
        The instance (NULL = NULL semantics).
    max_lhs_size:
        Optional cap on LHS size (level cutoff); ``None`` explores the full
        lattice.
    allow_empty_lhs:
        As in :func:`repro.fd.fdep`: constant attributes yield ``{} -> A``
        when ``True``; by default the empty LHS is promoted to every
        singleton, matching the form the paper reports.
    budget:
        Optional :class:`repro.budget.Budget`; partition construction and
        each lattice level checkpoint against it cooperatively and raise
        :class:`repro.errors.ResourceLimitExceeded` when it runs out.
    executor:
        Optional :class:`repro.parallel.ShardedExecutor`; each level's
        missing candidate partitions are computed in chunks by worker
        processes (directly from the relation -- partitions are canonical,
        so the result equals the incremental ``product`` of the sequential
        path).  The mined dependency set is identical with or without it.
    stats:
        Optional dict filled with work counters; ``partitions_computed``
        counts every stored lattice partition -- the unit
        :class:`repro.fd.reliable.ReliableMiningStats` also counts, so the
        benchmark can compare the two miners' lattice work directly.
    """
    names = tuple(relation.schema.names)
    n = len(relation)
    if n == 0:
        return []
    all_attrs = frozenset(names)
    governor = getattr(budget, "memory", None)

    partitions: dict[frozenset, Partition] = {}
    booked: dict[frozenset, int] = {}

    def store(key: frozenset, part: Partition) -> None:
        """Keep a partition, booking its footprint with the governor."""
        if governor is not None:
            n_bytes = _partition_bytes(part)
            governor.reserve(n_bytes, where="tane.partition")
            booked[key] = n_bytes
        if stats is not None:
            stats["partitions_computed"] = (
                stats.get("partitions_computed", 0) + 1)
        partitions[key] = part

    def free_below(cutoff: int) -> None:
        """Drop every partition with fewer than ``cutoff`` attributes.

        Validity at level ``l`` compares partition errors of sizes
        ``l - 1`` and ``l`` only, and next-level products consume sizes
        ``l`` only -- once level ``l + 1`` partitions exist, everything
        below level ``l`` is dead weight.  This bounds TANE's partition
        store to two lattice levels regardless of schema width.
        """
        for key in [k for k in partitions if len(k) < cutoff]:
            del partitions[key]
            if governor is not None:
                governor.release(booked.pop(key, 0))

    empty = frozenset()

    # C+ candidate sets, per TANE.
    cplus: dict[frozenset, frozenset] = {empty: all_attrs}
    results: list[FD] = []

    level: list[frozenset] = [frozenset([name]) for name in names]
    level_number = 1
    try:
        for name in names:
            checkpoint(budget, units=n, where="tane.partition_of")
            store(frozenset([name]), partition_of(relation, [name]))
        store(empty, partition_of(relation, []))
        results = _tane_levels(
            relation, level, level_number, all_attrs, partitions, cplus,
            results, max_lhs_size, budget, executor, store, free_below,
        )
    finally:
        # Whatever survives (two levels at most) is dead once mining ends
        # or an error propagates; return the governor's bytes either way.
        free_below(len(all_attrs) + 2)

    if max_lhs_size is not None:
        results = [fd for fd in results if len(fd.lhs) <= max_lhs_size]
    minimal = _minimize(results)
    if not allow_empty_lhs:
        promoted: list[FD] = []
        for fd in minimal:
            if fd.lhs:
                promoted.append(fd)
            else:
                (rhs_attribute,) = fd.rhs
                promoted.extend(
                    FD({other}, fd.rhs)
                    for other in sorted(all_attrs - {rhs_attribute})
                )
        minimal = set(promoted)
    return sorted(set(minimal), key=FD.sort_key)


def _tane_levels(relation, level, level_number, all_attrs, partitions, cplus,
                 results, max_lhs_size, budget, executor, store, free_below):
    """The level-wise lattice walk (the body of :func:`tane`)."""
    names = tuple(relation.schema.names)
    n = len(relation)

    def cplus_of(subset: frozenset) -> frozenset:
        """C+ of any lattice node, computed on demand.

        Key pruning skips generating supersets of (super)keys, but the
        minimality test at a key node still needs the C+ of those
        never-generated siblings; it is well-defined as the intersection of
        the C+ of the node's immediate subsets, recursively.
        """
        known = cplus.get(subset)
        if known is not None:
            return known
        if not subset:
            return all_attrs
        computed = frozenset.intersection(
            *(cplus_of(subset - {attribute}) for attribute in subset)
        )
        cplus[subset] = computed
        return computed

    while level:
        fault_point("fd.tane.level", partitions)
        checkpoint(budget, units=len(level), where="tane.level")
        # -- compute dependencies at this level ---------------------------------
        for x in level:
            cplus[x] = frozenset.intersection(
                *(cplus[x - {a}] for a in x)
            ) if x else all_attrs
        for x in level:
            for a in sorted(x & cplus[x]):
                lhs = x - {a}
                if _valid(lhs, a, partitions):
                    results.append(FD(lhs, {a}))
                    cplus[x] = cplus[x] - {a}
                    cplus[x] = cplus[x] - (all_attrs - x)

        # -- prune ---------------------------------------------------------------
        survivors = []
        for x in level:
            if not cplus[x]:
                continue
            if partitions[x].is_superkey():
                for a in sorted(cplus[x] - x):
                    sibling_cplus = [cplus_of((x | {a}) - {b}) for b in x]
                    if sibling_cplus and a in frozenset.intersection(*sibling_cplus):
                        results.append(FD(x, {a}))
                continue
            survivors.append(x)

        if max_lhs_size is not None and level_number > max_lhs_size:
            break

        # -- generate next level (prefix join) -----------------------------------
        next_level: set[frozenset] = set()
        pending: dict[frozenset, tuple] = {}
        survivor_set = set(survivors)
        ordered = sorted(survivors, key=lambda s: tuple(sorted(s)))
        by_prefix: dict[tuple, list[frozenset]] = {}
        for x in ordered:
            prefix = tuple(sorted(x))[:-1]
            by_prefix.setdefault(prefix, []).append(x)
        for siblings in by_prefix.values():
            for x, y in combinations(siblings, 2):
                candidate = x | y
                if len(candidate) != level_number + 1:
                    continue
                if all(candidate - {a} in survivor_set for a in candidate):
                    next_level.add(candidate)
                    if candidate not in partitions and candidate not in pending:
                        pending[candidate] = (x, y)
        missing = sorted(pending, key=lambda s: tuple(sorted(s)))
        if (
            executor is not None
            and executor.parallel
            and len(missing) >= _PARALLEL_MIN_CANDIDATES
        ):
            from repro.parallel import tasks

            chunks = [
                missing[k : k + _CANDIDATE_CHUNK]
                for k in range(0, len(missing), _CANDIDATE_CHUNK)
            ]
            computed = executor.map(
                tasks.partition_chunk,
                [
                    (relation, [tuple(sorted(c)) for c in chunk])
                    for chunk in chunks
                ],
                units=[n * len(chunk) for chunk in chunks],
                where="tane.product",
                budget=budget,
            )
            for chunk, chunk_partitions in zip(chunks, computed):
                for candidate, part in zip(chunk, chunk_partitions):
                    store(candidate, part)
        else:
            for candidate in missing:
                checkpoint(budget, units=n, where="tane.product")
                x, y = pending[candidate]
                store(candidate, product(partitions[x], partitions[y]))
        # Free partitions of the previous level: with level l+1 generated,
        # validity and products only ever touch sizes l and l+1 again.
        free_below(level_number)
        level = sorted(next_level, key=lambda s: tuple(sorted(s)))
        level_number += 1

    return results


def _valid(lhs: frozenset, rhs_attribute: str, partitions) -> bool:
    """``lhs -> rhs`` iff adding the RHS attribute refines nothing."""
    x = partitions.get(lhs)
    xa = partitions.get(lhs | {rhs_attribute})
    if x is None or xa is None:
        return False
    return x.error == xa.error


def _minimize(fds: list[FD]) -> list[FD]:
    """Drop dependencies whose LHS strictly contains another valid LHS."""
    by_rhs: dict[frozenset, list[frozenset]] = {}
    for fd in fds:
        by_rhs.setdefault(fd.rhs, []).append(fd.lhs)
    minimal: list[FD] = []
    for rhs, lhss in by_rhs.items():
        unique = sorted(set(lhss), key=len)
        kept: list[frozenset] = []
        for lhs in unique:
            if not any(existing < lhs for existing in kept):
                kept.append(lhs)
        minimal.extend(FD(lhs, rhs) for lhs in kept)
    return minimal
