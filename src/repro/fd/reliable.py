"""Reliable approximate and top-k FD mining by bias-corrected information.

Exact TANE/FDEP walk the full attribute lattice; FD-RANK (paper Section 6)
only needs a *ranking*.  This module collapses the two passes into one
branch-and-bound search that scores candidate dependencies ``X -> Y`` by
the **bias-corrected fraction of information** of Mandros et al.
("Discovering Reliable Approximate Functional Dependencies"):

    F0(X -> Y) = ( I(X; Y) - EMI(X, Y) ) / H(Y)        clamped to [0, 1]

``I/H`` is the plug-in fraction of information (1.0 exactly when ``X -> Y``
holds); ``EMI`` is the *expected* mutual information between the two
partitions under the permutation null model -- the score an uninformative
LHS with the same partition shape would get by chance.  Subtracting it
stops near-keys (high-cardinality LHSs) from looking like dependencies,
which is precisely the failure mode of raw ``g3``-style error on samples.

Search follows Wan & Han ("Redundancy-Driven Top-k FD Discovery"): a
set-enumeration tree per RHS over the coded int32 columns (partitions are
fused-key ``np.unique`` passes, the PR-7 columnar idiom), pruned with the
admissible bound

    F0(X' -> Y) <= I(X u T; Y) / H(Y)    for every X <= X' <= X u T

(mutual information is monotone under partition refinement and EMI >= 0).
Pruning is *strict* (``ub < threshold``), so score ties at the top-k
boundary are never discarded and the result is a pure function of the
candidate set -- independent of traversal order, worker count, and the
pruning schedule.  That is what makes sharded runs bit-identical: a
worker's local k-th-best score is at most the global one (a subset's k-th
order statistic never exceeds the superset's), hence every worker-local
threshold is admissible too.

Sampled mode scores on a seeded row sample (``repro.seeding``) and attaches
a conservative confidence radius to every result; callers must surface the
degradation (discovery flags the run DEGRADED and never checkpoints sampled
results as exact).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from heapq import heappop, heappush

import numpy as np

from repro.budget import checkpoint
from repro.fd.dependency import FD
from repro.infotheory.entropy import entropy_of_counts
from repro.seeding import sample_indices
from repro.testing.faults import fault_point

__all__ = [
    "ReliableFD",
    "ReliableMiningStats",
    "expected_mutual_information",
    "fraction_of_information",
    "reliable_score",
    "specialization_upper_bound",
    "confidence_radius",
    "mine_reliable_fds",
    "mine_topk",
]

#: Fan the per-RHS root subtrees out to workers in fixed-size chunks.  The
#: chunk layout is a pure function of the schema (never of the worker
#: count), so the executor's deterministic shard layout applies unchanged.
_SUBTREE_CHUNK = 8

#: Below this many chunks the pool overhead dwarfs the work; stay inline.
_PARALLEL_MIN_CHUNKS = 2

#: Compact the candidate buffer when it outgrows this multiple of k.
_COMPACT_FACTOR = 8

#: Cross-RHS partition memo capacity (LRU; entries are governor-booked).
_MEMO_ENTRIES = 1024


# ---------------------------------------------------------------------------
# Scoring: plug-in information and the permutation-model correction.
# ---------------------------------------------------------------------------


def _log_factorial_table(n: int) -> np.ndarray:
    """``table[i] = ln(i!)`` for ``0 <= i <= n`` via one cumulative sum."""
    table = np.zeros(n + 1)
    if n >= 2:
        table[2:] = np.cumsum(np.log(np.arange(2.0, n + 1.0)))
    return table


def expected_mutual_information(a_counts, b_counts, logfact=None) -> float:
    """``E[I(A; B)]`` under the permutation (hypergeometric) null model.

    ``a_counts`` and ``b_counts`` are the class sizes of two partitions of
    the same ``n`` rows.  Under the null, the rows of ``B`` are randomly
    permuted against ``A``; the expected contingency cell ``n_ij`` then
    follows a hypergeometric law, and the expectation depends only on the
    two class-*size* multisets.  We therefore sum over unique size pairs
    weighted by their multiplicities -- the standard exact EMI computation
    (Vinh et al.), vectorized over the inner ``n_ij`` range.

    Natural-log units (the caller only ever uses ratios of information
    quantities, so the base cancels).
    """
    a = np.asarray(a_counts, dtype=np.int64)
    b = np.asarray(b_counts, dtype=np.int64)
    a = a[a > 0]
    b = b[b > 0]
    n = int(a.sum())
    if n != int(b.sum()):
        raise ValueError("EMI needs two partitions of the same row count")
    if n <= 1 or a.size <= 1 or b.size <= 1:
        return 0.0
    table = _log_factorial_table(n) if logfact is None else logfact
    a_sizes, a_mult = np.unique(a, return_counts=True)
    b_sizes, b_mult = np.unique(b, return_counts=True)
    # One flat pass over every (a_i, b_j, n_ij) triple: the per-pair n_ij
    # ranges are concatenated (repeat/cumsum segmentation), so the whole
    # expectation is a handful of large vector ops instead of ~u_a * u_b
    # tiny ones.  The summation order is fixed by the sorted unique sizes,
    # hence a pure function of the two count multisets.
    ai = np.repeat(a_sizes, b_sizes.size)
    ma = np.repeat(a_mult, b_sizes.size)
    bj = np.tile(b_sizes, a_sizes.size)
    mb = np.tile(b_mult, a_sizes.size)
    lo = np.maximum(1, ai + bj - n)
    hi = np.minimum(ai, bj)
    lengths = hi - lo + 1
    keep = lengths > 0
    ai, ma, bj, mb, lo, lengths = (
        ai[keep], ma[keep], bj[keep], mb[keep], lo[keep], lengths[keep])
    if lengths.size == 0:
        return 0.0
    total_len = int(lengths.sum())
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    nij = (np.arange(total_len, dtype=np.int64)
           - np.repeat(starts, lengths) + np.repeat(lo, lengths))
    ai_f = np.repeat(ai, lengths)
    bj_f = np.repeat(bj, lengths)
    mult = np.repeat(ma * mb, lengths).astype(np.float64)
    # Hypergeometric log-pmf of the cell count n_ij.
    log_p = (
        table[bj_f] - table[nij] - table[bj_f - nij]
        + table[n - bj_f] - table[ai_f - nij]
        - table[n - bj_f - ai_f + nij]
        - table[n] + table[ai_f] + table[n - ai_f]
    )
    # (n_ij / n) * ln(n * n_ij / (a_i * b_j))
    terms = (nij / n) * (np.log(nij) + math.log(n)
                         - np.log(ai_f) - np.log(bj_f))
    total = float(np.sum(mult * np.exp(log_p) * terms))
    return max(total, 0.0)


@dataclass
class ReliableMiningStats:
    """Work counters for one mining run (summed across shards).

    ``partitions_computed`` counts materialized lattice partitions -- one
    per scored node plus one per upper-bound evaluation -- the same unit
    TANE's ``stats`` counts per stored partition, so the two miners are
    directly comparable.  ``pruned`` records ``(rhs, lhs, tail)`` name
    tuples for every cut subtree; the admissibility property tests replay
    them against the brute-force oracle.
    """

    nodes_visited: int = 0
    candidates_scored: int = 0
    partitions_computed: int = 0
    subtrees_pruned: int = 0
    sampled_rows: int | None = None
    pruned: list = field(default_factory=list)

    def absorb(self, other: "ReliableMiningStats") -> None:
        self.nodes_visited += other.nodes_visited
        self.candidates_scored += other.candidates_scored
        self.partitions_computed += other.partitions_computed
        self.subtrees_pruned += other.subtrees_pruned
        self.pruned.extend(other.pruned)


def _canonical_entropy(counts: np.ndarray) -> float:
    """Natural-log entropy of a count vector, independent of label order.

    Partitions reached along different fold paths carry permuted group
    labels; summing the very same masses in a different order can move the
    float result by an ulp.  Sorting the positive counts first makes every
    entropy a pure function of the count *multiset*, which is what lets the
    cross-RHS partition memo (and sharded workers with different memo-hit
    patterns) stay bit-identical to the sequential pass.
    """
    positive = np.sort(counts[counts > 0])
    return entropy_of_counts(positive, base=math.e)


class _Scorer:
    """Information quantities over one coded relation, natural-log units.

    Partitions are row-group inverse arrays (``inv``) plus their group
    sizes, built by fusing int64 keys and re-compressing with ``np.unique``
    -- the same kernel as :func:`repro.fd.partitions.partition_of`, minus
    the stripped-class bookkeeping the lattice miners need.

    An LRU memo keyed by the attribute *set* shares partitions across the
    per-RHS search trees (an LHS like ``{Month, School}`` appears in up to
    ``arity`` trees); every hit is one whole fused-key pass saved, which is
    how the miner's partition count stays below level-wise TANE's.  Entries
    are booked with the memory governor and released on LRU eviction, so a
    capped run degrades to recomputation instead of growing without bound.
    """

    def __init__(self, relation, budget=None,
                 stats: ReliableMiningStats | None = None,
                 memo_entries: int = None):
        store = relation.coded
        self.n = int(store.n_rows)
        self.names = list(store.names)
        self.columns = [np.asarray(c, dtype=np.int64) for c in store.columns]
        self.cards = [max(1, len(d)) for d in store.dictionaries]
        self.budget = budget
        self.stats = stats if stats is not None else ReliableMiningStats()
        self.logfact = _log_factorial_table(self.n)
        self.marginals = [
            np.bincount(col, minlength=card)
            for col, card in zip(self.columns, self.cards)
        ]
        self.h = [_canonical_entropy(counts) for counts in self.marginals]
        self._memo: OrderedDict = OrderedDict()
        self._memo_cap = _MEMO_ENTRIES if memo_entries is None else memo_entries
        self._governor = getattr(budget, "memory", None)
        self._booked: dict = {}
        self._roots_counted: set[int] = set()

    def release_memo(self) -> None:
        """Return every booked memo byte to the governor."""
        self._memo.clear()
        if self._governor is not None:
            for key in list(self._booked):
                self._governor.release(self._booked.pop(key))

    def _lookup(self, key: frozenset):
        hit = self._memo.get(key)
        if hit is not None:
            self._memo.move_to_end(key)
        return hit

    def _remember(self, key: frozenset, inv, counts) -> None:
        if self._memo_cap <= 0:
            return
        if self._governor is not None:
            n_bytes = int(inv.nbytes) + int(counts.nbytes)
            self._governor.reserve(n_bytes, where="fd.reliable.memo")
            self._booked[key] = n_bytes
        self._memo[key] = (inv, counts)
        if len(self._memo) > self._memo_cap:
            old_key, _ = self._memo.popitem(last=False)
            if self._governor is not None:
                self._governor.release(self._booked.pop(old_key, 0))

    def _fuse(self, inv: np.ndarray, position: int):
        """Refine a partition by one attribute: fuse keys, re-compress."""
        fused = inv * self.cards[position] + self.columns[position]
        uniques, new_inv = np.unique(fused, return_inverse=True)
        counts = np.bincount(new_inv, minlength=len(uniques))
        self.stats.partitions_computed += 1
        return new_inv.astype(np.int64), counts

    def root(self, position: int):
        """The singleton partition of one attribute (codes are dense)."""
        if position not in self._roots_counted:
            self._roots_counted.add(position)
            self.stats.partitions_computed += 1
        return self.columns[position], self.marginals[position]

    def extend(self, key: frozenset, inv: np.ndarray, position: int):
        """The partition of ``key | {position}``, via memo or one fuse."""
        child_key = key | {position}
        hit = self._lookup(child_key)
        if hit is not None:
            return hit
        child_inv, child_counts = self._fuse(inv, position)
        self._remember(child_key, child_inv, child_counts)
        return child_inv, child_counts

    def information(self, inv: np.ndarray, counts: np.ndarray,
                    y_position: int):
        """``(I(X;Y), support)`` where support = occupied joint cells.

        The joint is compressed with ``np.unique`` rather than a dense
        ``len(counts) * card_y`` bincount -- for a near-key LHS the dense
        grid would be ``O(n * card_y)`` cells, the compressed form never
        exceeds ``n``.
        """
        fused = inv * self.cards[y_position] + self.columns[y_position]
        _, joint = np.unique(fused, return_counts=True)
        h_joint = _canonical_entropy(joint)
        h_x = _canonical_entropy(counts)
        mi = max(h_x + self.h[y_position] - h_joint, 0.0)
        return mi, int(joint.size)

    def score(self, inv: np.ndarray, counts: np.ndarray, y_position: int):
        """``(F0, F, support)`` for one candidate against attribute ``y``."""
        h_y = self.h[y_position]
        if h_y <= 0.0:
            return 0.0, 0.0, 1
        mi, support = self.information(inv, counts, y_position)
        emi = expected_mutual_information(
            counts, self.marginals[y_position], self.logfact)
        self.stats.candidates_scored += 1
        fraction = min(1.0, mi / h_y)
        corrected = min(1.0, max(0.0, (mi - emi) / h_y))
        return corrected, fraction, support

    def upper_bound(self, key: frozenset, inv: np.ndarray, tail_positions,
                    y_position: int):
        """Admissible bound on every score in the subtree under ``key``.

        ``I(X u T; Y)/H(Y)`` bounds ``F0(X' -> Y)`` for all ``X'`` between
        ``X`` and ``X u T``: refining the LHS only grows plug-in MI, and
        the EMI correction only ever subtracts.  (EMI of a specialization
        is *not* provably below the parent's, so the bound deliberately
        uses ``EMI >= 0`` and nothing sharper.)

        The closure partition is folded from-scratch and counted as *one*
        materialized partition -- the same unit as TANE's ``partition_of``,
        which also hides its internal per-attribute fuses.  Only the final
        closure is memoized: the intermediates are never scored, and suffix
        closures repeat heavily across RHS trees (``{r..m}`` is shared by
        every ``y < r``).
        """
        h_y = self.h[y_position]
        if h_y <= 0.0:
            return 0.0
        closure_key = key.union(tail_positions)
        hit = self._lookup(closure_key)
        if hit is None:
            closure = inv
            for p in tail_positions:
                fused = closure * self.cards[p] + self.columns[p]
                _, closure = np.unique(fused, return_inverse=True)
                closure = closure.astype(np.int64)
            counts = np.bincount(closure)
            self.stats.partitions_computed += 1
            self._remember(closure_key, closure, counts)
        else:
            closure, counts = hit
        mi, _ = self.information(closure, counts, y_position)
        return min(1.0, mi / h_y)


# ---------------------------------------------------------------------------
# Public scoring helpers (the oracle and the property suites call these).
# ---------------------------------------------------------------------------


def _fold(scorer: _Scorer, positions) -> tuple:
    """The partition of an arbitrary attribute set, folded in sorted order."""
    inv, counts = scorer.root(positions[0])
    key = frozenset(positions[:1])
    for p in positions[1:]:
        inv, counts = scorer.extend(key, inv, p)
        key = key | {p}
    return inv, counts


def _positions(relation, names) -> list[int]:
    schema = list(relation.coded.names)
    missing = [a for a in names if a not in schema]
    if missing:
        raise ValueError(f"unknown attribute(s) {missing!r}")
    return [schema.index(a) for a in names]


def fraction_of_information(relation, lhs, rhs) -> float:
    """Plug-in ``I(X;Y)/H(Y)`` -- 1.0 exactly when ``X -> Y`` holds."""
    scorer = _Scorer(relation)
    (y,) = _positions(relation, [rhs])
    lhs_positions = sorted(_positions(relation, list(lhs)))
    if not lhs_positions:
        raise ValueError("lhs must be non-empty")
    if scorer.h[y] <= 0.0:
        return 0.0
    inv, counts = _fold(scorer, lhs_positions)
    mi, _ = scorer.information(inv, counts, y)
    return min(1.0, mi / scorer.h[y])


def reliable_score(relation, lhs, rhs) -> float:
    """Bias-corrected fraction of information ``F0(lhs -> rhs)`` in [0, 1]."""
    scorer = _Scorer(relation)
    (y,) = _positions(relation, [rhs])
    lhs_positions = sorted(_positions(relation, list(lhs)))
    if not lhs_positions:
        raise ValueError("lhs must be non-empty")
    inv, counts = _fold(scorer, lhs_positions)
    score, _, _ = scorer.score(inv, counts, y)
    return score


def specialization_upper_bound(relation, lhs, tail, rhs) -> float:
    """Admissible bound on ``F0(X' -> rhs)`` for every ``lhs <= X' <= lhs u tail``."""
    scorer = _Scorer(relation)
    (y,) = _positions(relation, [rhs])
    lhs_positions = sorted(_positions(relation, list(lhs)))
    tail_positions = sorted(_positions(relation, list(tail)))
    if not lhs_positions:
        raise ValueError("lhs must be non-empty")
    inv, _ = _fold(scorer, lhs_positions)
    return scorer.upper_bound(frozenset(lhs_positions), inv, tail_positions, y)


def confidence_radius(m: int, support: int, alpha: float, h_y: float) -> float:
    """Conservative half-width of the sampled-score confidence interval.

    With probability ``>= 1 - alpha`` over the row sample, the exact score
    lies within ``radius`` of the sampled one.  The bound combines a
    McDiarmid deviation for the three plug-in entropies (replacing one of
    ``m`` rows moves each by at most ``~ln(m)/m``) with a Miller-Madow
    style bias term ``~support/m``, normalized by the sampled ``H(Y)``.
    Scores live in [0, 1], so the radius is capped at 1.0 -- once the cap
    binds the interval is trivially valid, which keeps the guarantee
    honest even for tiny samples.
    """
    if m <= 0:
        return 1.0
    deviation = 3.0 * math.log(max(m, 2)) * math.sqrt(
        math.log(4.0 / alpha) / (2.0 * m))
    bias = 4.0 * support / m
    return min(1.0, (deviation + bias) / max(h_y, 1e-9))


# ---------------------------------------------------------------------------
# The branch-and-bound search.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReliableFD:
    """One mined dependency with its reliability evidence.

    ``score`` is the bias-corrected fraction of information, ``information``
    the uncorrected plug-in fraction (``1.0`` iff the FD holds exactly on
    the scored rows).  ``sampled`` marks scores computed on a row sample;
    ``confidence_radius`` then bounds ``|exact - sampled|`` at the miner's
    confidence level (0.0 for exact runs).
    """

    fd: FD
    score: float
    information: float
    sampled: bool = False
    confidence_radius: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - display convenience
        tag = f" ±{self.confidence_radius:.3f}" if self.sampled else ""
        return f"{self.fd} [score={self.score:.4f}{tag}]"


class _Collector:
    """Accumulates scored candidates and exposes the pruning threshold.

    In ``topk`` mode the threshold is the current k-th best *score* (ties
    ignored), tracked with a bounded min-heap; candidates below it are
    discarded lazily so boundary ties always survive to final selection.
    In ``reliable`` mode the threshold is the fixed ``min_score``.
    """

    def __init__(self, mode: str, k: int, min_score: float):
        self.mode = mode
        self.k = k
        self.min_score = min_score
        self.entries: list[tuple[float, float, int, tuple, str]] = []
        self._heap: list[float] = []

    def threshold(self) -> float:
        if self.mode == "reliable":
            return self.min_score
        if len(self._heap) < self.k:
            return -math.inf
        return self._heap[0]

    def add(self, score: float, fraction: float, support: int,
            lhs_names: tuple, rhs_name: str) -> None:
        if self.mode == "reliable":
            if score >= self.min_score:
                self.entries.append(
                    (score, fraction, support, lhs_names, rhs_name))
            return
        heappush(self._heap, score)
        if len(self._heap) > self.k:
            heappop(self._heap)
        self.entries.append((score, fraction, support, lhs_names, rhs_name))
        if len(self.entries) > max(64, _COMPACT_FACTOR * self.k):
            floor = self.threshold()
            self.entries = [e for e in self.entries if e[0] >= floor]

    def merge_entries(self, entries) -> None:
        for score, fraction, support, lhs_names, rhs_name in entries:
            self.add(score, fraction, support, tuple(lhs_names), rhs_name)

    def results(self) -> list[tuple[float, float, int, tuple, str]]:
        """Final selection under the deterministic total order."""
        ordered = sorted(
            self.entries,
            key=lambda e: (-e[0], tuple(sorted(e[3])), e[4]),
        )
        if self.mode == "reliable":
            return ordered
        return ordered[: self.k]


def _descend(scorer: _Scorer, collector: _Collector, y: int,
             chosen: tuple, key: frozenset, inv, counts, tail: tuple,
             max_lhs_size: int, tree_bound: float | None) -> None:
    """Score the node ``chosen -> y`` and recurse over its tail.

    ``tree_bound`` is the root subtree's closure bound; every node's own
    closure is a subset of the root's, so one bound per (rhs, root) tree is
    admissible everywhere inside it.  It is checked at every node because
    the threshold keeps rising while the tree is walked.
    """
    checkpoint(scorer.budget, units=scorer.n, where="fd.reliable.node")
    fault_point("fd.reliable.node")
    scorer.stats.nodes_visited += 1
    score, fraction, support = scorer.score(inv, counts, y)
    collector.add(score, fraction, support,
                  tuple(scorer.names[p] for p in chosen), scorer.names[y])
    usable_tail = tail if len(chosen) < max_lhs_size else ()
    if not usable_tail:
        return
    threshold = collector.threshold()
    if (tree_bound is not None and threshold > -math.inf
            and tree_bound < threshold):
        scorer.stats.subtrees_pruned += 1
        scorer.stats.pruned.append((
            scorer.names[y],
            tuple(scorer.names[p] for p in chosen),
            tuple(scorer.names[p] for p in usable_tail),
        ))
        return
    for i, t in enumerate(usable_tail):
        child_inv, child_counts = scorer.extend(key, inv, t)
        _descend(scorer, collector, y, chosen + (t,), key | {t}, child_inv,
                 child_counts, usable_tail[i + 1:], max_lhs_size, tree_bound)


def _run_jobs(scorer: _Scorer, collector: _Collector, jobs,
              max_lhs_size: int) -> None:
    """Run ``(rhs_position, root_position, tail_positions)`` subtrees."""
    for y, root, tail in jobs:
        if scorer.h[y] <= 0.0:
            continue  # constant RHS: F0 is 0/0 -- excluded by definition
        inv, counts = scorer.root(root)
        tail = tuple(tail)
        root_key = frozenset((root,))
        tree_bound = (scorer.upper_bound(root_key, inv, tail, y)
                      if tail else None)
        _descend(scorer, collector, y, (root,), root_key, inv,
                 counts, tail, max_lhs_size, tree_bound)


def _subtree_jobs(arity: int, rhs_positions) -> list[tuple[int, int, tuple]]:
    """The full job list: every (rhs, root) set-enumeration subtree.

    Tails follow canonical schema order, so the candidate set -- and with
    it the mined result -- is a pure function of the schema.
    """
    jobs = []
    for y in rhs_positions:
        others = [p for p in range(arity) if p != y]
        for i, root in enumerate(others):
            jobs.append((y, root, tuple(others[i + 1:])))
    return jobs


def run_subtree_chunk(relation, jobs, mode: str, k: int, min_score: float,
                      max_lhs_size: int):
    """One shard's work: run a chunk of subtrees, return plain data.

    This is the body of :func:`repro.parallel.tasks.reliable_subtree` -- a
    pure function of its payload (no budget, no shared collector), which is
    what lets the executor re-run a shard in-process after a pool failure.
    Returns ``(entries, counters)`` with worker-local top-k trimming only
    (admissible: a shard's k-th best never exceeds the global one).
    """
    stats = ReliableMiningStats()
    scorer = _Scorer(relation, budget=None, stats=stats)
    collector = _Collector(mode, k, min_score)
    _run_jobs(scorer, collector, jobs, max_lhs_size)
    floor = collector.threshold()
    entries = [e for e in collector.entries if e[0] >= floor]
    counters = (stats.nodes_visited, stats.candidates_scored,
                stats.partitions_computed, stats.subtrees_pruned,
                list(stats.pruned))
    return entries, counters


def _validate(mode, k, min_score, alpha, max_lhs_size, sample_rows):
    if mode not in ("topk", "reliable"):
        raise ValueError("mode must be 'topk' or 'reliable'")
    if mode == "topk" and k < 1:
        raise ValueError("k must be at least 1")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha!r}")
    if min_score is not None and not 0.0 <= min_score <= 1.0:
        raise ValueError(f"min_score must lie in [0, 1], got {min_score!r}")
    if max_lhs_size is not None and max_lhs_size < 1:
        raise ValueError("max_lhs_size must be at least 1")
    if sample_rows is not None and sample_rows < 1:
        raise ValueError("sample_rows must be at least 1")


def mine_reliable_fds(
    relation,
    *,
    mode: str = "topk",
    k: int = 10,
    min_score: float | None = None,
    alpha: float = 0.05,
    max_lhs_size: int | None = None,
    rhs: str | None = None,
    sample_rows: int | None = None,
    seed: int = 0,
    budget=None,
    executor=None,
    stats: ReliableMiningStats | None = None,
) -> list[ReliableFD]:
    """Mine the most reliable approximate FDs of ``relation``.

    Parameters
    ----------
    mode:
        ``"topk"`` returns the ``k`` highest-scoring dependencies under the
        deterministic total order ``(-score, sorted lhs, rhs)``;
        ``"reliable"`` returns every dependency scoring at least
        ``min_score`` (default ``1 - alpha``).
    alpha:
        Reliability level: the default ``min_score`` in reliable mode and
        the confidence level ``1 - alpha`` of sampled-mode radii.
    rhs:
        Restrict mining to one consequent attribute (all attributes
        otherwise).
    sample_rows:
        Score on a seeded sample of this many rows; results carry
        ``sampled=True`` and a per-FD confidence radius.  ``>= len(relation)``
        degenerates to the exact computation.
    seed:
        Feeds :mod:`repro.seeding`; same seed, same sample, same report.
    budget / executor:
        Cooperative :class:`repro.budget.Budget` checkpoints per scored
        node (memory-governed runs tick RSS sampling through the same
        call); a :class:`repro.parallel.ShardedExecutor` shards root
        subtrees in fixed chunks with bit-identical output for any worker
        count.
    stats:
        Optional :class:`ReliableMiningStats` to fill in place (summed
        across shards).
    """
    _validate(mode, k, min_score, alpha, max_lhs_size, sample_rows)
    if min_score is None:
        min_score = 1.0 - alpha
    names = list(relation.coded.names)
    arity = len(names)
    if max_lhs_size is None:
        max_lhs_size = max(arity - 1, 1)
    if rhs is not None:
        _positions(relation, [rhs])

    n = len(relation)
    sampled = False
    radius_m = 0
    work = relation
    if sample_rows is not None and sample_rows < n:
        indices = sample_indices(n, sample_rows, seed, "fd.reliable.sample")
        work = relation.take(indices.tolist())
        sampled = True
        radius_m = int(sample_rows)

    if stats is None:
        stats = ReliableMiningStats()
    stats.sampled_rows = radius_m if sampled else None
    if arity < 2 or len(work) == 0:
        return []

    rhs_positions = ([names.index(rhs)] if rhs is not None
                     else list(range(arity)))
    jobs = _subtree_jobs(arity, rhs_positions)
    collector = _Collector(mode, k, min_score)

    governor = getattr(budget, "memory", None)
    booked = 0
    if governor is not None:
        # The scorer widens every code column to int64 and keeps the int32
        # originals alive through the relation; transient per-node arrays
        # are a few more rows-sized vectors.
        booked = (12 * len(work) * arity) + (4 * 8 * len(work))
        governor.reserve(booked, where="fd.reliable.scorer")
    try:
        chunks = [jobs[i:i + _SUBTREE_CHUNK]
                  for i in range(0, len(jobs), _SUBTREE_CHUNK)]
        use_pool = (executor is not None and executor.parallel
                    and len(chunks) >= _PARALLEL_MIN_CHUNKS)
        if use_pool:
            from repro.parallel import tasks

            job_names = [
                [(names[y], names[root], tuple(names[p] for p in tail))
                 for y, root, tail in chunk]
                for chunk in chunks
            ]
            payloads = [
                (work, chunk, mode, k, min_score, max_lhs_size)
                for chunk in job_names
            ]
            shard_results = executor.map(
                tasks.reliable_subtree, payloads,
                units=[len(work) * len(chunk) for chunk in chunks],
                where="fd.reliable.subtree", budget=budget)
            for entries, counters in shard_results:
                collector.merge_entries(entries)
                visited, scored, parts, pruned, pruned_list = counters
                stats.nodes_visited += visited
                stats.candidates_scored += scored
                stats.partitions_computed += parts
                stats.subtrees_pruned += pruned
                stats.pruned.extend(tuple(p) for p in pruned_list)
        else:
            scorer = _Scorer(work, budget=budget, stats=stats)
            try:
                _run_jobs(scorer, collector, jobs, max_lhs_size)
            finally:
                scorer.release_memo()
    finally:
        if governor is not None:
            governor.release(booked)

    if sampled:
        sample_scorer = _Scorer(work)
    results = []
    for score, fraction, support, lhs_names, rhs_name in collector.results():
        radius = 0.0
        if sampled:
            y = names.index(rhs_name)
            radius = confidence_radius(
                radius_m, support, alpha, sample_scorer.h[y])
        results.append(ReliableFD(
            fd=FD(frozenset(lhs_names), frozenset({rhs_name})),
            score=score, information=fraction,
            sampled=sampled, confidence_radius=radius))
    return results


def mine_topk(relation, k: int = 10, **kwargs) -> list[ReliableFD]:
    """The ``k`` highest-scoring dependencies (see :func:`mine_reliable_fds`)."""
    return mine_reliable_fds(relation, mode="topk", k=k, **kwargs)
