"""FDEP: bottom-up induction of functional dependencies (Savnik & Flach).

The miner the paper uses (Section 8).  Two steps:

1. **Negative cover** -- compare all tuple pairs; the *agree set* of a pair
   (attributes on which the tuples coincide) witnesses the maximal invalid
   dependency ``agree -> A`` for every attribute ``A`` the pair disagrees
   on.  Only maximal agree sets per RHS attribute are kept.
2. **Positive cover** -- for each RHS attribute ``A``, a LHS ``X`` is valid
   iff it is contained in no witnessing agree set; minimal valid LHSs are
   the minimal *hitting sets* of the complements of the witnesses, found by
   depth-first search with subset pruning.

Pair comparison is quadratic in the number of tuples, as in the original
algorithm; it is intended for modest instances (the paper runs it on the
90-tuple DB2 relation and the per-cluster DBLP partitions).  Use
:func:`repro.fd.tane` for wide instances with many tuples.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.budget import checkpoint
from repro.fd.dependency import FD
from repro.fd.partitions import partition_of
from repro.testing.faults import fault_point

#: Pair-scan iterations between cooperative budget checkpoints (scalar path).
_CHECK_EVERY = 512

#: Minimum tuple count before the pair scan fans out to worker processes.
_PARALLEL_MIN_TUPLES = 64

#: Target tuple pairs per parallel block of the scan.
_PAIRS_PER_BLOCK = 16_384

#: Widest schema the bitmask pair scan handles (one ``int64`` bit per
#: attribute, with headroom under the sign bit).
_MAX_MASK_ATTRIBUTES = 62


def _signature_matrix(relation) -> np.ndarray:
    """``(arity, n)`` ``int32`` class labels per attribute (``-1`` singleton).

    Row ``a`` is the label array of the stripped partition under attribute
    ``a`` alone: two tuples agree on the attribute iff their labels are
    equal *and* non-negative.
    """
    names = relation.schema.names
    sig = np.empty((len(names), len(relation)), dtype=np.int32)
    for a, name in enumerate(names):
        sig[a] = partition_of(relation, [name]).label_array
    return sig


def _agree_masks_block(sig: np.ndarray, start: int, stop: int) -> set:
    """Distinct agree-set bitmasks over the pair rows ``start <= i < stop``.

    Bit ``a`` of a mask is set iff the pair agrees on attribute ``a``.  One
    vectorized compare of row ``i`` against rows ``i+1 .. n-1`` replaces the
    inner Python pair loop.
    """
    arity = sig.shape[0]
    weights = (np.int64(1) << np.arange(arity, dtype=np.int64))[:, None]
    masks: set = set()
    for i in range(start, stop):
        anchor = sig[:, i : i + 1]
        eq = (sig[:, i + 1 :] == anchor) & (anchor >= 0)
        bits = (eq * weights).sum(axis=0)
        masks.update(np.unique(bits).tolist())
    return masks


def _masks_to_sets(masks, names) -> set[frozenset]:
    """Decode agree-set bitmasks back to attribute-name frozensets."""
    return {
        frozenset(name for a, name in enumerate(names) if (mask >> a) & 1)
        for mask in masks
    }


def _agree_block(sig: np.ndarray, names, start: int, stop: int) -> set[frozenset]:
    """Agree sets of one block of pair rows (the parallel task body)."""
    return _masks_to_sets(_agree_masks_block(sig, start, stop), names)


def _agree_sets_scalar(sig: np.ndarray, names, n: int, budget) -> set[frozenset]:
    """Per-pair fallback for schemas wider than ``_MAX_MASK_ATTRIBUTES``."""
    result: set[frozenset] = set()
    arity = len(names)
    for pair_index, (i, j) in enumerate(combinations(range(n), 2)):
        if pair_index % _CHECK_EVERY == 0:
            checkpoint(budget, units=_CHECK_EVERY, where="fdep.agree_sets")
        column_i = sig[:, i]
        column_j = sig[:, j]
        agree = frozenset(
            names[a]
            for a in range(arity)
            if column_i[a] >= 0 and column_i[a] == column_j[a]
        )
        result.add(agree)
    return result


def agree_sets(relation, budget=None, executor=None) -> set[frozenset]:
    """All distinct agree sets of tuple pairs.

    Computed over per-attribute label arrays derived from the coded columns:
    the scan compares tuple ``i`` against all later tuples in one vectorized
    pass, packing the per-attribute agreements into ``int64`` bitmasks (one
    bit per attribute) and deduplicating masks before any frozensets are
    built.  Schemas wider than 62 attributes fall back to the per-pair scan.

    With a multi-worker ``executor`` the quadratic scan splits into
    pair-balanced blocks of ``i``-rows; the union of the per-block agree-set
    collections is exactly the sequential scan's set (sets are
    content-based, so the split cannot change the result).
    """
    names = relation.schema.names
    n = len(relation)
    sig = _signature_matrix(relation)

    result: set[frozenset] = set()
    fault_point("fd.fdep.pairs")
    if len(names) > _MAX_MASK_ATTRIBUTES:
        return _agree_sets_scalar(sig, names, n, budget)
    if executor is not None and executor.parallel and n >= _PARALLEL_MIN_TUPLES:
        from repro.parallel import shards, tasks

        blocks = shards.pair_blocks(
            n, shards.shard_count(n * (n - 1) // 2, _PAIRS_PER_BLOCK)
        )
        for block_sets in executor.map(
            tasks.agree_pairs_block,
            [(sig, names, start, stop, n) for start, stop in blocks],
            units=[
                sum(n - 1 - i for i in range(start, stop))
                for start, stop in blocks
            ],
            where="fdep.agree_sets",
            budget=budget,
        ):
            result.update(block_sets)
        return result
    masks: set = set()
    for i in range(n - 1):
        checkpoint(budget, units=n - 1 - i, where="fdep.agree_sets")
        masks.update(_agree_masks_block(sig, i, i + 1))
    return _masks_to_sets(masks, names)


def _maximal_sets(sets) -> list[frozenset]:
    """Keep only the inclusion-maximal members."""
    ordered = sorted(set(sets), key=len, reverse=True)
    maximal: list[frozenset] = []
    for candidate in ordered:
        if not any(candidate < kept for kept in maximal):
            maximal.append(candidate)
    return maximal


def negative_cover(
    relation, budget=None, executor=None
) -> dict[str, list[frozenset]]:
    """Per-attribute maximal invalid LHSs (the witnesses).

    ``negative_cover(r)[A]`` lists the maximal agree sets of pairs that
    disagree on ``A``; any ``X`` inside one of them makes ``X -> A`` false.
    """
    names = relation.schema.names
    witnesses: dict[str, set] = {name: set() for name in names}
    for agree in agree_sets(relation, budget=budget, executor=executor):
        for name in names:
            if name not in agree:
                witnesses[name].add(agree)
    return {name: _maximal_sets(sets) for name, sets in witnesses.items()}


def _minimal_hitting_sets(
    complements: list[frozenset], limit: int | None, budget=None
) -> list[frozenset]:
    """Minimal sets intersecting every complement, by depth-first search.

    ``complements`` lists, for each witness, the attributes a valid LHS may
    draw from to escape that witness.  Standard branch-and-prune: branch on
    the elements of the first un-hit complement; discard supersets of
    already-found hitting sets.
    """
    results: list[frozenset] = []
    ordered = sorted(complements, key=len)

    def search(current: frozenset, remaining: list[frozenset]) -> None:
        checkpoint(budget, where="fdep.hitting_sets")
        if limit is not None and len(results) >= limit:
            return
        unhit = [c for c in remaining if not (current & c)]
        if not unhit:
            if not any(found <= current for found in results):
                results[:] = [f for f in results if not current <= f]
                results.append(current)
            return
        first = min(unhit, key=len)
        if not first:
            return  # impossible to hit an empty complement
        for attribute in sorted(first):
            candidate = current | {attribute}
            if any(found <= candidate for found in results):
                continue
            search(candidate, unhit)

    search(frozenset(), ordered)
    return sorted(results, key=lambda s: (len(s), tuple(sorted(s))))


def fdep(
    relation,
    allow_empty_lhs: bool = False,
    max_lhs_per_attribute: int | None = None,
    budget=None,
    executor=None,
) -> list[FD]:
    """Mine all minimal functional dependencies holding on the instance.

    Parameters
    ----------
    relation:
        The instance to mine.  NULL compares equal to NULL.
    allow_empty_lhs:
        When an attribute is constant, the truly minimal dependency is
        ``{} -> A``.  The paper's experiments report singleton LHSs instead
        (e.g. ``Volume -> Journal`` over an all-NULL cluster), so the default
        promotes the empty LHS to every singleton; pass ``True`` for the
        strict reading.
    max_lhs_per_attribute:
        Optional cap on minimal LHSs enumerated per RHS attribute (a safety
        valve for pathological instances; ``None`` = exhaustive).
    budget:
        Optional :class:`repro.budget.Budget`; the quadratic pair scan and
        the hitting-set search checkpoint against it cooperatively and
        raise :class:`repro.errors.ResourceLimitExceeded` when it runs out.
    executor:
        Optional :class:`repro.parallel.ShardedExecutor`; distributes the
        tuple-pair scan (see :func:`agree_sets`).  The mined dependency set
        is identical with or without it.
    """
    names = relation.schema.names
    if len(relation) == 0:
        return []
    cover = negative_cover(relation, budget=budget, executor=executor)
    result: list[FD] = []
    for name in names:
        witnesses = cover[name]
        others = frozenset(n for n in names if n != name)
        complements = [others - witness for witness in witnesses]
        for lhs in _minimal_hitting_sets(
            complements, max_lhs_per_attribute, budget=budget
        ):
            if lhs:
                result.append(FD(lhs, {name}))
            elif allow_empty_lhs:
                result.append(FD(frozenset(), {name}))
            else:
                result.extend(FD({other}, {name}) for other in sorted(others))
    return sorted(set(result), key=FD.sort_key)
