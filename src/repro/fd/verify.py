"""Checking dependencies against instances, exactly and approximately.

``holds`` is the paper's Section 4 definition (tuples agreeing on ``X``
agree on ``Y``; NULL = NULL).  ``g3_error`` is the standard
approximate-dependency measure (minimum fraction of tuples to delete for the
dependency to hold) used by TANE-style miners -- the paper contrasts its own
*value-based* notion of approximation with this *tuple-based* one
(Section 6.2), so having both enables that comparison.
"""

from __future__ import annotations

from collections import Counter

from repro.fd.dependency import FD


def _projections(relation, attributes):
    positions = relation.schema.positions(sorted(attributes))
    for row in relation.rows:
        yield tuple(row[p] for p in positions)


def holds(relation, fd: FD) -> bool:
    """Whether ``fd`` holds on the instance."""
    if not fd.lhs:
        distinct = set(_projections(relation, fd.rhs))
        return len(distinct) <= 1
    seen: dict = {}
    lhs_positions = relation.schema.positions(sorted(fd.lhs))
    rhs_positions = relation.schema.positions(sorted(fd.rhs))
    for row in relation.rows:
        key = tuple(row[p] for p in lhs_positions)
        value = tuple(row[p] for p in rhs_positions)
        if seen.setdefault(key, value) != value:
            return False
    return True


def g3_error(relation, fd: FD) -> float:
    """The ``g3`` measure: minimum tuple-deletion fraction.

    0.0 means the dependency holds exactly; small values mean "approximate".
    For each ``X``-class, all tuples except those carrying the class's most
    frequent ``Y``-value must go.
    """
    n = len(relation)
    if n == 0:
        return 0.0
    lhs_positions = relation.schema.positions(sorted(fd.lhs))
    rhs_positions = relation.schema.positions(sorted(fd.rhs))
    groups: dict = {}
    for row in relation.rows:
        key = tuple(row[p] for p in lhs_positions)
        value = tuple(row[p] for p in rhs_positions)
        groups.setdefault(key, Counter())[value] += 1
    kept = sum(counter.most_common(1)[0][1] for counter in groups.values())
    return (n - kept) / n


def violating_pairs(relation, fd: FD, limit: int = 10) -> list[tuple[int, int]]:
    """Up to ``limit`` pairs of tuple indices witnessing a violation.

    Useful for showing an analyst *why* a candidate dependency fails.
    """
    lhs_positions = relation.schema.positions(sorted(fd.lhs))
    rhs_positions = relation.schema.positions(sorted(fd.rhs))
    first_seen: dict = {}
    witnesses: list[tuple[int, int]] = []
    for index, row in enumerate(relation.rows):
        key = tuple(row[p] for p in lhs_positions)
        value = tuple(row[p] for p in rhs_positions)
        if key in first_seen:
            other_index, other_value = first_seen[key]
            if other_value != value:
                witnesses.append((other_index, index))
                if len(witnesses) >= limit:
                    break
        else:
            first_seen[key] = (index, value)
    return witnesses
