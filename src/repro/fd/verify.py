"""Checking dependencies against instances, exactly and approximately.

``holds`` is the paper's Section 4 definition (tuples agreeing on ``X``
agree on ``Y``; NULL = NULL).  ``g3_error`` is the standard
approximate-dependency measure (minimum fraction of tuples to delete for the
dependency to hold) used by TANE-style miners -- the paper contrasts its own
*value-based* notion of approximation with this *tuple-based* one
(Section 6.2), so having both enables that comparison.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.fd.dependency import FD


def _projections(relation, attributes):
    positions = relation.schema.positions(sorted(attributes))
    for row in relation.rows:
        yield tuple(row[p] for p in positions)


def holds(relation, fd: FD) -> bool:
    """Whether ``fd`` holds on the instance."""
    if not fd.lhs:
        distinct = set(_projections(relation, fd.rhs))
        return len(distinct) <= 1
    seen: dict = {}
    lhs_positions = relation.schema.positions(sorted(fd.lhs))
    rhs_positions = relation.schema.positions(sorted(fd.rhs))
    for row in relation.rows:
        key = tuple(row[p] for p in lhs_positions)
        value = tuple(row[p] for p in rhs_positions)
        if seen.setdefault(key, value) != value:
            return False
    return True


def _group_codes(relation, attributes) -> np.ndarray:
    """Dense group ids: rows share an id iff they agree on ``attributes``.

    Works directly on the dictionary-encoded int32 columns of the
    :class:`ColumnStore` (paper Section 4's partition refinement), so the
    check never touches Python row objects and shares no state with the
    miners' partition caches.
    """
    store = relation.coded
    positions = [store.names.index(name) for name in sorted(attributes)]
    n = store.n_rows
    if not positions or n == 0:
        return np.zeros(n, dtype=np.int64)
    columns = store.columns
    groups = columns[positions[0]].astype(np.int64)
    for pos in positions[1:]:
        fused = groups * np.int64(int(columns[pos].max()) + 1) + columns[pos]
        _, groups = np.unique(fused, return_inverse=True)
    _, groups = np.unique(groups, return_inverse=True)
    return groups.astype(np.int64)


def holds_coded(relation, fd: FD) -> bool:
    """Exact check of ``fd`` by partition refinement over coded columns.

    Equivalent to :func:`holds` but vectorized over the relation's
    ``ColumnStore``: the dependency holds iff refining the LHS partition by
    the RHS does not split any class (|pi_X| == |pi_{X u Y}|).  Kept as an
    independent code path (no shared grouping logic with the TANE/FDEP
    miners) so it can serve as a trustworthy auditor.
    """
    if len(relation) == 0:
        return True
    lhs_groups = _group_codes(relation, fd.lhs)
    both_groups = _group_codes(relation, fd.lhs | fd.rhs)
    n_lhs = int(lhs_groups.max()) + 1 if lhs_groups.size else 0
    n_both = int(both_groups.max()) + 1 if both_groups.size else 0
    return n_lhs == n_both


def g3_error_coded(relation, fd: FD) -> float:
    """Vectorized ``g3``: minimum tuple-deletion fraction, over coded columns."""
    n = len(relation)
    if n == 0:
        return 0.0
    lhs_groups = _group_codes(relation, fd.lhs)
    both_groups = _group_codes(relation, fd.lhs | fd.rhs)
    # Count each (lhs-class, rhs-value) cell, then keep the largest cell of
    # every lhs-class -- everything else must be deleted.
    n_both = int(both_groups.max()) + 1
    cell_counts = np.bincount(both_groups, minlength=n_both)
    # Map each cell back to its lhs class via any representative row.
    order = np.argsort(both_groups, kind="stable")
    firsts = order[np.searchsorted(both_groups[order], np.arange(n_both))]
    cell_lhs = lhs_groups[firsts]
    n_lhs = int(lhs_groups.max()) + 1
    best = np.zeros(n_lhs, dtype=np.int64)
    np.maximum.at(best, cell_lhs, cell_counts)
    kept = int(best.sum())
    return (n - kept) / n


def g3_error(relation, fd: FD) -> float:
    """The ``g3`` measure: minimum tuple-deletion fraction.

    0.0 means the dependency holds exactly; small values mean "approximate".
    For each ``X``-class, all tuples except those carrying the class's most
    frequent ``Y``-value must go.
    """
    n = len(relation)
    if n == 0:
        return 0.0
    lhs_positions = relation.schema.positions(sorted(fd.lhs))
    rhs_positions = relation.schema.positions(sorted(fd.rhs))
    groups: dict = {}
    for row in relation.rows:
        key = tuple(row[p] for p in lhs_positions)
        value = tuple(row[p] for p in rhs_positions)
        groups.setdefault(key, Counter())[value] += 1
    kept = sum(counter.most_common(1)[0][1] for counter in groups.values())
    return (n - kept) / n


def violating_pairs(relation, fd: FD, limit: int = 10) -> list[tuple[int, int]]:
    """Up to ``limit`` pairs of tuple indices witnessing a violation.

    Useful for showing an analyst *why* a candidate dependency fails.
    """
    lhs_positions = relation.schema.positions(sorted(fd.lhs))
    rhs_positions = relation.schema.positions(sorted(fd.rhs))
    first_seen: dict = {}
    witnesses: list[tuple[int, int]] = []
    for index, row in enumerate(relation.rows):
        key = tuple(row[p] for p in lhs_positions)
        value = tuple(row[p] for p in rhs_positions)
        if key in first_seen:
            other_index, other_value = first_seen[key]
            if other_value != value:
                witnesses.append((other_index, index))
                if len(witnesses) >= limit:
                    break
        else:
            first_seen[key] = (index, value)
    return witnesses
