"""Functional-dependency mining substrate (paper Sections 7-8).

The paper ranks dependencies discovered by FDEP [Savnik & Flach 1993] and
computes minimum covers with Maier's algorithm [Maier 1980]; TANE-style
partition mining [Huhtala et al. 1999] is provided as the scalable
alternative the paper cites ("Other methods could also be used").
"""

from repro.fd.approximate import ApproximateFD, mine_approximate_fds
from repro.fd.cover import minimum_cover
from repro.fd.dependency import FD, closure, implies, is_trivial, split_rhs
from repro.fd.fdep import agree_sets, fdep
from repro.fd.partitions import Partition, partition_of
from repro.fd.reliable import (
    ReliableFD,
    ReliableMiningStats,
    fraction_of_information,
    mine_reliable_fds,
    mine_topk,
    reliable_score,
)
from repro.fd.tane import tane
from repro.fd.verify import (
    g3_error,
    g3_error_coded,
    holds,
    holds_coded,
    violating_pairs,
)

__all__ = [
    "ApproximateFD",
    "FD",
    "Partition",
    "ReliableFD",
    "ReliableMiningStats",
    "agree_sets",
    "mine_approximate_fds",
    "closure",
    "fdep",
    "fraction_of_information",
    "g3_error",
    "g3_error_coded",
    "holds",
    "holds_coded",
    "implies",
    "is_trivial",
    "minimum_cover",
    "mine_reliable_fds",
    "mine_topk",
    "partition_of",
    "reliable_score",
    "split_rhs",
    "tane",
    "violating_pairs",
]
