"""Functional dependencies: the value type plus closure and implication.

A functional dependency ``X -> Y`` holds on an instance when tuples agreeing
on ``X`` also agree on ``Y`` (paper Section 4).  NULL is treated as an
ordinary value (NULL = NULL), which is the semantics the paper's DBLP
experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _as_frozenset(attributes) -> frozenset:
    if isinstance(attributes, str):
        return frozenset([attributes])
    return frozenset(attributes)


@dataclass(frozen=True)
class FD:
    """An immutable functional dependency ``lhs -> rhs``."""

    lhs: frozenset = field()
    rhs: frozenset = field()

    def __init__(self, lhs, rhs):
        object.__setattr__(self, "lhs", _as_frozenset(lhs))
        object.__setattr__(self, "rhs", _as_frozenset(rhs))
        if not self.rhs:
            raise ValueError("a functional dependency needs a non-empty RHS")

    @property
    def attributes(self) -> frozenset:
        """All attributes mentioned by the dependency (``X`` union ``Y``)."""
        return self.lhs | self.rhs

    def __str__(self) -> str:
        left = ",".join(sorted(self.lhs)) or "∅"
        right = ",".join(sorted(self.rhs))
        return f"[{left}] -> [{right}]"

    def __repr__(self) -> str:
        return f"FD({sorted(self.lhs)!r}, {sorted(self.rhs)!r})"

    def sort_key(self) -> tuple:
        """A deterministic ordering key (for reproducible outputs)."""
        return (tuple(sorted(self.lhs)), tuple(sorted(self.rhs)))


def is_trivial(fd: FD) -> bool:
    """Whether the dependency is implied by reflexivity (``Y`` within ``X``)."""
    return fd.rhs <= fd.lhs


def split_rhs(fd: FD) -> list[FD]:
    """Decompose ``X -> A1...Ak`` into singleton-RHS dependencies."""
    return [FD(fd.lhs, {attribute}) for attribute in sorted(fd.rhs)]


def closure(attributes, fds) -> frozenset:
    """The attribute closure ``X+`` under a set of dependencies.

    Standard fixpoint: repeatedly add the RHS of any dependency whose LHS is
    already contained.  Linear passes; fine for the dependency-set sizes the
    miners produce.
    """
    closed = set(_as_frozenset(attributes))
    pending = list(fds)
    changed = True
    while changed:
        changed = False
        remaining = []
        for fd in pending:
            if fd.lhs <= closed:
                if not fd.rhs <= closed:
                    closed |= fd.rhs
                    changed = True
            else:
                remaining.append(fd)
        pending = remaining
    return frozenset(closed)


def implies(fds, fd: FD) -> bool:
    """Whether ``fds`` logically implies ``fd`` (Armstrong closure test)."""
    return fd.rhs <= closure(fd.lhs, fds)
