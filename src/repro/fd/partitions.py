"""Stripped partitions (the TANE representation of attribute-set equality).

The partition of a relation under an attribute set ``X`` groups tuple indices
with equal ``X``-projections.  *Stripped* partitions drop singleton classes;
two key facts make them the workhorse of dependency mining:

* ``X -> A`` holds iff ``error(pi_X) == error(pi_{X+A})``, where
  ``error(pi) = ||pi|| - |pi|`` (sum of class sizes minus class count);
* ``pi_{X union Y}`` is the product of ``pi_X`` and ``pi_Y``, computable in
  time linear in ``||pi||``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np


@dataclass(frozen=True)
class Partition:
    """A stripped partition over a relation of ``n_rows`` tuples."""

    classes: tuple
    n_rows: int

    @classmethod
    def from_classes(cls, classes, n_rows: int) -> "Partition":
        stripped = tuple(
            tuple(sorted(c)) for c in classes if len(c) > 1
        )
        return cls(classes=tuple(sorted(stripped)), n_rows=n_rows)

    @property
    def error(self) -> int:
        """``||pi|| - |pi|``: how far the partition is from all-singletons."""
        return sum(len(c) for c in self.classes) - len(self.classes)

    @property
    def n_classes(self) -> int:
        """Class count including the stripped singletons."""
        covered = sum(len(c) for c in self.classes)
        return len(self.classes) + (self.n_rows - covered)

    def is_superkey(self) -> bool:
        """All classes are singletons -- the attribute set is a superkey."""
        return not self.classes

    @cached_property
    def labels(self) -> list:
        """Row -> class-index label array (``-1`` for stripped singletons).

        Computed once per partition and reused by every ``refines`` /
        ``product`` call touching it, replacing the per-call dict builds the
        TANE lattice search used to pay for on each of its O(|lattice|)
        partition operations.
        """
        labels = [-1] * self.n_rows
        for class_index, members in enumerate(self.classes):
            for row in members:
                labels[row] = class_index
        return labels

    @cached_property
    def label_array(self) -> "np.ndarray":
        """``labels`` as an ``int32`` NumPy array (``-1`` for singletons).

        The FDEP pair scan consumes this form: equality of two rows under an
        attribute is one vectorized compare of their labels (with the ``-1``
        stripped-singleton rows masked out).
        """
        labels = np.full(self.n_rows, -1, dtype=np.int32)
        for class_index, members in enumerate(self.classes):
            labels[list(members)] = class_index
        return labels

    def refines(self, other: "Partition") -> bool:
        """Whether every class of ``self`` lies within a class of ``other``.

        ``pi_X`` refining ``pi_A`` is exactly the statement ``X -> A``.
        """
        labels = other.labels
        for members in self.classes:
            first = labels[members[0]]
            if first < 0:
                # A stripped singleton of ``other`` cannot contain a class
                # with two or more members.
                return False
            for row in members[1:]:
                if labels[row] != first:
                    return False
        return True


def partition_of(relation, attributes) -> Partition:
    """The stripped partition of a relation under an attribute set.

    An empty attribute set yields the single all-rows class (every tuple
    agrees on nothing vacuously).  Grouping runs over the relation's coded
    columns: equal ``X``-projections are equal code vectors, found with one
    stable ``argsort`` over a fused per-row key instead of a per-row dict of
    value tuples.
    """
    attributes = sorted(attributes) if not isinstance(attributes, str) else [attributes]
    n = len(relation)
    if not attributes:
        classes = [list(range(n))] if n else []
        return Partition.from_classes(classes, n)
    positions = relation.schema.positions(attributes)
    if n == 0:
        return Partition.from_classes([], 0)

    store = relation.coded
    columns = store.columns
    # Fuse the selected columns into one int64 group key.  Re-compressing
    # with ``np.unique(return_inverse)`` after every pairing keeps the key
    # dense, so ``inv * cardinality + code`` can never overflow.
    inv = columns[positions[0]].astype(np.int64)
    for p in positions[1:]:
        inv = inv * len(store.dictionaries[p]) + columns[p]
        if len(positions) > 2:
            _, inv = np.unique(inv, return_inverse=True)
    order = np.argsort(inv, kind="stable")
    fused = inv[order]
    boundaries = np.flatnonzero(fused[1:] != fused[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [n]))
    classes = [
        order[s:e].tolist() for s, e in zip(starts.tolist(), ends.tolist())
        if e - s > 1
    ]
    return Partition.from_classes(classes, n)


def _partition_of_rows(relation, attributes) -> Partition:
    """Row-tuple oracle for :func:`partition_of` (parity tests only)."""
    attributes = sorted(attributes) if not isinstance(attributes, str) else [attributes]
    if not attributes:
        classes = [list(range(len(relation)))] if len(relation) else []
        return Partition.from_classes(classes, len(relation))
    positions = relation.schema.positions(attributes)
    buckets: dict = {}
    for index, row in enumerate(relation.rows):
        key = tuple(row[p] for p in positions)
        buckets.setdefault(key, []).append(index)
    return Partition.from_classes(buckets.values(), len(relation))


def product(left: Partition, right: Partition) -> Partition:
    """The product partition ``pi_X * pi_Y = pi_{X union Y}``.

    Linear-time TANE algorithm: label rows by their class in ``left``, then
    split each ``right`` class by those labels.
    """
    if left.n_rows != right.n_rows:
        raise ValueError("partitions must cover the same relation")
    label = left.labels
    classes = []
    for members in right.classes:
        sub: dict = {}
        for row in members:
            owner = label[row]
            if owner >= 0:
                sub.setdefault(owner, []).append(row)
        classes.extend(group for group in sub.values() if len(group) > 1)
    return Partition.from_classes(classes, left.n_rows)
