"""Minimum covers of dependency sets (Maier 1980, the paper's [16]).

The paper runs FDEP, then reduces the discovered set to a minimum cover
before ranking (Section 8.1.4).  The classic three steps:

1. split right-hand sides into single attributes;
2. remove extraneous LHS attributes (left-reduction);
3. remove dependencies implied by the rest (redundancy elimination);

followed by regrouping dependencies that share a left-hand side, which is
how the paper displays results (e.g. ``[EmpNo] -> [BirthYear, FirstName,
...]``).
"""

from __future__ import annotations

from repro.fd.dependency import FD, closure, split_rhs


def left_reduce(fds: list[FD]) -> list[FD]:
    """Remove extraneous LHS attributes from every dependency.

    ``B`` is extraneous in ``X -> A`` when ``A`` is already in the closure
    of ``X - {B}`` under the full set.  Processes attributes in sorted order
    for determinism.
    """
    current = [fd for single in fds for fd in split_rhs(single)]
    reduced: list[FD] = []
    for fd in sorted(current, key=FD.sort_key):
        lhs = set(fd.lhs)
        for attribute in sorted(fd.lhs):
            if len(lhs) <= 1:
                break
            trimmed = lhs - {attribute}
            if fd.rhs <= closure(trimmed, current):
                lhs = trimmed
        reduced.append(FD(frozenset(lhs), fd.rhs))
    return reduced


def remove_redundant(fds: list[FD]) -> list[FD]:
    """Drop dependencies implied by the remaining ones."""
    kept = sorted(set(fds), key=FD.sort_key)
    index = 0
    while index < len(kept):
        fd = kept[index]
        rest = kept[:index] + kept[index + 1 :]
        if fd.rhs <= closure(fd.lhs, rest):
            kept = rest
        else:
            index += 1
    return kept


def regroup(fds: list[FD]) -> list[FD]:
    """Union the RHSs of dependencies sharing a LHS (display form)."""
    by_lhs: dict[frozenset, set] = {}
    for fd in fds:
        by_lhs.setdefault(fd.lhs, set()).update(fd.rhs)
    return sorted(
        (FD(lhs, frozenset(rhs)) for lhs, rhs in by_lhs.items()), key=FD.sort_key
    )


def minimum_cover(fds, group_rhs: bool = False) -> list[FD]:
    """A minimum cover of ``fds`` (singleton RHSs unless ``group_rhs``).

    Deterministic: ties in reduction order are broken by sorted attribute
    names, so equal inputs yield equal covers.
    """
    fds = list(fds)
    if not fds:
        return []
    reduced = remove_redundant(left_reduce(fds))
    return regroup(reduced) if group_rhs else reduced
