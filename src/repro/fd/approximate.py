"""Approximate functional dependencies under the ``g3`` measure.

The paper contrasts its *value-based* notion of approximation (a dependency
is almost-true because a few specific values are dirty, Section 6.2) with
the *tuple-based* measure used by TANE-style miners, where ``g3`` is the
minimum fraction of tuples whose removal makes the dependency exact.  This
module provides the tuple-based side of that comparison: a level-wise miner
for all minimal dependencies with ``g3 <= max_error``.

``g3`` is monotone non-increasing in the LHS, so once ``X -> A`` qualifies
no proper superset of ``X`` is minimal -- the standard pruning.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.fd.dependency import FD
from repro.fd.verify import g3_error


@dataclass(frozen=True)
class ApproximateFD:
    """A dependency together with its ``g3`` error on the instance."""

    fd: FD
    error: float

    def __str__(self) -> str:
        return f"{self.fd}  (g3={self.error:.4f})"


def mine_approximate_fds(
    relation,
    max_error: float = 0.05,
    max_lhs_size: int = 3,
) -> list[ApproximateFD]:
    """All minimal dependencies with ``g3 <= max_error``.

    ``max_error = 0`` degenerates to exact minimal dependencies.  Breadth-
    first over LHS sizes with minimality pruning; intended for the modest
    attribute counts of the paper's relations.
    """
    if not 0.0 <= max_error < 1.0:
        raise ValueError(f"max_error must be in [0, 1), got {max_error!r}")
    if max_lhs_size < 1:
        raise ValueError("max_lhs_size must be at least 1")
    names = relation.schema.names
    if len(relation) == 0:
        return []

    results: list[ApproximateFD] = []
    for rhs in names:
        others = [n for n in names if n != rhs]
        minimal: list[frozenset] = []
        for size in range(1, min(max_lhs_size, len(others)) + 1):
            for lhs in combinations(others, size):
                candidate = frozenset(lhs)
                if any(found <= candidate for found in minimal):
                    continue  # a subset already qualifies
                error = g3_error(relation, FD(candidate, {rhs}))
                if error <= max_error:
                    minimal.append(candidate)
                    results.append(
                        ApproximateFD(fd=FD(candidate, {rhs}), error=error)
                    )
    results.sort(key=lambda a: (a.error, a.fd.sort_key()))
    return results
