"""Durable checkpoint/resume for discovery runs.

:class:`CheckpointStore` persists versioned, checksummed, atomically
written snapshots of pipeline state; :class:`repro.core.StructureDiscovery`
threads one through the stage guards (``checkpoint=``, CLI
``--checkpoint-dir`` / ``--resume``) so an interrupted run -- crash,
``KeyboardInterrupt``, SIGKILL, budget exhaustion -- resumes from its last
completed stage instead of starting over.  Corrupt or mismatched snapshots
are quarantined and recomputed, never trusted.  See ``docs/ROBUSTNESS.md``
for the snapshot layout, manifest fields and determinism guarantee.
"""

from repro.checkpoint.store import (
    DEFAULT_CADENCE,
    DEFAULT_MAX_QUARANTINED,
    MAGIC,
    SNAPSHOT_VERSION,
    CheckpointEvent,
    CheckpointStore,
    HeartbeatStatus,
    StageCheckpoint,
    relation_fingerprint,
)

__all__ = [
    "DEFAULT_CADENCE",
    "DEFAULT_MAX_QUARANTINED",
    "MAGIC",
    "SNAPSHOT_VERSION",
    "CheckpointEvent",
    "CheckpointStore",
    "HeartbeatStatus",
    "StageCheckpoint",
    "relation_fingerprint",
]
