"""Durable, crash-safe checkpoints for discovery runs.

A :class:`CheckpointStore` makes the hours-long pipeline scans the paper
assumes (LIMBO Phase 1 -> AIB -> FD mining -> cover -> FD-RANK) cheap to
interrupt: per-stage snapshots are written after every completed stage,
intra-stage progress is heartbeaten at a configurable cadence off the
existing :meth:`repro.budget.Budget.checkpoint` tick stream, and a resumed
run reuses every validated snapshot instead of recomputing it.

Design rules, in order of importance:

1. **Never corrupt a report.**  A snapshot is reused only when its
   manifest matches this run exactly (schema version, input relation
   fingerprint, phi/psi/miner/backend/workers parameters) and its own
   checksum verifies.  Anything else -- truncated file, flipped byte,
   version bump, parameter drift -- is *quarantined* (renamed aside),
   recorded as a :class:`CheckpointEvent` for the report's health section,
   and recomputed.  Stage snapshots additionally resume as a **prefix**:
   the first stage that cannot be loaded stops all later stage loads, so a
   recomputed stage can never feed a snapshot computed from different
   upstream state.
2. **Never tear a file.**  Every write goes through
   :func:`repro.relation.io.atomic_write` (temp file + fsync +
   ``os.replace``); a SIGKILL mid-save leaves the previous snapshot or
   nothing.
3. **Never fail the run.**  Save errors (full disk, permissions) degrade
   to "no checkpoint" with a ``save-failure`` event; only an unusable
   store *directory* raises (:class:`repro.errors.CheckpointError`),
   because that is a configuration error the user must see immediately.

Snapshot layout inside the store directory::

    manifest.json                   run identity: schema version, relation
                                    fingerprint, parameters, run token
    stage.<stage>.ckpt              one per completed pipeline stage:
                                    header line + pickled result/outcomes
    phase.<stage>.<digest>.ckpt     intra-stage artifacts (LIMBO Phase-1
                                    summaries, AIB merge sequences), keyed
                                    by a digest of their exact inputs
    progress.json                   heartbeat: last stage / unit count seen
    <kind>.<name>.ckpt              run-independent *named* snapshots: the
                                    resident service's model cache and
                                    relation state, content-addressed by
                                    the caller (no run token)
    daemon.lock                     advisory flock held by `repro serve` so
                                    two daemons cannot share one store
    *.quarantined-N                 rejected snapshots, kept for forensics

Determinism guarantee: stage results are pure functions of the relation and
the manifest parameters, and only stages whose whole prefix ran healthy
(``ok``) are ever snapshotted -- so a resumed run is bit-identical to an
uninterrupted one, for any worker count and either numeric backend.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path

from repro.budget import read_rss
from repro.errors import CheckpointError
from repro.relation.io import atomic_write, fsync_directory
from repro.testing.faults import fault_point

#: Bumped whenever the snapshot byte format changes; a mismatch quarantines.
SNAPSHOT_VERSION = 1

#: First bytes of every snapshot file (the NUL keeps it off the header line).
MAGIC = b"repro-ckpt\x00"

#: Budget units between intra-stage progress heartbeats.
DEFAULT_CADENCE = 10_000

#: Quarantined snapshots kept per store before the oldest are deleted.
DEFAULT_MAX_QUARANTINED = 8

_MANIFEST_NAME = "manifest.json"
_PROGRESS_NAME = "progress.json"
_INCIDENT_NAME = "incident.json"
_LOCK_NAME = "daemon.lock"

#: Token written into named (run-independent) snapshots.  Named snapshots
#: are content-addressed by their caller (the service keys models on the
#: relation fingerprint + parameter digest), so unlike stage snapshots they
#: deliberately survive across runs and process restarts.
_SHARED_TOKEN = "shared"

#: Filesystem-safe snapshot names (kind and name components).
_NAME_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


def _check_name(label: str, value: str) -> str:
    if not value or any(ch not in _NAME_SAFE for ch in value):
        raise ValueError(
            f"{label} must be non-empty and use only [A-Za-z0-9._-], "
            f"got {value!r}"
        )
    return value


@dataclass
class CheckpointEvent:
    """One recorded checkpoint incident (quarantine, mismatch, save failure).

    Mirrors :class:`repro.parallel.ExecutorEvent` so the discovery health
    section can render pool and checkpoint incidents uniformly.
    """

    kind: str
    where: str
    detail: str

    def render(self) -> str:
        return f"{self.kind} at {self.where or 'store'}: {self.detail}"


@dataclass
class HeartbeatStatus:
    """A watchdog's view of ``progress.json`` at one instant.

    ``state`` is one of:

    * ``"missing"``    -- no heartbeat has ever been written (or the file
      was removed); ``age_seconds``, ``mtime_ns`` and ``payload`` are None;
    * ``"ok"``         -- the file parsed; ``payload`` is the heartbeat dict;
    * ``"unreadable"`` -- the file exists but is truncated or not JSON
      (e.g. torn by a crash on a filesystem without atomic rename);
      ``payload`` is None but the mtime-derived age is still usable.

    ``age_seconds`` is computed against the *wall clock* and clamped at
    zero: a clock-skewed mtime in the future reads as a fresh heartbeat,
    never as a negative age or an instant hang.  Staleness policy (how old
    is too old) belongs to the caller -- :class:`repro.supervisor` keys its
    hang verdict on whether the heartbeat *changed*, using the age only in
    diagnostics.
    """

    state: str
    age_seconds: float | None = None
    mtime_ns: int | None = None
    payload: dict | None = None

    def describe(self) -> str:
        if self.state == "missing":
            return "no heartbeat written yet"
        age = f"{self.age_seconds:.1f}s old"
        if self.state == "unreadable":
            return f"heartbeat unreadable (torn write?), {age}"
        stage = (self.payload or {}).get("stage") or "(startup)"
        return f"heartbeat {age}, stage {stage!r}"


def relation_fingerprint(relation) -> str:
    """A stable hex digest of a relation's schema and exact row contents.

    Hashes the coded representation (per-attribute value dictionaries plus
    ``int32`` code columns), which determines the rows exactly and -- codes
    being assigned in first-seen stream order -- depends only on the data,
    never on how the ingest stream was chunked: a resume under a different
    ``chunk_rows`` (or a governed-ingest stride escalation replayed from
    the same surviving rows) still validates.  NULLs hash distinctly from
    any string (including ``"NULL"``); values hash by ``repr`` so ordinary
    str/int/float cells are unambiguous.
    """
    return relation.coded.content_digest()


class StageCheckpoint:
    """A store handle scoped to one pipeline stage.

    Passed down into :class:`repro.clustering.Limbo` / :func:`aib` so they
    can persist intra-stage artifacts (Phase-1 summaries, merge sequences)
    without knowing about the run-level store.  ``key`` is any repr-stable
    tuple describing the artifact's *exact inputs*; snapshots are only ever
    reused when the key matches, so a handle can be armed unconditionally.
    """

    def __init__(self, store: "CheckpointStore", stage: str):
        self.store = store
        self.stage = stage

    def save(self, key, payload) -> None:
        self.store.save_phase(self.stage, key, payload)

    def load(self, key):
        return self.store.load_phase(self.stage, key)


class CheckpointStore:
    """Versioned, checksummed, atomically-written snapshots of a run.

    Parameters
    ----------
    directory:
        Where snapshots live.  Created (with parents) if missing; a path
        that exists but is not a writable directory raises
        :class:`repro.errors.CheckpointError`.
    cadence:
        Budget units between intra-stage progress heartbeats
        (:data:`DEFAULT_CADENCE`).
    resume:
        Whether :meth:`open_run` may reuse an existing manifest and its
        snapshots.  ``False`` starts fresh: a new run token is minted and
        nothing on disk is ever loaded (stale files are quarantined only
        if a later resumed run trips over them).
    max_quarantined:
        How many quarantined snapshots to keep per store directory
        (:data:`DEFAULT_MAX_QUARANTINED`); the oldest beyond this are
        deleted so a crash-looping run cannot fill the disk with
        forensics.
    """

    def __init__(self, directory, cadence: int = DEFAULT_CADENCE,
                 resume: bool = False,
                 max_quarantined: int = DEFAULT_MAX_QUARANTINED):
        if cadence < 1:
            raise ValueError("cadence must be positive")
        if max_quarantined < 1:
            raise ValueError("max_quarantined must be positive")
        self.directory = Path(directory)
        self.cadence = int(cadence)
        self.resume = bool(resume)
        self.max_quarantined = int(max_quarantined)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint directory {self.directory}: {exc}",
                path=self.directory,
            ) from exc
        if not self.directory.is_dir():
            raise CheckpointError(
                f"checkpoint path {self.directory} is not a directory",
                path=self.directory,
            )
        #: Checkpoint incidents, for the discovery health report.
        self.events: list[CheckpointEvent] = []
        #: Counters for tests and diagnostics.
        self.stage_loads = 0
        self.stage_saves = 0
        self.phase_loads = 0
        self.phase_saves = 0
        self.named_loads = 0
        self.named_saves = 0
        self._lock_handle = None
        self._token: str | None = None
        self._resuming = False
        self._halt_stage_loads = False
        self._current_stage = ""
        self._last_heartbeat = 0
        self._last_units = 0
        self._heartbeat_failed = False

    # -- run lifecycle -----------------------------------------------------------

    def open_run(self, relation, params: dict) -> bool:
        """Bind the store to one run; returns whether it is resuming.

        ``params`` is the JSON-serializable parameter dict that, together
        with the relation fingerprint, defines snapshot validity.  With
        ``resume=True`` and a manifest matching both, the previous run's
        token is adopted and its snapshots become loadable; any mismatch
        quarantines the old state and starts fresh.
        """
        fingerprint = relation_fingerprint(relation)
        params = json.loads(json.dumps(params, sort_keys=True))
        self._halt_stage_loads = False
        self._resuming = False
        manifest_path = self.directory / _MANIFEST_NAME
        if self.resume and manifest_path.exists():
            problem = None
            try:
                manifest = json.loads(manifest_path.read_text("utf-8"))
            except (OSError, ValueError) as exc:
                manifest, problem = None, f"unreadable manifest: {exc}"
            if manifest is not None:
                if manifest.get("schema_version") != SNAPSHOT_VERSION:
                    problem = (
                        f"schema version {manifest.get('schema_version')!r} "
                        f"!= {SNAPSHOT_VERSION}"
                    )
                elif manifest.get("fingerprint") != fingerprint:
                    problem = "input relation fingerprint changed"
                elif manifest.get("params") != params:
                    problem = (
                        f"parameters changed: stored {manifest.get('params')!r},"
                        f" run has {params!r}"
                    )
                elif not isinstance(manifest.get("token"), str):
                    problem = "manifest has no run token"
            if problem is None:
                self._token = manifest["token"]
                self._resuming = True
                return True
            self._record("manifest-mismatch", "manifest", problem)
            self._quarantine(manifest_path)
            for stale in sorted(self.directory.glob("*.ckpt")):
                self._quarantine(stale)
        self._token = os.urandom(8).hex()
        self._write_manifest(fingerprint, params)
        return False

    def _write_manifest(self, fingerprint: str, params: dict) -> None:
        manifest = {
            "schema_version": SNAPSHOT_VERSION,
            "fingerprint": fingerprint,
            "params": params,
            "token": self._token,
        }
        try:
            with atomic_write(self.directory / _MANIFEST_NAME) as handle:
                json.dump(manifest, handle, sort_keys=True, indent=1)
        except OSError as exc:
            raise CheckpointError(
                f"cannot write checkpoint manifest in {self.directory}: {exc}",
                path=self.directory,
            ) from exc

    def stage_handle(self, stage: str) -> StageCheckpoint:
        """A :class:`StageCheckpoint` scoped to ``stage``."""
        return StageCheckpoint(self, stage)

    def enter_stage(self, stage: str) -> None:
        """Label subsequent heartbeats with the stage now executing.

        Writes an immediate heartbeat so the stage transition is durable
        the moment it happens: a supervisor attributing a crash to a stage
        reads the right stage even if the child dies before the first
        cadence tick inside it.
        """
        self._current_stage = stage
        self._write_progress(self._last_units, "stage-entry")

    # -- stage snapshots ---------------------------------------------------------

    def save_stage(self, stage: str, payload) -> None:
        """Snapshot one completed stage (never raises; see module rules)."""
        self._save(self._stage_path(stage), "stage", stage, "", payload)

    def load_stage(self, stage: str):
        """Reuse one stage snapshot, or ``None`` to recompute.

        Stage loads are prefix-only: the first miss (absent, corrupt, or
        mismatched snapshot) halts every later stage load for this run,
        because downstream snapshots were computed from state this run is
        about to recompute.
        """
        if not self._resuming or self._halt_stage_loads:
            return None
        path = self._stage_path(stage)
        if not path.exists():
            self._halt_stage_loads = True
            return None
        payload = self._load(path, "stage", stage, "")
        if payload is _REJECTED:
            self._halt_stage_loads = True
            return None
        self.stage_loads += 1
        return payload

    # -- intra-stage phase snapshots ---------------------------------------------

    def save_phase(self, stage: str, key, payload) -> None:
        """Snapshot an intra-stage artifact under an input-derived key."""
        self._save(self._phase_path(stage, key), "phase", stage, repr(key),
                   payload)

    def load_phase(self, stage: str, key):
        """Reuse an intra-stage artifact, or ``None`` to recompute.

        Unlike stage snapshots these are content-addressed by their exact
        inputs (the key), so they stay reusable even after the stage-load
        prefix halts -- a recomputed stage that reaches identical inputs
        may skip identical work.
        """
        if not self._resuming:
            return None
        path = self._phase_path(stage, key)
        if not path.exists():
            return None
        payload = self._load(path, "phase", stage, repr(key))
        if payload is _REJECTED:
            return None
        self.phase_loads += 1
        return payload

    # -- named (run-independent) snapshots ---------------------------------------

    def save_named(self, kind: str, name: str, payload) -> int | None:
        """Snapshot a run-independent artifact; returns its payload bytes.

        Unlike stage/phase snapshots these carry no run token: the caller
        owns the addressing scheme (the resident service keys models on
        ``relation_fingerprint + parameter digest`` and relation state on
        the relation id), so the snapshot stays valid across daemon
        restarts by construction.  Same durability rules as every other
        snapshot: atomic write, checksummed, quarantined on any defect,
        save failures degrade to "not persisted" (``None``).
        """
        _check_name("snapshot kind", kind)
        _check_name("snapshot name", name)
        path = self._named_path(kind, name)
        before = self.events[:]
        self._save(path, kind, name, "", payload, token=_SHARED_TOKEN)
        if len(self.events) > len(before):
            return None  # a save-failure event was recorded
        self.named_saves += 1
        try:
            return path.stat().st_size
        except OSError:
            return None

    def load_named(self, kind: str, name: str):
        """Reuse a run-independent artifact, or ``None`` to recompute."""
        _check_name("snapshot kind", kind)
        _check_name("snapshot name", name)
        path = self._named_path(kind, name)
        if not path.exists():
            return None
        payload = self._load(path, kind, name, "", token=_SHARED_TOKEN)
        if payload is _REJECTED:
            return None
        self.named_loads += 1
        return payload

    def list_named(self, kind: str) -> list[str]:
        """Names of every stored snapshot of ``kind``, sorted."""
        _check_name("snapshot kind", kind)
        prefix = f"{kind}."
        names = []
        for entry in self.directory.glob(f"{kind}.*.ckpt"):
            names.append(entry.name[len(prefix):-len(".ckpt")])
        return sorted(names)

    def delete_named(self, kind: str, name: str) -> None:
        """Drop one named snapshot (best effort, never raises)."""
        _check_name("snapshot kind", kind)
        _check_name("snapshot name", name)
        try:
            os.unlink(self._named_path(kind, name))
        except OSError:
            pass

    def _named_path(self, kind: str, name: str) -> Path:
        return self.directory / f"{kind}.{name}.ckpt"

    # -- the daemon lock ---------------------------------------------------------

    def acquire_lock(self) -> None:
        """Take the store's exclusive daemon lock, or raise.

        A resident daemon must be the *only* writer of a checkpoint
        directory -- two daemons snapshotting into the same store would
        silently corrupt each other's model cache.  The lock is an
        advisory ``flock`` on ``daemon.lock`` (held for the process
        lifetime, released by the kernel even on SIGKILL, so a crashed
        daemon never wedges its successor) with the holder's pid written
        into the file for the error message.  Raises
        :class:`repro.errors.CheckpointError` when another process holds
        it; idempotent when this process already does.
        """
        if self._lock_handle is not None:
            return
        path = self.directory / _LOCK_NAME
        try:
            handle = open(path, "a+", encoding="utf-8")
        except OSError as exc:
            raise CheckpointError(
                f"cannot open daemon lock in {self.directory}: {exc}",
                path=self.directory,
            ) from exc
        try:
            import fcntl

            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except ImportError:  # pragma: no cover - non-POSIX fallback
            pass
        except OSError:
            try:
                handle.seek(0)
                holder = handle.read().strip() or "unknown pid"
            except OSError:
                holder = "unknown pid"
            handle.close()
            raise CheckpointError(
                f"checkpoint directory {self.directory} is locked by "
                f"another daemon ({holder}); refusing to start a second "
                f"daemon against the same store",
                path=self.directory, holder=holder,
            ) from None
        try:
            handle.seek(0)
            handle.truncate()
            handle.write(f"pid {os.getpid()}\n")
            handle.flush()
        except OSError:
            pass  # the flock, not the pid note, is the lock
        self._lock_handle = handle

    def release_lock(self) -> None:
        """Release the daemon lock (no-op when not held)."""
        if self._lock_handle is None:
            return
        handle, self._lock_handle = self._lock_handle, None
        try:
            import fcntl

            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        except (ImportError, OSError):  # pragma: no cover - best effort
            pass
        try:
            handle.close()
        except OSError:  # pragma: no cover - best effort
            pass

    @property
    def locked(self) -> bool:
        """Whether *this process* currently holds the daemon lock."""
        return self._lock_handle is not None

    # -- the snapshot byte format ------------------------------------------------

    def _stage_path(self, stage: str) -> Path:
        return self.directory / f"stage.{stage}.ckpt"

    def _phase_path(self, stage: str, key) -> Path:
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:16]
        return self.directory / f"phase.{stage}.{digest}.ckpt"

    def _save(self, path: Path, kind: str, stage: str, key: str,
              payload, token: str | None = None) -> None:
        where = f"{kind}:{stage}"
        try:
            data = pickle.dumps(payload)
        except Exception as exc:
            self._record("save-failure", where,
                         f"unpicklable payload: {type(exc).__name__}: {exc}")
            return
        header = json.dumps({
            "version": SNAPSHOT_VERSION,
            "token": token if token is not None else self._token,
            "kind": kind,
            "stage": stage,
            "key": key,
            "sha256": hashlib.sha256(data).hexdigest(),
            "length": len(data),
        }, sort_keys=True).encode("ascii")
        blob = MAGIC + header + b"\n" + data
        try:
            blob = fault_point("checkpoint.save", blob)
            with atomic_write(path, "wb") as handle:
                handle.write(blob)
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            self._record("save-failure", where,
                         f"{type(exc).__name__}: {exc}")
            return
        if kind == "stage":
            self.stage_saves += 1
        else:
            self.phase_saves += 1

    def _load(self, path: Path, kind: str, stage: str, key: str,
              token: str | None = None):
        """Validate and unpickle one snapshot; quarantine on any defect."""
        where = f"{kind}:{stage}"
        try:
            raw = fault_point("checkpoint.load", path.read_bytes())
            if not raw.startswith(MAGIC):
                raise ValueError("bad magic")
            header_line, _, data = raw[len(MAGIC):].partition(b"\n")
            header = json.loads(header_line.decode("ascii"))
            if header.get("version") != SNAPSHOT_VERSION:
                raise ValueError(
                    f"snapshot version {header.get('version')!r} "
                    f"!= {SNAPSHOT_VERSION}"
                )
            expected_token = token if token is not None else self._token
            if header.get("token") != expected_token:
                raise ValueError("snapshot belongs to a different run")
            if (header.get("kind"), header.get("stage")) != (kind, stage):
                raise ValueError("snapshot labelled for a different site")
            if kind == "phase" and header.get("key") != key:
                raise ValueError("phase key collision")
            if header.get("length") != len(data):
                raise ValueError(
                    f"truncated payload ({len(data)} of "
                    f"{header.get('length')} bytes)"
                )
            if hashlib.sha256(data).hexdigest() != header.get("sha256"):
                raise ValueError("payload checksum mismatch")
            return pickle.loads(data)
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            self._record(
                "quarantine", where,
                f"{path.name}: {type(exc).__name__}: {exc}; recomputing",
            )
            self._quarantine(path)
            return _REJECTED

    def _quarantine(self, path: Path) -> None:
        """Rename a rejected snapshot aside (best effort, never raises)."""
        suffix = 1
        while True:
            target = path.with_name(f"{path.name}.quarantined-{suffix}")
            if not target.exists():
                break
            suffix += 1
        try:
            os.replace(path, target)
            fsync_directory(self.directory)
        except OSError:
            pass
        self._prune_quarantined()

    def _prune_quarantined(self) -> None:
        """Keep only the newest :attr:`max_quarantined` quarantined files.

        A supervised run that crash-loops on the same corrupt snapshot
        would otherwise accumulate one forensic copy per attempt, without
        bound.  Newest-first by mtime (name as a deterministic tiebreak);
        best effort, never raises.
        """
        try:
            quarantined = [
                (entry.stat().st_mtime_ns, entry.name, entry)
                for entry in self.directory.glob("*.quarantined-*")
            ]
        except OSError:
            return
        quarantined.sort(reverse=True)
        for _, _, stale in quarantined[self.max_quarantined:]:
            try:
                os.unlink(stale)
            except OSError:
                pass

    # -- heartbeats --------------------------------------------------------------

    def attach(self, budget) -> None:
        """Heartbeat intra-stage progress off a budget's checkpoint ticks.

        Every :attr:`cadence` units, ``progress.json`` is atomically
        rewritten with the current stage, unit count and checkpoint site --
        a cheap liveness marker for whoever supervises a long run.
        Tolerates ``budget=None`` (heartbeats simply stay off).
        """
        if budget is not None:
            budget.on_checkpoint(self._heartbeat)

    def _heartbeat(self, units_used: int, where: str) -> None:
        self._last_units = units_used
        if units_used - self._last_heartbeat < self.cadence:
            return
        self._last_heartbeat = units_used
        self._write_progress(units_used, where)

    def _write_progress(self, units_used: int, where: str) -> None:
        try:
            with atomic_write(self.directory / _PROGRESS_NAME) as handle:
                json.dump({
                    "token": self._token,
                    "stage": self._current_stage,
                    "units_used": units_used,
                    "where": where,
                    "pid": os.getpid(),
                    "rss_bytes": read_rss(),
                    "wall_time": time.time(),
                }, handle, sort_keys=True)
        except Exception as exc:
            if not self._heartbeat_failed:
                self._heartbeat_failed = True
                self._record("save-failure", "progress",
                             f"{type(exc).__name__}: {exc}")

    def heartbeat_status(self, now: float | None = None) -> HeartbeatStatus:
        """Classify ``progress.json`` for a watchdog (see
        :class:`HeartbeatStatus`).

        Pure read: usable from a *different* process than the one writing
        heartbeats (the supervisor's parent-side store never runs the
        pipeline).  ``now`` defaults to ``time.time()``; pass a fixed value
        in tests for deterministic ages.
        """
        path = self.directory / _PROGRESS_NAME
        try:
            stat = path.stat()
        except OSError:
            return HeartbeatStatus(state="missing")
        if now is None:
            now = time.time()
        age = max(0.0, now - stat.st_mtime)
        try:
            payload = json.loads(path.read_text("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("heartbeat is not a JSON object")
        except (OSError, ValueError):
            return HeartbeatStatus(state="unreadable", age_seconds=age,
                                   mtime_ns=stat.st_mtime_ns)
        return HeartbeatStatus(state="ok", age_seconds=age,
                               mtime_ns=stat.st_mtime_ns, payload=payload)

    # -- incident log ------------------------------------------------------------

    def write_incident(self, payload: dict) -> Path | None:
        """Atomically write ``incident.json`` next to the snapshots.

        The supervisor rewrites this after every attempt so the file is
        complete even when the supervisor itself is killed next.  Best
        effort: returns the path, or ``None`` when the write failed (a
        full disk must not mask the run's real outcome).
        """
        path = self.directory / _INCIDENT_NAME
        try:
            with atomic_write(path) as handle:
                json.dump(payload, handle, sort_keys=True, indent=1)
        except Exception as exc:
            self._record("save-failure", "incident",
                         f"{type(exc).__name__}: {exc}")
            return None
        return path

    # -- events ------------------------------------------------------------------

    def _record(self, kind: str, where: str, detail: str) -> None:
        self.events.append(CheckpointEvent(kind=kind, where=where,
                                           detail=detail))


class _Rejected:
    """Internal sentinel: a snapshot existed but failed validation."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<rejected snapshot>"


_REJECTED = _Rejected()
