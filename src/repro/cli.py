"""Command-line interface: ``python -m repro <command> ...``.

Five commands cover the analyst workflow the paper describes:

* ``discover``   -- full structure-discovery report for a CSV relation;
* ``rank``       -- mine dependencies and print the FD-RANK order with
                    RAD/RTR for each;
* ``partition``  -- horizontal partitioning with the natural-k heuristic;
* ``redesign``   -- propose a lossless vertical decomposition;
* ``dataset``    -- emit the synthetic DB2-sample / DBLP relations as CSV;
* ``serve``      -- a resident HTTP daemon serving discovery over JSON,
                    with admission control, a crash-safe model cache and
                    graceful SIGTERM drain (see ``docs/SERVICE.md``);
* ``audit``      -- independently re-certify a ``discover --out-json``
                    report against its source CSV: exact FDs by partition
                    refinement, reliable scores against a re-derived
                    fraction of information, cluster assignments against
                    the DCF summaries, dendrogram monotonicity (see
                    ``docs/ROBUSTNESS.md``); exits 1 naming the offending
                    artifact when anything fails.

``discover --verify`` runs the same auditor in-process over the freshly
mined report (adding a ``verification`` health entry and, with
``--checkpoint-dir``, an ``audit.json`` next to the snapshots); a failed
verification exits 1.  ``--out-json`` writes the machine-readable report
the standalone ``audit`` command consumes.

CSV conventions follow :mod:`repro.relation.io`: a header row, empty fields
are NULLs.  CSV-consuming commands accept ``--on-error {strict,coerce}``
(malformed input: fail with a line number vs. repair-and-count),
``--deadline SECONDS`` (a wall-clock budget threaded through the miners and
clustering phases) and ``--memory-limit SIZE`` (e.g. ``256M``: a
cooperative memory cap enforced by :class:`repro.budget.MemoryGovernor`;
breaching it exits 3, except under ``discover``'s degradation policy).
``discover`` additionally takes ``--checkpoint-dir`` / ``--resume`` /
``--checkpoint-cadence`` for durable checkpoint/resume of interrupted
runs, ``--supervise`` / ``--max-restarts`` / ``--hang-timeout`` for
crash/hang-supervised runs that auto-resume from those checkpoints, plus
``--on-memory-pressure {fail,degrade}`` and ``--max-leaf-entries N`` for
memory-governed execution (see ``docs/ROBUSTNESS.md``).  ``discover`` and
``rank`` both take ``--fd-mode {exact,reliable,topk}`` with ``--fd-k``,
``--fd-alpha``, ``--fd-max-lhs`` and ``--seed`` to swap the exact miners for the reliable
branch-and-bound miner of ``repro.fd.reliable`` (see ``docs/FD_MINING.md``).  All file outputs (``--out`` and snapshots alike)
are written atomically: temp file + ``os.replace``, so an interrupt never
leaves a half-written file.

Exit codes: 0 success (including degraded ``discover`` runs), 1 other
library errors, 2 input/usage errors, 3 resource limit exceeded, 130
interrupted.
"""

from __future__ import annotations

import argparse
import sys

from repro.budget import Budget, parse_memory_size
from repro.core import (
    StructureDiscovery,
    fd_rank,
    group_attributes,
    horizontal_partition,
    redundancy_report,
)
from repro.core.redesign import vertical_redesign
from repro.datasets import db2_sample, dblp
from repro.errors import (
    InputError,
    MemoryLimitExceeded,
    ReproError,
    ResourceLimitExceeded,
)
from repro.fd import fdep, mine_reliable_fds, minimum_cover, tane
from repro.relation import Relation, load_csv, write_csv

#: Exit codes for the failure classes the taxonomy distinguishes.
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_INPUT = 2
EXIT_RESOURCE_LIMIT = 3
EXIT_INTERRUPT = 130


def _workers_arg(value: str):
    """argparse type for ``--workers``: ``auto`` or a positive integer."""
    if value == "auto":
        return "auto"
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--workers must be 'auto' or a positive integer, got {value!r}"
        )
    if count < 1:
        raise argparse.ArgumentTypeError("--workers must be >= 1")
    return count


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=_workers_arg, default=None, metavar="N",
        help="parallel worker processes ('auto' = one per core; default: "
        "sequential execution); any N produces bit-identical output",
    )


def _memory_limit_arg(value: str) -> int:
    """argparse type for ``--memory-limit``: bytes, or a size like 256M."""
    try:
        parsed = parse_memory_size(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    if parsed <= 0:
        raise argparse.ArgumentTypeError("--memory-limit must be positive")
    return parsed


def _add_fd_mode_arguments(parser: argparse.ArgumentParser) -> None:
    """The reliable-FD-mining knobs shared by ``discover`` and ``rank``."""
    parser.add_argument(
        "--fd-mode", choices=("exact", "reliable", "topk"), default="exact",
        help="dependency miner: exact minimal FDs + minimum cover (exact), "
        "or the reliable branch-and-bound miner scored by bias-corrected "
        "fraction of information -- every FD above 1-alpha (reliable) or "
        "the k best (topk); reliable modes skip the exhaustive cover and "
        "feed FD-RANK directly",
    )
    parser.add_argument(
        "--fd-k", type=int, default=10, metavar="K",
        help="result size for --fd-mode=topk (default: 10)",
    )
    parser.add_argument(
        "--fd-max-lhs", type=int, default=3, metavar="N",
        help="LHS size cap for the reliable modes; 0 lifts the cap "
        "(default: 3 -- wide relations explode the uncapped lattice)",
    )
    parser.add_argument(
        "--fd-alpha", type=float, default=0.05, metavar="ALPHA",
        help="reliability level for the reliable modes: score threshold "
        "1-ALPHA (reliable) and confidence level of sampled-fallback "
        "radii (default: 0.05)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed for every randomized ingredient (the reliable "
        "miner's sampled fallback); same seed, byte-identical output",
    )


def _add_csv_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("csv", help="input relation (headered CSV; empty field = NULL)")
    parser.add_argument(
        "--on-error", choices=("strict", "coerce"), default="strict",
        help="malformed CSV policy: fail with a line number (strict) or "
        "repair-and-count (coerce)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; exceeding it aborts with exit code 3 "
        "(discover degrades instead of aborting)",
    )
    parser.add_argument(
        "--memory-limit", type=_memory_limit_arg, default=None,
        metavar="SIZE",
        help="cooperative memory cap (e.g. 256M); breaching it aborts with "
        "exit code 3 (discover degrades under --on-memory-pressure=degrade)",
    )


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Information-theoretic database structure mining "
        "(Andritsos, Miller & Tsaparas, SIGMOD 2004).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    discover = commands.add_parser("discover", help="full structure report")
    _add_csv_argument(discover)
    discover.add_argument("--phi-t", type=float, default=0.0)
    discover.add_argument("--phi-v", type=float, default=0.0)
    discover.add_argument("--psi", type=float, default=0.5)
    discover.add_argument("--top", type=int, default=5)
    discover.add_argument(
        "--strict-stages", action="store_true",
        help="fail the run on the first stage failure instead of degrading",
    )
    discover.add_argument(
        "--backend", choices=("auto", "sparse", "dense"), default="auto",
        help="numeric backend for the clustering stages (any choice "
        "produces bit-identical output)",
    )
    discover.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write crash-safe stage snapshots into DIR as the run "
        "progresses; corrupt snapshots are quarantined, never trusted",
    )
    discover.add_argument(
        "--resume", action="store_true",
        help="reuse valid snapshots a previous identical run left in "
        "--checkpoint-dir instead of recomputing those stages",
    )
    discover.add_argument(
        "--checkpoint-cadence", type=int, default=None, metavar="UNITS",
        help="budget units between intra-stage progress heartbeats "
        "(default: 10000)",
    )
    discover.add_argument(
        "--supervise", action="store_true",
        help="run the pipeline in a supervised child process: crashes "
        "(SIGKILL, SIGSEGV, OOM-kill) and heartbeat hangs auto-resume from "
        "the checkpoint store with bounded restarts; incident.json next to "
        "the snapshots records the attempt timeline",
    )
    discover.add_argument(
        "--max-restarts", type=int, default=None, metavar="N",
        help="restarts a supervised run may spend before giving up with "
        "exit code 1 (default: 5; requires --supervise)",
    )
    discover.add_argument(
        "--hang-timeout", type=float, default=None, metavar="SECONDS",
        help="heartbeat staleness after which a supervised child is "
        "declared hung and restarted (default: 300; requires --supervise)",
    )
    discover.add_argument(
        "--on-memory-pressure", choices=("fail", "degrade"),
        default="degrade",
        help="response to exceeding --memory-limit: abort with exit code 3 "
        "(fail) or climb the memory degradation ladder and finish (degrade)",
    )
    discover.add_argument(
        "--max-leaf-entries", type=int, default=None, metavar="N",
        help="space-bounded LIMBO: cap Phase-1 DCF-tree leaf entries at N, "
        "escalating the merge threshold when the buffer overflows",
    )
    discover.add_argument(
        "--verify", action="store_true",
        help="independently re-certify every artifact of the report "
        "(exact FDs by partition refinement, reliable scores, cluster "
        "assignments, dendrogram monotonicity); violations exit 1 and "
        "name the offending artifact",
    )
    discover.add_argument(
        "--out-json", default=None, metavar="PATH",
        help="also write the machine-readable report (summary + full "
        "artifacts) to PATH; 'repro audit PATH data.csv' re-certifies it "
        "offline",
    )
    _add_workers_argument(discover)
    _add_fd_mode_arguments(discover)

    audit = commands.add_parser(
        "audit", help="re-certify a discover --out-json report")
    audit.add_argument("report", help="report JSON written by "
                       "'discover --out-json'")
    audit.add_argument("csv", help="the source relation the report claims "
                       "to describe (headered CSV; empty field = NULL)")
    audit.add_argument(
        "--on-error", choices=("strict", "coerce"), default="strict",
        help="malformed CSV policy while re-reading the source relation",
    )
    audit.add_argument(
        "--seed", type=int, default=0,
        help="seed for the auditor's sampling choices (which tuples / "
        "dependencies get re-derived)",
    )

    rank = commands.add_parser("rank", help="rank mined dependencies")
    _add_csv_argument(rank)
    _add_workers_argument(rank)
    rank.add_argument("--psi", type=float, default=0.5)
    rank.add_argument("--phi-v", type=float, default=0.0)
    rank.add_argument(
        "--miner", choices=("auto", "fdep", "tane"), default="auto"
    )
    rank.add_argument("--top", type=int, default=10)
    _add_fd_mode_arguments(rank)

    partition = commands.add_parser("partition", help="horizontal partitioning")
    _add_csv_argument(partition)
    partition.add_argument("--k", type=int, default=None,
                           help="cluster count (default: knee heuristic)")
    partition.add_argument("--phi-t", type=float, default=1.0)
    partition.add_argument("--out", default=None,
                           help="prefix to write one CSV per partition")

    redesign = commands.add_parser("redesign", help="vertical decomposition")
    _add_csv_argument(redesign)
    redesign.add_argument("--max-fragments", type=int, default=4)
    redesign.add_argument("--psi", type=float, default=0.5)
    redesign.add_argument("--min-rtr", type=float, default=0.2)
    redesign.add_argument("--out", default=None,
                          help="prefix to write one CSV per fragment")

    profile = commands.add_parser("profile", help="per-attribute statistics")
    _add_csv_argument(profile)
    profile.add_argument("--top", type=int, default=3,
                         help="top values shown per attribute")

    dataset = commands.add_parser("dataset", help="emit a synthetic data set")
    dataset.add_argument("name", choices=("db2", "dblp"))
    dataset.add_argument("--out", required=True, help="output CSV path")
    dataset.add_argument("--n", type=int, default=8000,
                         help="DBLP tuple count (ignored for db2)")
    dataset.add_argument("--seed", type=int, default=7)

    serve = commands.add_parser(
        "serve", help="resident discovery daemon (HTTP, JSON)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8734,
                       help="listen port (0 = pick a free one; the bound "
                       "port is printed and written to service.json in the "
                       "checkpoint dir)")
    serve.add_argument(
        "--checkpoint-dir", required=True, metavar="DIR",
        help="durable home of the daemon: relation snapshots, the model "
        "cache and the single-daemon lock all live here")
    serve.add_argument(
        "--max-inflight", type=int, default=4, metavar="N",
        help="concurrent requests allowed to execute (default: 4)")
    serve.add_argument(
        "--queue-depth", type=int, default=16, metavar="N",
        help="requests allowed to wait for a slot before new arrivals are "
        "shed with 429 + Retry-After (default: 16)")
    serve.add_argument(
        "--request-deadline", type=float, default=30.0, metavar="SECONDS",
        help="per-request wall-clock budget threaded into every discovery "
        "call (default: 30)")
    serve.add_argument(
        "--memory-limit", type=_memory_limit_arg, default=None,
        metavar="SIZE",
        help="cooperative memory cap shared by all requests; a quarter of "
        "it budgets the resident model cache")
    serve.add_argument(
        "--grace", type=float, default=10.0, metavar="SECONDS",
        help="seconds in-flight requests get to finish after SIGTERM "
        "before the daemon exits anyway (default: 10)")
    serve.add_argument(
        "--remine-after", type=int, default=256, metavar="ROWS",
        help="staleness watermark: rows absorbed into a relation's model "
        "before a background re-mine is scheduled; 0 disables (default: "
        "256)")
    serve.add_argument(
        "--fd-k", type=int, default=10, metavar="K",
        help="top-k size of the reliable FD miner backing served models "
        "(default: 10)")
    serve.add_argument(
        "--seed", type=int, default=0,
        help="base seed for every randomized ingredient; same seed, "
        "byte-identical models")

    return parser


def _validate_args(parser: argparse.ArgumentParser, args) -> None:
    """Reject out-of-domain parameters up front with usage-style errors.

    Keeps deep library ``ValueError`` tracebacks (negative phi, psi outside
    [0, 1], ...) from ever being the user's first hint.
    """
    def require(condition: bool, message: str) -> None:
        if not condition:
            parser.error(message)

    for knob in ("phi_t", "phi_v"):
        value = getattr(args, knob, None)
        if value is not None:
            require(value >= 0.0, f"--{knob.replace('_', '-')} must be >= 0")
    psi = getattr(args, "psi", None)
    if psi is not None:
        require(0.0 <= psi <= 1.0, "--psi must be in [0, 1]")
    top = getattr(args, "top", None)
    if top is not None:
        require(top >= 1, "--top must be >= 1")
    k = getattr(args, "k", None)
    if k is not None:
        require(k >= 2, "--k must be >= 2")
    deadline = getattr(args, "deadline", None)
    if deadline is not None:
        require(deadline > 0.0, "--deadline must be positive")
    min_rtr = getattr(args, "min_rtr", None)
    if min_rtr is not None:
        require(0.0 <= min_rtr <= 1.0, "--min-rtr must be in [0, 1]")
    max_fragments = getattr(args, "max_fragments", None)
    if max_fragments is not None:
        require(max_fragments >= 1, "--max-fragments must be >= 1")
    n = getattr(args, "n", None)
    if n is not None:
        require(n >= 1, "--n must be >= 1")
    cadence = getattr(args, "checkpoint_cadence", None)
    if cadence is not None:
        require(cadence >= 1, "--checkpoint-cadence must be >= 1")
    max_restarts = getattr(args, "max_restarts", None)
    if max_restarts is not None:
        require(getattr(args, "supervise", False),
                "--max-restarts requires --supervise")
        require(max_restarts >= 0, "--max-restarts must be >= 0")
    hang_timeout = getattr(args, "hang_timeout", None)
    if hang_timeout is not None:
        require(getattr(args, "supervise", False),
                "--hang-timeout requires --supervise")
        require(hang_timeout > 0, "--hang-timeout must be positive")
    leaf_entries = getattr(args, "max_leaf_entries", None)
    if leaf_entries is not None:
        require(leaf_entries >= 1, "--max-leaf-entries must be >= 1")
    fd_k = getattr(args, "fd_k", None)
    if fd_k is not None:
        require(fd_k >= 1, "--fd-k must be >= 1")
    fd_alpha = getattr(args, "fd_alpha", None)
    if fd_alpha is not None:
        require(0.0 < fd_alpha < 1.0, "--fd-alpha must be in (0, 1)")
    fd_max_lhs = getattr(args, "fd_max_lhs", None)
    if fd_max_lhs is not None:
        require(fd_max_lhs >= 0, "--fd-max-lhs must be >= 0")
    if getattr(args, "command", None) == "serve":
        require(0 <= args.port <= 65535, "--port must be in [0, 65535]")
        require(args.max_inflight >= 1, "--max-inflight must be >= 1")
        require(args.queue_depth >= 0, "--queue-depth must be >= 0")
        require(args.request_deadline > 0,
                "--request-deadline must be positive")
        require(args.grace >= 0, "--grace must be >= 0")
        require(args.remine_after >= 0, "--remine-after must be >= 0")
        require(args.fd_k >= 1, "--fd-k must be >= 1")


def _load_relation(args, budget: Budget | None = None):
    """Read the command's CSV under its policy, reporting repairs to stderr.

    With a memory-governed ``budget``, ingestion streams through
    :func:`repro.relation.iter_csv` so the governor samples RSS while the
    rows accumulate; a breach either aborts (exit 3) or -- under
    ``discover --on-memory-pressure=degrade`` -- retries with an
    escalating row stride (deterministic thinning, noted on stderr).
    """
    if budget is None or getattr(budget, "memory", None) is None:
        relation, report = load_csv(args.csv, on_error=args.on_error)
    else:
        relation, report = _governed_load(args, budget)
    if not report.clean:
        print(f"repro: {report.summary()}", file=sys.stderr)
    return relation


#: Stride ceiling for degraded ingest; past this the governor goes
#: best-effort rather than discard more than ~99.9% of the data.
_MAX_INGEST_STRIDE = 1024


def _governed_load(args, budget: Budget):
    """Memory-governed streaming ingest with the strided degrade path.

    Chunks are dictionary-encoded into a coded column store as they stream
    in (never buffered as value tuples), so the resident cost of the load
    is the int32 columns plus the dictionaries.  First-seen encoding makes
    the result identical to encoding the strided row stream in one piece.
    """
    from repro.relation import iter_csv
    from repro.relation.columns import ColumnStore
    from repro.relation.io import IngestReport

    degrade = getattr(args, "on_memory_pressure", "fail") == "degrade"
    stride = 1
    while True:
        report = IngestReport(path=str(args.csv), policy=args.on_error)
        schema, store = None, None
        try:
            for schema, chunk in iter_csv(
                args.csv, on_error=args.on_error, report=report, budget=budget,
            ):
                if store is None:
                    store = ColumnStore(schema.names)
                store.append_rows(chunk if stride == 1 else chunk[::stride])
        except MemoryLimitExceeded:
            if not degrade:
                raise
            del store
            if stride >= _MAX_INGEST_STRIDE:
                # Thinning further would discard nearly everything; stop
                # enforcing and let the pipeline's ladder cope instead.
                budget.memory.set_best_effort()
            else:
                stride *= 2
            continue
        if stride > 1:
            report.notes.append(
                f"memory pressure during ingest: kept every {stride}th row"
            )
        return Relation.from_columns(schema, store), report


def _budget_of(args) -> Budget | None:
    deadline = getattr(args, "deadline", None)
    memory_limit = getattr(args, "memory_limit", None)
    if deadline is None and memory_limit is None:
        return None
    return Budget(deadline=deadline, max_memory_bytes=memory_limit)


def _cmd_discover(args) -> int:
    if args.resume and args.checkpoint_dir is None:
        print(
            "repro: input error: --resume needs --checkpoint-dir DIR to "
            "know which snapshots to resume from (pass the directory the "
            "interrupted run was checkpointing into)",
            file=sys.stderr,
        )
        return EXIT_INPUT
    budget = _budget_of(args)
    relation = _load_relation(args, budget)
    checkpoint = None
    if args.checkpoint_dir is not None:
        from repro.checkpoint import DEFAULT_CADENCE, CheckpointStore

        checkpoint = CheckpointStore(
            args.checkpoint_dir,
            cadence=args.checkpoint_cadence or DEFAULT_CADENCE,
            resume=args.resume,
        )
    supervise = None
    if args.supervise:
        from repro.supervisor import SupervisorConfig

        supervise = SupervisorConfig(
            max_restarts=args.max_restarts
            if args.max_restarts is not None else 5,
            hang_timeout=args.hang_timeout
            if args.hang_timeout is not None else 300.0,
        )
    report = StructureDiscovery(
        phi_t=args.phi_t, phi_v=args.phi_v, psi=args.psi,
        fd_mode=args.fd_mode, fd_k=args.fd_k, fd_alpha=args.fd_alpha,
        fd_max_lhs=args.fd_max_lhs or None, seed=args.seed,
        strict=args.strict_stages, workers=args.workers,
        backend=args.backend, checkpoint=checkpoint,
        on_memory_pressure=args.on_memory_pressure,
        max_leaf_entries=args.max_leaf_entries,
        supervise=supervise, verify=args.verify,
    ).run(relation, budget=budget)
    print(report.render(top=args.top))
    if args.out_json:
        import json

        from repro.relation.io import atomic_write

        with atomic_write(args.out_json) as handle:
            json.dump(report.to_json(top=args.top), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"repro: report JSON written to {args.out_json}",
              file=sys.stderr)
    certificate = report.audit_certificate
    if args.verify and certificate is not None and not certificate.ok:
        for violation in certificate.violations:
            print(f"repro: audit violation: {violation}", file=sys.stderr)
        return EXIT_ERROR
    return EXIT_OK


def _cmd_audit(args) -> int:
    import json

    from repro.audit import audit_json_report

    try:
        with open(args.report, encoding="utf-8") as handle:
            blob = json.load(handle)
    except OSError as exc:
        raise InputError(f"cannot read report {args.report!r}: {exc}")
    except ValueError as exc:
        raise InputError(f"report {args.report!r} is not JSON: {exc}")
    if not isinstance(blob, dict):
        raise InputError(f"report {args.report!r} is not a JSON object")
    relation, ingest = load_csv(args.csv, on_error=args.on_error)
    if not ingest.clean:
        print(f"repro: {ingest.summary()}", file=sys.stderr)
    certificate = audit_json_report(blob, relation, seed=args.seed)
    print(certificate.render())
    if not certificate.ok:
        for violation in certificate.violations:
            print(f"repro: audit violation: {violation}", file=sys.stderr)
        return EXIT_ERROR
    return EXIT_OK


def _cmd_rank(args) -> int:
    from repro.parallel import ShardedExecutor

    budget = _budget_of(args)
    relation = _load_relation(args, budget)
    executor = None
    if args.workers is not None:
        executor = ShardedExecutor(workers=args.workers, budget=budget)
    try:
        if args.fd_mode != "exact":
            mined = mine_reliable_fds(
                relation, mode=args.fd_mode, k=args.fd_k,
                alpha=args.fd_alpha, seed=args.seed,
                max_lhs_size=args.fd_max_lhs or None,
                budget=budget, executor=executor,
            )
            cover = [entry.fd for entry in mined]
            print(f"{len(mined)} reliable dependencies mined "
                  f"({args.fd_mode}); exhaustive cover skipped")
            for entry in mined[: args.top]:
                print(f"  {entry}")
        else:
            miner = args.miner
            if miner == "auto":
                miner = "fdep" if len(relation) <= 2000 else "tane"
            if miner == "fdep":
                fds = fdep(relation, budget=budget, executor=executor)
            else:
                fds = tane(relation, max_lhs_size=3, budget=budget,
                           executor=executor)
            cover = minimum_cover(fds, group_rhs=True)
            print(f"{len(fds)} dependencies mined ({miner}); "
                  f"cover of {len(cover)}")
        grouping = group_attributes(
            relation, phi_v=args.phi_v, budget=budget, executor=executor
        )
        for entry in fd_rank(cover, grouping, psi=args.psi)[: args.top]:
            report = redundancy_report(relation, entry.fd)
            print(
                f"  {entry.fd}  rank={entry.rank:.4f} "
                f"RAD={report['rad']:.3f} RTR={report['rtr']:.3f}"
            )
    finally:
        if executor is not None:
            executor.close()
    return EXIT_OK


def _cmd_partition(args) -> int:
    budget = _budget_of(args)
    relation = _load_relation(args, budget)
    result = horizontal_partition(
        relation, k=args.k, phi_t=args.phi_t, budget=budget
    )
    print(f"k = {result.k} "
          f"(relative information loss {result.relative_information_loss:.2%})")
    for index, part in enumerate(
        sorted(result.partitions, key=len, reverse=True), start=1
    ):
        print(f"  partition {index}: {len(part)} tuples")
        if args.out:
            path = f"{args.out}.part{index}.csv"
            write_csv(part, path)
            print(f"    written to {path}")
    return EXIT_OK


def _cmd_redesign(args) -> int:
    budget = _budget_of(args)
    relation = _load_relation(args, budget)
    result = vertical_redesign(
        relation,
        max_fragments=args.max_fragments,
        psi=args.psi,
        min_rtr=args.min_rtr,
        budget=budget,
    )
    print(result.render())
    if args.out:
        for name, fragment in result.fragments.items():
            path = f"{args.out}.{name}.csv"
            write_csv(fragment, path)
            print(f"  written {path}")
        if result.remainder is not None:
            path = f"{args.out}.remainder.csv"
            write_csv(result.remainder, path)
            print(f"  written {path}")
    return EXIT_OK


def _cmd_profile(args) -> int:
    from repro.core import profile_relation

    relation = _load_relation(args, _budget_of(args))
    profile = profile_relation(relation)
    print(profile.render(top=args.top))
    null_heavy = profile.null_heavy()
    if null_heavy:
        print(f"\nmostly-NULL attributes (store separately?): {null_heavy}")
    keys = profile.key_candidates()
    if keys:
        print(f"key candidates: {keys}")
    return EXIT_OK


def _cmd_dataset(args) -> int:
    if args.name == "db2":
        relation = db2_sample(seed=args.seed).relation
    else:
        relation = dblp(n_tuples=args.n, seed=args.seed)
    write_csv(relation, args.out)
    print(f"wrote {len(relation)} tuples x {relation.arity} attributes to {args.out}")
    return EXIT_OK


def _cmd_serve(args) -> int:
    from repro.checkpoint import CheckpointStore
    from repro.errors import CheckpointError
    from repro.service import Daemon, DiscoveryApp, run_daemon

    store = CheckpointStore(args.checkpoint_dir)
    try:
        store.acquire_lock()
    except CheckpointError as exc:
        # Two daemons sharing one store would corrupt each other's model
        # cache; refusing to start is a usage error, not a crash.
        print(f"repro: input error: {exc}", file=sys.stderr)
        return EXIT_INPUT
    budget = None
    if args.memory_limit is not None:
        budget = Budget(max_memory_bytes=args.memory_limit)
    app = DiscoveryApp(
        store,
        params={"fd_k": args.fd_k, "seed": args.seed},
        cache_bytes=(args.memory_limit // 4
                     if args.memory_limit is not None else 64 << 20),
        remine_after=args.remine_after,
    )
    daemon = Daemon(
        app, host=args.host, port=args.port,
        max_inflight=args.max_inflight, queue_depth=args.queue_depth,
        request_deadline=args.request_deadline, grace=args.grace,
        budget=budget,
    )
    try:
        return run_daemon(daemon)
    finally:
        store.release_lock()


_COMMANDS = {
    "audit": _cmd_audit,
    "discover": _cmd_discover,
    "rank": _cmd_rank,
    "partition": _cmd_partition,
    "redesign": _cmd_redesign,
    "profile": _cmd_profile,
    "dataset": _cmd_dataset,
    "serve": _cmd_serve,
}


def main(argv=None) -> int:
    """Entry point (returns a process exit code; never dumps a traceback
    for the failure classes the taxonomy covers)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate_args(parser, args)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print("repro: interrupted", file=sys.stderr)
        return EXIT_INTERRUPT
    except ResourceLimitExceeded as exc:
        print(f"repro: resource limit exceeded: {exc}", file=sys.stderr)
        return EXIT_RESOURCE_LIMIT
    except InputError as exc:
        print(f"repro: input error: {exc}", file=sys.stderr)
        return EXIT_INPUT
    except ReproError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
