"""Command-line interface: ``python -m repro <command> ...``.

Five commands cover the analyst workflow the paper describes:

* ``discover``   -- full structure-discovery report for a CSV relation;
* ``rank``       -- mine dependencies and print the FD-RANK order with
                    RAD/RTR for each;
* ``partition``  -- horizontal partitioning with the natural-k heuristic;
* ``redesign``   -- propose a lossless vertical decomposition;
* ``dataset``    -- emit the synthetic DB2-sample / DBLP relations as CSV.

CSV conventions follow :mod:`repro.relation.io`: a header row, empty fields
are NULLs.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import (
    StructureDiscovery,
    fd_rank,
    group_attributes,
    horizontal_partition,
    redundancy_report,
)
from repro.core.redesign import vertical_redesign
from repro.datasets import db2_sample, dblp
from repro.fd import fdep, minimum_cover, tane
from repro.relation import read_csv, write_csv


def _add_csv_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("csv", help="input relation (headered CSV; empty field = NULL)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Information-theoretic database structure mining "
        "(Andritsos, Miller & Tsaparas, SIGMOD 2004).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    discover = commands.add_parser("discover", help="full structure report")
    _add_csv_argument(discover)
    discover.add_argument("--phi-t", type=float, default=0.0)
    discover.add_argument("--phi-v", type=float, default=0.0)
    discover.add_argument("--psi", type=float, default=0.5)
    discover.add_argument("--top", type=int, default=5)

    rank = commands.add_parser("rank", help="rank mined dependencies")
    _add_csv_argument(rank)
    rank.add_argument("--psi", type=float, default=0.5)
    rank.add_argument("--phi-v", type=float, default=0.0)
    rank.add_argument(
        "--miner", choices=("auto", "fdep", "tane"), default="auto"
    )
    rank.add_argument("--top", type=int, default=10)

    partition = commands.add_parser("partition", help="horizontal partitioning")
    _add_csv_argument(partition)
    partition.add_argument("--k", type=int, default=None,
                           help="cluster count (default: knee heuristic)")
    partition.add_argument("--phi-t", type=float, default=1.0)
    partition.add_argument("--out", default=None,
                           help="prefix to write one CSV per partition")

    redesign = commands.add_parser("redesign", help="vertical decomposition")
    _add_csv_argument(redesign)
    redesign.add_argument("--max-fragments", type=int, default=4)
    redesign.add_argument("--psi", type=float, default=0.5)
    redesign.add_argument("--min-rtr", type=float, default=0.2)
    redesign.add_argument("--out", default=None,
                          help="prefix to write one CSV per fragment")

    profile = commands.add_parser("profile", help="per-attribute statistics")
    _add_csv_argument(profile)
    profile.add_argument("--top", type=int, default=3,
                         help="top values shown per attribute")

    dataset = commands.add_parser("dataset", help="emit a synthetic data set")
    dataset.add_argument("name", choices=("db2", "dblp"))
    dataset.add_argument("--out", required=True, help="output CSV path")
    dataset.add_argument("--n", type=int, default=8000,
                         help="DBLP tuple count (ignored for db2)")
    dataset.add_argument("--seed", type=int, default=7)

    return parser


def _cmd_discover(args) -> int:
    relation = read_csv(args.csv)
    report = StructureDiscovery(
        phi_t=args.phi_t, phi_v=args.phi_v, psi=args.psi
    ).run(relation)
    print(report.render(top=args.top))
    return 0


def _cmd_rank(args) -> int:
    relation = read_csv(args.csv)
    miner = args.miner
    if miner == "auto":
        miner = "fdep" if len(relation) <= 2000 else "tane"
    fds = fdep(relation) if miner == "fdep" else tane(relation, max_lhs_size=3)
    cover = minimum_cover(fds, group_rhs=True)
    print(f"{len(fds)} dependencies mined ({miner}); cover of {len(cover)}")
    grouping = group_attributes(relation, phi_v=args.phi_v)
    for entry in fd_rank(cover, grouping, psi=args.psi)[: args.top]:
        report = redundancy_report(relation, entry.fd)
        print(
            f"  {entry.fd}  rank={entry.rank:.4f} "
            f"RAD={report['rad']:.3f} RTR={report['rtr']:.3f}"
        )
    return 0


def _cmd_partition(args) -> int:
    relation = read_csv(args.csv)
    result = horizontal_partition(relation, k=args.k, phi_t=args.phi_t)
    print(f"k = {result.k} "
          f"(relative information loss {result.relative_information_loss:.2%})")
    for index, part in enumerate(
        sorted(result.partitions, key=len, reverse=True), start=1
    ):
        print(f"  partition {index}: {len(part)} tuples")
        if args.out:
            path = f"{args.out}.part{index}.csv"
            write_csv(part, path)
            print(f"    written to {path}")
    return 0


def _cmd_redesign(args) -> int:
    relation = read_csv(args.csv)
    result = vertical_redesign(
        relation,
        max_fragments=args.max_fragments,
        psi=args.psi,
        min_rtr=args.min_rtr,
    )
    print(result.render())
    if args.out:
        for name, fragment in result.fragments.items():
            path = f"{args.out}.{name}.csv"
            write_csv(fragment, path)
            print(f"  written {path}")
        if result.remainder is not None:
            path = f"{args.out}.remainder.csv"
            write_csv(result.remainder, path)
            print(f"  written {path}")
    return 0


def _cmd_profile(args) -> int:
    from repro.core import profile_relation

    relation = read_csv(args.csv)
    profile = profile_relation(relation)
    print(profile.render(top=args.top))
    null_heavy = profile.null_heavy()
    if null_heavy:
        print(f"\nmostly-NULL attributes (store separately?): {null_heavy}")
    keys = profile.key_candidates()
    if keys:
        print(f"key candidates: {keys}")
    return 0


def _cmd_dataset(args) -> int:
    if args.name == "db2":
        relation = db2_sample(seed=args.seed).relation
    else:
        relation = dblp(n_tuples=args.n, seed=args.seed)
    write_csv(relation, args.out)
    print(f"wrote {len(relation)} tuples x {relation.arity} attributes to {args.out}")
    return 0


_COMMANDS = {
    "discover": _cmd_discover,
    "rank": _cmd_rank,
    "partition": _cmd_partition,
    "redesign": _cmd_redesign,
    "profile": _cmd_profile,
    "dataset": _cmd_dataset,
}


def main(argv=None) -> int:
    """Entry point (returns a process exit code)."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
