"""Structured exception taxonomy for the resilient runtime.

Every failure the library raises deliberately derives from
:class:`ReproError` and carries machine-readable ``context`` (file, line,
stage name, budget numbers, ...) so callers -- the CLI, the stage guards in
:mod:`repro.core.discovery`, tests -- can react without parsing messages.

Hierarchy::

    ReproError
    ├── InputError              malformed external input (CSV rows, encodings)
    │   └── SchemaError         header/schema-level problems
    ├── ResourceLimitExceeded   a Budget deadline or work-unit cap was hit
    │   └── MemoryLimitExceeded the memory governor's byte cap was hit
    ├── StageFailure            a pipeline stage died (wraps the cause)
    ├── CheckpointError         a checkpoint store is unusable (not: corrupt
    │                           snapshots, which quarantine instead of raising)
    ├── SupervisorError         a supervised run could not be driven to
    │                           completion (restart budget exhausted)
    └── ServiceError            a discovery-service request cannot be served
        ├── NotFoundError       the addressed relation/model does not exist
        ├── ServiceOverloaded   admission queue full -- retry later (HTTP 429)
        └── ServiceUnavailable  daemon draining or not ready (HTTP 503)

The service classes carry the HTTP semantics the daemon in
:mod:`repro.service` maps them to; the mapping itself lives in
``repro.service.app.HTTP_STATUS`` so library callers stay HTTP-free.

``InputError`` and ``SchemaError`` also subclass :class:`ValueError` so
pre-existing ``except ValueError`` call sites keep working.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all deliberate library errors.

    ``context`` holds machine-readable keyword details; keys with ``None``
    values are dropped so the dict only reflects what is actually known.
    """

    def __init__(self, message: str, **context):
        super().__init__(message)
        self.message = message
        self.context = {k: v for k, v in context.items() if v is not None}

    def __str__(self) -> str:
        return self.message


class InputError(ReproError, ValueError):
    """Malformed external input: ragged rows, bad encodings, missing files.

    ``path`` and ``line`` (1-based, header = line 1) locate the problem when
    known; both live in :attr:`ReproError.context` as well.
    """

    def __init__(self, message: str, path=None, line: int | None = None, **context):
        super().__init__(message, path=str(path) if path is not None else None,
                         line=line, **context)
        self.path = str(path) if path is not None else None
        self.line = line


class SchemaError(InputError):
    """A header/schema-level problem: duplicate or blank attribute names."""


class ResourceLimitExceeded(ReproError):
    """A :class:`repro.budget.Budget` deadline or work-unit cap was hit.

    Context keys: ``where`` (the checkpoint site), ``elapsed``/``deadline``
    (seconds) or ``units``/``max_units``, whichever limit fired.
    """

    def __init__(self, message: str, where: str = "", **context):
        super().__init__(message, where=where or None, **context)
        self.where = where


class MemoryLimitExceeded(ResourceLimitExceeded):
    """The memory governor's byte cap was hit at a cooperative checkpoint.

    Subclasses :class:`ResourceLimitExceeded` so every existing budget
    recovery path (stage guards, exit code 3, shard degradation) applies
    unchanged.  Context keys: ``where`` (the checkpoint or reservation
    site), ``needed``/``reserved``/``rss`` (bytes, whichever are known) and
    ``max_memory_bytes`` (the cap).
    """


class StageFailure(ReproError):
    """A discovery-pipeline stage failed (raised only in strict mode).

    ``stage`` names the stage; the triggering exception is chained as
    ``__cause__`` and summarized in ``context['cause']``.
    """

    def __init__(self, message: str, stage: str = "", **context):
        super().__init__(message, stage=stage or None, **context)
        self.stage = stage


class CheckpointError(ReproError):
    """A checkpoint store cannot be used at all (unwritable directory, a
    path that exists but is not a directory, ...).

    Deliberately *narrow*: a corrupt, truncated or version-mismatched
    snapshot never raises this -- the store quarantines the file, records a
    :class:`repro.checkpoint.CheckpointEvent` and recomputes, because a bad
    snapshot must cost a recompute, not the run.  ``path`` locates the
    store.
    """

    def __init__(self, message: str, path=None, **context):
        super().__init__(message, path=str(path) if path is not None else None,
                         **context)
        self.path = str(path) if path is not None else None


class SupervisorError(ReproError):
    """A supervised run gave up: the restart budget was exhausted (or the
    child failed in a way restarting cannot fix).

    Raised by :class:`repro.supervisor.Supervisor` after the last allowed
    attempt; by then ``incident.json`` holds the full attempt timeline.
    Context keys: ``attempts``, ``failure_class`` (the final attempt's
    classification), ``stage`` (where the child last was) and
    ``incident_path``.
    """


class ServiceError(ReproError):
    """Base class for per-request failures of the discovery service.

    Every subclass names one well-defined way a request can fail; the
    daemon (:mod:`repro.service`) maps each onto an HTTP status so clients
    can react mechanically (retry, fix the request, give up) without
    parsing messages.
    """


class NotFoundError(ServiceError):
    """The addressed relation or model does not exist (HTTP 404).

    ``resource`` names what was looked up (``"relation"``, ``"model"``) and
    ``name`` which one.
    """

    def __init__(self, message: str, resource: str = "", name: str = "",
                 **context):
        super().__init__(message, resource=resource or None,
                         name=name or None, **context)
        self.resource = resource
        self.name = name


class ServiceOverloaded(ServiceError):
    """The admission queue is full and the request was shed (HTTP 429).

    ``retry_after`` is the daemon's estimate, in whole seconds, of when a
    retry has a queue slot to land in -- computed from the current queue
    depth and the observed service time, and sent as the ``Retry-After``
    header.
    """

    def __init__(self, message: str, retry_after: int = 1, **context):
        super().__init__(message, retry_after=retry_after, **context)
        self.retry_after = int(retry_after)


class ServiceUnavailable(ServiceError):
    """The daemon cannot take new work right now (HTTP 503).

    Raised while draining after SIGTERM, before the service is ready, or
    when a per-request deadline left no allowance to finish.  Carries the
    same ``retry_after`` contract as :class:`ServiceOverloaded`.
    """

    def __init__(self, message: str, retry_after: int = 1, **context):
        super().__init__(message, retry_after=retry_after, **context)
        self.retry_after = int(retry_after)

