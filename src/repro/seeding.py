"""Centralized RNG seeding for every sampled code path.

Sampling decisions must be a pure function of ``(seed, scope, n, ...)`` --
never of interpreter state, worker count, or call order -- so that two runs
with the same ``--seed`` produce byte-identical reports and a sampled stage
re-executed after a crash/resume redraws exactly the same rows.

Each sampled call site derives its own independent stream by hashing the
user-facing seed together with a short *scope* string (``"fd.reliable"``,
``"discovery.sample"``, ...).  Scoping keeps streams independent without
any global draw-order coupling: adding a new sampled path can never shift
the rows an existing path draws.

The synthetic dataset generators (``repro.datasets``) intentionally keep
their own ``random.Random(seed)`` streams: their output is golden test and
benchmark input, and rerouting them here would silently change every
baseline.  This module governs *sampling over an existing relation* only.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "derive_rng", "sample_indices"]

#: Upper bound (exclusive) for derived integer seeds; fits any RNG API.
_SEED_SPACE = 2**63


def derive_seed(seed: int, scope: str) -> int:
    """Derive a deterministic sub-seed for one named sampling site.

    SHA-256 over ``"{seed}:{scope}"`` -- stable across platforms, Python
    versions, and ``PYTHONHASHSEED`` (unlike ``hash()``).
    """
    if not scope:
        raise ValueError("scope must be a non-empty string")
    digest = hashlib.sha256(f"{int(seed)}:{scope}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


def derive_rng(seed: int, scope: str) -> np.random.Generator:
    """A ``numpy`` Generator owned by one sampling site.

    PCG64 streams seeded this way are reproducible across numpy releases
    (the bit-stream of a seeded ``default_rng`` is part of numpy's
    compatibility guarantee).
    """
    return np.random.default_rng(derive_seed(seed, scope))


def sample_indices(n: int, size: int, seed: int, scope: str) -> np.ndarray:
    """Draw ``size`` distinct row indices from ``range(n)``, sorted ascending.

    Sampling is without replacement; the sorted order makes the sampled
    sub-relation's row order (and therefore its dictionary encoding) a pure
    function of the index *set*, not of the draw order.  ``size >= n``
    degenerates to the identity selection -- callers treat that as "exact".
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if size < 1:
        raise ValueError("sample size must be at least 1")
    if size >= n:
        return np.arange(n, dtype=np.int64)
    rng = derive_rng(seed, scope)
    chosen = rng.choice(n, size=size, replace=False)
    return np.sort(chosen.astype(np.int64))
