"""A synthetic stand-in for the IBM DB2 sample database (paper Section 8.1).

The paper joins the sample EMPLOYEE, DEPARTMENT and PROJECT tables:

    R = (E join_{WorkDepNo=DepNo} D) join_{DepNo=DeptNo} P

yielding 90 tuples over 19 attributes with 255 attribute values.  This
generator builds three base tables with the same schemas (Figure 12), the
same key/foreign-key structure, and per-department employee/project counts
whose products sum to exactly 90 -- so the join has exactly the paper's
shape: department attributes repeat employee x project times, employee
attributes repeat once per project of the department, and project attributes
once per employee.

What the experiments need from this data (and what is therefore faithful):

* join-induced FDs: ``DepNo -> DepName, MgrNo``, ``DepName -> MgrNo``,
  ``EmpNo -> employee attributes``, ``ProjNo -> project attributes``;
* perfectly co-occurring value groups per department / employee / project,
  which drive the attribute grouping of Figure 14;
* a skewed department distribution (multiplicative in employees x projects),
  which gives the DeptNo/DepName/MgrNo attributes the highest RAD/RTR.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.relation import Attribute, NULL, Relation, Schema, equi_join

#: Department number, name, employee count, project count.  The products sum
#: to 90 (= the paper's join cardinality): 20+16+12+12+12+9+9.
_DEPARTMENTS = [
    ("A00", "SPIFFY COMPUTER SERVICE", 4, 5),
    ("B01", "PLANNING", 4, 4),
    ("C01", "INFORMATION CENTER", 3, 4),
    ("D11", "MANUFACTURING SYSTEMS", 4, 3),
    ("D21", "ADMINISTRATION SYSTEMS", 3, 4),
    ("E11", "OPERATIONS", 3, 3),
    ("E21", "SOFTWARE SUPPORT", 3, 3),
]

_FIRST_NAMES = [
    "CHRISTINE", "MICHAEL", "SALLY", "JOHN", "IRVING", "EVA", "EILEEN",
    "THEODORE", "VINCENZO", "SEAN", "DOLORES", "HEATHER", "BRUCE",
    "ELIZABETH", "MASATOSHI", "MARILYN", "JAMES", "DAVID", "WILLIAM",
    "JENNIFER", "RAMLAL", "WING", "JASON", "DANIEL",
]

_LAST_NAMES = [
    "HAAS", "THOMPSON", "KWAN", "GEYER", "STERN", "PULASKI", "HENDERSON",
    "SPENSER", "LUCCHESSI", "OCONNELL", "QUINTANA", "NICHOLLS", "ADAMSON",
    "PIANKA", "YOSHIMURA", "SCOUTTEN", "WALKER", "BROWN", "JONES",
    "LUTZ", "MEHTA", "LEE", "GOUNOT", "SMITH",
]

_JOBS = ["MANAGER", "ANALYST", "DESIGNER", "CLERK", "OPERATOR", "SALESREP"]
_EDU_LEVELS = ["14", "15", "16", "17", "18"]
_HIRE_YEARS = [str(year) for year in range(1972, 1982)]
_BIRTH_YEARS = [str(year) for year in range(1941, 1956)]
_START_DATES = [f"19{year}-01-01" for year in (78, 79, 80, 81, 82, 83, 84, 85)]
_END_DATES = [f"19{year}-12-31" for year in (82, 83, 84, 85, 86, 87, 88, 89)]

_PROJECT_WORDS = [
    "ADMIN", "QUERY", "PAYROLL", "LEDGER", "BILLING", "DOCUMENT", "SUPPORT",
    "INVENTORY", "PLANNING", "WELD", "OPTICS", "REPORTS", "SHIPPING",
    "SECURITY", "ARCHIVE", "NETWORK", "TRAINING", "BUDGET", "DESIGN",
    "TESTING", "CATALOG", "ROUTING", "METRICS", "BACKUP", "PORTAL", "AUDIT",
]


@dataclass
class Db2Sample:
    """The three base tables and their integrated join."""

    employee: Relation
    department: Relation
    project: Relation
    relation: Relation


def db2_sample(seed: int = 0) -> Db2Sample:
    """Generate the synthetic DB2 sample and its 90-tuple, 19-attribute join."""
    rng = random.Random(seed)

    employees: list[tuple] = []
    departments: list[tuple] = []
    projects: list[tuple] = []
    emp_counter = 0
    proj_counter = 0

    for dep_no, dep_name, n_emps, n_projs in _DEPARTMENTS:
        dept_emp_nos = []
        for _ in range(n_emps):
            emp_no = f"{(emp_counter + 1) * 10:06d}"
            dept_emp_nos.append(emp_no)
            employees.append(
                (
                    emp_no,
                    _FIRST_NAMES[emp_counter],
                    _LAST_NAMES[emp_counter],
                    f"{3978 + 97 * emp_counter % 6000:04d}",
                    rng.choice(_HIRE_YEARS),
                    _JOBS[0] if not dept_emp_nos[:-1] else rng.choice(_JOBS[1:]),
                    rng.choice(_EDU_LEVELS),
                    rng.choice(["F", "M"]),
                    rng.choice(_BIRTH_YEARS),
                    dep_no,
                )
            )
            emp_counter += 1

        manager = dept_emp_nos[0]
        departments.append((dep_no, dep_name, manager, "A00"))

        first_project = None
        for _ in range(n_projs):
            proj_no = f"{dep_no[0]}P{proj_counter + 1:02d}"
            projects.append(
                (
                    proj_no,
                    f"{_PROJECT_WORDS[proj_counter]} {dep_no}",
                    rng.choice(dept_emp_nos),
                    rng.choice(_START_DATES),
                    rng.choice(_END_DATES),
                    first_project if first_project is not None else NULL,
                    dep_no,
                )
            )
            if first_project is None:
                first_project = proj_no
            proj_counter += 1

    employee = Relation(
        Schema([Attribute(name, "EMPLOYEE") for name in (
            "EmpNo", "FirstName", "LastName", "PhoneNo", "HireYear",
            "Job", "EduLevel", "Sex", "BirthYear", "WorkDepNo",
        )]),
        employees,
    )
    department = Relation(
        Schema([Attribute(name, "DEPARTMENT") for name in (
            "DepNo", "DepName", "MgrNo", "AdminDepNo",
        )]),
        departments,
    )
    project = Relation(
        Schema([Attribute(name, "PROJECT") for name in (
            "ProjNo", "ProjName", "RespEmpNo", "StartDate", "EndDate",
            "MajorProjNo", "DeptNo",
        )]),
        projects,
    )

    joined = equi_join(
        equi_join(employee, department, "WorkDepNo", "DepNo"),
        project,
        "WorkDepNo",
        "DeptNo",
    )
    # The integrated relation keeps one department-number column; the paper's
    # Figure 14 labels it DeptNo (and the name column DeptName).
    joined = joined.rename({"WorkDepNo": "DeptNo", "DepName": "DeptName"})
    return Db2Sample(
        employee=employee, department=department, project=project, relation=joined
    )
