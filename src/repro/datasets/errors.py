"""Error injection for the Table 1 / Table 2 experiments (Section 8.1.1).

The paper "introduced tuples in the data set where some of the values in
their attributes differ from the values in the corresponding attributes of
their matching tuples".  :func:`inject_erroneous_tuples` duplicates randomly
chosen tuples and corrupts a fixed number of their attribute values, in one
of three styles:

* ``"fresh"``   -- a brand-new literal (typographic/notational discrepancy);
* ``"null"``    -- a NULL (schema discrepancy after integration);
* ``"swap"``    -- another existing value of the same attribute.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.relation import NULL, Relation

_STYLES = ("fresh", "null", "swap")


@dataclass(frozen=True)
class InjectedTuple:
    """One injected near-duplicate.

    ``index`` is the position of the dirty tuple in the augmented relation;
    ``source_index`` the position of the clean tuple it was copied from;
    ``changes`` maps corrupted attribute names to ``(old, new)`` values.
    """

    index: int
    source_index: int
    changes: dict


@dataclass
class ErrorInjection:
    """The augmented relation plus the injection bookkeeping."""

    relation: Relation
    injected: list

    @property
    def n_injected(self) -> int:
        return len(self.injected)


def inject_erroneous_tuples(
    relation: Relation,
    n_tuples: int = 5,
    n_errors: int = 2,
    seed: int = 0,
    style: str = "fresh",
) -> ErrorInjection:
    """Append ``n_tuples`` near-duplicates, each with ``n_errors`` corrupted
    attribute values.

    Source tuples are drawn without replacement; corrupted attributes are
    drawn per injected tuple.  Returns the augmented relation and enough
    bookkeeping to score detection (Tables 1 and 2).
    """
    if style not in _STYLES:
        raise ValueError(f"style must be one of {_STYLES}, got {style!r}")
    if not 1 <= n_errors <= relation.arity:
        raise ValueError(
            f"n_errors must be in [1, {relation.arity}], got {n_errors}"
        )
    if not 1 <= n_tuples <= len(relation):
        raise ValueError(
            f"n_tuples must be in [1, {len(relation)}], got {n_tuples}"
        )

    rng = random.Random(seed)
    names = relation.schema.names
    sources = rng.sample(range(len(relation)), n_tuples)

    new_rows = []
    injected = []
    next_index = len(relation)
    for dirty_id, source_index in enumerate(sources):
        row = list(relation.rows[source_index])
        corrupted = rng.sample(range(relation.arity), n_errors)
        changes = {}
        for position in corrupted:
            old = row[position]
            if style == "fresh":
                new = f"err{dirty_id}:{names[position]}"
            elif style == "null":
                new = NULL
            else:
                candidates = [
                    value
                    for value in relation.domain(names[position])
                    if value != old
                ]
                new = rng.choice(candidates) if candidates else old
            row[position] = new
            changes[names[position]] = (old, new)
        new_rows.append(tuple(row))
        injected.append(
            InjectedTuple(
                index=next_index, source_index=source_index, changes=changes
            )
        )
        next_index += 1

    return ErrorInjection(relation=relation.extended(new_rows), injected=injected)
