"""A synthetic stand-in for the paper's DBLP relation (Section 8.2).

The paper maps the DBLP XML snapshot onto a 13-attribute target schema
(Figure 13), producing one tuple per (publication, author) pair -- 50,000
tuples with heavy NULLs: conference papers leave the journal attributes
NULL, journal papers leave BookTitle NULL, and six attributes (Publisher,
ISBN, Editor, Series, School, Month) are over 98% NULL overall.

The generator reproduces the structural facts the experiments use:

* the publication-type mix (~72% conference / ~28% journal / ~0.3% misc
  tuples), which drives the k=3 horizontal partitioning (Table 4);
* the six NULL-heavy attributes, which collapse at ~zero information loss
  in the attribute dendrogram (Figure 15);
* journal-issue consistency: each (Journal, Volume, Number) determines Year
  (a configurable fraction of volumes straddles a year boundary, keyed by
  issue Number, so Journal+Volume alone does *not* determine Year), and
  each author publishes journal papers in a single home journal -- giving
  cluster 2 the author/issue dependencies of Table 6;
* multi-author papers become multiple tuples differing only in Author,
  the duplication source the paper mines;
* Zipf-skewed author productivity and venue popularity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.relation import NULL, Relation, Schema

#: Target schema, in the paper's Figure 13 order.
DBLP_ATTRIBUTES = (
    "Author", "Publisher", "Year", "Editor", "Pages", "BookTitle",
    "Month", "Volume", "Journal", "Number", "School", "Series", "ISBN",
)

#: The six attributes the paper finds to be >98% NULL.
NULL_HEAVY_ATTRIBUTES = (
    "Publisher", "ISBN", "Editor", "Series", "School", "Month",
)

_CONFERENCES = [
    "SIGMOD", "VLDB", "ICDE", "EDBT", "PODS", "KDD", "ICML", "NIPS",
    "WWW", "CIKM", "SODA", "STOC", "FOCS", "ICDT", "CAiSE", "ER",
    "DEXA", "SSDBM", "ICDM", "SDM", "PKDD", "WSDM", "UAI", "AAAI", "IJCAI",
]

_JOURNALS = [
    ("TODS", 1976), ("VLDB Journal", 1992), ("SIGMOD Record", 1971),
    ("TKDE", 1989), ("Information Systems", 1975), ("JACM", 1954),
    ("DKE", 1985), ("DAPD", 1993), ("AI Journal", 1970),
    ("IEEE Computer", 1970), ("CACM", 1958), ("TCS", 1975),
]

#: Journals whose 4th issue of each volume slips into the next calendar
#: year -- the realistic anomaly that keeps Journal+Volume from determining
#: Year on its own.
_STRADDLING_JOURNALS = {"SIGMOD Record", "CACM", "IEEE Computer"}

_SCHOOLS = [
    "MIT", "Stanford", "Toronto", "Wisconsin", "Berkeley",
    "CMU", "Waterloo", "ETH", "Maryland", "Cornell",
]
_PUBLISHERS = ["ACM Press", "IEEE CS", "Springer", "Morgan Kaufmann",
               "Elsevier", "MIT Press"]
_SERIES = ["LNCS", "ACM ICPS", "CRPIT", "CEUR", "Advances in DB"]
_EDITORS = ["Gray", "Ullman", "Widom", "Stonebraker", "Codd",
            "Bernstein", "Abiteboul", "DeWitt"]
_MONTHS = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
           "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]

#: Publication-type tuple shares (conference, journal, misc); the misc share
#: reproduces the paper's tiny third cluster (129 of 50,000).
_TYPE_SHARES = (0.7178, 0.2796, 0.0026)


@dataclass
class _AuthorPool:
    """Zipf-skewed author names with stable per-author home journals."""

    names: list
    weights: list
    rng: random.Random

    @classmethod
    def build(cls, n_tuples: int, rng: random.Random) -> "_AuthorPool":
        count = max(20, n_tuples // 7)
        names = [f"Author-{i:05d}" for i in range(count)]
        weights = [1.0 / (rank + 1) ** 0.85 for rank in range(count)]
        return cls(names=names, weights=weights, rng=rng)

    def sample(self, k: int) -> list:
        picked: list = []
        while len(picked) < k:
            name = self.rng.choices(self.names, weights=self.weights, k=1)[0]
            if name not in picked:
                picked.append(name)
        return picked

    def home_journal(self, author: str) -> tuple:
        """The single journal this author publishes in (stable per author)."""
        index = int(author.rsplit("-", 1)[1])
        return _JOURNALS[index % len(_JOURNALS)]


def dblp(n_tuples: int = 50000, seed: int = 7) -> Relation:
    """Generate the integrated DBLP-like relation with ``n_tuples`` rows."""
    if n_tuples < 100:
        raise ValueError("the DBLP generator needs at least 100 tuples")
    rng = random.Random(seed)
    authors = _AuthorPool.build(n_tuples, rng)

    quotas = {
        "conference": round(_TYPE_SHARES[0] * n_tuples),
        "journal": round(_TYPE_SHARES[1] * n_tuples),
    }
    quotas["misc"] = n_tuples - quotas["conference"] - quotas["journal"]

    rows: list[tuple] = []
    page_cursor = 1
    for kind in ("conference", "journal", "misc"):
        while quotas[kind] > 0 and len(rows) < n_tuples:
            new_rows, pages_used = _make_paper(
                kind, authors, rng, page_cursor, quotas[kind]
            )
            page_cursor += pages_used
            quotas[kind] -= len(new_rows)
            rows.extend(new_rows)
    rng.shuffle(rows)
    schema = Schema(DBLP_ATTRIBUTES)
    return Relation(schema, rows[:n_tuples])


def _record(**fields) -> tuple:
    return tuple(fields.get(name, NULL) for name in DBLP_ATTRIBUTES)


def _pages(rng: random.Random, cursor: int) -> str:
    start = cursor * 13 % 997 + 1000 * (cursor % 37)
    return f"{start}-{start + rng.randrange(8, 25)}"


def _make_paper(kind, authors, rng, page_cursor, quota):
    """Rows for one publication (one per author), capped at ``quota``."""
    n_authors = min(quota, rng.choices([1, 2, 3, 4], weights=[45, 30, 18, 7])[0])
    names = authors.sample(n_authors)
    pages = _pages(rng, page_cursor)

    if kind == "conference":
        conf = rng.choice(_CONFERENCES)
        year = str(rng.randrange(1985, 2004))
        base = {
            "Year": year,
            "Pages": pages,
            "BookTitle": f"{conf} {year}",
        }
        # A small slice of proceedings carries publisher metadata; kept
        # under 2% so the six sparse attributes stay >98% NULL overall.
        if rng.random() < 0.015:
            base["Publisher"] = rng.choice(_PUBLISHERS)
            base["ISBN"] = f"0-89791-{rng.randrange(100, 999)}-{rng.randrange(10)}"
    elif kind == "journal":
        # All authors of a journal paper share the first author's home
        # journal, so Author -> Journal holds inside the journal partition.
        journal, base_year = authors.home_journal(names[0])
        names = [n for n in names if authors.home_journal(n)[0] == journal] or names[:1]
        volume = rng.randrange(1, 26)
        number = str(rng.randrange(1, 5))
        year = base_year + volume
        if journal in _STRADDLING_JOURNALS and number == "4":
            year += 1
        base = {
            "Year": str(year),
            "Pages": pages,
            "Volume": str(volume),
            "Journal": journal,
            "Number": number,
        }
    else:
        base = {
            "Year": str(rng.randrange(1985, 2004)),
            "School": rng.choice(_SCHOOLS),
            "Month": rng.choice(_MONTHS),
            "Publisher": rng.choice(_PUBLISHERS),
            "Series": rng.choice(_SERIES),
            "Editor": rng.choice(_EDITORS),
            "ISBN": f"9-{rng.randrange(10**8, 10**9)}",
            "Pages": pages,
        }
        names = names[:1]

    return [_record(Author=name, **base) for name in names], 1
