"""Generic seeded generators for tests, property checks and ablations."""

from __future__ import annotations

import random

from repro.relation import Relation


def random_categorical(
    n_tuples: int, cardinalities, seed: int = 0, prefix: str = "v"
) -> Relation:
    """A relation with independently drawn categorical columns.

    ``cardinalities[i]`` is the domain size of attribute ``Ai``; values are
    attribute-tagged strings so columns never share literals.
    """
    rng = random.Random(seed)
    names = [f"A{i}" for i in range(len(cardinalities))]
    rows = [
        tuple(
            f"{prefix}{i}_{rng.randrange(c)}" for i, c in enumerate(cardinalities)
        )
        for _ in range(n_tuples)
    ]
    return Relation(names, rows)


def planted_partitions(
    n_tuples: int, n_blocks: int, n_attributes: int = 4, seed: int = 0
) -> tuple[Relation, list]:
    """A relation with ``n_blocks`` disjoint-valued tuple blocks.

    Returns the relation plus the planted block label of each tuple -- the
    ground truth for horizontal-partitioning tests.
    """
    if n_blocks < 1 or n_tuples < n_blocks:
        raise ValueError("need at least one tuple per block")
    rng = random.Random(seed)
    names = [f"A{i}" for i in range(n_attributes)]
    rows, labels = [], []
    for index in range(n_tuples):
        block = index % n_blocks
        rows.append(
            tuple(
                f"b{block}_a{a}_{rng.randrange(3)}" for a in range(n_attributes)
            )
        )
        labels.append(block)
    order = list(range(n_tuples))
    rng.shuffle(order)
    return Relation(names, [rows[i] for i in order]), [labels[i] for i in order]


def relation_with_fd(
    n_tuples: int,
    n_keys: int,
    seed: int = 0,
    noise_tuples: int = 0,
) -> Relation:
    """A relation where ``K -> D`` is planted (with optional violations).

    ``K`` ranges over ``n_keys`` values, each mapped to a fixed ``D`` value;
    ``noise_tuples`` rows break the mapping (for approximate-FD tests).  A
    third free attribute ``X`` keeps the relation from being trivially
    one-dimensional.
    """
    if n_keys < 1:
        raise ValueError("need at least one key value")
    rng = random.Random(seed)
    mapping = {f"k{i}": f"d{i % max(1, n_keys // 2)}" for i in range(n_keys)}
    rows = []
    for _ in range(n_tuples - noise_tuples):
        key = f"k{rng.randrange(n_keys)}"
        rows.append((key, mapping[key], f"x{rng.randrange(5)}"))
    for j in range(noise_tuples):
        key = f"k{rng.randrange(n_keys)}"
        rows.append((key, f"broken{j}", f"x{rng.randrange(5)}"))
    rng.shuffle(rows)
    return Relation(["K", "D", "X"], rows)
