"""Synthetic stand-ins for the paper's evaluation data sets.

The paper uses (a) a relation joined from the IBM DB2 v8 sample database and
(b) a 13-attribute relation mapped from the DBLP XML snapshot.  Neither is
redistributable/obtainable here, so seeded generators reproduce their
*structural* properties -- join-induced FDs and value co-occurrence for DB2;
publication-type NULL signatures, Zipfian authors and journal-issue FDs for
DBLP.  DESIGN.md documents why each substitution preserves the behaviours
the experiments exercise.
"""

from repro.datasets.db2_sample import Db2Sample, db2_sample
from repro.datasets.dblp import DBLP_ATTRIBUTES, NULL_HEAVY_ATTRIBUTES, dblp
from repro.datasets.errors import (
    ErrorInjection,
    InjectedTuple,
    inject_erroneous_tuples,
)
from repro.datasets.synthetic import (
    planted_partitions,
    random_categorical,
    relation_with_fd,
)

__all__ = [
    "DBLP_ATTRIBUTES",
    "Db2Sample",
    "ErrorInjection",
    "InjectedTuple",
    "NULL_HEAVY_ATTRIBUTES",
    "db2_sample",
    "dblp",
    "inject_erroneous_tuples",
    "planted_partitions",
    "random_categorical",
    "relation_with_fd",
]
