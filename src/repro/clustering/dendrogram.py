"""Merge sequences and dendrograms.

Agglomerative clustering produces a sequence ``Q`` of merges, each with its
information loss.  ``FD-RANK`` (Section 7) consumes exactly this sequence,
and the paper's Figures 10 and 14-18 are its dendrograms.  This module holds
the data structure plus cutting, querying and ASCII rendering.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Merge:
    """One agglomerative step: nodes ``left`` and ``right`` become ``parent``.

    Node ids ``0..n_leaves-1`` are leaves; merge ``i`` creates node
    ``n_leaves + i``.  ``loss`` is the information loss ``delta_I`` of the
    step, in bits.
    """

    left: int
    right: int
    parent: int
    loss: float


class Dendrogram:
    """A full merge sequence over ``n_leaves`` objects.

    The sequence may stop early (a partial clustering); a complete
    agglomeration has ``n_leaves - 1`` merges.
    """

    def __init__(self, n_leaves: int, merges, labels=None):
        if n_leaves < 1:
            raise ValueError("a dendrogram needs at least one leaf")
        self.n_leaves = n_leaves
        self.merges: list[Merge] = list(merges)
        if len(self.merges) > n_leaves - 1:
            raise ValueError("more merges than an agglomeration can contain")
        if labels is not None and len(labels) != n_leaves:
            raise ValueError("need exactly one label per leaf")
        self.labels = list(labels) if labels is not None else [str(i) for i in range(n_leaves)]

    # -- basic queries -----------------------------------------------------------

    @property
    def losses(self) -> list[float]:
        """The information loss of each merge, in sequence order."""
        return [m.loss for m in self.merges]

    @property
    def max_loss(self) -> float:
        """``max(Q)`` -- the largest single-merge loss (0 if no merges)."""
        return max((m.loss for m in self.merges), default=0.0)

    def is_complete(self) -> bool:
        """Whether the sequence agglomerates all the way to one cluster."""
        return len(self.merges) == self.n_leaves - 1

    # -- cluster reconstruction --------------------------------------------------

    def _clusters_after(self, n_merges: int) -> dict:
        """Map from live node id to its leaf members after ``n_merges`` steps."""
        clusters = {i: [i] for i in range(self.n_leaves)}
        for m in self.merges[:n_merges]:
            clusters[m.parent] = clusters.pop(m.left) + clusters.pop(m.right)
        return clusters

    def cut(self, k: int) -> list[list[int]]:
        """The clustering with ``k`` clusters (lists of leaf indices).

        Applies the first ``n_leaves - k`` merges.  Requires the sequence to
        be long enough to reach ``k`` clusters.
        """
        if not 1 <= k <= self.n_leaves:
            raise ValueError(f"k must be in [1, {self.n_leaves}], got {k}")
        needed = self.n_leaves - k
        if needed > len(self.merges):
            raise ValueError(
                f"sequence has only {len(self.merges)} merges; cannot reach k={k}"
            )
        clusters = self._clusters_after(needed)
        return [sorted(members) for members in clusters.values()]

    def cut_at_loss(self, threshold: float) -> list[list[int]]:
        """Clusters formed by applying merges while ``loss <= threshold``."""
        n_merges = 0
        for m in self.merges:
            if m.loss > threshold:
                break
            n_merges += 1
        return [sorted(v) for v in self._clusters_after(n_merges).values()]

    def assignment(self, k: int) -> list[int]:
        """Cluster index (0-based, in cut order) for each leaf."""
        result = [0] * self.n_leaves
        for cluster_index, members in enumerate(self.cut(k)):
            for leaf in members:
                result[leaf] = cluster_index
        return result

    # -- FD-RANK support ----------------------------------------------------------

    def merge_gathering(self, leaves) -> Merge | None:
        """The first merge after which all ``leaves`` lie in one cluster.

        Returns ``None`` if the (possibly partial) sequence never gathers
        them.  A single leaf is gathered from the start; by convention the
        answer is then ``None`` as no merge was required.
        """
        target = set(leaves)
        unknown = target - set(range(self.n_leaves))
        if unknown:
            raise ValueError(f"unknown leaf indices: {sorted(unknown)}")
        if len(target) <= 1:
            return None
        member_of = {i: i for i in target}  # leaf -> current node id
        node_counts = {i: 1 for i in target}
        for m in self.merges:
            touched_left = [leaf for leaf, node in member_of.items() if node == m.left]
            touched_right = [leaf for leaf, node in member_of.items() if node == m.right]
            if not touched_left and not touched_right:
                continue
            for leaf in touched_left + touched_right:
                member_of[leaf] = m.parent
            node_counts[m.parent] = len(touched_left) + len(touched_right)
            if node_counts[m.parent] == len(target):
                return m
        return None

    def merge_index(self, merge: Merge) -> int:
        """Position of a merge within the sequence."""
        return self.merges.index(merge)

    # -- rendering ------------------------------------------------------------------

    def _children(self) -> dict:
        return {m.parent: (m.left, m.right, m.loss) for m in self.merges}

    def render(self, max_label: int = 24) -> str:
        """An indented ASCII rendering of the (possibly partial) forest.

        Roots are the clusters left at the end of the sequence; each internal
        node prints the information loss at which it formed, mirroring the
        loss axis of the paper's dendrogram figures.
        """
        children = self._children()
        live = set(range(self.n_leaves))
        for m in self.merges:
            live.discard(m.left)
            live.discard(m.right)
            live.add(m.parent)

        lines: list[str] = []

        def walk(node: int, prefix: str, connector: str, child_prefix: str) -> None:
            if node < self.n_leaves:
                label = self.labels[node][:max_label]
                lines.append(f"{prefix}{connector}{label}")
                return
            left, right, loss = children[node]
            lines.append(f"{prefix}{connector}(loss={loss:.4f})")
            walk(left, child_prefix, "├─ ", child_prefix + "│  ")
            walk(right, child_prefix, "└─ ", child_prefix + "   ")

        for root in sorted(live):
            walk(root, "", "", "")
        return "\n".join(lines)

    def merge_table(self) -> str:
        """A numbered table of merges with member labels -- the sequence Q."""
        clusters = {i: [i] for i in range(self.n_leaves)}
        lines = ["step  loss      merged cluster"]
        for step, m in enumerate(self.merges, start=1):
            merged = clusters.pop(m.left) + clusters.pop(m.right)
            clusters[m.parent] = merged
            names = ", ".join(self.labels[i] for i in sorted(merged))
            lines.append(f"{step:<5d} {m.loss:<9.4f} {{{names}}}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Dendrogram({self.n_leaves} leaves, {len(self.merges)} merges, "
            f"max_loss={self.max_loss:.4f})"
        )
