"""LIMBO: scaLable InforMation BOttleneck clustering (paper Section 5.2).

Three phases:

1. **Summarize** -- stream the objects into a :class:`DCFTree` whose merge
   threshold is ``phi * I(V;T) / |V|``; the leaf entries summarize the data.
2. **Cluster** -- run AIB over the leaf summaries, producing the full merge
   sequence (dendrogram).
3. **Associate** -- scan the objects again and assign each to the closest of
   the ``k`` representative DCFs (minimum information loss).

The exact ``I(V;T)`` needed by the threshold is available because the matrix
builders make a first pass over the data (Section 6.2's "three passes").
"""

from __future__ import annotations

import hashlib

from repro import kernels
from repro.budget import checkpoint
from repro.clustering.aib import AIBResult, aib
from repro.clustering.dcf import DCF, merge, merge_cost
from repro.clustering.dcf_tree import DCFTree
from repro.infotheory.entropy import mutual_information_rows
from repro.testing.faults import fault_point

#: Object-loop iterations between cooperative budget checkpoints.
_CHECK_EVERY = 64

#: When Phase 1 must be re-run to respect ``max_summaries``, the threshold is
#: scaled by this factor per rebuild (BIRCH-style threshold escalation).
_REBUILD_FACTOR = 2.0


class Limbo:
    """The LIMBO clustering driver.

    Parameters
    ----------
    phi:
        Summary accuracy knob (``phi = 0`` merges only identical objects and
        makes LIMBO equivalent to AIB; larger values give coarser, smaller
        summaries).
    branching:
        DCF-tree branching factor ``B`` (default 4, as in Section 8).
    max_summaries:
        Optional cap on the number of Phase-1 summaries.  When the tree
        yields more leaves than this, Phase 1 is re-run over the leaf DCFs
        with an escalated threshold until the cap is met -- the paper's
        "pick a number of leaves that is sufficiently large" device for
        horizontal partitioning.
    budget:
        Optional :class:`repro.budget.Budget`; the Phase-1 insert loop and
        the Phase-3 association loop checkpoint against it cooperatively
        and raise :class:`repro.errors.ResourceLimitExceeded` on
        exhaustion.
    backend:
        ``"auto"`` (default), ``"sparse"`` or ``"dense"``; threaded through
        to the DCF-tree scans (Phase 1), AIB (Phase 2) and the association
        loop (Phase 3).  ``auto`` lets each phase pick the vectorized
        :mod:`repro.kernels` path when its input is large enough to win.
    executor:
        Optional :class:`repro.parallel.ShardedExecutor`.  When given,
        Phase 1 runs the *sharded* algorithm (per-shard summarization, then
        a cross-shard merge) and Phase 3 associates objects in parallel
        blocks.  The shard layout depends only on the input size and the
        executor's ``shard_size``, never on its worker count, so any
        ``workers=N`` produces bit-identical results to ``workers=1``.
    checkpoint:
        Optional :class:`repro.checkpoint.StageCheckpoint`.  The Phase-1
        summaries are snapshotted once :meth:`fit` completes (keyed by a
        digest of the exact inputs and knobs) and the Phase-2 merge
        sequence rides the same handle through :func:`aib`; a resumed run
        whose stage died *between* phases reloads the finished phase
        instead of recomputing it.  Snapshots are content-addressed, so a
        key mismatch silently recomputes -- reuse can never change a
        result.
    max_leaf_entries:
        Optional fixed Phase-1 leaf buffer (the paper's space-bounded
        LIMBO).  Threaded into every :class:`DCFTree` this driver builds
        (sequential, per-shard, and the cross-shard merge tree); overflow
        escalates the merge threshold and rebuilds in place.
        ``buffer_rebuilds`` counts the escalations for the report's
        ``memory`` health entry.
    """

    def __init__(self, phi: float = 0.0, branching: int = 4,
                 max_summaries: int | None = None, budget=None,
                 backend: str = "auto", executor=None, checkpoint=None,
                 max_leaf_entries: int | None = None):
        if phi < 0.0:
            raise ValueError("phi must be non-negative")
        if max_summaries is not None and max_summaries < 1:
            raise ValueError("max_summaries must be positive")
        if max_leaf_entries is not None and max_leaf_entries < 1:
            raise ValueError("max_leaf_entries must be positive")
        self.phi = float(phi)
        self.branching = int(branching)
        self.max_summaries = max_summaries
        self.budget = budget
        self.backend = kernels.validate_backend(backend)
        self.executor = executor
        self.checkpoint = checkpoint
        self.max_leaf_entries = max_leaf_entries
        self.buffer_rebuilds = 0
        self._rows: list | None = None
        self._priors: list | None = None
        self._supports: list | None = None
        self._summaries: list[DCF] | None = None
        self._total_information: float | None = None
        self._threshold: float | None = None

    def __getstate__(self):
        """Pickle without the process-local runtime companions.

        Budgets carry per-process clocks, executors own worker pools, and
        checkpoint handles own the store -- none of them belong inside a
        stage snapshot.  A restored ``Limbo`` keeps its fitted numeric
        state and runs un-budgeted, sequential and checkpoint-less.
        """
        state = dict(self.__dict__)
        state["budget"] = None
        state["executor"] = None
        state["checkpoint"] = None
        return state

    # -- Phase 1 -----------------------------------------------------------------

    def fit(self, rows, priors, supports=None, mutual_information: float | None = None) -> "Limbo":
        """Phase 1: summarize the objects into leaf DCFs.

        Parameters
        ----------
        rows:
            Sparse conditional distributions ``p(T|v)``, one per object.
        priors:
            Object priors ``p(v)`` (must sum to one).
        supports:
            Optional per-object ``O``-matrix rows; when given, leaf entries
            are ADCFs that accumulate the counts (Section 6.2).
        mutual_information:
            The exact ``I(V;T)`` if already known (saves a pass).
        """
        rows = list(rows)
        priors = [float(p) for p in priors]
        if len(rows) != len(priors):
            raise ValueError("rows and priors must have the same length")
        if not rows:
            raise ValueError("cannot fit on zero objects")
        if supports is not None:
            supports = list(supports)
            if len(supports) != len(rows):
                raise ValueError("supports must have the same length as rows")

        if mutual_information is None:
            mutual_information = mutual_information_rows(rows, priors)
        self._total_information = mutual_information
        self._threshold = self.phi * mutual_information / len(rows)

        fault_point("limbo.fit")
        phase_key = None
        summaries = None
        if self.checkpoint is not None:
            phase_key = self._fit_key(rows, priors, supports, mutual_information)
            summaries = self.checkpoint.load(phase_key)
        if summaries is None:
            governor = getattr(self.budget, "memory", None)
            floor = mutual_information / len(rows) / 64.0
            if self.executor is not None:
                summaries = self._fit_sharded(rows, priors, supports, floor, governor)
            else:
                tree = self._tree(self._threshold, floor, governor)
                for index, (row, prior) in enumerate(zip(rows, priors)):
                    if index % _CHECK_EVERY == 0:
                        checkpoint(self.budget, units=_CHECK_EVERY, where="limbo.fit")
                    support = supports[index] if supports is not None else None
                    tree.insert(DCF.singleton(index, prior, row, support=support))
                summaries = tree.leaves()
                self._retire_tree(tree)

            threshold = self._threshold
            while self.max_summaries is not None and len(summaries) > self.max_summaries:
                checkpoint(self.budget, units=len(summaries), where="limbo.rebuild")
                threshold = max(threshold * _REBUILD_FACTOR, floor)
                tree = self._tree(threshold, floor, governor)
                for dcf in summaries:
                    tree.insert(dcf)
                summaries = tree.leaves()
                self._retire_tree(tree)
            if self.checkpoint is not None:
                self.checkpoint.save(phase_key, summaries)

        self._rows, self._priors, self._supports = rows, priors, supports
        self._summaries = summaries
        return self

    def _tree(self, threshold: float, floor: float, governor) -> DCFTree:
        """A Phase-1 tree carrying this driver's space-bound configuration."""
        return DCFTree(
            threshold, branching=self.branching, backend=self.backend,
            max_leaf_entries=self.max_leaf_entries, threshold_floor=floor,
            governor=governor,
        )

    def _retire_tree(self, tree: DCFTree) -> None:
        """Fold a finished tree's space-bound stats in and free its booking."""
        self.buffer_rebuilds += tree.rebuilds
        tree.unbook()

    def _fit_key(self, rows, priors, supports, mutual_information) -> tuple:
        """A repr-stable key digesting Phase 1's exact inputs and knobs.

        The digest covers every conditional, prior and support row bit-for
        bit (``repr`` of a float is exact), so a snapshot can only ever be
        reused for the identical summarization problem.
        """
        digest = hashlib.sha256()
        for row, prior in zip(rows, priors):
            digest.update(repr(list(row.items())).encode("utf-8"))
            digest.update(repr(prior).encode("ascii"))
        if supports is not None:
            for support in supports:
                digest.update(repr(list(support.items())).encode("utf-8"))
        return (
            "limbo.fit", repr(self.phi), self.branching, self.backend,
            self.max_summaries, self.max_leaf_entries, len(rows),
            supports is not None, repr(mutual_information), digest.hexdigest(),
        )

    def _fit_sharded(self, rows, priors, supports, floor, governor) -> list[DCF]:
        """Sharded Phase 1: per-shard summarization + cross-shard merge.

        The shard layout is :func:`repro.parallel.shards.shard_bounds` of
        ``(len(rows), executor.shard_size)`` -- a pure function of the
        input, so every worker count executes identical shards.  At
        ``threshold <= 0`` (the ``phi = 0`` degenerate case) the merge step
        groups shard leaves by their members' original rows -- keys taken
        from the untouched input, so no accumulated float noise can split a
        group; at positive thresholds the shard leaves are re-inserted into
        a fresh DCF-tree with the same threshold, the same device the
        ``max_summaries`` rebuild loop already uses.
        """
        from repro.parallel import shards, tasks

        bounds = shards.shard_bounds(len(rows), self.executor.shard_size)
        payloads = [
            (
                start,
                rows[start:stop],
                priors[start:stop],
                supports[start:stop] if supports is not None else None,
                self._threshold,
                self.branching,
                self.backend,
                self.max_leaf_entries,
                floor,
            )
            for start, stop in bounds
        ]
        shard_leaves = self.executor.map(
            tasks.fit_shard,
            payloads,
            units=[stop - start for start, stop in bounds],
            where="limbo.fit",
            budget=self.budget,
        )
        if self._threshold <= 0.0:
            summaries = merge_identical_leaves(shard_leaves, rows)
            if (self.max_leaf_entries is None
                    or len(summaries) <= self.max_leaf_entries):
                return summaries
            # The identical-row groups outgrow the buffer: bound them the
            # same way the tree path would, by escalating from zero.
            tree = self._tree(0.0, floor, governor)
            for leaf in summaries:
                tree.insert(leaf)
            summaries = tree.leaves()
            self._retire_tree(tree)
            return summaries
        tree = self._tree(self._threshold, floor, governor)
        for leaves in shard_leaves:
            for leaf in leaves:
                tree.insert(leaf)
        summaries = tree.leaves()
        self._retire_tree(tree)
        return summaries

    @property
    def summaries(self) -> list[DCF]:
        """The Phase-1 leaf DCFs."""
        self._require_fitted()
        return list(self._summaries)

    @property
    def total_information(self) -> float:
        """``I(V;T)`` of the fitted data, in bits."""
        self._require_fitted()
        return self._total_information

    @property
    def threshold(self) -> float:
        """The Phase-1 merge threshold ``phi * I(V;T) / |V|``."""
        self._require_fitted()
        return self._threshold

    # -- Phase 2 -----------------------------------------------------------------

    def merge_sequence(self, labels=None) -> AIBResult:
        """Phase 2: full AIB over the leaf summaries.

        The result's ``initial_information`` is ``I(C_leaves; T)`` so that
        ``information_at(k)`` reflects the summarized data exactly.
        """
        self._require_fitted()
        leaf_information = mutual_information_rows(
            [s.conditional for s in self._summaries],
            [s.weight for s in self._summaries],
        )
        return aib(
            self._summaries,
            labels=labels,
            initial_information=leaf_information,
            budget=self.budget,
            backend=self.backend,
            checkpoint=self.checkpoint,
        )

    def representatives(self, k: int) -> list[DCF]:
        """The ``k`` cluster-representative DCFs from Phases 1+2."""
        return self.merge_sequence().clusters(k)

    # -- Phase 3 -----------------------------------------------------------------

    def assign(self, representatives, rows=None, priors=None) -> list[int]:
        """Phase 3: associate each object with its closest representative.

        Proximity is the information loss of merging the object's singleton
        DCF into the representative.  Defaults to the fitted objects; pass
        ``rows``/``priors`` to associate a different (e.g. unsummarized or
        held-out) object set.
        """
        self._require_fitted()
        if rows is None:
            rows = self._rows
            priors = self._priors
        elif priors is None:
            priors = [1.0 / len(rows)] * len(rows)
        reps = list(representatives)
        if not reps:
            raise ValueError("need at least one representative")
        fault_point("limbo.assign")
        if self.executor is not None and self.executor.parallel:
            from repro.parallel import shards, tasks

            bounds = shards.shard_bounds(len(rows), self.executor.shard_size)
            if len(bounds) > 1:
                blocks = self.executor.map(
                    tasks.assign_block,
                    [
                        (reps, rows[start:stop], priors[start:stop], self.backend)
                        for start, stop in bounds
                    ],
                    units=[(stop - start) * len(reps) for start, stop in bounds],
                    where="limbo.assign",
                    budget=self.budget,
                )
                return [index for block in blocks for index in block]
        return assign_rows(reps, rows, priors, self.backend, budget=self.budget)

    def cluster(self, k: int) -> list[int]:
        """Run Phases 2+3 and return a cluster index per fitted object."""
        return self.assign(self.representatives(k))

    # -- diagnostics ---------------------------------------------------------------

    def relative_information_loss(self, assignment) -> float:
        """Fraction of ``I(V;T)`` lost by a (Phase 3) hard clustering.

        Section 8.2 reports this as, e.g., "the loss of initial information
        after Phase 3 was 9.45%".
        """
        self._require_fitted()
        clustered = clustering_information(self._rows, self._priors, assignment)
        if self._total_information <= 0.0:
            return 0.0
        return max(0.0, 1.0 - clustered / self._total_information)

    def _require_fitted(self) -> None:
        if self._summaries is None:
            raise RuntimeError("call fit() first")


def assign_rows(representatives, rows, priors, backend, budget=None) -> list[int]:
    """Associate each row with its closest representative (Phase 3 core).

    The single implementation behind both the sequential
    :meth:`Limbo.assign` path and the parallel ``assign_block`` task: each
    object's assignment depends only on its own row, so block boundaries
    cannot change any result.
    """
    reps = list(representatives)
    rows = rows if isinstance(rows, list) else list(rows)
    priors = priors if isinstance(priors, list) else list(priors)
    if kernels.use_dense_assign(
        backend, len(reps), len(rows),
        governor=getattr(budget, "memory", None),
    ):
        packed = kernels.DenseDCFSet.pack(reps)
        return _assign_rows_packed(packed, rows, priors, budget)
    assignment = []
    for index, (row, prior) in enumerate(zip(rows, priors)):
        if index % _CHECK_EVERY == 0:
            checkpoint(
                budget,
                units=_CHECK_EVERY * len(reps),
                where="limbo.assign",
            )
        singleton = DCF(prior, row)
        best_index, best_cost = 0, merge_cost(reps[0], singleton)
        for rep_index in range(1, len(reps)):
            cost = merge_cost(reps[rep_index], singleton)
            if cost < best_cost:
                best_index, best_cost = rep_index, cost
        assignment.append(best_index)
    return assignment


def _assign_rows_packed(packed, rows, priors, budget) -> list[int]:
    """The dense Phase-3 loop, one ``_CHECK_EVERY``-object chunk at a time.

    Chunking serves the budget cadence (one checkpoint per chunk, the same
    count and units the sparse loop emits) and bounds the CSR scratch of
    :func:`repro.kernels.assign_many`.  Chunks the batched kernel declines
    (non-int keys, empty rows) fall back to per-object
    :func:`repro.kernels.merge_cost_many` -- identical assignments either
    way, both paths emit grid-quantized losses.
    """
    n_reps = len(packed)
    assignment: list[int] = []
    for start in range(0, len(rows), _CHECK_EVERY):
        checkpoint(
            budget,
            units=_CHECK_EVERY * n_reps,
            where="limbo.assign",
        )
        chunk_rows = rows[start:start + _CHECK_EVERY]
        chunk_priors = priors[start:start + _CHECK_EVERY]
        block = kernels.assign_many(packed, chunk_rows, chunk_priors)
        if block is not None:
            assignment.extend(block)
            continue
        for row, prior in zip(chunk_rows, chunk_priors):
            if prior <= 0.0:
                raise ValueError("cluster prior must be positive")
            mass = {key: prior * p for key, p in row.items() if p > 0.0}
            costs = kernels.merge_cost_many(packed, mass, prior)
            assignment.append(int(costs.argmin()))
    return assignment


def _row_signature(row) -> tuple:
    """A hashable, bitwise-exact identity for a conditional row."""
    return tuple(sorted(row.items()))


def summarize_identical(start, rows, priors, supports=None) -> list[DCF]:
    """Group objects with identical conditionals into one DCF each.

    The degenerate ``phi = 0`` Phase 1 (only zero-loss merges are allowed,
    and ``delta_I = 0`` exactly when the conditionals coincide -- Section
    5.2 notes LIMBO then reduces to AIB over the distinct objects) in one
    linear pass: no DCF-tree, no per-insert closest-entry scans.  Members
    accumulate in stream order, exactly as the tree's absorb order would.
    ``start`` offsets local indices to global ones for sharded use.
    """
    groups: dict = {}
    order: list = []
    for local, (row, prior) in enumerate(zip(rows, priors)):
        key = _row_signature(row)
        support = supports[local] if supports is not None else None
        singleton = DCF.singleton(start + local, prior, row, support=support)
        existing = groups.get(key)
        if existing is None:
            groups[key] = singleton
            order.append(key)
        else:
            existing.absorb(singleton)
    return [groups[key] for key in order]


def merge_identical_leaves(shard_leaves, rows) -> list[DCF]:
    """Cross-shard merge for the ``phi = 0`` sharded Phase 1.

    Groups are keyed on the *original* row of each leaf's first member --
    input data untouched by any accumulation, so two shards summarizing the
    same duplicate cannot disagree on the key by float noise.  Leaves merge
    in shard order, preserving global stream order within every group.
    """
    groups: dict = {}
    order: list = []
    for leaves in shard_leaves:
        for leaf in leaves:
            key = _row_signature(rows[leaf.members[0]])
            existing = groups.get(key)
            if existing is None:
                groups[key] = leaf
                order.append(key)
            else:
                existing.absorb(leaf)
    return [groups[key] for key in order]


def clustering_information(rows, priors, assignment) -> float:
    """``I(C; T)`` of a hard clustering of the objects, in bits."""
    rows = list(rows)
    if len(assignment) != len(rows):
        raise ValueError("assignment must cover every object")
    clusters: dict = {}
    for row, prior, cluster in zip(rows, priors, assignment):
        entry = clusters.get(cluster)
        if entry is None:
            clusters[cluster] = DCF(prior, row)
        else:
            clusters[cluster] = merge(entry, DCF(prior, row))
    return mutual_information_rows(
        [dcf.conditional for dcf in clusters.values()],
        [dcf.weight for dcf in clusters.values()],
    )
