"""Agglomerative Information Bottleneck (paper Section 5.1).

Starts from one cluster per object and greedily merges the pair with the
minimum information loss ``delta_I`` (Equation 3), recording the full merge
sequence.  Quadratic in the number of objects, which is why LIMBO only runs
it over DCF-tree leaf summaries (Phase 2).

Implementation: a lazy-deletion min-heap over candidate pairs.  Each cluster
carries a version stamp; heap entries referencing a stale stamp are skipped
on pop.  Ties in loss break deterministically on (loss, node ids) so results
are reproducible.

Two interchangeable numeric backends drive the heap: the sparse pure-Python
``merge_cost`` path (the correctness oracle) and the vectorized
:mod:`repro.kernels` engine, which batches the O(n^2) initial build and the
per-merge candidate recomputation over a packed NumPy matrix.  ``backend=
"auto"`` (the default) picks the kernels once the input is large enough for
them to win; both backends produce the same merge sequence (ties still break
on ``(loss, node ids)``).
"""

from __future__ import annotations

import hashlib
import heapq

from repro import kernels
from repro.budget import checkpoint
from repro.clustering.dcf import DCF, merge, merge_cost
from repro.clustering.dendrogram import Dendrogram, Merge


class AIBResult:
    """Outcome of an AIB run: the dendrogram plus cluster reconstruction."""

    def __init__(self, dcfs: list[DCF], dendrogram: Dendrogram, initial_information: float):
        self._initial_dcfs = dcfs
        self.dendrogram = dendrogram
        #: I(C_q; T) at the start, before any merge (equals I(V;T) when each
        #: object is its own cluster).
        self.initial_information = initial_information

    def clusters(self, k: int) -> list[DCF]:
        """The ``k``-clustering as merged DCFs (Equations 1-2)."""
        result = []
        for members in self.dendrogram.cut(k):
            cluster = self._initial_dcfs[members[0]]
            for index in members[1:]:
                cluster = merge(cluster, self._initial_dcfs[index])
            result.append(cluster)
        return result

    def information_at(self, k: int) -> float:
        """``I(C_k; T)``: the initial information minus cumulative loss.

        Only valid for ``k`` reachable by the (possibly partial) sequence.
        """
        n = self.dendrogram.n_leaves
        if not 1 <= k <= n:
            raise ValueError(f"k must be in [1, {n}]")
        spent = sum(m.loss for m in self.dendrogram.merges[: n - k])
        return self.initial_information - spent

    def information_curve(self) -> list[tuple[int, float]]:
        """``(k, I(C_k;T))`` for every k the sequence reaches, descending k."""
        n = self.dendrogram.n_leaves
        curve = [(n, self.initial_information)]
        info = self.initial_information
        for m in self.dendrogram.merges:
            info -= m.loss
            curve.append((curve[-1][0] - 1, info))
        return curve


#: Minimum cluster count before the dense initial candidate build is worth
#: fanning out to worker processes (each worker re-packs the engine, so
#: small inputs lose to the dispatch overhead).
_PARALLEL_MIN_OBJECTS = 128

#: Target candidate pairs per parallel block of the initial build.
_PAIRS_PER_BLOCK = 32_768


def aib(
    dcfs: list[DCF],
    min_clusters: int = 1,
    labels=None,
    initial_information: float | None = None,
    budget=None,
    backend: str = "auto",
    executor=None,
    checkpoint=None,
) -> AIBResult:
    """Run Agglomerative IB over ``dcfs`` down to ``min_clusters``.

    Parameters
    ----------
    dcfs:
        The starting clusters (typically singletons, or LIMBO leaf
        summaries).  Not mutated.
    min_clusters:
        Stop when this many clusters remain (1 = full dendrogram).
    labels:
        Optional leaf labels for the dendrogram.
    initial_information:
        ``I(C_q; T)`` of the starting clustering, if the caller knows it
        (e.g. the exact ``I(V;T)`` of the data).  Defaults to 0.0, in which
        case the merge losses are still exact but ``information_at`` /
        ``information_curve`` report offsets from zero rather than absolute
        information.
    budget:
        Optional :class:`repro.budget.Budget`; the quadratic merge loop
        checkpoints against it per merged cluster.
    backend:
        ``"auto"`` (default), ``"sparse"`` or ``"dense"``.  ``auto`` uses
        the vectorized :mod:`repro.kernels` engine for inputs of at least
        :data:`repro.kernels.DENSE_MIN_OBJECTS` clusters and the sparse
        pure-Python oracle otherwise.
    executor:
        Optional :class:`repro.parallel.ShardedExecutor`.  With multiple
        workers and a dense backend, the O(n^2) initial candidate build is
        computed in pair-balanced row blocks by worker processes; each
        block runs the very same :meth:`DenseMergeEngine.costs` the
        sequential loop runs, so the merge sequence is bit-identical for
        any worker count (including no executor at all).
    checkpoint:
        Optional :class:`repro.checkpoint.StageCheckpoint`.  The full
        merge sequence is snapshotted when the run completes, keyed by a
        digest of the starting DCFs; a resumed run with identical inputs
        reloads the sequence (the dendrogram -- the paper's ``Q``)
        instead of re-running the quadratic loop.  Merge sequences are
        backend-invariant (PR 2's shared loss grid), so the key carries no
        backend.
    """
    n = len(dcfs)
    kernels.validate_backend(backend)
    if n == 0:
        raise ValueError("aib needs at least one cluster")
    if not 1 <= min_clusters <= n:
        raise ValueError(f"min_clusters must be in [1, {n}]")

    if initial_information is None:
        initial_information = 0.0

    merge_key = None
    merges = None
    if checkpoint is not None:
        merge_key = _merge_key(dcfs, min_clusters, initial_information)
        merges = checkpoint.load(merge_key)

    if merges is None:
        dense_index = None
        if backend != "sparse" and n >= 2:
            dense_index = kernels.shared_index(dcfs)
            if not kernels.use_dense(
                backend, n, n_columns=len(dense_index), maximum=kernels.DENSE_MAX_OBJECTS,
                governor=getattr(budget, "memory", None),
                candidates=True,
            ):
                dense_index = None

        if dense_index is not None:
            merges = _merge_sequence_dense(
                dcfs, min_clusters, budget, dense_index, executor
            )
        else:
            merges = _merge_sequence_sparse(dcfs, min_clusters, budget)
        if checkpoint is not None:
            checkpoint.save(merge_key, merges)

    dendrogram = Dendrogram(n, merges, labels=labels)
    return AIBResult(list(dcfs), dendrogram, initial_information)


def _merge_key(dcfs, min_clusters: int, initial_information: float) -> tuple:
    """A repr-stable key digesting an AIB problem's exact inputs.

    Covers every starting cluster's weight and joint masses bit-for-bit;
    labels are presentation-only and excluded.
    """
    digest = hashlib.sha256()
    for dcf in dcfs:
        digest.update(repr(dcf.weight).encode("ascii"))
        digest.update(repr(list(dcf.mass.items())).encode("utf-8"))
    return (
        "aib.merges", len(dcfs), min_clusters,
        repr(initial_information), digest.hexdigest(),
    )


def _merge_sequence_sparse(dcfs, min_clusters, budget) -> list[Merge]:
    """The greedy merge loop over sparse dict DCFs (the correctness oracle)."""
    n = len(dcfs)
    active: dict[int, DCF] = dict(enumerate(dcfs))
    stamps: dict[int, int] = {i: 0 for i in active}
    heap: list[tuple[float, int, int, int, int]] = []

    node_ids = sorted(active)
    for i_pos, i in enumerate(node_ids):
        for j in node_ids[i_pos + 1 :]:
            heapq.heappush(
                heap, (merge_cost(active[i], active[j]), i, j, stamps[i], stamps[j])
            )

    merges: list[Merge] = []
    next_id = n
    while len(active) > min_clusters:
        checkpoint(budget, units=len(active), where="aib.merge")
        loss, i, j, stamp_i, stamp_j = heapq.heappop(heap)
        if stamps.get(i) != stamp_i or stamps.get(j) != stamp_j:
            continue  # stale entry
        merged = merge(active[i], active[j])
        del active[i], active[j], stamps[i], stamps[j]
        active[next_id] = merged
        stamps[next_id] = 0
        merges.append(Merge(left=i, right=j, parent=next_id, loss=loss))
        for other, other_dcf in active.items():
            if other == next_id:
                continue
            a, b = (other, next_id) if other < next_id else (next_id, other)
            heapq.heappush(
                heap,
                (merge_cost(other_dcf, merged), a, b, stamps[a], stamps[b]),
            )
        next_id += 1
    return merges


def _merge_sequence_dense(
    dcfs, min_clusters, budget, index, executor=None
) -> list[Merge]:
    """The same greedy policy over the packed :class:`DenseMergeEngine`.

    The lazy-deletion heap is replaced by a :class:`CandidateMatrix` whose
    ``best()`` reproduces the heap's pop order exactly, including the
    ``(loss, node ids)`` tie-break; the ``delta_I`` evaluations are batched
    per node instead of being computed pair by pair.  The initial O(n^2)
    build optionally fans out to an executor in pair-balanced row blocks;
    the per-merge recomputation stays in-process (each step depends on the
    previous merge, so there is nothing independent to distribute).
    """
    n = len(dcfs)
    engine = kernels.DenseMergeEngine(dcfs, index=index)
    candidates = kernels.CandidateMatrix(2 * n - 1)
    if (
        executor is not None
        and executor.parallel
        and n >= _PARALLEL_MIN_OBJECTS
    ):
        from repro.parallel import shards, tasks

        blocks = shards.pair_blocks(
            n, shards.shard_count(n * (n - 1) // 2, _PAIRS_PER_BLOCK)
        )
        for block in executor.map(
            tasks.aib_pairwise_block,
            [(list(dcfs), index, start, stop) for start, stop in blocks],
            where="aib.pairwise",
            budget=budget,
        ):
            for i, costs in block:
                candidates.fill_row(i, costs)
    else:
        for i in range(n - 1):
            candidates.fill_row(i, engine.costs(i, range(i + 1, n)))

    alive = set(range(n))
    merges: list[Merge] = []
    next_id = n
    while len(alive) > min_clusters:
        checkpoint(budget, units=len(alive), where="aib.merge")
        i, j, loss = candidates.best()
        engine.merge(i, j, next_id)
        alive.discard(i)
        alive.discard(j)
        merges.append(Merge(left=i, right=j, parent=next_id, loss=loss))
        others = sorted(alive)
        alive.add(next_id)
        new_costs = engine.costs(next_id, others) if others else ()
        candidates.merge(i, j, next_id, others, new_costs)
        next_id += 1
    return merges
