"""The DCF-tree: LIMBO's Phase-1 summarization structure (Section 5.2).

A height-balanced tree in the style of BIRCH.  Leaf nodes hold DCF entries
that summarize groups of inserted objects; internal nodes hold the merged
DCFs of their children and route insertions.  An object descends to the
closest child at each level (distance = information loss ``delta_I``); at a
leaf it merges into the closest entry if the loss stays within the threshold
``phi * I(V;T) / |V|``, otherwise it becomes a new entry, splitting the leaf
(and, recursively, ancestors) when the branching factor is exceeded.

With ``phi = 0`` only identical objects merge, and LIMBO degenerates to AIB
over the distinct objects -- the equivalence Section 5.2 notes.
"""

from __future__ import annotations

from repro import kernels
from repro.clustering.dcf import DCF, merge_cost

#: Numeric slack so that delta_I of *identical* objects (which is zero up to
#: floating-point noise) always passes a phi=0 threshold.
_MERGE_EPSILON = 1e-12


class _Node:
    """A tree node: parallel lists of entry DCFs and child nodes (leaves have
    no children)."""

    __slots__ = ("entries", "children")

    def __init__(self, entries=None, children=None):
        self.entries: list[DCF] = entries or []
        self.children: list["_Node"] | None = children

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class DCFTree:
    """Incremental DCF summarization with bounded branching.

    Parameters
    ----------
    threshold:
        Maximum information loss allowed when absorbing an object into an
        existing leaf entry (``phi * I(V;T) / |V|``).
    branching:
        Maximum entries per node (the paper's ``B``; default 4 as in
        Section 8).
    backend:
        ``"auto"`` (default), ``"sparse"`` or ``"dense"``.  The closest-
        entry scan batches its ``delta_I`` evaluations through
        :func:`repro.kernels.closest_entry` once a node holds at least
        :data:`repro.kernels.DENSE_MIN_ENTRIES` entries (``auto``) or
        always (``dense``); with the default branching factor of 4 the
        sparse scan is cheaper and ``auto`` keeps it.
    """

    def __init__(self, threshold: float, branching: int = 4, backend: str = "auto"):
        if threshold < 0.0:
            raise ValueError("threshold must be non-negative")
        if branching < 2:
            raise ValueError("branching factor must be at least 2")
        self.threshold = float(threshold)
        self.branching = int(branching)
        self.backend = kernels.validate_backend(backend)
        self._root = _Node()
        self.n_inserted = 0
        self.n_absorbed = 0  # objects merged into an existing entry

    # -- public API -------------------------------------------------------------

    def insert(self, dcf: DCF) -> None:
        """Insert one object's singleton DCF."""
        self.n_inserted += 1
        overflow = self._insert_into(self._root, dcf)
        if overflow is not None:
            # Root split: grow the tree by one level.
            left, right = overflow
            self._root = _Node(
                entries=[self._summary(left), self._summary(right)],
                children=[left, right],
            )

    def leaves(self) -> list[DCF]:
        """All leaf entries, left to right -- the Phase-1 summaries."""
        result: list[DCF] = []
        self._collect(self._root, result)
        return result

    @property
    def height(self) -> int:
        """Tree height (a single leaf node has height 1)."""
        node, h = self._root, 1
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    # -- internals -----------------------------------------------------------------

    @staticmethod
    def _summary(node: _Node) -> DCF:
        """The merged DCF of all entries of a node (always a fresh object)."""
        summary = node.entries[0].copy()
        for entry in node.entries[1:]:
            summary.absorb(entry)
        return summary

    def _closest(self, entries: list[DCF], dcf: DCF) -> tuple[int, float]:
        if kernels.use_dense(
            self.backend, len(entries), minimum=kernels.DENSE_MIN_ENTRIES
        ):
            return kernels.closest_entry(entries, dcf)
        best_index, best_cost = 0, merge_cost(entries[0], dcf)
        for index in range(1, len(entries)):
            cost = merge_cost(entries[index], dcf)
            if cost < best_cost:
                best_index, best_cost = index, cost
        return best_index, best_cost

    def _insert_into(self, node: _Node, dcf: DCF):
        """Insert recursively; returns a (left, right) pair if ``node`` split."""
        if node.is_leaf:
            if node.entries:
                index, cost = self._closest(node.entries, dcf)
                if cost <= self.threshold + _MERGE_EPSILON:
                    node.entries[index].absorb(dcf)
                    self.n_absorbed += 1
                    return None
            node.entries.append(dcf)
            if len(node.entries) > self.branching:
                return self._split(node)
            return None

        index, _ = self._closest(node.entries, dcf)
        # Absorb into the routing summary first: the child will consume dcf.
        routing_copy = dcf.copy()
        overflow = self._insert_into(node.children[index], dcf)
        if overflow is None:
            node.entries[index].absorb(routing_copy)
            return None
        left, right = overflow
        node.entries[index] = self._summary(left)
        node.children[index] = left
        node.entries.insert(index + 1, self._summary(right))
        node.children.insert(index + 1, right)
        if len(node.entries) > self.branching:
            return self._split(node)
        return None

    def _split(self, node: _Node):
        """Split an overflowing node around its two farthest entries."""
        entries = node.entries
        seed_a, seed_b, worst = 0, 1, -1.0
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                cost = merge_cost(entries[i], entries[j])
                if cost > worst:
                    seed_a, seed_b, worst = i, j, cost

        group_a, group_b = [seed_a], [seed_b]
        for index in range(len(entries)):
            if index in (seed_a, seed_b):
                continue
            cost_a = merge_cost(entries[index], entries[seed_a])
            cost_b = merge_cost(entries[index], entries[seed_b])
            (group_a if cost_a <= cost_b else group_b).append(index)

        def build(group: list[int]) -> _Node:
            if node.is_leaf:
                return _Node(entries=[entries[i] for i in group])
            return _Node(
                entries=[entries[i] for i in group],
                children=[node.children[i] for i in group],
            )

        return build(group_a), build(group_b)

    def _collect(self, node: _Node, out: list[DCF]) -> None:
        if node.is_leaf:
            out.extend(node.entries)
            return
        for child in node.children:
            self._collect(child, out)
