"""The DCF-tree: LIMBO's Phase-1 summarization structure (Section 5.2).

A height-balanced tree in the style of BIRCH.  Leaf nodes hold DCF entries
that summarize groups of inserted objects; internal nodes hold the merged
DCFs of their children and route insertions.  An object descends to the
closest child at each level (distance = information loss ``delta_I``); at a
leaf it merges into the closest entry if the loss stays within the threshold
``phi * I(V;T) / |V|``, otherwise it becomes a new entry, splitting the leaf
(and, recursively, ancestors) when the branching factor is exceeded.

With ``phi = 0`` only identical objects merge, and LIMBO degenerates to AIB
over the distinct objects -- the equivalence Section 5.2 notes.

**Space-bounded operation** (Section 4's fixed-buffer device): with
``max_leaf_entries`` set, the tree counts its leaf entries and, when an
insert pushes the count past the buffer, escalates the merge threshold
(BIRCH-style doubling, floored at ``threshold_floor``) and rebuilds itself
in place from its own leaves.  Coarser entries absorb more objects, so the
rebuilt tree fits the buffer again; the escalation is a pure function of
the insert stream, so the result is deterministic.  An attached
:class:`repro.budget.MemoryGovernor` makes the buffer *byte*-bounded too:
every new leaf entry books a size estimate, and a booking refused by the
governor triggers the same rebuild path as a count overflow.
"""

from __future__ import annotations

from repro import kernels
from repro.clustering.dcf import DCF, merge_cost
from repro.errors import MemoryLimitExceeded
from repro.testing.faults import fault_point

#: Numeric slack so that delta_I of *identical* objects (which is zero up to
#: floating-point noise) always passes a phi=0 threshold.
_MERGE_EPSILON = 1e-12

#: Threshold multiplier per space-bounded rebuild (BIRCH-style escalation).
_ESCALATION = 2.0

#: Absolute threshold floor for escalating from ``phi = 0``: matches the
#: loss-quantization grid's absolute term, the smallest loss the backends
#: can distinguish, so the first escalation already merges *something*.
_MIN_THRESHOLD = 2.0 ** -40

#: Hard cap on consecutive escalating rebuilds.  Doubling from the
#: quantization floor crosses any representable loss in far fewer steps;
#: hitting this means the buffer cannot be met and the insert raises.
_MAX_REBUILDS = 64

#: Rough bytes per sparse mapping slot (dict entry + key + float box),
#: used for the governor's cooperative DCF-entry accounting.
_BYTES_PER_SLOT = 56

#: Fixed per-entry overhead (the DCF object, its lists, cached scalars).
_BYTES_PER_ENTRY = 112


def dcf_bytes(dcf: DCF) -> int:
    """Deterministic byte estimate of one leaf entry's resident cost."""
    slots = len(dcf.mass)
    if dcf.support is not None:
        slots += len(dcf.support)
    return _BYTES_PER_ENTRY + _BYTES_PER_SLOT * slots + 8 * len(dcf.members)


class _Node:
    """A tree node: parallel lists of entry DCFs and child nodes (leaves have
    no children)."""

    __slots__ = ("entries", "children")

    def __init__(self, entries=None, children=None):
        self.entries: list[DCF] = entries or []
        self.children: list["_Node"] | None = children

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class DCFTree:
    """Incremental DCF summarization with bounded branching.

    Parameters
    ----------
    threshold:
        Maximum information loss allowed when absorbing an object into an
        existing leaf entry (``phi * I(V;T) / |V|``).
    branching:
        Maximum entries per node (the paper's ``B``; default 4 as in
        Section 8).
    backend:
        ``"auto"`` (default), ``"sparse"`` or ``"dense"``.  The closest-
        entry scan batches its ``delta_I`` evaluations through
        :func:`repro.kernels.closest_entry` once a node holds at least
        :data:`repro.kernels.DENSE_MIN_ENTRIES` entries (``auto``) or
        always (``dense``); with the default branching factor of 4 the
        sparse scan is cheaper and ``auto`` keeps it.
    max_leaf_entries:
        Optional fixed leaf-entry buffer (the paper's space bound).  An
        insert that pushes the leaf-entry count past this escalates the
        threshold and rebuilds the tree in place; ``rebuilds`` counts the
        escalations and ``threshold`` reflects the escalated value.
    threshold_floor:
        Smallest useful escalated threshold (LIMBO passes
        ``I(V;T) / |V| / 64``, the same floor its ``max_summaries``
        rebuild loop uses); the absolute quantization floor applies
        regardless, so escalating from ``phi = 0`` makes progress.
    governor:
        Optional :class:`repro.budget.MemoryGovernor`.  New leaf entries
        book deterministic byte estimates against it; a refused booking
        triggers the same escalating rebuild as a count overflow, and
        only a rebuild that *still* cannot book raises
        :class:`repro.errors.MemoryLimitExceeded`.
    """

    def __init__(self, threshold: float, branching: int = 4, backend: str = "auto",
                 max_leaf_entries: int | None = None,
                 threshold_floor: float = 0.0, governor=None):
        if threshold < 0.0:
            raise ValueError("threshold must be non-negative")
        if branching < 2:
            raise ValueError("branching factor must be at least 2")
        if max_leaf_entries is not None and max_leaf_entries < 1:
            raise ValueError("max_leaf_entries must be positive (or None)")
        self.threshold = float(threshold)
        self.branching = int(branching)
        self.backend = kernels.validate_backend(backend)
        self.max_leaf_entries = max_leaf_entries
        self.threshold_floor = float(threshold_floor)
        self.governor = governor
        self._root = _Node()
        self.n_inserted = 0
        self.n_absorbed = 0  # objects merged into an existing entry
        self.n_leaf_entries = 0
        self.rebuilds = 0  # space-bound escalating rebuilds performed
        self._booked = 0  # bytes currently booked with the governor

    # -- public API -------------------------------------------------------------

    def insert(self, dcf: DCF) -> None:
        """Insert one object's singleton DCF."""
        self.n_inserted += 1
        appended = self._insert_root(dcf)
        if not appended:
            return
        over_buffer = (self.max_leaf_entries is not None
                       and self.n_leaf_entries > self.max_leaf_entries)
        if not self._book(dcf_bytes(dcf)) or over_buffer:
            self._rebuild_in_place()

    def _insert_root(self, dcf: DCF) -> bool:
        """One tree descent; returns whether a *new* leaf entry was created."""
        before = self.n_leaf_entries
        overflow = self._insert_into(self._root, dcf)
        if overflow is not None:
            # Root split: grow the tree by one level.
            left, right = overflow
            self._root = _Node(
                entries=[self._summary(left), self._summary(right)],
                children=[left, right],
            )
        return self.n_leaf_entries > before

    def _book(self, n_bytes: int) -> bool:
        """Reserve ``n_bytes`` with the governor; ``False`` means refused."""
        if self.governor is None:
            return True
        try:
            self.governor.reserve(n_bytes, where="limbo.fit")
        except MemoryLimitExceeded:
            return False
        self._booked += n_bytes
        return True

    def _rebuild_in_place(self) -> None:
        """Escalate the threshold and rebuild from the current leaves.

        Repeats (doubling each time) until the leaves fit the buffer *and*
        the governor accepts their byte estimate; raises
        :class:`MemoryLimitExceeded` only when even a fully collapsed tree
        cannot be booked.
        """
        leaves = self.leaves()
        if self.governor is not None and self._booked:
            self.governor.release(self._booked)
            self._booked = 0
        for _attempt in range(_MAX_REBUILDS):
            self.rebuilds += 1
            escalated = max(self.threshold * _ESCALATION,
                            self.threshold_floor, _MIN_THRESHOLD)
            fault_point("limbo.buffer_overflow", (len(leaves), escalated))
            self.threshold = escalated
            self._root = _Node()
            self.n_leaf_entries = 0
            for dcf in leaves:
                self._insert_root(dcf)
            leaves = self.leaves()
            fits_buffer = (self.max_leaf_entries is None
                           or self.n_leaf_entries <= self.max_leaf_entries
                           or self.n_leaf_entries <= 1)
            if not fits_buffer:
                continue
            if self._book(sum(dcf_bytes(dcf) for dcf in leaves)):
                return
            if self.n_leaf_entries <= 1:
                break
        raise MemoryLimitExceeded(
            f"space-bounded DCF-tree cannot meet its buffer after "
            f"{self.rebuilds} escalating rebuilds "
            f"({self.n_leaf_entries} leaf entries)",
            where="limbo.buffer_overflow",
            max_memory_bytes=getattr(self.governor, "max_bytes", None),
        )

    def leaves(self) -> list[DCF]:
        """All leaf entries, left to right -- the Phase-1 summaries."""
        result: list[DCF] = []
        self._collect(self._root, result)
        return result

    def unbook(self) -> None:
        """Return this tree's governor reservation (call before discarding)."""
        if self.governor is not None and self._booked:
            self.governor.release(self._booked)
            self._booked = 0

    @property
    def height(self) -> int:
        """Tree height (a single leaf node has height 1)."""
        node, h = self._root, 1
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    # -- internals -----------------------------------------------------------------

    @staticmethod
    def _summary(node: _Node) -> DCF:
        """The merged DCF of all entries of a node (always a fresh object)."""
        summary = node.entries[0].copy()
        for entry in node.entries[1:]:
            summary.absorb(entry)
        return summary

    def _closest(self, entries: list[DCF], dcf: DCF) -> tuple[int, float]:
        if kernels.use_dense(
            self.backend, len(entries), minimum=kernels.DENSE_MIN_ENTRIES
        ):
            return kernels.closest_entry(entries, dcf)
        best_index, best_cost = 0, merge_cost(entries[0], dcf)
        for index in range(1, len(entries)):
            cost = merge_cost(entries[index], dcf)
            if cost < best_cost:
                best_index, best_cost = index, cost
        return best_index, best_cost

    def _insert_into(self, node: _Node, dcf: DCF):
        """Insert recursively; returns a (left, right) pair if ``node`` split."""
        if node.is_leaf:
            if node.entries:
                index, cost = self._closest(node.entries, dcf)
                if cost <= self.threshold + _MERGE_EPSILON:
                    node.entries[index].absorb(dcf)
                    self.n_absorbed += 1
                    return None
            node.entries.append(dcf)
            self.n_leaf_entries += 1
            if len(node.entries) > self.branching:
                return self._split(node)
            return None

        index, _ = self._closest(node.entries, dcf)
        # Absorb into the routing summary first: the child will consume dcf.
        routing_copy = dcf.copy()
        overflow = self._insert_into(node.children[index], dcf)
        if overflow is None:
            node.entries[index].absorb(routing_copy)
            return None
        left, right = overflow
        node.entries[index] = self._summary(left)
        node.children[index] = left
        node.entries.insert(index + 1, self._summary(right))
        node.children.insert(index + 1, right)
        if len(node.entries) > self.branching:
            return self._split(node)
        return None

    def _split(self, node: _Node):
        """Split an overflowing node around its two farthest entries."""
        entries = node.entries
        seed_a, seed_b, worst = 0, 1, -1.0
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                cost = merge_cost(entries[i], entries[j])
                if cost > worst:
                    seed_a, seed_b, worst = i, j, cost

        group_a, group_b = [seed_a], [seed_b]
        for index in range(len(entries)):
            if index in (seed_a, seed_b):
                continue
            cost_a = merge_cost(entries[index], entries[seed_a])
            cost_b = merge_cost(entries[index], entries[seed_b])
            (group_a if cost_a <= cost_b else group_b).append(index)

        def build(group: list[int]) -> _Node:
            if node.is_leaf:
                return _Node(entries=[entries[i] for i in group])
            return _Node(
                entries=[entries[i] for i in group],
                children=[node.children[i] for i in group],
            )

        return build(group_a), build(group_b)

    def _collect(self, node: _Node, out: list[DCF]) -> None:
        if node.is_leaf:
            out.extend(node.entries)
            return
        for child in node.children:
            self._collect(child, out)
