"""Information-bottleneck clustering engine (paper Section 5).

``DCF``/``merge``/``merge_cost`` implement the distributional cluster
features and Equations 1-3; ``aib`` is the Agglomerative Information
Bottleneck; ``DCFTree`` is the Phase-1 summarization structure; ``Limbo``
drives the three phases; ``Dendrogram`` records merge sequences for the
figures and for FD-RANK.
"""

from repro.clustering.aib import AIBResult, aib
from repro.clustering.dcf import DCF, merge, merge_all, merge_cost
from repro.clustering.dcf_tree import DCFTree
from repro.clustering.dendrogram import Dendrogram, Merge
from repro.clustering.limbo import Limbo, clustering_information

__all__ = [
    "AIBResult",
    "DCF",
    "DCFTree",
    "Dendrogram",
    "Limbo",
    "Merge",
    "aib",
    "clustering_information",
    "merge",
    "merge_all",
    "merge_cost",
]
