"""Distributional Cluster Features (paper Section 5.2 and 6.2).

A ``DCF`` is the sufficient statistic of a cluster: the pair
``(p(c), p(T|c))``.  Merging two DCFs follows Equations 1-2, and the distance
between two DCFs is the information loss ``delta_I`` of Equation 3.

The ``ADCF`` extension for attribute-value clustering additionally carries
the cluster's row of matrix ``O`` (per-attribute support counts), which is
additive under merges.

Representation note: internally a DCF stores *joint* masses
``m_k = p(c) * p(k|c)`` plus the cached sum ``S = sum m_k ln m_k``.  Under
this representation merging is additive and both the merge and the
information-loss computation touch only the support of the *smaller*
operand -- which is what makes streaming 10^4-10^5 objects through the
DCF-tree tractable (absorbing a 13-value tuple into a summary covering half
the data set costs 13 updates, not a scan of the summary).  The identities:

    w * H(p(T|c))     = (w ln w - S) / ln 2                     (bits)
    delta_I(a, b)*ln2 = w ln w - w_a ln w_a - w_b ln w_b
                        + S_b - sum_{k in supp(b)} [ (m_ak + m_bk) ln(m_ak + m_bk)
                                                     - m_ak ln m_ak ]
    with w = w_a + w_b (derivable by expanding Eq. 3 with the mixture rule).
"""

from __future__ import annotations

import math
from collections.abc import Mapping

import numpy as np

_LOG2 = math.log(2.0)

#: Mantissa bits kept when snapping a ``delta_I`` to the shared loss grid.
LOSS_QUANTUM_BITS = 30

#: Losses below this many bits snap to exactly zero.  Roundoff noise on a
#: mathematically zero ``delta_I`` is summation-order dependent (~1e-14 at
#: worst), and a *relative* grid cannot collapse noise around zero; the
#: absolute floor does, far below any loss the paper's figures resolve.
LOSS_FLOOR = 2.0 ** -40


def quantize_loss(loss: float) -> float:
    """Snap a loss to the shared ``2**-30`` relative grid (floored at zero).

    Both numeric backends (this sparse module and :mod:`repro.kernels`)
    round every ``delta_I`` they emit to this grid.  Mathematically equal
    costs evaluated in different summation orders land on the same float, so
    the deterministic ``(loss, node ids)`` tie-break picks the same merge
    regardless of backend; the perturbation (at most ``2**-31`` relative,
    ~5e-10, plus the :data:`LOSS_FLOOR` around zero) is far below anything
    the paper's figures resolve.
    """
    if loss < LOSS_FLOOR:
        return 0.0
    mantissa, exponent = math.frexp(loss)
    return math.ldexp(
        round(math.ldexp(mantissa, LOSS_QUANTUM_BITS)),
        exponent - LOSS_QUANTUM_BITS,
    )


def _xlogx(x: float) -> float:
    return x * math.log(x) if x > 0.0 else 0.0


class DCF:
    """Sufficient statistics of a cluster.

    Attributes
    ----------
    weight:
        The cluster prior ``p(c)``.
    mass:
        Sparse joint masses ``{column: p(c) * p(column|c)}``.
    members:
        Indices of the original objects summarized by this cluster.
    support:
        Optional ``O``-matrix row ``{attribute: count}`` (the ADCF of
        Section 6.2); ``None`` for plain DCFs.
    """

    __slots__ = ("weight", "mass", "members", "support", "_mass_log_sum",
                 "_entropy", "_arrays", "_wlogw")

    def __init__(
        self,
        weight: float,
        conditional: Mapping,
        members=(),
        support: Mapping | None = None,
    ):
        if weight <= 0.0:
            raise ValueError("cluster prior must be positive")
        self.weight = float(weight)
        self.mass = {
            column: weight * p for column, p in conditional.items() if p > 0.0
        }
        self.members = list(members)
        self.support = dict(support) if support is not None else None
        self._mass_log_sum = math.fsum(_xlogx(m) for m in self.mass.values())
        self._entropy = None
        self._arrays = None
        self._wlogw = None

    @classmethod
    def singleton(
        cls, index: int, weight: float, conditional: Mapping, support: Mapping | None = None
    ) -> "DCF":
        """The DCF of a single object ``index``."""
        return cls(weight, conditional, members=[index], support=support)

    def copy(self) -> "DCF":
        """An independent copy (mutating it leaves this cluster untouched)."""
        duplicate = DCF.__new__(DCF)
        duplicate.weight = self.weight
        duplicate.mass = dict(self.mass)
        duplicate.members = list(self.members)
        duplicate.support = dict(self.support) if self.support is not None else None
        duplicate._mass_log_sum = self._mass_log_sum
        duplicate._entropy = self._entropy
        duplicate._arrays = self._arrays  # read-only cache, safe to share
        duplicate._wlogw = self._wlogw
        return duplicate

    def __getstate__(self):
        # Exclude the packed-array cache: int64/float64 copies of the mass
        # would double every worker payload, and workers rebuild them on
        # first use anyway.
        return (self.weight, self.mass, self.members, self.support,
                self._mass_log_sum, self._entropy)

    def __setstate__(self, state):
        (self.weight, self.mass, self.members, self.support,
         self._mass_log_sum, self._entropy) = state
        self._arrays = None
        self._wlogw = None

    # -- views ---------------------------------------------------------------------

    @property
    def conditional(self) -> dict:
        """The conditional distribution ``p(T|c)`` as a fresh dict."""
        w = self.weight
        return {column: m / w for column, m in self.mass.items()}

    @property
    def size(self) -> int:
        """Number of summarized objects."""
        return len(self.members)

    @property
    def wlogw(self) -> float:
        """Cached ``w ln w`` (invalidated when ``absorb`` changes the prior)."""
        if self._wlogw is None:
            self._wlogw = self.weight * math.log(self.weight)
        return self._wlogw

    def arrays(self):
        """Sorted ``(columns, values)`` of the mass as int64/float64 arrays.

        The gather form the packed kernels consume: ``columns`` ascending so
        lookups can binary-search.  Returns ``None`` when any column key is
        not a plain int (the kernels fall back to dict gathering); either
        answer is cached until the next ``absorb``.
        """
        cached = self._arrays
        if cached is None:
            mass = self.mass
            if all(type(key) is int for key in mass):
                columns = np.fromiter(mass.keys(), dtype=np.int64, count=len(mass))
                values = np.fromiter(mass.values(), dtype=np.float64, count=len(mass))
                order = np.argsort(columns, kind="stable")
                cached = (columns[order], values[order])
            else:
                cached = (None, None)
            self._arrays = cached
        return None if cached[0] is None else cached

    @property
    def mass_log_sum(self) -> float:
        """Cached ``S = sum_k m_k ln m_k`` (maintained additively on merge).

        The per-cluster term both the sparse ``merge_cost`` and the
        :mod:`repro.kernels` row caches build on -- ``H(p(T|c))`` derives
        from it in O(1), so no consumer ever rescans the support.
        """
        return self._mass_log_sum

    def entropy_bits(self) -> float:
        """Entropy (bits) of ``p(T|c)``; computed once and cached until the
        cluster is next mutated by ``absorb``."""
        if self._entropy is None:
            w = self.weight
            self._entropy = (w * math.log(w) - self._mass_log_sum) / (w * _LOG2)
        return self._entropy

    def __repr__(self) -> str:
        return (
            f"DCF(weight={self.weight:.6g}, support_size={len(self.mass)}, "
            f"members={len(self.members)})"
        )

    # -- in-place absorption (the DCF-tree hot path) ---------------------------------

    def absorb(self, other: "DCF") -> None:
        """Merge ``other`` into this cluster in place (Equations 1-2).

        Costs ``O(|supp(other)|)``; used by the DCF-tree so that routing
        summaries can absorb streamed objects without being copied.
        """
        delta = 0.0
        mass = self.mass
        for column, m_other in other.mass.items():
            m_self = mass.get(column, 0.0)
            merged = m_self + m_other
            mass[column] = merged
            delta += _xlogx(merged) - _xlogx(m_self)
        self._mass_log_sum += delta
        self._entropy = None
        self._arrays = None
        self._wlogw = None
        self.weight += other.weight
        self.members.extend(other.members)
        if other.support is not None:
            if self.support is None:
                self.support = dict(other.support)
            else:
                for attribute, count in other.support.items():
                    self.support[attribute] = self.support.get(attribute, 0) + count


def merge_cost(dcf_a: DCF, dcf_b: DCF) -> float:
    """``delta_I(c_a, c_b)`` in bits (Equation 3).

    Touches only the support of the smaller operand (see the module
    docstring for the identity), so summary-vs-object distances are cheap
    regardless of how much data the summary covers.
    """
    if len(dcf_b.mass) > len(dcf_a.mass):
        dcf_a, dcf_b = dcf_b, dcf_a
    w = dcf_a.weight + dcf_b.weight
    mass_a = dcf_a.mass
    overlap = 0.0
    for column, m_b in dcf_b.mass.items():
        m_a = mass_a.get(column, 0.0)
        overlap += _xlogx(m_a + m_b) - _xlogx(m_a)
    loss = (
        w * math.log(w)
        - dcf_a.wlogw
        - dcf_b.wlogw
        + dcf_b._mass_log_sum
        - overlap
    ) / _LOG2
    return quantize_loss(max(loss, 0.0))


def merge(dcf_a: DCF, dcf_b: DCF) -> DCF:
    """The DCF of the merged cluster (Equations 1-2); inputs untouched.

    ``p(c*) = p(a) + p(b)`` and ``p(T|c*)`` is the prior-weighted mixture.
    Member lists concatenate and ADCF support counts add.
    """
    if len(dcf_b.mass) > len(dcf_a.mass):
        dcf_a, dcf_b = dcf_b, dcf_a
    merged = DCF.__new__(DCF)
    merged.weight = dcf_a.weight
    merged.mass = dict(dcf_a.mass)
    merged.members = list(dcf_a.members)
    merged.support = dict(dcf_a.support) if dcf_a.support is not None else None
    merged._mass_log_sum = dcf_a._mass_log_sum
    merged._entropy = None
    merged._arrays = None
    merged._wlogw = None
    merged.absorb(dcf_b)
    return merged


def merge_all(dcfs) -> DCF:
    """Fold a non-empty sequence of DCFs into one cluster."""
    dcfs = list(dcfs)
    if not dcfs:
        raise ValueError("cannot merge an empty collection of DCFs")
    merged = dcfs[0]
    for other in dcfs[1:]:
        merged = merge(merged, other)
    return merged
