"""Tuple clustering and duplicate-tuple detection (paper Section 6.1).

Tuples are clustered so that the information they carry about their attribute
values is preserved; summaries representing more than one tuple
(``p(c*) > 1/n``) are the candidate (near-)duplicate groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clustering import Limbo
from repro.relation import Relation, TupleView, build_tuple_view


@dataclass
class DuplicateGroup:
    """A set of tuples associated with one multi-tuple summary."""

    tuple_indices: list
    summary_index: int

    def __len__(self) -> int:
        return len(self.tuple_indices)


@dataclass
class TupleClusteringResult:
    """Everything produced by :func:`cluster_tuples`.

    Attributes
    ----------
    relation:
        The clustered relation.
    view:
        The tuple/value matrix ``M``.
    limbo:
        The fitted LIMBO driver (Phase-1 summaries, ready for Phases 2-3).
    assignment:
        Index of the closest leaf summary for every tuple (Phase 3).
    duplicate_groups:
        Groups of tuples that share a multi-tuple summary -- the candidate
        (near-)duplicates of Section 6.1.1.
    """

    relation: Relation
    view: TupleView
    limbo: Limbo
    assignment: list
    duplicate_groups: list = field(default_factory=list)

    def group_of(self, tuple_index: int) -> DuplicateGroup | None:
        """The duplicate group containing a tuple, if any."""
        for group in self.duplicate_groups:
            if tuple_index in group.tuple_indices:
                return group
        return None

    def are_candidate_duplicates(self, index_a: int, index_b: int) -> bool:
        """Whether two tuples landed in the same multi-tuple summary."""
        return self.assignment[index_a] == self.assignment[index_b]


def cluster_tuples(
    relation: Relation,
    phi_t: float = 0.0,
    branching: int = 4,
    value_scope: str = "global",
    budget=None,
    backend: str = "auto",
    executor=None,
    checkpoint=None,
    max_leaf_entries: int | None = None,
) -> TupleClusteringResult:
    """Run the duplicate-tuple procedure of Section 6.1.1.

    1. Set ``phi_t`` (0.0 finds only exact duplicates; larger values allow
       erroneous or missing attribute values in the duplicates).
    2. Phase 1 builds the tuple summaries.
    3. Phase 3 associates every tuple with its closest summary; groups whose
       summary represents more than one tuple (``p(c*) > 1/n``) become the
       candidate duplicate groups.

    ``max_leaf_entries`` bounds the Phase-1 DCF tree to that many leaf
    entries (space-bounded LIMBO; see :class:`repro.clustering.Limbo`).
    """
    view = build_tuple_view(relation, value_scope=value_scope)
    limbo = Limbo(
        phi=phi_t,
        branching=branching,
        budget=budget,
        backend=backend,
        executor=executor,
        checkpoint=checkpoint,
        max_leaf_entries=max_leaf_entries,
    ).fit(
        view.rows, view.priors, mutual_information=view.mutual_information()
    )
    summaries = limbo.summaries
    assignment = limbo.assign(summaries)

    n = len(relation)
    groups = []
    assigned: dict = {}
    for tuple_index, summary_index in enumerate(assignment):
        assigned.setdefault(summary_index, []).append(tuple_index)
    for summary_index, members in sorted(assigned.items()):
        if summaries[summary_index].weight > 1.0 / n and len(members) > 1:
            groups.append(
                DuplicateGroup(tuple_indices=members, summary_index=summary_index)
            )
    return TupleClusteringResult(
        relation=relation,
        view=view,
        limbo=limbo,
        assignment=assignment,
        duplicate_groups=groups,
    )


def find_duplicate_tuples(
    relation: Relation, phi_t: float = 0.1, branching: int = 4
) -> list[DuplicateGroup]:
    """Convenience wrapper: just the candidate duplicate groups.

    ``phi_t = 0.0`` finds exact duplicates only; the paper uses 0.1-0.3 for
    typographic/notational/schema discrepancies (Section 8.1.1).
    """
    return cluster_tuples(relation, phi_t=phi_t, branching=branching).duplicate_groups
