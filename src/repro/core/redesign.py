"""Vertical redesign: using FD-RANK to drive decomposition.

The paper's abstract promises that the ranking "can be used by a physical
data-design tool to find good vertical decompositions of a relation
(decompositions that improve the information content of the design)".  This
module is that tool: it repeatedly mines and ranks dependencies, peels off
the fragment implied by the best-ranked one, and continues on the
remainder until no ranked dependency would remove enough redundancy.

Every step is a classic lossless split (``S1 = pi_{X+Y}``,
``S2 = pi_{R-Y}``), so re-joining the proposed fragments always recovers
the original instance.  Progress is accounted in *storage cells*
(tuples x attributes): redundancy removed is cells saved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.attribute_grouping import group_attributes
from repro.core.decompose import decompose_by_fd
from repro.core.fd_rank import fd_rank
from repro.core.measures import rad, rtr
from repro.fd import fdep, minimum_cover, tane
from repro.relation import Relation

#: Above this tuple count the quadratic FDEP miner is swapped for TANE.
_FDEP_TUPLE_LIMIT = 2000


def _cells(relation: Relation) -> int:
    return len(relation) * relation.arity


@dataclass
class RedesignStep:
    """One decomposition step of the redesign loop."""

    fd: object
    fragment_name: str
    fragment_attributes: tuple
    fragment_tuples: int
    remainder_tuples: int
    rad: float
    rtr: float
    cells_saved: int


@dataclass
class RedesignResult:
    """A proposed multi-fragment schema for one relation.

    ``fragments`` maps fragment names to relations; ``remainder`` is the
    final residual fragment (always present).  The proposal is lossless:
    natural-joining everything recovers the original rows.
    """

    original: Relation
    fragments: dict = field(default_factory=dict)
    steps: list = field(default_factory=list)
    remainder: Relation | None = None

    @property
    def cells_before(self) -> int:
        return _cells(self.original)

    @property
    def cells_after(self) -> int:
        total = sum(_cells(fragment) for fragment in self.fragments.values())
        if self.remainder is not None:
            total += _cells(self.remainder)
        return total

    @property
    def cells_saved_fraction(self) -> float:
        """Fraction of storage cells the redesign eliminates."""
        before = self.cells_before
        if before == 0:
            return 0.0
        return max(0.0, 1.0 - self.cells_after / before)

    def render(self) -> str:
        """Human-readable proposal."""
        lines = [
            f"Vertical redesign of a {len(self.original)}x"
            f"{self.original.arity} relation",
            f"  storage cells: {self.cells_before} -> {self.cells_after} "
            f"({self.cells_saved_fraction:.0%} saved)",
        ]
        for step in self.steps:
            lines.append(
                f"  {step.fragment_name}{step.fragment_attributes}: "
                f"{step.fragment_tuples} tuples  "
                f"[by {step.fd}; RAD={step.rad:.3f} RTR={step.rtr:.3f}]"
            )
        if self.remainder is not None:
            lines.append(
                f"  remainder{self.remainder.attributes}: "
                f"{len(self.remainder)} tuples"
            )
        return "\n".join(lines)


def vertical_redesign(
    relation: Relation,
    max_fragments: int = 4,
    psi: float = 0.5,
    min_rtr: float = 0.2,
    phi_v: float = 0.0,
    phi_t: float | None = None,
    miner: str = "auto",
    budget=None,
) -> RedesignResult:
    """Propose a vertical decomposition driven by FD-RANK.

    At each round the dependencies of the current remainder are mined,
    reduced to a minimum cover, and ranked against the remainder's
    attribute grouping; the best-ranked *qualified* dependency whose RTR is
    at least ``min_rtr`` is used to split off a fragment.  The loop stops
    when no dependency qualifies, the remainder runs out of width, or
    ``max_fragments`` fragments have been extracted.
    """
    if miner not in ("auto", "fdep", "tane"):
        raise ValueError("miner must be 'auto', 'fdep' or 'tane'")
    result = RedesignResult(original=relation)
    remainder = relation

    for round_index in range(max_fragments):
        if remainder.arity < 3:
            break
        chosen = _best_dependency(
            remainder, psi=psi, min_rtr=min_rtr, phi_v=phi_v, phi_t=phi_t,
            miner=miner, budget=budget,
        )
        if chosen is None:
            break

        cells_before = _cells(remainder)
        decomposition = decompose_by_fd(remainder, chosen.fd)
        name = f"R{round_index + 1}"
        result.fragments[name] = decomposition.s1
        result.steps.append(
            RedesignStep(
                fd=chosen.fd,
                fragment_name=name,
                fragment_attributes=decomposition.s1.attributes,
                fragment_tuples=len(decomposition.s1),
                remainder_tuples=len(decomposition.s2),
                rad=rad(remainder, sorted(chosen.fd.attributes)),
                rtr=rtr(remainder, sorted(chosen.fd.attributes)),
                cells_saved=cells_before
                - _cells(decomposition.s1)
                - _cells(decomposition.s2),
            )
        )
        remainder = decomposition.s2

    result.remainder = remainder
    return result


def _best_dependency(remainder, psi, min_rtr, phi_v, phi_t, miner, budget=None):
    """The best-ranked qualified dependency worth decomposing by, if any."""
    selected = miner
    if selected == "auto":
        selected = "fdep" if len(remainder) <= _FDEP_TUPLE_LIMIT else "tane"
    if selected == "fdep":
        fds = fdep(remainder, budget=budget)
    else:
        fds = tane(remainder, max_lhs_size=3, budget=budget)
    cover = minimum_cover(fds, group_rhs=True)
    if not cover:
        return None
    try:
        grouping = group_attributes(
            remainder, phi_v=phi_v, phi_t=phi_t, budget=budget
        )
    except ValueError:
        return None  # no duplicate value groups left to exploit
    for entry in fd_rank(cover, grouping, psi=psi):
        if not entry.qualified:
            continue
        if not entry.fd.lhs or len(entry.fd.attributes) >= remainder.arity:
            continue
        if rtr(remainder, sorted(entry.fd.attributes)) >= min_rtr:
            return entry
    return None
