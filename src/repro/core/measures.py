"""Duplication measures RAD and RTR (paper Section 8, "Duplication Measures").

* **RAD** (Relative Attribute Duplication) captures the bits saved when
  representing the projection of the relation on an attribute set, due to
  repeated values:

      RAD(C_A) = 1 - H(t_{C_A} | C_A) / log n

  The paper describes the numerator as "the weighted entropy of the tuples
  in a particular set of attributes, where the weights are taken as the
  probability of this set of attributes"; we implement it as
  ``p(C_A) * H(projected-row distribution)`` with ``p(C_A) = |C_A| / m``
  (bag semantics).  This reading reproduces the paper's own single-attribute
  example (a column of identical values has RAD = 1 regardless of length)
  and is width-sensitive, as Section 8 claims.  ``weighted=False`` gives the
  unweighted variant ``1 - H / log n`` for comparison.

* **RTR** (Relative Tuple Reduction) is the relative shrinkage of the
  projection under set semantics:

      RTR(C_A) = 1 - n' / n
"""

from __future__ import annotations

from collections import Counter

from repro.infotheory.entropy import entropy_of_counts, max_entropy
from repro.relation import Relation


def _validated_attributes(relation: Relation, attributes) -> list:
    names = [attributes] if isinstance(attributes, str) else sorted(attributes)
    if not names:
        raise ValueError("need at least one attribute")
    for name in names:
        relation.schema.position(name)  # raises KeyError for unknown names
    return names


def rad(relation: Relation, attributes, weighted: bool = True) -> float:
    """Relative Attribute Duplication of ``attributes`` within ``relation``.

    1.0 means the projection is maximally repetitive (all rows identical);
    0.0 means no representation bits are saved.  Relations with fewer than
    two tuples carry no repetition, so RAD is 0.0 there.
    """
    names = _validated_attributes(relation, attributes)
    n = len(relation)
    if n <= 1:
        return 0.0
    projected_rows = Counter(
        tuple(row[p] for p in relation.schema.positions(names))
        for row in relation.rows
    )
    h = entropy_of_counts(projected_rows)
    if weighted:
        h *= len(names) / relation.arity
    # Clamp: H can exceed log n by a few ulps when all rows are distinct.
    return min(1.0, max(0.0, 1.0 - h / max_entropy(n)))


def rtr(relation: Relation, attributes) -> float:
    """Relative Tuple Reduction of ``attributes`` within ``relation``.

    The fraction of tuples eliminated by projecting on ``attributes`` with
    set semantics; 0.0 when all projected rows are distinct.
    """
    names = _validated_attributes(relation, attributes)
    n = len(relation)
    if n == 0:
        return 0.0
    distinct = len(
        {
            tuple(row[p] for p in relation.schema.positions(names))
            for row in relation.rows
        }
    )
    return 1.0 - distinct / n
