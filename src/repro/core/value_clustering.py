"""Attribute-value clustering (paper Section 6.2).

Values are clustered so that they retain information about the tuples they
appear in; the ADCF extension carries the ``O``-matrix counts through the
merges, so one clustering pass yields both the groups and their per-attribute
supports.  Groups are then split into the duplicate set ``C_V^D`` (values
recurring across at least two tuples *and* two attributes) and the rest,
``C_V^ND``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clustering import Limbo
from repro.relation import Relation, ValueView, build_tuple_view, build_value_view


@dataclass
class ValueGroup:
    """A cluster of attribute values with its aggregated ``O``-row.

    Attributes
    ----------
    value_ids:
        Catalog ids of the member values.
    labels:
        Human-readable member renderings.
    support:
        The group's ``O``-matrix row ``{attribute: count}``.
    n_tuples:
        Number of distinct tuples the group's values appear in.  Exact when
        values were clustered over raw tuples; a lower bound (the largest
        member count) under double clustering, where tuple identity is
        summarized away.
    is_duplicate:
        Membership in ``C_V^D``: at least two tuples and two attributes.
    """

    value_ids: list
    labels: list
    support: dict
    n_tuples: int
    is_duplicate: bool

    @property
    def attributes(self) -> frozenset:
        """Attributes in which the group's values occur."""
        return frozenset(self.support)

    @property
    def occurrences(self) -> int:
        """Total occurrence count (the ``O``-row sum)."""
        return sum(self.support.values())

    def __len__(self) -> int:
        return len(self.value_ids)


@dataclass
class ValueClusteringResult:
    """Everything produced by :func:`cluster_values`."""

    relation: Relation
    view: ValueView
    limbo: Limbo
    groups: list = field(default_factory=list)

    @property
    def duplicate_groups(self) -> list:
        """``C_V^D``: the duplicate value groups (Section 6.3)."""
        return [g for g in self.groups if g.is_duplicate]

    @property
    def non_duplicate_groups(self) -> list:
        """``C_V^ND``: everything else."""
        return [g for g in self.groups if not g.is_duplicate]

    def group_of_value(self, value_id: int) -> ValueGroup | None:
        """The group a value id landed in, if any."""
        for group in self.groups:
            if value_id in group.value_ids:
                return group
        return None

    def multi_value_groups(self) -> list:
        """Groups with more than one member -- the co-occurrence findings."""
        return [g for g in self.groups if len(g) > 1]


def cluster_values(
    relation: Relation,
    phi_v: float = 0.0,
    phi_t: float | None = None,
    branching: int = 4,
    value_scope: str = "global",
    budget=None,
    backend: str = "auto",
    executor=None,
    checkpoint=None,
    max_leaf_entries: int | None = None,
) -> ValueClusteringResult:
    """Run the attribute-value clustering procedure of Section 6.2.

    Parameters
    ----------
    relation:
        The relation to mine.
    phi_v:
        Accuracy knob for value summaries.  0.0 finds perfectly co-occurring
        value groups; small positive values (e.g. 0.1) also capture *almost*
        perfect co-occurrences caused by entry errors.
    phi_t:
        When given, tuples are first clustered with this ``phi`` and values
        are expressed over the tuple clusters (Double Clustering) -- the
        scale-up for large relations.
    max_leaf_entries:
        Optional bound on the Phase-1 DCF trees' leaf-entry count
        (space-bounded LIMBO; see :class:`repro.clustering.Limbo`).
    """
    tuple_clusters = None
    if phi_t is not None:
        tuple_view = build_tuple_view(relation, value_scope=value_scope)
        tuple_limbo = Limbo(
            phi=phi_t,
            branching=branching,
            budget=budget,
            backend=backend,
            executor=executor,
            checkpoint=checkpoint,
            max_leaf_entries=max_leaf_entries,
        ).fit(
            tuple_view.rows,
            tuple_view.priors,
            mutual_information=tuple_view.mutual_information(),
        )
        # Phase-1 leaf membership is the tuple clustering here: values only
        # need the coarse columns, and re-associating every tuple against
        # thousands of summaries (Phase 3) would add an O(n * summaries)
        # scan without changing the value-level result.
        tuple_clusters = [0] * len(relation)
        for cluster_index, summary in enumerate(tuple_limbo.summaries):
            for tuple_index in summary.members:
                tuple_clusters[tuple_index] = cluster_index

    view = build_value_view(
        relation, value_scope=value_scope, tuple_clusters=tuple_clusters
    )
    limbo = Limbo(
        phi=phi_v,
        branching=branching,
        budget=budget,
        backend=backend,
        executor=executor,
        checkpoint=checkpoint,
        max_leaf_entries=max_leaf_entries,
    ).fit(
        view.rows,
        view.priors,
        supports=view.support,
        mutual_information=view.mutual_information(),
    )

    groups = []
    for summary in limbo.summaries:
        members = sorted(summary.members)
        support = dict(summary.support or {})
        if view.double_clustered:
            n_tuples = max(view.tuple_counts[v] for v in members)
        else:
            n_tuples = len(summary.conditional)
        is_duplicate = n_tuples >= 2 and len(support) >= 2
        groups.append(
            ValueGroup(
                value_ids=members,
                labels=[view.catalog.label(v) for v in members],
                support=support,
                n_tuples=n_tuples,
                is_duplicate=is_duplicate,
            )
        )
    return ValueClusteringResult(relation=relation, view=view, limbo=limbo, groups=groups)
