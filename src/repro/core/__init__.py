"""The paper's primary contribution: duplication summaries and FD ranking.

Tuple clustering (Section 6.1), attribute-value clustering (Section 6.2),
attribute grouping (Section 6.3), horizontal partitioning (Section 6.1.2),
the FD-RANK algorithm (Section 7), the RAD/RTR measures and vertical
decomposition (Section 8).
"""

from repro.core.attribute_grouping import AttributeGroupingResult, group_attributes
from repro.core.decompose import (
    Decomposition,
    decompose_by_fd,
    is_lossless,
    redundancy_report,
)
from repro.core.dedupe import DedupeResult, eliminate_duplicates
from repro.core.discovery import (
    DiscoveryReport,
    StageOutcome,
    StructureDiscovery,
    deterministic_sample,
)
from repro.core.fd_rank import RankedFD, fd_rank
from repro.core.horizontal import (
    HorizontalPartitionResult,
    KSuggestion,
    horizontal_partition,
    suggest_k,
)
from repro.core.measures import rad, rtr
from repro.core.profile import AttributeProfile, RelationProfile, profile_relation
from repro.core.redesign import RedesignResult, RedesignStep, vertical_redesign
from repro.core.tuple_clustering import (
    DuplicateGroup,
    TupleClusteringResult,
    cluster_tuples,
    find_duplicate_tuples,
)
from repro.core.value_clustering import (
    ValueClusteringResult,
    ValueGroup,
    cluster_values,
)

__all__ = [
    "AttributeGroupingResult",
    "Decomposition",
    "DedupeResult",
    "DiscoveryReport",
    "DuplicateGroup",
    "HorizontalPartitionResult",
    "KSuggestion",
    "AttributeProfile",
    "RankedFD",
    "RedesignResult",
    "RedesignStep",
    "RelationProfile",
    "StageOutcome",
    "StructureDiscovery",
    "deterministic_sample",
    "TupleClusteringResult",
    "ValueClusteringResult",
    "ValueGroup",
    "cluster_tuples",
    "cluster_values",
    "decompose_by_fd",
    "eliminate_duplicates",
    "fd_rank",
    "find_duplicate_tuples",
    "group_attributes",
    "horizontal_partition",
    "is_lossless",
    "profile_relation",
    "rad",
    "redundancy_report",
    "rtr",
    "suggest_k",
    "vertical_redesign",
]
