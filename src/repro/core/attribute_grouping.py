"""Attribute grouping over duplicate value groups (paper Section 6.3).

Attributes of ``A^D`` (those containing duplicate value groups) are expressed
over ``C_V^D`` via matrix ``F`` and clustered agglomeratively; by
Proposition 1 each minimum-loss merge joins the attribute pair with the
highest duplication, so the dendrogram's early merges point at the attribute
sets whose shared values are most redundant.  The resulting merge sequence is
exactly the ``Q`` consumed by FD-RANK (Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clustering import DCF, AIBResult, Dendrogram, aib
from repro.core.value_clustering import ValueClusteringResult, cluster_values
from repro.relation import MatrixF, Relation, build_matrix_f


@dataclass
class AttributeGroupingResult:
    """Outcome of :func:`group_attributes`.

    Attributes
    ----------
    matrix_f:
        The attributes-over-duplicate-groups matrix.
    aib_result:
        The full agglomerative run over the attributes of ``A^D``.
    value_clustering:
        The value clustering the grouping was derived from.
    """

    matrix_f: MatrixF
    aib_result: AIBResult
    value_clustering: ValueClusteringResult

    @property
    def dendrogram(self) -> Dendrogram:
        """The attribute merge sequence ``Q`` (leaf labels are attributes)."""
        return self.aib_result.dendrogram

    @property
    def attribute_names(self) -> list:
        """The attributes of ``A^D``, in dendrogram leaf order."""
        return list(self.matrix_f.attribute_names)

    def clusters(self, k: int) -> list[list[str]]:
        """The ``k`` attribute groups, as lists of attribute names."""
        names = self.matrix_f.attribute_names
        return [
            [names[i] for i in members] for members in self.dendrogram.cut(k)
        ]

    def merge_loss(self, attributes) -> float | None:
        """Information loss of the first merge gathering ``attributes``.

        ``None`` when some attribute is outside ``A^D`` or the set is never
        gathered -- FD-RANK treats both as "no qualifying merge".
        """
        names = self.matrix_f.attribute_names
        try:
            leaves = [names.index(a) for a in attributes]
        except ValueError:
            return None
        merge = self.dendrogram.merge_gathering(leaves)
        if merge is None and len(set(leaves)) > 1:
            return None
        if merge is None:
            return 0.0
        return merge.loss

    def render(self) -> str:
        """ASCII dendrogram (the paper's Figures 10 and 14-18)."""
        return self.dendrogram.render()


def group_attributes(
    relation: Relation | None = None,
    phi_v: float = 0.0,
    phi_t: float | None = None,
    phi_a: float = 0.0,
    value_clustering: ValueClusteringResult | None = None,
    include_all_groups: bool = False,
    budget=None,
    backend: str = "auto",
    executor=None,
    checkpoint=None,
) -> AttributeGroupingResult:
    """Cluster the attributes of ``A^D`` by shared duplicate values.

    Either pass a ``relation`` (a value clustering is run with ``phi_v`` /
    ``phi_t``) or a precomputed ``value_clustering``.  ``phi_a`` is accepted
    for interface completeness: attributes are few, so as the paper notes
    (Section 6.3) a full agglomerative clustering with ``phi_a = 0`` is used;
    values other than zero are rejected to avoid silently changing semantics.

    ``include_all_groups`` widens the input from ``C_V^D`` to every value
    group -- useful for ablation, not used by the paper.
    """
    if phi_a != 0.0:
        raise ValueError(
            "attribute grouping performs a full agglomerative clustering; "
            "phi_a must be 0.0"
        )
    if value_clustering is None:
        if relation is None:
            raise ValueError("pass either a relation or a value_clustering")
        value_clustering = cluster_values(
            relation,
            phi_v=phi_v,
            phi_t=phi_t,
            budget=budget,
            backend=backend,
            executor=executor,
            checkpoint=checkpoint,
        )

    groups = (
        value_clustering.groups
        if include_all_groups
        else value_clustering.duplicate_groups
    )
    if not groups:
        raise ValueError(
            "no duplicate value groups found (C_V^D is empty); "
            "try a larger phi_v"
        )
    matrix_f = build_matrix_f(
        value_clustering.view, [g.value_ids for g in groups]
    )

    n_attributes = len(matrix_f.attribute_names)
    prior = 1.0 / n_attributes
    dcfs = [
        DCF.singleton(i, prior, row, support=dict(counts))
        for i, (row, counts) in enumerate(zip(matrix_f.rows, matrix_f.counts))
    ]
    result = aib(
        dcfs,
        labels=matrix_f.attribute_names,
        budget=budget,
        backend=backend,
        executor=executor,
        checkpoint=checkpoint,
    )
    return AttributeGroupingResult(
        matrix_f=matrix_f,
        aib_result=result,
        value_clustering=value_clustering,
    )
