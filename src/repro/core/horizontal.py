"""Horizontal partitioning of overloaded relations (paper Section 6.1.2).

A full tuple clustering is run down from a manageable number of Phase-1
summaries (the paper suggests ~100 leaves); the rate of change of the
clustering's mutual information across ``k`` exposes "natural" cluster
counts, and Phase 3 splits the relation accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clustering import AIBResult, Limbo
from repro.relation import Relation, build_tuple_view


@dataclass
class KSuggestion:
    """A candidate natural ``k`` with its knee score.

    ``score`` is the jump ratio ``delta_I(k -> k-1) / delta_I(k+1 -> k)``:
    how much more information the next merge would destroy compared with the
    one that produced this clustering.  Large scores mark clusterings just
    before an expensive merge -- the paper's rate-of-change heuristic.
    """

    k: int
    score: float
    loss_below: float
    loss_above: float


@dataclass
class HorizontalPartitionResult:
    """Outcome of :func:`horizontal_partition`."""

    relation: Relation
    k: int
    assignment: list
    partitions: list
    limbo: Limbo
    aib_result: AIBResult
    suggestions: list
    relative_information_loss: float

    def partition_sizes(self) -> list[int]:
        """Tuple counts per partition, largest first."""
        return sorted((len(p) for p in self.partitions), reverse=True)

    def information_curve(self) -> list[tuple[int, float]]:
        """``(k, I(C_k;V))`` across the merge sequence (descending k)."""
        return self.aib_result.information_curve()

    def conditional_entropy_curve(self) -> list[tuple[int, float]]:
        """``(k, H(C_k|V))`` across the merge sequence (descending k).

        The second statistic of Section 6.1.2: ``H(C_k|V) = H(C_k) -
        I(C_k;V)``, where ``H(C_k)`` is the entropy of the cluster priors.
        Its rate of change complements the mutual-information curve when
        eyeballing natural cluster counts.
        """
        import math

        dendrogram = self.aib_result.dendrogram
        weights = {
            i: dcf.weight for i, dcf in enumerate(self.limbo.summaries)
        }

        def prior_entropy() -> float:
            return -sum(
                w * math.log2(w) for w in weights.values() if w > 0.0
            )

        curve = []
        for (k, info), merge in zip(
            self.aib_result.information_curve(), [None] + list(dendrogram.merges)
        ):
            if merge is not None:
                weights[merge.parent] = weights.pop(merge.left) + weights.pop(
                    merge.right
                )
            curve.append((k, prior_entropy() - info))
        return curve


def suggest_k(
    aib_result: AIBResult, k_min: int = 2, k_max: int = 20, top: int = 5
) -> list[KSuggestion]:
    """Rank candidate cluster counts by the information-loss jump ratio.

    Examines the merge losses ``delta_I(C_k; V)`` of the full sequence: a
    natural ``k`` is one where merging below ``k`` clusters suddenly costs
    much more than the merge that reached ``k`` did.
    """
    merges = aib_result.dendrogram.merges
    n = aib_result.dendrogram.n_leaves
    if n < 3 or not merges:
        return [KSuggestion(k=min(k_min, n), score=0.0, loss_below=0.0, loss_above=0.0)]

    # Merge that moves from k+1 clusters to k happens at index n - k - 1.
    def loss_entering(k: int) -> float:
        return merges[n - k - 1].loss

    suggestions = []
    upper = min(k_max, n - 1)
    epsilon = 1e-12
    for k in range(max(k_min, 2), upper + 1):
        loss_below = loss_entering(k - 1) if k >= 2 else 0.0
        loss_above = loss_entering(k)
        score = loss_below / (loss_above + epsilon)
        suggestions.append(
            KSuggestion(k=k, score=score, loss_below=loss_below, loss_above=loss_above)
        )
    suggestions.sort(key=lambda s: (-s.score, s.k))
    return suggestions[:top]


def horizontal_partition(
    relation: Relation,
    k: int | None = None,
    phi_t: float = 1.0,
    max_summaries: int = 100,
    branching: int = 4,
    value_scope: str = "global",
    budget=None,
) -> HorizontalPartitionResult:
    """Horizontally partition a relation into ``k`` (or a suggested ``k``)
    sub-relations of similar tuples.

    Phase 1 summarizes the tuples into at most ``max_summaries`` leaf DCFs,
    Phase 2 agglomerates them fully, the knee heuristic proposes ``k`` when
    none is given, and Phase 3 assigns every tuple to a partition.
    """
    view = build_tuple_view(relation, value_scope=value_scope)
    limbo = Limbo(
        phi=phi_t, branching=branching, max_summaries=max_summaries, budget=budget
    ).fit(
        view.rows, view.priors, mutual_information=view.mutual_information()
    )
    aib_result = limbo.merge_sequence()

    suggestions = suggest_k(aib_result)
    if k is None:
        k = suggestions[0].k
    representatives = aib_result.clusters(k)
    assignment = limbo.assign(representatives)

    buckets: dict = {}
    for tuple_index, cluster in enumerate(assignment):
        buckets.setdefault(cluster, []).append(tuple_index)
    partitions = [
        relation.take(indices) for _, indices in sorted(buckets.items())
    ]
    loss = limbo.relative_information_loss(assignment)
    return HorizontalPartitionResult(
        relation=relation,
        k=k,
        assignment=assignment,
        partitions=partitions,
        limbo=limbo,
        aib_result=aib_result,
        suggestions=suggestions,
        relative_information_loss=loss,
    )
