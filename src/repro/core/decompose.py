"""Vertical decomposition by a functional dependency (paper Section 7).

Using ``X -> Y`` to decompose ``R`` yields ``S1 = pi_{X union Y}(R)`` and
``S2 = pi_{R - Y}(R)`` (both with set semantics): the classic
redundancy-removing split, lossless because ``X`` is a key of ``S1``.
The paper's running example decomposes Figure 4's relation by ``C -> B``
into ``S1 = (B, C)`` and ``S2 = (A, C)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.measures import rad, rtr
from repro.fd.dependency import FD
from repro.relation import Relation, natural_join


@dataclass
class Decomposition:
    """Outcome of :func:`decompose_by_fd`."""

    fd: FD
    s1: Relation
    s2: Relation
    original_tuples: int

    @property
    def tuple_reduction(self) -> float:
        """Relative reduction of ``S1`` against the original tuple count.

        This is exactly ``RTR`` of the dependency's attributes, realized by
        the decomposition.
        """
        if self.original_tuples == 0:
            return 0.0
        return 1.0 - len(self.s1) / self.original_tuples


def decompose_by_fd(relation: Relation, fd: FD) -> Decomposition:
    """Split ``relation`` using ``fd`` (which should hold on the instance)."""
    s1_attrs = [n for n in relation.schema.names if n in fd.attributes]
    s2_attrs = [
        n for n in relation.schema.names if n not in (fd.rhs - fd.lhs)
    ]
    if not fd.lhs:
        raise ValueError("cannot decompose by a dependency with an empty LHS")
    s1 = relation.project(s1_attrs, distinct=True)
    s2 = relation.project(s2_attrs, distinct=True)
    return Decomposition(fd=fd, s1=s1, s2=s2, original_tuples=len(relation))


def is_lossless(relation: Relation, decomposition: Decomposition) -> bool:
    """Whether re-joining the two projections recovers the original rows.

    Always true when the dependency holds on the instance; a useful check
    for decompositions driven by *approximate* dependencies.
    """
    rejoined = natural_join(decomposition.s1, decomposition.s2)
    original = {tuple(sorted(zip(relation.schema.names, row))) for row in relation.rows}
    recovered = {
        tuple(sorted(zip(rejoined.schema.names, row))) for row in rejoined.rows
    }
    return original == recovered


def redundancy_report(relation: Relation, fd: FD, weighted: bool = True) -> dict:
    """RAD/RTR of the dependency's attributes plus realized reductions.

    The per-dependency summary behind the paper's Tables 3, 5 and 6.
    """
    attributes = sorted(fd.attributes)
    decomposition = decompose_by_fd(relation, fd)
    return {
        "fd": str(fd),
        "attributes": attributes,
        "rad": rad(relation, attributes, weighted=weighted),
        "rtr": rtr(relation, attributes),
        "s1_tuples": len(decomposition.s1),
        "s2_tuples": len(decomposition.s2),
        "original_tuples": len(relation),
    }
