"""FD-RANK: ranking functional dependencies by redundancy (paper Figure 11).

Given the merge sequence ``Q`` of an attribute grouping and a threshold
``0 <= psi <= 1``:

1. every dependency starts at rank ``max(Q)`` (the largest merge loss);
   for ``S = X union A``, if the merge ``G`` gathering all of ``S`` has
   ``IL(G) <= psi * max(Q)``, the rank becomes ``IL(G)``;
2. dependencies with equal antecedent and equal rank collapse into one;
3. the set is ordered by ascending rank -- low rank = the dependency's
   attributes merged cheaply = high duplication = high redundancy removed
   if used in a decomposition.  Ties break in favour of dependencies with
   more attributes, as Section 7 prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attribute_grouping import AttributeGroupingResult
from repro.fd.dependency import FD


@dataclass(frozen=True)
class RankedFD:
    """A dependency with its FD-RANK score.

    ``gathered_loss`` is ``IL(G)`` when a qualifying merge was found, else
    ``None`` (the rank stayed at ``max(Q)``).
    """

    fd: FD
    rank: float
    gathered_loss: float | None

    @property
    def qualified(self) -> bool:
        """Whether a merge below the psi threshold gathered the attributes."""
        return self.gathered_loss is not None

    def __str__(self) -> str:
        return f"{self.fd}  (rank={self.rank:.4f})"


def fd_rank(
    fds,
    grouping: AttributeGroupingResult,
    psi: float = 0.5,
) -> list[RankedFD]:
    """Rank ``fds`` against an attribute grouping's merge sequence.

    Parameters
    ----------
    fds:
        The dependencies to rank (typically a minimum cover).
    grouping:
        The attribute grouping whose dendrogram supplies ``Q``.
    psi:
        The qualification threshold of Figure 11 (the paper uses 0.5).
    """
    if not 0.0 <= psi <= 1.0:
        raise ValueError(f"psi must be in [0, 1], got {psi!r}")
    max_loss = grouping.dendrogram.max_loss

    scored: list[RankedFD] = []
    for fd in fds:
        rank = max_loss
        gathered = None
        loss = grouping.merge_loss(sorted(fd.attributes))
        if loss is not None and loss <= psi * max_loss:
            rank = loss
            gathered = loss
        scored.append(RankedFD(fd=fd, rank=rank, gathered_loss=gathered))

    collapsed = _collapse_equal_antecedents(scored)
    # Ranks equal up to floating-point noise must compare equal so the
    # more-attributes tie-break of Section 7 can apply.
    collapsed.sort(
        key=lambda r: (round(r.rank, 12), -len(r.fd.attributes), r.fd.sort_key())
    )
    return collapsed


def _collapse_equal_antecedents(scored: list[RankedFD]) -> list[RankedFD]:
    """Step 2 of Figure 11: merge FDs with equal LHS and equal rank."""
    buckets: dict = {}
    for ranked in scored:
        key = (ranked.fd.lhs, round(ranked.rank, 12))
        buckets.setdefault(key, []).append(ranked)
    result = []
    for (lhs, _), members in buckets.items():
        if len(members) == 1:
            result.append(members[0])
            continue
        rhs = frozenset().union(*(m.fd.rhs for m in members))
        gathered = members[0].gathered_loss
        result.append(
            RankedFD(fd=FD(lhs, rhs), rank=members[0].rank, gathered_loss=gathered)
        )
    return result
