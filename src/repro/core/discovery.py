"""One-call structure discovery: the analyst-facing driver.

Chains the paper's pipeline -- tuple clustering, value clustering, attribute
grouping, dependency mining, minimum cover, FD-RANK -- and renders a compact
text report of everything a data (re)designer would want to see.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attribute_grouping import AttributeGroupingResult, group_attributes
from repro.core.decompose import redundancy_report
from repro.core.fd_rank import RankedFD, fd_rank
from repro.core.tuple_clustering import TupleClusteringResult, cluster_tuples
from repro.core.value_clustering import ValueClusteringResult, cluster_values
from repro.fd import fdep, minimum_cover, tane
from repro.relation import Relation

#: Above this tuple count the quadratic FDEP miner is swapped for TANE.
_FDEP_TUPLE_LIMIT = 2000


@dataclass
class DiscoveryReport:
    """All artifacts of a :class:`StructureDiscovery` run."""

    relation: Relation
    tuple_clustering: TupleClusteringResult
    value_clustering: ValueClusteringResult
    attribute_grouping: AttributeGroupingResult | None
    dependencies: list
    cover: list
    ranked: list

    def top_dependencies(self, count: int = 5) -> list[RankedFD]:
        """The ``count`` best-ranked dependencies."""
        return self.ranked[:count]

    def render(self, top: int = 5) -> str:
        """A human-readable summary of the discovered structure."""
        lines = [
            f"Structure discovery over {len(self.relation)} tuples, "
            f"{self.relation.arity} attributes, "
            f"{self.relation.value_count()} values",
            "",
            f"Candidate duplicate tuple groups: "
            f"{len(self.tuple_clustering.duplicate_groups)}",
            f"Duplicate value groups (C_V^D): "
            f"{len(self.value_clustering.duplicate_groups)}",
        ]
        if self.attribute_grouping is not None:
            lines += ["", "Attribute dendrogram:", self.attribute_grouping.render()]
        lines += ["", f"Dependencies mined: {len(self.dependencies)}; "
                      f"minimum cover: {len(self.cover)}"]
        if self.ranked:
            lines.append("")
            lines.append(f"Top-{top} ranked dependencies (ascending rank):")
            for ranked in self.ranked[:top]:
                report = redundancy_report(self.relation, ranked.fd)
                lines.append(
                    f"  {ranked.fd}  rank={ranked.rank:.4f} "
                    f"RAD={report['rad']:.3f} RTR={report['rtr']:.3f}"
                )
        return "\n".join(lines)


class StructureDiscovery:
    """Configurable pipeline driver.

    Parameters mirror the individual tools; see
    :func:`repro.core.tuple_clustering.cluster_tuples`,
    :func:`repro.core.value_clustering.cluster_values` and
    :func:`repro.core.fd_rank.fd_rank`.
    """

    def __init__(
        self,
        phi_t: float = 0.0,
        phi_v: float = 0.0,
        double_clustering_phi_t: float | None = None,
        psi: float = 0.5,
        miner: str = "auto",
    ):
        if miner not in ("auto", "fdep", "tane"):
            raise ValueError("miner must be 'auto', 'fdep' or 'tane'")
        self.phi_t = phi_t
        self.phi_v = phi_v
        self.double_clustering_phi_t = double_clustering_phi_t
        self.psi = psi
        self.miner = miner

    def run(self, relation: Relation) -> DiscoveryReport:
        """Execute the full pipeline on ``relation``."""
        tuples = cluster_tuples(relation, phi_t=self.phi_t)
        values = cluster_values(
            relation, phi_v=self.phi_v, phi_t=self.double_clustering_phi_t
        )
        grouping = None
        if values.duplicate_groups:
            grouping = group_attributes(value_clustering=values)

        miner = self.miner
        if miner == "auto":
            miner = "fdep" if len(relation) <= _FDEP_TUPLE_LIMIT else "tane"
        dependencies = fdep(relation) if miner == "fdep" else tane(relation)
        cover = minimum_cover(dependencies)

        ranked: list = []
        if grouping is not None and cover:
            ranked = fd_rank(cover, grouping, psi=self.psi)
        return DiscoveryReport(
            relation=relation,
            tuple_clustering=tuples,
            value_clustering=values,
            attribute_grouping=grouping,
            dependencies=dependencies,
            cover=cover,
            ranked=ranked,
        )
