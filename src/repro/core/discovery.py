"""One-call structure discovery: the analyst-facing, *resilient* driver.

Chains the paper's pipeline -- tuple clustering, value clustering, attribute
grouping, dependency mining, minimum cover, FD-RANK -- and renders a compact
text report of everything a data (re)designer would want to see.

Every stage runs under a **stage guard**: failures and budget exhaustion are
caught, a deterministic fallback is attempted (the *degradation ladder*),
and the outcome is recorded as a :class:`StageOutcome` so the report's
health section explains exactly what ran, what degraded, and which fallback
was applied -- instead of losing the whole run to one bad stage.  Pass
``strict=True`` to get the old all-or-nothing behaviour as a
:class:`repro.errors.StageFailure`.

With ``checkpoint=`` set, every completed stage is additionally snapshotted
to a :class:`repro.checkpoint.CheckpointStore`, so a run killed mid-pipeline
(crash, SIGKILL, exhausted deadline) resumes from the last completed stage
-- bit-identically, for any worker count and either numeric backend.

The degradation ladder:

====================  ==========================================
stage                 fallback
====================  ==========================================
tuple_clustering      exact-duplicate scan (hash identical rows)
value_clustering      exact clustering of a deterministic sample
attribute_grouping    none (rank degrades to cover order)
mining                FDEP over a deterministic tuple sample
                      (``fd_mode="exact"``); the reliable miner over
                      a seeded row sample with confidence radii
                      (``fd_mode="reliable"``/``"topk"``)
cover                 the raw mined dependency list (exact mode;
                      reliable modes skip the exhaustive cover and
                      feed the top-k output to FD-RANK directly)
rank                  cover order, unranked (singleton grouping)
====================  ==========================================

Sampled reliable-mining results are flagged in the health section and in
the rendered score list (``sampled=True`` plus a per-FD confidence
radius), and -- being degraded -- are never persisted by the checkpoint
store as if they were exact.

With ``memory_limit`` set (or a :class:`repro.budget.Budget` carrying
``max_memory_bytes``), stages additionally run under the **memory
ladder**: when a stage raises
:class:`repro.errors.MemoryLimitExceeded` and ``on_memory_pressure`` is
``"degrade"``, the run climbs these rungs in order and retries the stage
-- (1) force the sparse backend, (2) escalate phi (coarser summaries),
(3) shrink the LIMBO leaf-entry buffer, (4) switch to a deterministic
tuple sample, (5) put the governor in best-effort observer mode so the
run always completes.  Each applied rung is recorded in a ``memory``
entry of the report's health section; rung-affected stages are never
checkpointed, so a resumed capped run recomputes them bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import kernels
from repro.budget import Budget, MemoryGovernor, format_bytes, parse_memory_size
from repro.checkpoint import CheckpointStore
from repro.core.attribute_grouping import AttributeGroupingResult, group_attributes
from repro.core.decompose import redundancy_report
from repro.core.fd_rank import RankedFD, fd_rank
from repro.core.tuple_clustering import (
    DuplicateGroup,
    TupleClusteringResult,
    cluster_tuples,
)
from repro.core.value_clustering import ValueClusteringResult, cluster_values
from repro.errors import (
    MemoryLimitExceeded,
    ResourceLimitExceeded,
    StageFailure,
)
from repro.fd import ReliableFD, fdep, mine_reliable_fds, minimum_cover, tane
from repro.relation import Relation
from repro.testing.faults import fault_point

#: Above this tuple count the quadratic FDEP miner is swapped for TANE.
_FDEP_TUPLE_LIMIT = 2000

#: Deterministic-sample size used by degraded mining / value clustering.
_SAMPLE_CAP = 150

#: The six pipeline stages, in execution order.
STAGES = (
    "tuple_clustering",
    "value_clustering",
    "attribute_grouping",
    "mining",
    "cover",
    "rank",
)


@dataclass
class StageOutcome:
    """How one pipeline stage fared.

    ``status`` is ``"ok"`` (primary path succeeded), ``"degraded"`` (primary
    failed but a fallback produced a usable result) or ``"failed"`` (every
    rung of the ladder failed; the stage's default empty result was used).
    """

    stage: str
    status: str
    detail: str = ""
    fallback: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def render(self) -> str:
        line = f"  [{self.status:>8}] {self.stage}"
        if self.detail:
            line += f": {self.detail}"
        if self.fallback:
            line += f" (fallback: {self.fallback})"
        return line


def deterministic_sample(relation: Relation, cap: int = _SAMPLE_CAP) -> Relation:
    """An evenly-strided, order-stable sample of at most ``cap`` tuples.

    Deterministic by construction (no RNG), so degraded runs are exactly
    reproducible.
    """
    n = len(relation)
    if n <= cap:
        return relation
    stride = n / cap
    indices = [min(int(i * stride), n - 1) for i in range(cap)]
    return relation.take(sorted(set(indices)))


def _exact_duplicate_groups(relation: Relation) -> TupleClusteringResult:
    """Fallback tuple clustering: group *identical* rows by hashing.

    Finds exact duplicates only (phi_t = 0 semantics) without LIMBO; the
    ``view``/``limbo`` fields are ``None`` to mark the degraded origin.
    """
    buckets: dict = {}
    for index, row in enumerate(relation.rows):
        buckets.setdefault(row, []).append(index)
    assignment = [0] * len(relation)
    groups = []
    for summary_index, (_, members) in enumerate(sorted(
        buckets.items(), key=lambda item: item[1][0]
    )):
        for tuple_index in members:
            assignment[tuple_index] = summary_index
        if len(members) > 1:
            groups.append(
                DuplicateGroup(tuple_indices=members, summary_index=summary_index)
            )
    return TupleClusteringResult(
        relation=relation,
        view=None,
        limbo=None,
        assignment=assignment,
        duplicate_groups=groups,
    )


def _unranked_cover(cover) -> list[RankedFD]:
    """Fallback ranking: the cover in canonical order, all ranks infinite.

    Matches FD-RANK's semantics for a grouping in which nothing ever merges
    (singleton grouping): no dependency qualifies, so every rank stays at
    the (here unbounded) maximum.
    """
    ordered = sorted(cover, key=lambda fd: fd.sort_key())
    return [RankedFD(fd=fd, rank=math.inf, gathered_loss=None) for fd in ordered]


#: Accepted ``on_memory_pressure`` policies.
MEMORY_POLICIES = ("fail", "degrade")

#: Accepted ``fd_mode`` values: the exact miners (FDEP/TANE + minimum
#: cover) or the reliable branch-and-bound miner of :mod:`repro.fd.reliable`
#: in its threshold ("reliable") or top-k ("topk") mode.
FD_MODES = ("exact", "reliable", "topk")

#: Conservative per-leaf-entry byte estimate used to derive a default
#: ``max_leaf_entries`` from the memory budget (rung 3 of the ladder).
_LEAF_BYTES_ESTIMATE = 64 * 1024

#: Floor for the shrunk leaf-entry buffer; below this Phase 1 collapses to
#: a handful of summaries and further shrinking buys nothing.
_MIN_LEAF_ENTRIES = 8


@dataclass
class _EffectiveParams:
    """The per-run knobs the memory ladder is allowed to steer.

    Starts as a copy of the driver's configuration; uncapped runs never
    mutate it, so their behavior is exactly the configured one.
    """

    phi_t: float
    phi_v: float
    double_clustering_phi_t: float | None
    backend: str
    max_leaf_entries: int | None
    relation: Relation


class _MemoryLadder:
    """Rung-by-rung response to :class:`MemoryLimitExceeded`.

    Rungs are climbed in a fixed order and stay applied for the rest of
    the run (later stages inherit the cheaper configuration).  The final
    rung flips the governor into best-effort observer mode, after which
    cooperative memory checks can no longer raise -- a capped ``degrade``
    run therefore always completes.
    """

    RUNGS = (
        "sparse-backend",
        "escalate-phi",
        "shrink-leaf-buffer",
        "sample-tuples",
        "best-effort",
    )

    def __init__(self, params: _EffectiveParams,
                 governor: MemoryGovernor | None = None):
        self.params = params
        self.governor = governor
        self.original_relation = params.relation
        self.applied: list[str] = []
        self._next_rung = 0

    def climb(self) -> str | None:
        """Apply the next applicable rung; ``None`` once fully exhausted."""
        while self._next_rung < len(self.RUNGS):
            rung = self.RUNGS[self._next_rung]
            self._next_rung += 1
            if self._apply(rung):
                self.applied.append(rung)
                return rung
        return None

    def force(self, count: int) -> list[str]:
        """Consume ladder positions ``[0, count)``; returns rungs applied.

        Used by supervised poison-stage escalation: the supervisor asks for
        "the first ``count`` rungs" and an inapplicable position (e.g.
        ``sparse-backend`` on an already-sparse run) is *consumed without
        effect* rather than skipped, so the escalation schedule stays a
        pure function of the failure count, not of the configuration.
        """
        applied = []
        while self._next_rung < min(count, len(self.RUNGS)):
            rung = self.RUNGS[self._next_rung]
            self._next_rung += 1
            if self._apply(rung):
                self.applied.append(rung)
                applied.append(rung)
        return applied

    def _apply(self, rung: str) -> bool:
        """Mutate the effective params for one rung; False = inapplicable."""
        params = self.params
        if rung == "sparse-backend":
            if params.backend == "sparse":
                return False
            params.backend = "sparse"
            return True
        if rung == "escalate-phi":
            params.phi_t = params.phi_t * 4 if params.phi_t > 0 else 1.0
            params.phi_v = params.phi_v * 4 if params.phi_v > 0 else 1.0
            if params.double_clustering_phi_t is not None:
                params.double_clustering_phi_t = (
                    params.double_clustering_phi_t * 4
                    if params.double_clustering_phi_t > 0 else 1.0
                )
            return True
        if rung == "shrink-leaf-buffer":
            current = params.max_leaf_entries
            if current is None:
                if self.governor is None:
                    return False
                cap = self.governor.max_bytes or 0
                current = max(_MIN_LEAF_ENTRIES, cap // _LEAF_BYTES_ESTIMATE)
            if current <= _MIN_LEAF_ENTRIES:
                return False
            params.max_leaf_entries = max(_MIN_LEAF_ENTRIES, current // 4)
            return True
        if rung == "sample-tuples":
            if len(self.original_relation) <= _SAMPLE_CAP:
                return False
            params.relation = deterministic_sample(self.original_relation)
            return True
        # "best-effort": terminal -- stop enforcing, keep observing.
        if self.governor is None:
            return False
        self.governor.set_best_effort()
        return True

    def describe(self) -> str:
        return " -> ".join(self.applied) if self.applied else "no rungs applied"


#: Ladder rungs that provably leave the final report byte-identical (the
#: backend-parity guarantee).  A supervised escalation that applies only
#: these does not mark the report degraded.
_IDENTITY_RUNGS = frozenset({"sparse-backend"})


@dataclass
class DiscoveryReport:
    """All artifacts of a :class:`StructureDiscovery` run."""

    relation: Relation
    tuple_clustering: TupleClusteringResult
    value_clustering: ValueClusteringResult
    attribute_grouping: AttributeGroupingResult | None
    dependencies: list
    cover: list
    ranked: list
    outcomes: list = field(default_factory=list)
    #: Set by ``StructureDiscovery(verify=True)``: the independent
    #: :class:`repro.audit.AuditCertificate` over this report's artifacts.
    audit_certificate: object = None

    def top_dependencies(self, count: int = 5) -> list[RankedFD]:
        """The ``count`` best-ranked dependencies."""
        return self.ranked[:count]

    # -- health ------------------------------------------------------------------

    def outcome(self, stage: str) -> StageOutcome | None:
        """The recorded outcome of one stage, if the stage ran."""
        for outcome in self.outcomes:
            if outcome.stage == stage:
                return outcome
        return None

    @property
    def healthy(self) -> bool:
        """Whether every stage took its primary path."""
        return all(outcome.ok for outcome in self.outcomes)

    def health(self) -> str:
        """The pipeline-health section: one line per stage."""
        if not self.outcomes:
            return "Pipeline health: (no stages recorded)"
        label = "all stages ok" if self.healthy else "DEGRADED"
        lines = [f"Pipeline health: {label}"]
        lines += [outcome.render() for outcome in self.outcomes]
        return "\n".join(lines)

    def summary(self, top: int = 5) -> dict:
        """A JSON-serializable digest of the report.

        This is what the resident service daemon returns from its model
        endpoints: stable keys, plain types, and the same deterministic
        ordering as :meth:`render`, so two byte-identical reports summarize
        to byte-identical JSON.
        """
        dependencies = []
        for entry in self.dependencies[:top]:
            if isinstance(entry, ReliableFD):
                dependencies.append({
                    "lhs": sorted(entry.fd.lhs),
                    "rhs": sorted(entry.fd.rhs),
                    "score": entry.score,
                    "sampled": entry.sampled,
                    "confidence_radius": entry.confidence_radius,
                })
            else:
                dependencies.append({
                    "lhs": sorted(entry.lhs),
                    "rhs": sorted(entry.rhs),
                })
        ranked = []
        for entry in self.ranked[:top]:
            ranked.append({
                "lhs": sorted(entry.fd.lhs),
                "rhs": sorted(entry.fd.rhs),
                "rank": None if math.isinf(entry.rank) else entry.rank,
            })
        return {
            "n_tuples": len(self.relation),
            "arity": self.relation.arity,
            "n_values": self.relation.value_count(),
            "duplicate_tuple_groups": len(
                self.tuple_clustering.duplicate_groups),
            "duplicate_value_groups": len(
                self.value_clustering.duplicate_groups),
            "dependencies_mined": len(self.dependencies),
            "cover_size": len(self.cover),
            "dependencies": dependencies,
            "ranked": ranked,
            "healthy": self.healthy,
            "stages": [
                {"stage": o.stage, "status": o.status, "detail": o.detail,
                 "fallback": o.fallback}
                for o in self.outcomes
            ],
        }

    # -- rendering ---------------------------------------------------------------

    def render(self, top: int = 5) -> str:
        """A human-readable summary of the discovered structure."""
        lines = [
            f"Structure discovery over {len(self.relation)} tuples, "
            f"{self.relation.arity} attributes, "
            f"{self.relation.value_count()} values",
            "",
            f"Candidate duplicate tuple groups: "
            f"{len(self.tuple_clustering.duplicate_groups)}",
            f"Duplicate value groups (C_V^D): "
            f"{len(self.value_clustering.duplicate_groups)}",
        ]
        if self.attribute_grouping is not None:
            lines += ["", "Attribute dendrogram:", self.attribute_grouping.render()]
        reliable = [d for d in self.dependencies if isinstance(d, ReliableFD)]
        if reliable:
            lines += ["", f"Dependencies mined: {len(self.dependencies)} "
                          f"(reliable; exhaustive cover skipped)"]
            lines.append("Reliable FD scores (bias-corrected fraction of "
                         "information):")
            for entry in reliable[:top]:
                tag = (f"  [sampled, radius {entry.confidence_radius:.3f}]"
                       if entry.sampled else "")
                lines.append(f"  {entry.fd}  score={entry.score:.4f}{tag}")
        else:
            lines += ["", f"Dependencies mined: {len(self.dependencies)}; "
                          f"minimum cover: {len(self.cover)}"]
        if self.ranked:
            lines.append("")
            lines.append(f"Top-{top} ranked dependencies (ascending rank):")
            for ranked in self.ranked[:top]:
                rank = (
                    "unranked" if math.isinf(ranked.rank)
                    else f"{ranked.rank:.4f}"
                )
                try:
                    report = redundancy_report(self.relation, ranked.fd)
                    measures = (
                        f"RAD={report['rad']:.3f} RTR={report['rtr']:.3f}"
                    )
                except Exception:
                    measures = "RAD=? RTR=?"
                lines.append(f"  {ranked.fd}  rank={rank} {measures}")
        lines += ["", self.health()]
        if self.audit_certificate is not None:
            lines += ["", self.audit_certificate.render()]
        return "\n".join(lines)

    def to_json(self, top: int = 5) -> dict:
        """The :meth:`summary` digest plus a full ``artifacts`` section.

        The ``artifacts`` block carries everything the standalone auditor
        (``repro audit <report> <data>``) needs to re-certify the report
        without the live Python objects: the relation fingerprint, the
        complete dependency/cover/ranking lists, the tuple-cluster
        assignment with its DCF summaries (weight + sparse joint masses),
        and the attribute dendrogram's merge sequence.
        """
        from repro.checkpoint import relation_fingerprint

        data = self.summary(top)
        dependencies = []
        for entry in self.dependencies:
            if isinstance(entry, ReliableFD):
                dependencies.append({
                    "kind": "reliable",
                    "lhs": sorted(entry.fd.lhs),
                    "rhs": sorted(entry.fd.rhs),
                    "score": entry.score,
                    "information": entry.information,
                    "sampled": entry.sampled,
                    "confidence_radius": entry.confidence_radius,
                })
            else:
                dependencies.append({
                    "kind": "exact",
                    "lhs": sorted(entry.lhs),
                    "rhs": sorted(entry.rhs),
                })
        artifacts = {
            "fingerprint": relation_fingerprint(self.relation),
            "healthy": self.healthy,
            "cover": [{"lhs": sorted(fd.lhs), "rhs": sorted(fd.rhs)}
                      for fd in self.cover],
            "dependencies": dependencies,
            "ranked": [
                {"lhs": sorted(entry.fd.lhs), "rhs": sorted(entry.fd.rhs),
                 "rank": None if math.isinf(entry.rank) else entry.rank}
                for entry in self.ranked
            ],
        }
        clustering = self.tuple_clustering
        view = getattr(clustering, "view", None)
        limbo = getattr(clustering, "limbo", None)
        if view is not None and limbo is not None and limbo.summaries:
            artifacts["value_scope"] = view.catalog.scope
            artifacts["assignment"] = [int(a) for a in clustering.assignment]
            artifacts["summaries"] = [
                {"weight": dcf.weight,
                 "mass": {str(k): m for k, m in sorted(dcf.mass.items())}}
                for dcf in limbo.summaries
            ]
        if self.attribute_grouping is not None:
            dendrogram = self.attribute_grouping.dendrogram
            artifacts["n_leaves"] = dendrogram.n_leaves
            artifacts["merges"] = [
                {"left": merge.left, "right": merge.right,
                 "parent": merge.parent, "loss": merge.loss}
                for merge in dendrogram.merges
            ]
        data["artifacts"] = artifacts
        if self.audit_certificate is not None:
            data["verification"] = self.audit_certificate.to_json()
        return data


class StructureDiscovery:
    """Configurable, resilient pipeline driver.

    Parameters mirror the individual tools; see
    :func:`repro.core.tuple_clustering.cluster_tuples`,
    :func:`repro.core.value_clustering.cluster_values` and
    :func:`repro.core.fd_rank.fd_rank`.

    Dependency-mining knobs:

    fd_mode:
        ``"exact"`` (default) mines exact minimal dependencies with the
        configured ``miner`` and reduces them to a minimum cover.
        ``"topk"`` / ``"reliable"`` run the branch-and-bound miner of
        :func:`repro.fd.mine_reliable_fds` instead, scoring candidates by
        the bias-corrected fraction of information; the exhaustive cover
        stage is skipped and the miner's output feeds FD-RANK directly.
    fd_k:
        Result size for ``fd_mode="topk"`` (default 10).
    fd_alpha:
        Reliability level for the reliable modes: the default score
        threshold in ``"reliable"`` mode (``1 - fd_alpha``) and the
        confidence level of sampled-fallback radii.
    fd_max_lhs:
        LHS size cap for the reliable modes (default 3; ``None`` lifts
        it).  Wide relations make the uncapped lattice explode when many
        near-tied exact dependencies defeat pruning, and FD-RANK gains
        nothing from determinant sets larger than a few attributes.
    seed:
        Base seed for every randomized ingredient (currently the reliable
        miner's sampled fallback), derived per scope by
        :mod:`repro.seeding`.  Same seed, same report, byte for byte.

    Additional robustness knobs:

    strict:
        When true, any stage failure is re-raised as
        :class:`repro.errors.StageFailure` instead of degrading (the
        pre-resilience behaviour).
    budget:
        A default :class:`repro.budget.Budget` applied to every ``run``
        (``run``'s own ``budget`` argument overrides it).
    workers:
        ``None`` (default) keeps every stage on its sequential code path,
        exactly as before the parallel layer existed.  ``"auto"`` or a
        positive integer runs each ``run`` with a
        :class:`repro.parallel.ShardedExecutor`: LIMBO Phase 1 shards, the
        FD miners' fan-outs and the grouping's candidate build distribute
        across that many worker processes.  The shard layout depends only
        on the data, so any worker count yields bit-identical reports; an
        extra ``"parallel"`` entry in the health section records whether
        the pool ran cleanly or degraded to sequential execution.
    start_method:
        Multiprocessing start method for the pool (``"fork"`` /
        ``"spawn"``); ``None`` resolves from the platform and the
        ``REPRO_PARALLEL_START_METHOD`` environment variable.
    backend:
        Numeric backend for the clustering stages (``"auto"`` / ``"sparse"``
        / ``"dense"``), forwarded to LIMBO and AIB.  Both backends produce
        bit-identical reports; the knob exists for benchmarking and for
        pinning the choice into a checkpoint manifest.
    checkpoint:
        ``None`` (default), a directory path, or a preconfigured
        :class:`repro.checkpoint.CheckpointStore`.  A path is opened with
        ``resume=True``: every ``run`` snapshots completed stages there and
        reuses any valid snapshots a previous identical run left behind --
        this is the one-argument "pick up where the crash left off" spelling.
        Corrupt or mismatched snapshots are quarantined and recomputed; the
        incident appears as a ``checkpoint`` entry in the report's health
        section.  See ``docs/ROBUSTNESS.md``.
    memory_limit:
        ``None`` (default, ungoverned), a byte count, or a size string
        (``"256M"``).  Attaches a :class:`repro.budget.MemoryGovernor` to
        the run's budget; cooperative memory checks then bound the DCF
        tree, the dense kernels and TANE's partition store, and breaches
        surface as :class:`repro.errors.MemoryLimitExceeded` at
        deterministic checkpoints.
    on_memory_pressure:
        ``"degrade"`` (default) climbs the memory ladder (module
        docstring) and always completes; ``"fail"`` propagates the first
        :class:`repro.errors.MemoryLimitExceeded` unchanged.
    max_leaf_entries:
        Optional space bound on LIMBO Phase 1: at most this many DCF-tree
        leaf entries, enforced by threshold escalation + in-place rebuild
        (the paper's space-bounded variant).  Independent of
        ``memory_limit``; the ladder also sets it dynamically under
        pressure.
    supervise:
        ``None``/``False`` (default) runs the pipeline in this process.
        ``True`` or a :class:`repro.supervisor.SupervisorConfig` runs it in
        a *child* process under a :class:`repro.supervisor.Supervisor`:
        crashes (SIGKILL, SIGSEGV, OOM-kill) and hangs are detected, the
        run auto-resumes from the checkpoint store with bounded restarts,
        and a stage that keeps dying escalates the degradation ladder.
        Uses ``checkpoint`` as the durable state (a private temporary
        directory when unset).  See ``docs/ROBUSTNESS.md``.
    """

    def __init__(
        self,
        phi_t: float = 0.0,
        phi_v: float = 0.0,
        double_clustering_phi_t: float | None = None,
        psi: float = 0.5,
        miner: str = "auto",
        fd_mode: str = "exact",
        fd_k: int = 10,
        fd_alpha: float = 0.05,
        fd_max_lhs: int | None = 3,
        seed: int = 0,
        strict: bool = False,
        budget: Budget | None = None,
        workers=None,
        start_method: str | None = None,
        backend: str = "auto",
        checkpoint=None,
        memory_limit=None,
        on_memory_pressure: str = "degrade",
        max_leaf_entries: int | None = None,
        supervise=None,
        verify: bool = False,
    ):
        if miner not in ("auto", "fdep", "tane"):
            raise ValueError("miner must be 'auto', 'fdep' or 'tane'")
        if fd_mode not in FD_MODES:
            raise ValueError(
                f"fd_mode must be one of {FD_MODES}, got {fd_mode!r}"
            )
        if fd_k < 1:
            raise ValueError("fd_k must be >= 1")
        if not 0.0 < fd_alpha < 1.0:
            raise ValueError(f"fd_alpha must lie in (0, 1), got {fd_alpha!r}")
        if fd_max_lhs is not None and fd_max_lhs < 1:
            raise ValueError("fd_max_lhs must be >= 1 (or None)")
        kernels.validate_backend(backend)
        if on_memory_pressure not in MEMORY_POLICIES:
            raise ValueError(
                f"on_memory_pressure must be one of {MEMORY_POLICIES}, "
                f"got {on_memory_pressure!r}"
            )
        if isinstance(memory_limit, str):
            memory_limit = parse_memory_size(memory_limit)
        if memory_limit is not None and memory_limit <= 0:
            raise ValueError("memory_limit must be positive (or None)")
        if max_leaf_entries is not None and max_leaf_entries < 1:
            raise ValueError("max_leaf_entries must be >= 1 (or None)")
        self.phi_t = phi_t
        self.phi_v = phi_v
        self.double_clustering_phi_t = double_clustering_phi_t
        self.psi = psi
        self.miner = miner
        self.fd_mode = fd_mode
        self.fd_k = fd_k
        self.fd_alpha = fd_alpha
        self.fd_max_lhs = fd_max_lhs
        self.seed = seed
        self.strict = strict
        self.budget = budget
        self.workers = workers
        self.start_method = start_method
        self.backend = backend
        self.memory_limit = memory_limit
        self.on_memory_pressure = on_memory_pressure
        self.max_leaf_entries = max_leaf_entries
        self.verify = bool(verify)
        if checkpoint is not None and not isinstance(checkpoint, CheckpointStore):
            checkpoint = CheckpointStore(checkpoint, resume=True)
        self.checkpoint = checkpoint
        if supervise:
            from repro.supervisor import SupervisorConfig

            if not isinstance(supervise, SupervisorConfig):
                supervise = SupervisorConfig()
        else:
            supervise = None
        self.supervise = supervise
        #: Constructor arguments a supervisor child needs to rebuild this
        #: driver (checkpoint and supervise are deliberately absent: the
        #: child gets its own store and must never recurse).
        self._spec = {
            "phi_t": phi_t,
            "phi_v": phi_v,
            "double_clustering_phi_t": double_clustering_phi_t,
            "psi": psi,
            "miner": miner,
            "fd_mode": fd_mode,
            "fd_k": fd_k,
            "fd_alpha": fd_alpha,
            "fd_max_lhs": fd_max_lhs,
            "seed": seed,
            "strict": strict,
            "workers": workers,
            "start_method": start_method,
            "backend": backend,
            "memory_limit": self.memory_limit,
            "on_memory_pressure": on_memory_pressure,
            "max_leaf_entries": max_leaf_entries,
        }

    def manifest_params(self) -> dict:
        """The parameters that define checkpoint validity.

        Also the public cache-keying surface: the resident service daemon
        (:mod:`repro.service`) hashes this dict together with the relation
        fingerprint to content-address its model cache, so two requests
        differing in any result-affecting knob can never share a model.

        Budget and deadline are deliberately absent: stage snapshots are
        only written along a fully-healthy prefix, whose results do not
        depend on how much budget remained.  ``workers`` and ``backend``
        are included conservatively -- reports are bit-identical across
        both, but refusing cross-configuration reuse keeps that guarantee
        testable rather than assumed.
        """
        return {
            "phi_t": self.phi_t,
            "phi_v": self.phi_v,
            "double_clustering_phi_t": self.double_clustering_phi_t,
            "psi": self.psi,
            "miner": self.miner,
            "fd_mode": self.fd_mode,
            "fd_k": self.fd_k,
            "fd_alpha": self.fd_alpha,
            "fd_max_lhs": self.fd_max_lhs,
            "seed": self.seed,
            "backend": self.backend,
            "workers": self.workers,
            # Memory governance changes which configurations a stage may
            # have degraded under, so capped and uncapped runs (and runs
            # with different caps) never share snapshots.
            "memory_limit_bytes": self.memory_limit,
            "on_memory_pressure": self.on_memory_pressure,
            "max_leaf_entries": self.max_leaf_entries,
        }

    #: Backwards-compatible private spelling (pre-service callers/tests).
    _manifest_params = manifest_params

    # -- the stage guard ---------------------------------------------------------

    def _guarded(self, stage, outcomes, primary, fallbacks=(), default=None,
                 ladder=None):
        """Run ``primary`` under the stage guard.

        ``fallbacks`` is a sequence of ``(name, thunk)`` rungs tried in
        order when the primary path raises; the first rung that succeeds
        marks the stage ``degraded``.  When every rung fails the stage is
        ``failed`` and ``default`` is returned.  ``KeyboardInterrupt``
        always propagates (the CLI maps it to exit code 130).

        :class:`MemoryLimitExceeded` gets special treatment: under
        ``on_memory_pressure="fail"`` it propagates unchanged; otherwise,
        when a ``ladder`` is active, the *primary* path is retried after
        each rung -- the memory ladder reconfigures the stage rather than
        replacing it, so a pressured stage still runs the real algorithm,
        just cheaper.  Only if the ladder runs dry does the stage fall
        through to its ordinary fallbacks.
        """
        try:
            fault_point(f"discovery.{stage}")
            result = primary()
            outcomes.append(StageOutcome(stage=stage, status="ok"))
            return result
        except KeyboardInterrupt:
            raise
        except MemoryLimitExceeded as exc:
            if self.on_memory_pressure == "fail":
                raise
            detail = f"memory limit exceeded: {exc}"
            cause = exc
            if ladder is not None and not self.strict:
                retried = self._climb_and_retry(stage, outcomes, primary,
                                                ladder, detail)
                if retried is not None:
                    return retried[0]
        except ResourceLimitExceeded as exc:
            detail = f"budget exhausted: {exc}"
            cause = exc
        except Exception as exc:
            detail = f"{type(exc).__name__}: {exc}"
            cause = exc
        if self.strict:
            raise StageFailure(
                f"stage {stage!r} failed: {detail}",
                stage=stage, cause=detail,
            ) from cause
        for name, thunk in fallbacks:
            try:
                result = thunk()
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                detail += f"; fallback {name!r} also failed ({exc})"
                continue
            outcomes.append(
                StageOutcome(stage=stage, status="degraded",
                             detail=detail, fallback=name)
            )
            return result
        outcomes.append(StageOutcome(stage=stage, status="failed", detail=detail))
        return default

    def _climb_and_retry(self, stage, outcomes, primary, ladder, detail):
        """Retry ``primary`` up the memory ladder.

        Returns ``(result,)`` once a rung lets the primary path finish
        (the stage is recorded ``degraded`` with the rungs applied), or
        ``None`` when the ladder is exhausted and the stage should fall
        through to its ordinary fallbacks.  The final ``best-effort``
        rung disables governor enforcement, so this loop terminates.
        """
        while True:
            rung = ladder.climb()
            if rung is None:
                return None
            try:
                result = primary()
            except KeyboardInterrupt:
                raise
            except MemoryLimitExceeded:
                continue
            except Exception:
                return None
            outcomes.append(StageOutcome(
                stage=stage, status="degraded", detail=detail,
                fallback=f"memory ladder: {ladder.describe()}",
            ))
            return (result,)

    # -- the pipeline ------------------------------------------------------------

    def run(self, relation: Relation, budget: Budget | None = None,
            escalations: dict | None = None) -> DiscoveryReport:
        """Execute the full pipeline on ``relation``.

        Never raises on stage failures unless ``strict`` is set; consult
        :attr:`DiscoveryReport.outcomes` / :meth:`DiscoveryReport.health`
        for what actually happened.

        ``escalations`` maps a stage name to a degradation-ladder position
        count to pre-apply when that stage is reached (see
        :meth:`_MemoryLadder.force`).  It is set by the supervisor on
        post-poison-stage attempts and is not part of the checkpoint
        manifest: snapshots stay shared across supervised attempts, and
        escalated stages are never snapshotted (result-affecting rungs mark
        the run degraded, which already blocks saves).
        """
        if self.supervise is not None:
            from repro.supervisor import Supervisor

            report = Supervisor(self, config=self.supervise).run(
                relation, budget=budget
            )
            return self._verified(report, relation)
        budget = budget if budget is not None else self.budget
        if self.memory_limit is not None:
            if budget is None:
                budget = Budget(max_memory_bytes=self.memory_limit)
            elif getattr(budget, "memory", None) is None:
                budget.max_memory_bytes = self.memory_limit
                budget.memory = MemoryGovernor(self.memory_limit)
        governor = getattr(budget, "memory", None)
        outcomes: list[StageOutcome] = []

        store = self.checkpoint
        if store is not None:
            store.open_run(relation, self.manifest_params())
            store.attach(budget)

        executor = None
        if self.workers is not None:
            from repro.parallel import ShardedExecutor

            executor = ShardedExecutor(
                workers=self.workers, start_method=self.start_method,
                budget=budget,
            )
            if governor is not None and executor.max_worker_memory_bytes is None:
                # Split the cap across the pool: a worker that outgrows its
                # share is treated like a crashed worker (retry once, then
                # sticky-sequential with smaller shards).
                executor.max_worker_memory_bytes = max(
                    1, governor.max_bytes // max(1, executor.workers)
                )
        ladder = None
        try:
            report, ladder = self._run_stages(
                relation, budget, outcomes, executor, store,
                escalations=escalations,
            )
        finally:
            if executor is not None:
                executor.close()
        if executor is not None:
            if not executor.events:
                outcomes.append(StageOutcome(
                    stage="parallel", status="ok",
                    detail="sharded execution, no pool incidents",
                ))
            elif all(e.kind == "retry" for e in executor.events):
                # Every incident was a retry that went on to succeed; the
                # run stayed parallel and the report is unaffected.
                outcomes.append(StageOutcome(
                    stage="parallel", status="ok",
                    detail="recovered: "
                           + "; ".join(e.render() for e in executor.events),
                ))
            else:
                outcomes.append(StageOutcome(
                    stage="parallel", status="degraded",
                    detail="; ".join(e.render() for e in executor.events),
                    fallback="sequential execution",
                ))
        if store is not None and store.events:
            # Only incidents earn an entry: a clean checkpointed (or cleanly
            # resumed) run renders bit-identically to an uncheckpointed one.
            outcomes.append(StageOutcome(
                stage="checkpoint", status="degraded",
                detail="; ".join(e.render() for e in store.events),
                fallback="recomputed from source data",
            ))
        if governor is not None or self.max_leaf_entries is not None:
            # Only governed (or explicitly space-bounded) runs earn a
            # ``memory`` entry: ungoverned reports stay byte-identical to
            # the pre-governance implementation.
            outcomes.append(self._memory_outcome(governor, ladder, report))
        return self._verified(report, relation)

    def _verified(self, report: DiscoveryReport, source_relation: Relation
                  ) -> DiscoveryReport:
        """Run the independent auditor over the finished report.

        Appends a ``verification`` entry to the health section (``ok`` when
        every artifact re-certified, ``failed`` otherwise, which also flips
        :attr:`DiscoveryReport.healthy`) and, when the run is checkpointed,
        drops the machine-readable certificate next to the snapshots as
        ``audit.json``.  No-op unless ``verify=True``.
        """
        if not self.verify:
            return report
        from repro.audit import Auditor

        store = self.checkpoint
        certificate = Auditor(seed=self.seed).audit(
            report, source_relation=source_relation, store=store,
            expected_params=self.manifest_params() if store is not None
            else None,
        )
        report.audit_certificate = certificate
        report.outcomes.append(StageOutcome(
            stage="verification",
            status="ok" if certificate.ok else "failed",
            detail=certificate.describe(),
        ))
        if store is not None:
            try:
                certificate.write(store.directory / "audit.json")
            except OSError:
                pass  # the certificate is advisory; never fail the run
        return report

    def _memory_outcome(self, governor, ladder, report) -> StageOutcome:
        """The ``memory`` health entry of a governed run.

        Deliberately excludes sampled RSS values -- they vary run to run,
        and the health section must stay deterministic for a fixed input
        and configuration.
        """
        parts = []
        if governor is not None:
            parts.append(f"cap {format_bytes(governor.max_bytes)}")
            parts.append(f"policy {self.on_memory_pressure}")
        rebuilds = 0
        for result in (report.tuple_clustering, report.value_clustering):
            limbo = getattr(result, "limbo", None)
            if limbo is not None:
                rebuilds += getattr(limbo, "buffer_rebuilds", 0)
        if rebuilds:
            parts.append(f"{rebuilds} space-bound leaf-buffer rebuild(s)")
        if ladder is not None and ladder.applied:
            return StageOutcome(
                stage="memory", status="degraded",
                detail="; ".join(parts),
                fallback=f"memory ladder: {ladder.describe()}",
            )
        parts.append("no pressure" if governor is not None
                     else "space-bounded Phase 1")
        return StageOutcome(stage="memory", status="ok",
                            detail="; ".join(parts))

    def _checkpointed(self, stage, store, outcomes, compute,
                      ladder=None, escalations=None):
        """Load a stage snapshot, or compute and (when healthy) save one.

        A snapshot carries both the stage result and the
        :class:`StageOutcome` entries the stage appended, so a resumed run
        replays the exact health lines.  Saves happen only while *every*
        outcome so far is ``ok``: a degraded result reflects the budget
        that degraded it, so persisting it would freeze the degradation
        into later runs -- recomputing instead lets a resume with a fresh
        budget heal the stage.

        Supervisor escalations apply here, after the snapshot miss and
        before the stage body: a poison stage only ever escalates when it
        is actually about to recompute.
        """
        if store is not None:
            store.enter_stage(stage)
            snapshot = store.load_stage(stage)
            if snapshot is not None:
                outcomes.extend(snapshot["outcomes"])
                return snapshot["result"]
        self._apply_escalation(stage, outcomes, ladder, escalations)
        before = len(outcomes)
        result = compute()
        if store is not None and all(o.ok for o in outcomes):
            store.save_stage(stage, {
                "result": result,
                "outcomes": outcomes[before:],
            })
        return result

    def _apply_escalation(self, stage, outcomes, ladder, escalations):
        """Pre-apply supervised ladder rungs for a poison stage.

        Rungs in :data:`_IDENTITY_RUNGS` keep the report byte-identical so
        they escalate silently (the supervisor still logs them in
        ``incident.json``); anything stronger marks the run degraded via a
        ``supervisor`` health entry, which also blocks checkpointing of the
        escalated results.
        """
        count = (escalations or {}).get(stage, 0)
        if not count or ladder is None:
            return
        applied = ladder.force(count)
        affecting = [rung for rung in applied if rung not in _IDENTITY_RUNGS]
        if affecting:
            outcomes.append(StageOutcome(
                stage="supervisor", status="degraded",
                detail=(f"degradation ladder escalated before {stage!r} "
                        "after repeated supervised failures"),
                fallback=f"ladder: {' -> '.join(applied)}",
            ))

    def _run_stages(
        self, relation, budget, outcomes, executor, store=None,
        escalations=None,
    ):
        def _handle(stage):
            return store.stage_handle(stage) if store is not None else None

        # The knobs the memory ladder may steer mid-run.  Ungoverned runs
        # (or policy "fail" / strict mode) get no ladder and the params
        # stay exactly the configured ones.
        eff = _EffectiveParams(
            phi_t=self.phi_t,
            phi_v=self.phi_v,
            double_clustering_phi_t=self.double_clustering_phi_t,
            backend=self.backend,
            max_leaf_entries=self.max_leaf_entries,
            relation=relation,
        )
        governor = getattr(budget, "memory", None)
        ladder = None
        if (
            governor is not None
            and self.on_memory_pressure == "degrade"
            and not self.strict
        ):
            ladder = _MemoryLadder(eff, governor)
        if escalations and ladder is None:
            # Supervised escalation needs a ladder even on ungoverned runs;
            # governor-dependent rungs are consumed as no-ops then.
            ladder = _MemoryLadder(eff, governor)

        tuples = self._checkpointed(
            "tuple_clustering", store, outcomes,
            lambda: self._guarded(
                "tuple_clustering", outcomes,
                primary=lambda: cluster_tuples(
                    eff.relation, phi_t=eff.phi_t, budget=budget,
                    backend=eff.backend, executor=executor,
                    checkpoint=_handle("tuple_clustering"),
                    max_leaf_entries=eff.max_leaf_entries,
                ),
                fallbacks=[
                    ("exact-duplicate scan",
                     lambda: _exact_duplicate_groups(relation)),
                ],
                default=TupleClusteringResult(
                    relation=relation, view=None, limbo=None,
                    assignment=[], duplicate_groups=[],
                ),
                ladder=ladder,
            ),
            ladder=ladder, escalations=escalations,
        )

        values = self._checkpointed(
            "value_clustering", store, outcomes,
            lambda: self._guarded(
                "value_clustering", outcomes,
                primary=lambda: cluster_values(
                    eff.relation, phi_v=eff.phi_v,
                    phi_t=eff.double_clustering_phi_t, budget=budget,
                    backend=eff.backend, executor=executor,
                    checkpoint=_handle("value_clustering"),
                    max_leaf_entries=eff.max_leaf_entries,
                ),
                fallbacks=[
                    (
                        f"exact clustering of a {_SAMPLE_CAP}-tuple sample",
                        lambda: cluster_values(
                            deterministic_sample(relation), phi_v=0.0,
                            phi_t=None,
                        ),
                    ),
                ],
                default=ValueClusteringResult(
                    relation=relation, view=None, limbo=None, groups=[],
                ),
                ladder=ladder,
            ),
            ladder=ladder, escalations=escalations,
        )

        def _grouping_stage():
            if values.duplicate_groups:
                grouping = self._guarded(
                    "attribute_grouping", outcomes,
                    primary=lambda: group_attributes(
                        value_clustering=values, budget=budget,
                        backend=eff.backend, executor=executor,
                        checkpoint=_handle("attribute_grouping"),
                    ),
                    default=None,
                    ladder=ladder,
                )
                return grouping, grouping is None
            outcomes.append(StageOutcome(
                stage="attribute_grouping", status="ok",
                detail="skipped: no duplicate value groups to cluster",
            ))
            return None, False

        grouping, grouping_failed = self._checkpointed(
            "attribute_grouping", store, outcomes, _grouping_stage,
            ladder=ladder, escalations=escalations,
        )

        if self.fd_mode == "exact":
            mining_fallbacks = [
                (
                    f"FDEP over a {_SAMPLE_CAP}-tuple deterministic sample",
                    lambda: fdep(deterministic_sample(relation)),
                ),
            ]
        else:
            # The reliable rung of the ladder: rescore on a seeded row
            # sample.  Results carry sampled=True and per-FD confidence
            # radii, the stage is recorded degraded (so it is never
            # checkpointed as exact), and the flag survives into the
            # rendered score list.
            mining_fallbacks = [
                (
                    f"reliable miner over a seeded {_SAMPLE_CAP}-row "
                    f"sample (confidence {1.0 - self.fd_alpha:g})",
                    lambda: mine_reliable_fds(
                        relation, mode=self.fd_mode, k=self.fd_k,
                        alpha=self.fd_alpha, seed=self.seed,
                        max_lhs_size=self.fd_max_lhs,
                        sample_rows=_SAMPLE_CAP,
                    ),
                ),
            ]

        dependencies = self._checkpointed(
            "mining", store, outcomes,
            lambda: self._guarded(
                "mining", outcomes,
                primary=lambda: self._mine(eff.relation, budget, executor),
                fallbacks=mining_fallbacks,
                default=[],
                ladder=ladder,
            ),
            ladder=ladder, escalations=escalations,
        )

        def _cover_stage():
            if self.fd_mode != "exact":
                # Top-k miner output is already minimal *for its purpose*
                # (a ranked shortlist, not a closure-complete cover);
                # running Maier's exhaustive cover over it would only
                # discard evidence.  Feed the FDs straight to FD-RANK.
                outcomes.append(StageOutcome(
                    stage="cover", status="ok",
                    detail="skipped: reliable top-k output feeds FD-RANK "
                           "directly",
                ))
                return [entry.fd for entry in dependencies]
            return self._guarded(
                "cover", outcomes,
                primary=lambda: minimum_cover(dependencies),
                fallbacks=[
                    ("raw mined dependencies", lambda: list(dependencies)),
                ],
                default=[],
            )

        cover = self._checkpointed(
            "cover", store, outcomes, _cover_stage,
            ladder=ladder, escalations=escalations,
        )

        def _rank_stage():
            if cover and grouping is not None:
                return self._guarded(
                    "rank", outcomes,
                    primary=lambda: fd_rank(cover, grouping, psi=self.psi),
                    fallbacks=[
                        ("cover order, unranked (singleton grouping)",
                         lambda: _unranked_cover(cover)),
                    ],
                    default=[],
                )
            if cover and grouping_failed:
                # The grouping stage *failed* (rather than having nothing
                # to group): keep the cover visible in rank position anyway.
                ranked = self._guarded(
                    "rank", outcomes,
                    primary=lambda: self._rank_without_grouping(cover),
                    default=[],
                )
                last = outcomes[-1]
                if last.stage == "rank" and last.ok:
                    last.status = "degraded"
                    last.detail = "attribute grouping failed upstream"
                    last.fallback = "cover order, unranked (singleton grouping)"
                return ranked
            reason = (
                "no dependencies to rank" if not cover
                else "no attribute grouping (nothing to rank against)"
            )
            outcomes.append(StageOutcome(
                stage="rank", status="ok", detail=f"skipped: {reason}",
            ))
            return []

        ranked = self._checkpointed("rank", store, outcomes, _rank_stage,
                                    ladder=ladder, escalations=escalations)

        return DiscoveryReport(
            relation=relation,
            tuple_clustering=tuples,
            value_clustering=values,
            attribute_grouping=grouping,
            dependencies=dependencies,
            cover=cover,
            ranked=ranked,
            outcomes=outcomes,
        ), ladder

    def _mine(self, relation: Relation, budget: Budget | None, executor=None) -> list:
        """The configured miner over the full relation (budgeted).

        Reliable modes return :class:`repro.fd.ReliableFD` entries (already
        in the deterministic ``(-score, lhs, rhs)`` order); exact mode
        returns plain :class:`repro.fd.FD` sets for the cover stage.
        """
        if self.fd_mode != "exact":
            return mine_reliable_fds(
                relation, mode=self.fd_mode, k=self.fd_k,
                alpha=self.fd_alpha, seed=self.seed,
                max_lhs_size=self.fd_max_lhs,
                budget=budget, executor=executor,
            )
        miner = self.miner
        if miner == "auto":
            miner = "fdep" if len(relation) <= _FDEP_TUPLE_LIMIT else "tane"
        if miner == "fdep":
            return fdep(relation, budget=budget, executor=executor)
        return tane(relation, budget=budget, executor=executor)

    def _rank_without_grouping(self, cover) -> list[RankedFD]:
        """Rank when attribute grouping is unavailable: cover order.

        A real grouping never materialized (the stage failed upstream or
        there was nothing to group), so this *primary* path is already the
        singleton-grouping semantics -- every dependency unqualified.
        """
        return _unranked_cover(cover)
