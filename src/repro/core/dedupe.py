"""Duplicate elimination built on tuple clustering (Sections 2, 6.1.1, 9).

The paper positions its tuple clustering as a duplicate-*detection* tool
that complements the merge/purge literature: candidate groups are found by
information content, not by string-distance functions.  This module closes
the loop with the natural next step, duplicate *elimination*: collapse each
candidate group into a single survivor tuple.

Survivorship is majority vote per attribute (ties break toward the value of
the earliest tuple, which under "first source wins" integration is the most
trusted); singleton groups pass through untouched.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.tuple_clustering import TupleClusteringResult, cluster_tuples
from repro.relation import Relation


@dataclass
class DedupeResult:
    """Outcome of :func:`eliminate_duplicates`."""

    relation: Relation
    clustering: TupleClusteringResult
    survivors: list = field(default_factory=list)
    merged_groups: list = field(default_factory=list)

    @property
    def deduplicated(self) -> Relation:
        """The relation with each candidate group collapsed to a survivor."""
        return Relation(self.relation.schema, self.survivors)

    @property
    def tuples_removed(self) -> int:
        return len(self.relation) - len(self.survivors)


def _survivor(relation: Relation, indices: list) -> tuple:
    """Majority-vote fusion of a group of tuples (earliest tuple breaks ties)."""
    earliest = min(indices)
    fused = []
    for position in range(relation.arity):
        votes = Counter(relation.rows[i][position] for i in sorted(indices))
        best_count = max(votes.values())
        winners = {value for value, count in votes.items() if count == best_count}
        if len(winners) == 1:
            (value,) = winners
        else:
            value = relation.rows[earliest][position]
        fused.append(value)
    return tuple(fused)


def eliminate_duplicates(
    relation: Relation, phi_t: float = 0.1, branching: int = 4
) -> DedupeResult:
    """Detect candidate duplicate groups and fuse each into one tuple.

    ``phi_t = 0`` collapses exact duplicates only; positive values also
    fuse near-duplicates (inspect ``merged_groups`` before trusting them --
    the paper is explicit that candidate groups are *presented to the user*
    for confirmation).
    """
    clustering = cluster_tuples(relation, phi_t=phi_t, branching=branching)
    in_group: set = set()
    survivors: list = []
    merged_groups: list = []

    for group in clustering.duplicate_groups:
        in_group.update(group.tuple_indices)

    for index in range(len(relation)):
        if index not in in_group:
            survivors.append(relation.rows[index])
    for group in clustering.duplicate_groups:
        survivors.append(_survivor(relation, group.tuple_indices))
        merged_groups.append(list(group.tuple_indices))

    return DedupeResult(
        relation=relation,
        clustering=clustering,
        survivors=survivors,
        merged_groups=merged_groups,
    )
