"""Instance profiling: the data-browser summaries of Section 2.

The paper situates its tools next to data-quality browsers (Potter's Wheel,
Bellman) that "employ a host of statistical summaries to permit real-time
browsing".  This module provides those per-attribute summaries -- cheap,
model-free statistics an analyst reads *before* reaching for the
information-theoretic machinery: cardinalities, NULL profiles, entropies,
top values.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.infotheory.entropy import entropy_of_counts, max_entropy
from repro.relation import NULL, Relation


@dataclass(frozen=True)
class AttributeProfile:
    """Summary statistics for one attribute."""

    name: str
    distinct: int
    distinct_fraction: float  # distinct / n; 1.0 = all values unique
    null_fraction: float
    entropy_bits: float
    uniformity: float  # H / H_max in [0, 1]; 1 = uniform, 0 = constant
    top_values: tuple  # ((value, count), ...) most frequent first

    @property
    def is_constant(self) -> bool:
        return self.distinct <= 1

    @property
    def is_key_like(self) -> bool:
        """All values distinct and none missing -- a candidate identifier."""
        return self.distinct_fraction >= 1.0 - 1e-9 and self.null_fraction == 0.0


@dataclass
class RelationProfile:
    """Per-attribute profiles plus relation-level counts."""

    relation: Relation
    attributes: list

    @property
    def n_tuples(self) -> int:
        return len(self.relation)

    def attribute(self, name: str) -> AttributeProfile:
        for profile in self.attributes:
            if profile.name == name:
                return profile
        raise KeyError(name)

    def null_heavy(self, threshold: float = 0.95) -> list:
        """Attributes that are mostly NULL (Figure 15's candidates)."""
        return [p.name for p in self.attributes if p.null_fraction >= threshold]

    def key_candidates(self) -> list:
        """Attributes whose values are all distinct."""
        return [p.name for p in self.attributes if p.is_key_like]

    def render(self, top: int = 3) -> str:
        lines = [
            f"{self.n_tuples} tuples x {len(self.attributes)} attributes, "
            f"{self.relation.value_count()} distinct values",
            "",
            f"{'attribute':<16} {'distinct':>8} {'null%':>6} {'H(bits)':>8} "
            f"{'unif':>5}  top values",
        ]
        for p in self.attributes:
            tops = ", ".join(
                f"{('NULL' if v is NULL else v)}x{c}" for v, c in p.top_values[:top]
            )
            lines.append(
                f"{p.name:<16} {p.distinct:>8} {p.null_fraction:>6.1%} "
                f"{p.entropy_bits:>8.3f} {p.uniformity:>5.2f}  {tops}"
            )
        return "\n".join(lines)


def profile_relation(relation: Relation, top_values: int = 5) -> RelationProfile:
    """Compute per-attribute summary statistics for a relation."""
    if len(relation) == 0:
        raise ValueError("cannot profile an empty relation")
    profiles = []
    n = len(relation)
    for name in relation.schema.names:
        counts = Counter(relation.column(name))
        h = entropy_of_counts(counts)
        h_max = max_entropy(len(counts)) if len(counts) > 1 else 0.0
        profiles.append(
            AttributeProfile(
                name=name,
                distinct=len(counts),
                distinct_fraction=len(counts) / n,
                null_fraction=counts.get(NULL, 0) / n,
                entropy_bits=h,
                uniformity=(h / h_max) if h_max > 0 else (1.0 if len(counts) == n else 0.0),
                top_values=tuple(counts.most_common(top_values)),
            )
        )
    return RelationProfile(relation=relation, attributes=profiles)
