"""The asyncio HTTP/1.1 daemon wrapping :class:`~repro.service.app.DiscoveryApp`.

Pure stdlib: ``asyncio.start_server`` plus a small hand-rolled HTTP/1.1
request parser (one request per connection, ``Connection: close``) -- the
service speaks JSON over a deliberately tiny HTTP subset, and a dependency
footprint of zero is part of the robustness story.

Life of a request::

    accept -> [service.accept] -> parse head+body (bounded)
           -> admission.slot()          (429/503 shed *before* any work)
           -> [service.handler] inside a worker thread
           -> app.handle(..., budget=per-request Budget)
           -> JSON response, close

The event loop only parses, sheds and serializes; every CPU-bound handler
runs in a worker thread via ``asyncio.to_thread`` under a per-request
:class:`~repro.budget.Budget` derived from the daemon's own (so no request
can outlive the daemon's deadline, and all requests share one memory
governor).

Shutdown: SIGTERM/SIGINT start a **drain** -- the listener closes, new
requests get 503, admitted requests get ``grace`` seconds to finish, the
resident state is persisted, the daemon lock released, and the process
exits 0 (``classify_exit(0) == "completed"``, so a supervisor treats a
drained daemon exactly like a finished batch run).  A second signal during
the drain forces an immediate exit.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import sys

from repro.budget import Budget
from repro.errors import ReproError
from repro.service.admission import AdmissionController
from repro.service.app import DiscoveryApp, error_payload, status_for
from repro.testing.faults import fault_point

#: Largest accepted request head (request line + headers).
MAX_HEAD_BYTES = 64 * 1024

#: Largest accepted request body.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Seconds a connection may take to deliver its request.
READ_TIMEOUT = 30.0

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}

#: Paths that bypass admission control: liveness/readiness probes must
#: answer precisely when the daemon is busiest.
_UNGATED = {"/healthz", "/readyz", "/stats"}


class Daemon:
    """One resident discovery daemon: listener, admission, app, lifecycle."""

    def __init__(self, app: DiscoveryApp, host: str = "127.0.0.1",
                 port: int = 0, max_inflight: int = 4, queue_depth: int = 16,
                 request_deadline: float = 30.0, grace: float = 10.0,
                 budget: Budget | None = None):
        self.app = app
        self.host = host
        self.port = port
        self.admission = AdmissionController(max_inflight=max_inflight,
                                             queue_depth=queue_depth)
        self.request_deadline = request_deadline
        self.grace = grace
        self.budget = budget
        self._server: asyncio.AbstractServer | None = None
        self._stopped: asyncio.Event | None = None
        self._draining = False
        self._remining: set[str] = set()
        self.exit_code = 0

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener, rehydrate state, announce readiness."""
        self._stopped = asyncio.Event()
        restored = await asyncio.to_thread(self.app.rehydrate)
        self._server = await asyncio.start_server(
            self._on_client, self.host, self.port,
            family=socket.AF_INET, reuse_address=True)
        self.port = self._server.sockets[0].getsockname()[1]
        self._write_endpoint_file()
        print(f"repro: serving on http://{self.host}:{self.port} "
              f"(pid {os.getpid()}, {restored} relation(s) rehydrated)",
              flush=True)

    def _write_endpoint_file(self) -> None:
        """Drop ``service.json`` next to the snapshots so tooling (tests,
        the smoke drill) can find a daemon started with ``--port 0``."""
        try:
            from repro.relation.io import atomic_write

            path = self.app.store.directory / "service.json"
            with atomic_write(path) as handle:
                json.dump({"host": self.host, "port": self.port,
                           "pid": os.getpid()}, handle)
        except Exception:
            pass  # diagnostics only; the printed line remains authoritative

    async def serve_forever(self) -> int:
        """Run until a drain completes; returns the process exit code."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda s=signum: self._on_signal(s))
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-POSIX loop, or the loop runs outside the main thread
                # (tests host the daemon in a thread): rely on drain()
                # being called directly / KeyboardInterrupt.
                pass
        await self._stopped.wait()
        return self.exit_code

    def _on_signal(self, signum: int) -> None:
        if self._draining:
            # Second signal: the operator means it.  Skip the grace period.
            print("repro: forced shutdown during drain", file=sys.stderr,
                  flush=True)
            self._finish()
            return
        asyncio.ensure_future(self.drain(
            reason=signal.Signals(signum).name))

    async def drain(self, reason: str = "shutdown") -> None:
        """Graceful shutdown: shed, finish in-flight work, persist, exit."""
        if self._draining:
            return
        self._draining = True
        self.app.draining = True
        inflight = self.admission.start_drain()
        print(f"repro: draining on {reason}: {inflight} request(s) in "
              f"flight, grace {self.grace:g}s", flush=True)
        try:
            fault_point("service.drain", inflight)
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            drained = await self.admission.wait_idle(self.grace)
            if not drained:
                print(f"repro: grace period expired with "
                      f"{self.admission.inflight} request(s) still running; "
                      "their relations are checkpointed", file=sys.stderr,
                      flush=True)
            await asyncio.to_thread(self.app.persist_all)
        except Exception as exc:
            # A failing drain path must still take the daemon down cleanly:
            # resident state was persisted after every mutation, so exiting
            # without the final safety-net persist loses nothing.
            print(f"repro: drain error ({type(exc).__name__}: {exc}); "
                  "exiting anyway", file=sys.stderr, flush=True)
        self._finish()

    def _finish(self) -> None:
        try:
            self.app.store.release_lock()
        except Exception:
            pass
        if self._server is not None:
            self._server.close()
        if self._stopped is not None:
            self._stopped.set()

    # -- one connection ----------------------------------------------------------

    async def _on_client(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        try:
            peer = writer.get_extra_info("peername")
            fault_point("service.accept", peer)
            try:
                method, path, query, body = await asyncio.wait_for(
                    self._read_request(reader), READ_TIMEOUT)
            except _HttpError as exc:
                await self._respond(writer, exc.status,
                                    {"error": "BadRequest",
                                     "message": exc.message})
                return
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError):
                return  # client went away or stalled; nothing to answer
            status, payload, headers = await self._dispatch(
                method, path, query, body)
            await self._respond(writer, status, payload, headers)
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception:
            # An accept-path failure (including an injected service.accept
            # fault) costs this connection only, never the daemon.
            try:
                await self._respond(writer, 500,
                                    {"error": "InternalError",
                                     "message": "connection handling failed"})
            except Exception:
                pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _dispatch(self, method, path, query, body):
        if path in _UNGATED:
            return await self._run_handler(method, path, query, body)
        try:
            async with self.admission.slot():
                return await self._run_handler(method, path, query, body)
        except ReproError as exc:
            return self._error_response(exc)

    async def _run_handler(self, method, path, query, body):
        request_budget = (self.budget.derive(deadline=self.request_deadline)
                          if self.budget is not None
                          else Budget(deadline=self.request_deadline))
        try:
            status, payload = await asyncio.to_thread(
                self.app.handle, method, path, query, body, request_budget)
        except ReproError as exc:
            return self._error_response(exc)
        except Exception as exc:
            # Handler crash (including an injected service.handler fault):
            # a mapped 500 for this request, business as usual for the next.
            return 500, {"error": "InternalError",
                         "message": f"{type(exc).__name__}: {exc}"}, {}
        if path.endswith("/rows") and payload.get("needs_remine"):
            self._schedule_remine(payload["relation"])
        return status, payload, {}

    def _error_response(self, exc: ReproError):
        headers = {}
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            headers["Retry-After"] = str(int(retry_after))
        return status_for(exc), error_payload(exc), headers

    def _schedule_remine(self, rid: str) -> None:
        """Bounded background re-mining: at most one re-mine per relation
        at a time, skipped entirely while draining."""
        if self._draining or rid in self._remining:
            return
        self._remining.add(rid)

        async def _run():
            try:
                budget = (self.budget.derive() if self.budget is not None
                          else None)
                await asyncio.to_thread(self.app.remine, rid, budget)
            except Exception as exc:
                print(f"repro: background re-mine of {rid!r} failed: "
                      f"{type(exc).__name__}: {exc}", file=sys.stderr,
                      flush=True)
            finally:
                self._remining.discard(rid)

        asyncio.ensure_future(_run())

    # -- wire format -------------------------------------------------------------

    async def _read_request(self, reader: asyncio.StreamReader):
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > MAX_HEAD_BYTES:
            raise _HttpError(400, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        path, _, raw_query = target.partition("?")
        query = {}
        for pair in raw_query.split("&"):
            if pair:
                name, _, value = pair.partition("=")
                query[name] = value
        body = None
        length = headers.get("content-length")
        if length is not None:
            try:
                n_bytes = int(length)
            except ValueError:
                raise _HttpError(400, "bad Content-Length") from None
            if n_bytes > MAX_BODY_BYTES:
                raise _HttpError(413, "request body too large")
            raw = await reader.readexactly(n_bytes)
            if raw:
                try:
                    body = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, ValueError):
                    raise _HttpError(400, "body is not valid JSON") from None
        return method.upper(), path, query, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict, headers: dict | None = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()


class _HttpError(Exception):
    """A wire-level request defect (before routing)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


async def _main_async(daemon: Daemon) -> int:
    await daemon.start()
    return await daemon.serve_forever()


def run_daemon(daemon: Daemon) -> int:
    """Blocking entry point used by ``repro serve``."""
    try:
        return asyncio.run(_main_async(daemon))
    except KeyboardInterrupt:  # pragma: no cover - non-POSIX fallback
        return 0
