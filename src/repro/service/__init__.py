"""Discovery-as-a-service: the fault-tolerant resident daemon.

``repro serve`` keeps mined structure resident between requests instead of
recomputing it per CLI invocation.  The pieces:

* :class:`~repro.service.app.DiscoveryApp` -- routes, resident relations,
  exactly-once chunked ingest, incremental Phase-1 absorption, staleness
  watermarks (HTTP-light, directly testable);
* :class:`~repro.service.model_cache.ModelCache` -- content-addressed
  models with single-flight dedup, LRU + byte-budget residency, and
  write-through persistence for crash-safe rehydration;
* :class:`~repro.service.admission.AdmissionController` -- bounded
  queueing with load shedding (429 + ``Retry-After``) and drain support;
* :class:`~repro.service.server.Daemon` -- the stdlib-asyncio HTTP front
  end with graceful SIGTERM drain;
* :class:`~repro.service.client.ServiceClient` -- the retrying client that
  honors ``Retry-After`` and backs off with jitter.

See ``docs/SERVICE.md`` for the endpoint reference and failure-mode table.
"""

from repro.service.admission import AdmissionController
from repro.service.app import DiscoveryApp, HTTP_STATUS, status_for
from repro.service.client import ServiceClient
from repro.service.model_cache import ModelCache, model_key
from repro.service.server import Daemon, run_daemon

__all__ = [
    "AdmissionController",
    "Daemon",
    "DiscoveryApp",
    "HTTP_STATUS",
    "ModelCache",
    "ServiceClient",
    "model_key",
    "run_daemon",
    "status_for",
]
