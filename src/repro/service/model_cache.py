"""Content-addressed model cache: single-flight, LRU, crash-safe.

The daemon's models are pure functions of ``(relation fingerprint,
discovery parameters)`` -- the same purity contract the checkpoint layer
relies on.  That makes them perfectly cacheable: the cache key is a digest
of exactly those two inputs, so a hit can never serve a stale or mismatched
model, and two daemons (or one daemon across a SIGKILL) computing the same
key produce bit-identical values.

Three layers:

* **resident** -- an LRU of deserialized models under a byte budget
  enforced by a dedicated :class:`repro.budget.MemoryGovernor`.  Inserting
  past the budget evicts least-recently-used entries first; an entry larger
  than the whole budget is served but never kept resident (disk-only).
* **durable** -- write-through to named :class:`repro.checkpoint.CheckpointStore`
  snapshots (``model.<key>.ckpt``), which are atomic, checksummed and
  run-token-free, so a restarted daemon rehydrates models instead of
  recomputing them.  Rehydrated bytes flow through the
  ``service.cache_load`` fault point; a corrupt snapshot is quarantined by
  the store and costs a recompute, never a wrong answer.
* **single-flight** -- concurrent requests for the same key block on the
  one computation instead of stampeding.  If the leader fails (its request
  deadline expired, say), one waiter takes over with *its own* budget
  rather than inheriting the leader's failure.

Thread-safe: the daemon executes handlers in worker threads, so the cache
synchronizes with a plain lock; the compute callable runs outside it.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import threading
from collections import OrderedDict

from repro.budget import MemoryGovernor
from repro.testing.faults import fault_point


def model_key(fingerprint: str, params: dict) -> str:
    """The cache key of one (relation, parameters) pair.

    A digest of the relation fingerprint plus the canonical JSON of the
    discovery parameters -- the same pair the checkpoint manifest uses to
    decide snapshot validity, truncated to stay a filesystem-friendly name.
    """
    blob = fingerprint + "\x00" + json.dumps(params, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


class _Entry:
    __slots__ = ("value", "nbytes")

    def __init__(self, value, nbytes: int):
        self.value = value
        self.nbytes = nbytes


class _Flight:
    """One in-progress computation other threads can wait on."""

    __slots__ = ("event", "done")

    def __init__(self):
        self.event = threading.Event()
        self.done = False


class ModelCache:
    """LRU + byte-budget cache with write-through persistence.

    Parameters
    ----------
    store:
        Optional :class:`~repro.checkpoint.CheckpointStore` for the durable
        layer; ``None`` keeps the cache memory-only.
    max_bytes:
        Byte budget for resident entries (``None`` = unbounded residency).
    kind:
        Named-snapshot kind under which values persist.
    """

    def __init__(self, store=None, max_bytes: int | None = None,
                 kind: str = "model"):
        self.store = store
        self.kind = kind
        self.governor = (MemoryGovernor(max_bytes)
                         if max_bytes is not None else None)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._flights: dict[str, _Flight] = {}
        #: Lifetime counters for ``/stats`` and tests.
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.computes = 0
        self.evictions = 0
        self.rehydrate_failures = 0

    # -- the one entry point -----------------------------------------------------

    def get_or_compute(self, key: str, compute, persist: bool = True):
        """The value for ``key``: resident, rehydrated, or computed.

        ``compute`` is called (outside the lock, in the calling thread)
        only when neither cache layer has the value.  ``persist`` may be a
        bool or a ``value -> bool`` predicate deciding write-through per
        value -- the daemon passes ``lambda r: r.healthy`` so degraded
        models are served but never outlive the condition that degraded
        them.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return entry.value
                flight = self._flights.get(key)
                if flight is None:
                    flight = _Flight()
                    self._flights[key] = flight
                    leader = True
                else:
                    leader = False
            if not leader:
                flight.event.wait()
                # Re-check from the top: on success the entry is resident;
                # on leader failure this waiter becomes the next leader.
                continue
            try:
                value, computed = self._produce(key, compute)
            finally:
                with self._lock:
                    self._flights.pop(key, None)
                flight.event.set()
            should_persist = persist(value) if callable(persist) else persist
            if computed and should_persist and self.store is not None:
                written = self.store.save_named(self.kind, key, value)
                nbytes = written if written is not None else _sizeof(value)
            else:
                nbytes = _sizeof(value)
            self._admit(key, value, nbytes)
            return value

    def peek(self, key: str):
        """The value for ``key`` from the cache layers only -- resident or
        rehydrated from disk -- or ``None``; never computes."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry.value
        value = self._rehydrate(key)
        if value is not None:
            self.disk_hits += 1
            self._admit(key, value, _sizeof(value))
        return value

    def _produce(self, key: str, compute):
        """Load from disk or compute; returns ``(value, was_computed)``."""
        value = self._rehydrate(key)
        if value is not None:
            self.disk_hits += 1
            return value, False
        self.misses += 1
        value = compute()
        self.computes += 1
        return value, True

    def _rehydrate(self, key: str):
        """Best-effort durable-layer read; any defect costs a recompute."""
        if self.store is None:
            return None
        path = self.store._named_path(self.kind, key)
        try:
            if not path.exists():
                return None
            raw = path.read_bytes()
            tampered = fault_point("service.cache_load", raw)
            if tampered is not raw:
                # The fault simulated on-disk rot; make it real so the
                # store's checksum path quarantines the snapshot exactly as
                # it would genuine corruption.
                path.write_bytes(tampered)
            return self.store.load_named(self.kind, key)
        except KeyboardInterrupt:
            raise
        except Exception:
            self.rehydrate_failures += 1
            return None

    # -- residency ---------------------------------------------------------------

    def _admit(self, key: str, value, nbytes: int) -> None:
        with self._lock:
            if key in self._entries:
                return
            if self.governor is not None:
                while self._entries and self.governor.would_exceed(nbytes):
                    _, oldest = self._entries.popitem(last=False)
                    self.governor.release(oldest.nbytes)
                    self.evictions += 1
                if self.governor.would_exceed(nbytes):
                    return  # larger than the whole budget: disk-only
                self.governor.reserve(nbytes, where="service.model_cache")
            self._entries[key] = _Entry(value, nbytes)

    def invalidate(self, key: str) -> None:
        """Drop a key from both layers (used by background re-mining)."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None and self.governor is not None:
                self.governor.release(entry.nbytes)
        if self.store is not None:
            self.store.delete_named(self.kind, key)

    def resident_keys(self) -> list[str]:
        """Currently resident keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict:
        """Counters for the ``/stats`` endpoint."""
        with self._lock:
            resident_bytes = sum(e.nbytes for e in self._entries.values())
            return {
                "resident": len(self._entries),
                "resident_bytes": resident_bytes,
                "max_bytes": (self.governor.max_bytes
                              if self.governor is not None else None),
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "computes": self.computes,
                "evictions": self.evictions,
                "rehydrate_failures": self.rehydrate_failures,
            }


def _sizeof(value) -> int:
    """Resident-cost estimate of a value (its pickled size)."""
    try:
        return len(pickle.dumps(value))
    except Exception:
        return 1 << 20  # unpicklable: assume a meaningful footprint
