"""The discovery service application: routes, resident state, ingest.

This module is deliberately HTTP-light: it knows about methods, paths and
status codes (the :data:`HTTP_STATUS` mapping from the error taxonomy), but
not about sockets, parsing or concurrency primitives.  The asyncio server
in :mod:`repro.service.server` calls :meth:`DiscoveryApp.handle` from
worker threads; tests call it directly.

Resources
---------

``/relations/{id}`` is a **resident relation**: a coded
:class:`~repro.relation.columns.ColumnStore` built up from client-pushed
row chunks, persisted as a named checkpoint snapshot after every mutation
so a SIGKILL never loses acknowledged rows.  Chunks carry client-supplied
sequence numbers and are applied exactly once (a replayed chunk is
acknowledged as a duplicate, an out-of-order chunk rejected), which is what
makes crash/retry ingestion deterministic.

A relation's **model** is a full :class:`~repro.core.StructureDiscovery`
report -- a pure function of the relation fingerprint and the discovery
parameters, cached under exactly that key (see
:mod:`repro.service.model_cache`).  Queries (top FDs, cluster assignment)
are served from the last *mined* model; rows arriving after the mine are
**absorbed** into a copy of its Phase-1 DCF summaries (the associative
merge of Equations 1-2), so ``/assign`` keeps answering -- approximately,
and flagged as such -- without a re-run, while the growing staleness
watermark tells the server when a bounded background re-mine is due.

Degraded models (a stage fell back under its budget) are served flagged
but never persisted: a snapshot must never outlive the condition that
degraded it.
"""

from __future__ import annotations

import re
import threading

from repro.budget import Budget
from repro.checkpoint.store import relation_fingerprint
from repro.clustering.dcf import DCF, merge_cost
from repro.core.discovery import StructureDiscovery
from repro.errors import (
    InputError,
    MemoryLimitExceeded,
    NotFoundError,
    ReproError,
    ResourceLimitExceeded,
    SchemaError,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.relation import NULL, Relation
from repro.relation.columns import ColumnStore
from repro.service.model_cache import ModelCache, model_key
from repro.testing.faults import fault_point

#: How each taxonomy class maps onto an HTTP status.  Most-derived class
#: wins (the daemon walks the exception's MRO), so e.g. a
#: :class:`MemoryLimitExceeded` is a retryable 503, not a generic 500.
HTTP_STATUS = {
    SchemaError: 400,
    InputError: 400,
    NotFoundError: 404,
    ServiceOverloaded: 429,
    ServiceUnavailable: 503,
    MemoryLimitExceeded: 503,
    ResourceLimitExceeded: 503,
    ServiceError: 500,
    ReproError: 500,
}


def status_for(exc: BaseException) -> int:
    """The HTTP status of an exception (500 for anything unmapped)."""
    for klass in type(exc).__mro__:
        status = HTTP_STATUS.get(klass)
        if status is not None:
            return status
    return 500


def error_payload(exc: BaseException) -> dict:
    """The JSON body of an error response (machine-readable, like the
    taxonomy itself)."""
    payload = {
        "error": type(exc).__name__,
        "message": str(exc) or type(exc).__name__,
    }
    context = getattr(exc, "context", None)
    if context:
        payload["context"] = {k: _jsonable(v) for k, v in context.items()}
    return payload


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


_RID_PATTERN = re.compile(r"^[A-Za-z0-9_-]{1,64}$")

#: Rows accepted per chunk; a larger POST is a client bug, not load.
MAX_CHUNK_ROWS = 100_000


class _Assigner:
    """Incrementally absorbable Phase-3 assignment state.

    Holds *copies* of the mined model's DCF summaries and value catalog
    (the cached model itself stays immutable), so new rows can be absorbed
    in place via the associative merge of Equations 1-2: route the row's
    singleton DCF to the closest summary, then ``absorb`` it there.  The
    result approximates what a full re-run would produce; ``absorbed``
    counts how far the approximation has drifted from the mined model.
    """

    def __init__(self, report):
        clustering = report.tuple_clustering
        catalog = clustering.view.catalog
        self.scope = catalog.scope
        self.ids = dict(catalog.ids)
        self.keys = list(catalog.keys)
        self.summaries = [s.copy() for s in clustering.limbo.summaries]
        if not self.summaries:
            raise ValueError("model has no cluster summaries")
        self.names = report.relation.attributes
        self.arity = max(1, report.relation.arity)
        self.base_prior = 1.0 / max(1, len(report.relation))
        self.absorbed = 0

    def _distribution(self, row, allocate: bool) -> dict:
        mass = 1.0 / self.arity
        sparse: dict = {}
        for name, literal in zip(self.names, row):
            key = (name, literal) if self.scope == "attribute" else literal
            value_id = self.ids.get(key)
            if value_id is None:
                if not allocate:
                    continue  # unseen value: contributes no known mass
                value_id = len(self.keys)
                self.ids[key] = value_id
                self.keys.append(key)
            sparse[value_id] = sparse.get(value_id, 0.0) + mass
        return sparse

    def _closest(self, singleton: DCF) -> int:
        best, best_cost = 0, merge_cost(self.summaries[0], singleton)
        for index in range(1, len(self.summaries)):
            cost = merge_cost(self.summaries[index], singleton)
            if cost < best_cost:
                best, best_cost = index, cost
        return best

    def assign(self, row) -> int:
        """Closest cluster of a row (read-only; unseen values ignored)."""
        return self._closest(DCF(self.base_prior,
                                 self._distribution(row, allocate=False)))

    def absorb(self, row) -> int:
        """Fold one new row into its closest summary (Equations 1-2)."""
        singleton = DCF(self.base_prior, self._distribution(row, True))
        index = self._closest(singleton)
        self.summaries[index].absorb(singleton)
        self.absorbed += 1
        return index


class ResidentRelation:
    """One relation's daemon-resident state."""

    def __init__(self, rid: str, attributes):
        self.rid = rid
        self.attributes = tuple(str(name) for name in attributes)
        self.columns = ColumnStore(self.attributes)
        self.applied_seq = 0
        self.stale_rows = 0
        self.model_key: str | None = None
        self.model_healthy = True
        self.assigner: _Assigner | None = None  # process-local, not persisted
        self.remines = 0
        self.lock = threading.RLock()

    def snapshot_payload(self) -> dict:
        return {
            "attributes": self.attributes,
            "columns": self.columns,
            "applied_seq": self.applied_seq,
            "stale_rows": self.stale_rows,
            "model_key": self.model_key,
            "model_healthy": self.model_healthy,
            "remines": self.remines,
        }

    @classmethod
    def from_snapshot(cls, rid: str, payload: dict) -> "ResidentRelation":
        relation = cls(rid, payload["attributes"])
        relation.columns = payload["columns"]
        relation.applied_seq = int(payload["applied_seq"])
        relation.stale_rows = int(payload["stale_rows"])
        relation.model_key = payload["model_key"]
        relation.model_healthy = bool(payload.get("model_healthy", True))
        relation.remines = int(payload.get("remines", 0))
        return relation


class DiscoveryApp:
    """Route dispatch plus all resident state; one instance per daemon.

    Parameters
    ----------
    store:
        The daemon's :class:`~repro.checkpoint.CheckpointStore` (the caller
        acquires the daemon lock before building the app).
    params:
        Keyword overrides for :class:`~repro.core.StructureDiscovery`
        (``fd_k``, ``seed``, ``workers``, ...); the canonical manifest dict
        derived from them is half of every model-cache key.
    cache_bytes:
        Byte budget of the resident model cache.
    remine_after:
        Staleness watermark: absorbed rows per relation before a background
        re-mine is requested (0 disables re-mining).
    """

    def __init__(self, store, params: dict | None = None,
                 cache_bytes: int | None = 64 << 20,
                 remine_after: int = 256):
        self.store = store
        overrides = dict(params or {})
        overrides.setdefault("fd_mode", "topk")
        self._discovery_kwargs = overrides
        self.params = StructureDiscovery(**overrides).manifest_params()
        self.cache = ModelCache(store=store, max_bytes=cache_bytes)
        self.remine_after = int(remine_after)
        self.relations: dict[str, ResidentRelation] = {}
        self._relations_lock = threading.Lock()
        self.ready = False
        self.draining = False
        self.requests = 0

    # -- lifecycle ---------------------------------------------------------------

    def rehydrate(self) -> int:
        """Reload every persisted relation; returns how many came back.

        Models are rehydrated lazily by the cache on first query -- eagerly
        deserializing every model at boot would delay readiness for state
        nobody may ask about.
        """
        count = 0
        for rid in self.store.list_named("relation"):
            payload = self.store.load_named("relation", rid)
            if not isinstance(payload, dict):
                continue  # quarantined or torn: the client re-uploads
            try:
                relation = ResidentRelation.from_snapshot(rid, payload)
            except (KeyError, TypeError, ValueError):
                continue
            self.relations[rid] = relation
            count += 1
        self.ready = True
        return count

    def persist_all(self) -> None:
        """Write every relation's snapshot (drain-time safety net)."""
        with self._relations_lock:
            relations = list(self.relations.values())
        for relation in relations:
            with relation.lock:
                self._persist(relation)

    def _persist(self, relation: ResidentRelation) -> None:
        self.store.save_named("relation", relation.rid,
                              relation.snapshot_payload())

    # -- dispatch ----------------------------------------------------------------

    def handle(self, method: str, path: str, query: dict | None = None,
               body: dict | None = None,
               budget: Budget | None = None) -> tuple[int, dict]:
        """Serve one request; returns ``(status, payload)`` or raises a
        taxonomy error the server maps via :func:`status_for`."""
        fault_point("service.handler", (method, path))
        self.requests += 1
        query = query or {}
        parts = [part for part in path.split("/") if part]
        if method == "GET" and parts == ["healthz"]:
            return 200, {"status": "ok"}
        if method == "GET" and parts == ["readyz"]:
            if self.draining:
                raise ServiceUnavailable("daemon is draining")
            if not self.ready:
                raise ServiceUnavailable("daemon is still rehydrating")
            return 200, {"status": "ready", "relations": len(self.relations)}
        if method == "GET" and parts == ["stats"]:
            return 200, self.stats()
        if parts and parts[0] == "relations":
            return self._handle_relation(method, parts[1:], query, body,
                                         budget)
        raise NotFoundError(f"no route for {method} {path}",
                            resource="route", name=path)

    def _handle_relation(self, method, parts, query, body, budget):
        if not parts:
            raise NotFoundError("no route for /relations", resource="route",
                                name="/relations")
        rid = parts[0]
        if not _RID_PATTERN.match(rid):
            raise InputError(
                f"invalid relation id {rid!r} (want [A-Za-z0-9_-], "
                "at most 64 chars)")
        if len(parts) == 1:
            if method == "POST":
                return 200, self.create_relation(rid, body)
            if method == "GET":
                return 200, self.relation_status(rid)
        elif len(parts) == 2:
            action = parts[1]
            if action == "rows" and method == "POST":
                return 200, self.append_rows(rid, body)
            if action == "model" and method == "POST":
                return 200, self.build_model(rid, budget=budget,
                                             top=_int_query(query, "top", 5))
            if action == "fds" and method == "GET":
                return 200, self.top_fds(rid, k=_int_query(query, "k", 5),
                                         budget=budget)
            if action == "assign" and method == "POST":
                return 200, self.assign(rid, body, budget=budget)
            if action == "verify" and method == "GET":
                return 200, self.verify(rid, budget=budget)
        raise NotFoundError(
            f"no route for {method} /relations/{'/'.join(parts)}",
            resource="route", name="/".join(parts))

    # -- relation CRUD -----------------------------------------------------------

    def create_relation(self, rid: str, body: dict | None) -> dict:
        attributes = _require(body, "attributes", list)
        if not attributes or not all(
                isinstance(name, str) and name for name in attributes):
            raise SchemaError(
                "attributes must be a non-empty list of non-empty strings")
        if len(set(attributes)) != len(attributes):
            raise SchemaError("attribute names must be unique")
        with self._relations_lock:
            existing = self.relations.get(rid)
            if existing is not None:
                if existing.attributes != tuple(attributes):
                    raise InputError(
                        f"relation {rid!r} already exists with attributes "
                        f"{list(existing.attributes)!r}")
                return {"relation": rid, "existing": True,
                        "n_rows": existing.columns.n_rows}
            relation = ResidentRelation(rid, attributes)
            self.relations[rid] = relation
        with relation.lock:
            self._persist(relation)
        return {"relation": rid, "existing": False, "n_rows": 0}

    def _relation(self, rid: str) -> ResidentRelation:
        relation = self.relations.get(rid)
        if relation is None:
            raise NotFoundError(f"relation {rid!r} does not exist",
                                resource="relation", name=rid)
        return relation

    def relation_status(self, rid: str) -> dict:
        relation = self._relation(rid)
        with relation.lock:
            return {
                "relation": rid,
                "attributes": list(relation.attributes),
                "n_rows": relation.columns.n_rows,
                "applied_seq": relation.applied_seq,
                "stale_rows": relation.stale_rows,
                "model_key": relation.model_key,
                "model_built": relation.model_key is not None,
                "model_healthy": relation.model_healthy,
                "remines": relation.remines,
            }

    # -- incremental ingest ------------------------------------------------------

    def append_rows(self, rid: str, body: dict | None) -> dict:
        relation = self._relation(rid)
        rows = _require(body, "rows", list)
        if len(rows) > MAX_CHUNK_ROWS:
            raise InputError(
                f"chunk of {len(rows)} rows exceeds the per-request cap "
                f"of {MAX_CHUNK_ROWS}")
        seq = body.get("seq")
        if seq is not None and (not isinstance(seq, int) or seq < 1):
            raise InputError("seq must be a positive integer")
        converted = [self._convert_row(relation, index, row)
                     for index, row in enumerate(rows)]
        with relation.lock:
            if seq is not None and seq <= relation.applied_seq:
                # Exactly-once: a client retrying an acknowledged chunk
                # (its response was lost, or the daemon restarted after the
                # snapshot) must not double-apply it.
                return {"relation": rid, "applied_seq": relation.applied_seq,
                        "n_rows": relation.columns.n_rows,
                        "duplicate": True, "stale_rows": relation.stale_rows,
                        "needs_remine": False}
            if seq is not None and seq != relation.applied_seq + 1:
                raise InputError(
                    f"out-of-order chunk for {rid!r}: got seq {seq}, "
                    f"expected {relation.applied_seq + 1}")
            relation.columns.append_rows(converted)
            relation.applied_seq = (seq if seq is not None
                                    else relation.applied_seq + 1)
            if relation.model_key is not None:
                relation.stale_rows += len(converted)
                if relation.assigner is not None:
                    for row in converted:
                        relation.assigner.absorb(row)
            self._persist(relation)
            needs_remine = bool(
                self.remine_after
                and relation.model_key is not None
                and relation.stale_rows >= self.remine_after)
            return {"relation": rid, "applied_seq": relation.applied_seq,
                    "n_rows": relation.columns.n_rows, "duplicate": False,
                    "stale_rows": relation.stale_rows,
                    "needs_remine": needs_remine}

    def _convert_row(self, relation: ResidentRelation, index: int, row):
        if not isinstance(row, (list, tuple)):
            raise InputError(f"row {index} is not an array")
        if len(row) != len(relation.attributes):
            raise InputError(
                f"row {index} has arity {len(row)}, relation "
                f"{relation.rid!r} expects {len(relation.attributes)}")
        converted = []
        for cell in row:
            if cell is None:
                converted.append(NULL)  # JSON null <-> the NULL sentinel
            elif isinstance(cell, (str, int, float, bool)):
                converted.append(cell)
            else:
                raise InputError(
                    f"row {index} holds a non-scalar cell of type "
                    f"{type(cell).__name__}")
        return tuple(converted)

    # -- models ------------------------------------------------------------------

    def _snapshot(self, relation: ResidentRelation):
        """An immutable Relation over a copy of the current columns.

        Mining runs minutes while ingest must keep appending; copying the
        coded store (int32 columns + dictionaries) under the lock lets the
        computation proceed on frozen state outside it.
        """
        import pickle

        with relation.lock:
            if relation.columns.n_rows == 0:
                raise InputError(
                    f"relation {relation.rid!r} has no rows yet")
            columns = pickle.loads(pickle.dumps(relation.columns))
        return Relation.from_columns(columns.names, columns)

    def _compute(self, frozen: Relation, budget: Budget | None):
        discovery = StructureDiscovery(**self._discovery_kwargs)
        return discovery.run(frozen, budget=budget)

    def build_model(self, rid: str, budget: Budget | None = None,
                    top: int = 5) -> dict:
        """Mine (or fetch) the model for the relation's *current* rows."""
        relation = self._relation(rid)
        frozen = self._snapshot(relation)
        key = model_key(relation_fingerprint(frozen), self.params)
        report = self.cache.get_or_compute(
            key, lambda: self._compute(frozen, budget),
            persist=lambda value: value.healthy)
        with relation.lock:
            relation.model_key = key
            relation.model_healthy = report.healthy
            relation.stale_rows = max(
                0, relation.columns.n_rows - len(report.relation))
            try:
                relation.assigner = _Assigner(report)
            except Exception:
                relation.assigner = None  # degraded stage: assignment off
            relation.remines += 1
            self._persist(relation)
        payload = report.summary(top=max(1, top))
        payload.update({"relation": rid, "model_key": key,
                        "stale_rows": relation.stale_rows})
        return payload

    def remine(self, rid: str, budget: Budget | None = None) -> dict:
        """The bounded background re-mine behind the staleness watermark."""
        return self.build_model(rid, budget=budget)

    def _model_for(self, relation: ResidentRelation, budget: Budget | None):
        """The report queries are served from.

        Prefers the last *mined* model (possibly stale relative to rows
        absorbed since); if its snapshot was lost, falls back to mining the
        current rows -- never serves nothing when it can serve something
        exact.
        """
        with relation.lock:
            key = relation.model_key
        if key is None:
            raise NotFoundError(
                f"no model built for relation {relation.rid!r} yet "
                "(POST /relations/{id}/model first)",
                resource="model", name=relation.rid)
        report = self.cache.peek(key)
        if report is None:
            self.cache.invalidate(key)
            self.build_model(relation.rid, budget=budget)
            with relation.lock:
                key = relation.model_key
            report = self.cache.peek(key)
            if report is None:  # pragma: no cover - build_model just cached it
                raise NotFoundError(
                    f"model for relation {relation.rid!r} was lost",
                    resource="model", name=relation.rid)
        return key, report

    def top_fds(self, rid: str, k: int = 5,
                budget: Budget | None = None) -> dict:
        relation = self._relation(rid)
        key, report = self._model_for(relation, budget)
        summary = report.summary(top=max(1, k))
        with relation.lock:
            stale = relation.stale_rows
        return {
            "relation": rid,
            "model_key": key,
            "stale_rows": stale,
            "approximate": stale > 0,
            "healthy": summary["healthy"],
            "dependencies_mined": summary["dependencies_mined"],
            "dependencies": summary["dependencies"],
            "ranked": summary["ranked"],
        }

    def assign(self, rid: str, body: dict | None,
               budget: Budget | None = None) -> dict:
        relation = self._relation(rid)
        row = _require(body, "row", list)
        converted = self._convert_row(relation, 0, row)
        key, report = self._model_for(relation, budget)
        with relation.lock:
            if relation.assigner is None:
                try:
                    relation.assigner = _Assigner(report)
                except Exception:
                    raise ServiceUnavailable(
                        f"model for {rid!r} carries no cluster summaries "
                        "(degraded clustering stage); re-mine first")
            cluster = relation.assigner.assign(converted)
            absorbed = relation.assigner.absorbed
            n_clusters = len(relation.assigner.summaries)
            stale = relation.stale_rows
        return {
            "relation": rid,
            "model_key": key,
            "cluster": cluster,
            "clusters": n_clusters,
            "approximate": absorbed > 0,
            "stale_rows": stale,
        }

    # -- reporting ---------------------------------------------------------------

    def verify(self, rid: str, budget: Budget | None = None) -> dict:
        """Independently re-certify the model currently served for ``rid``.

        Cross-checks the cache key against a re-derived
        ``model_key(relation_fingerprint, params)`` (so a cache that served
        the wrong snapshot is caught), then runs the full
        :class:`repro.audit.Auditor` over the served report.
        """
        from repro.audit import Auditor

        relation = self._relation(rid)
        key, report = self._model_for(relation, budget)
        certificate = Auditor(
            seed=int(self.params.get("seed", 0))).audit(report)
        expected_key = model_key(
            relation_fingerprint(report.relation), self.params)
        key_ok = key == expected_key
        violations = [v.to_json() for v in certificate.violations]
        if not key_ok:
            violations.insert(0, {
                "check": "digests", "artifact": f"model_key:{rid}",
                "detail": f"served key {key} != re-derived {expected_key}",
            })
        with relation.lock:
            stale = relation.stale_rows
        return {
            "relation": rid,
            "model_key": key,
            "stale_rows": stale,
            "ok": certificate.ok and key_ok,
            "verification": certificate.to_json(),
            "violations": violations,
        }

    def stats(self) -> dict:
        with self._relations_lock:
            relations = {
                rid: {"n_rows": rel.columns.n_rows,
                      "applied_seq": rel.applied_seq,
                      "stale_rows": rel.stale_rows,
                      "model_built": rel.model_key is not None}
                for rid, rel in self.relations.items()
            }
        from repro import __version__

        return {
            "version": __version__,
            "ready": self.ready,
            "draining": self.draining,
            "requests": self.requests,
            "params": self.params,
            "remine_after": self.remine_after,
            "cache": self.cache.stats(),
            "relations": relations,
        }


def _require(body: dict | None, field: str, kind: type):
    if not isinstance(body, dict) or field not in body:
        raise InputError(f"request body must be a JSON object with "
                         f"a {field!r} field")
    value = body[field]
    if not isinstance(value, kind):
        raise InputError(f"{field!r} must be a JSON {kind.__name__}")
    return value


def _int_query(query: dict, name: str, default: int) -> int:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise InputError(f"query parameter {name!r} must be an integer, "
                         f"got {raw!r}") from None
