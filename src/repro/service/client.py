"""A retrying client for the discovery service.

Synchronous and stdlib-only (:mod:`http.client`), because callers are
scripts, tests and CI drills.  The client embodies the contract the daemon
publishes through its status codes:

* **429 / 503** -- the daemon shed or refused the request; retry after the
  server's ``Retry-After`` hint (falling back to capped exponential
  backoff with full jitter, so a thundering herd of clients decorrelates);
* **connection errors** -- the daemon may be restarting; same backoff;
* **4xx** -- the request itself is wrong; re-raised immediately as the
  matching taxonomy error (:class:`~repro.errors.InputError`,
  :class:`~repro.errors.NotFoundError`), never retried;
* **500** -- re-raised as :class:`~repro.errors.ServiceError` (a handler
  crash is not known to be transient, and retrying a crashing request
  hammers a wounded daemon).

An overall ``deadline`` bounds the total time spent retrying, mirroring
the server's per-request budget on the client side.  ``sleep`` and ``rng``
are injectable so the backoff schedule is unit-testable without waiting.
"""

from __future__ import annotations

import http.client
import json
import random
import time

from repro.errors import (
    InputError,
    NotFoundError,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
)


def _header_retry_after(headers: dict) -> float | None:
    """The ``Retry-After`` value in seconds, or ``None`` when absent."""
    for name, value in headers.items():
        if name.lower() == "retry-after":
            try:
                return float(value)
            except (TypeError, ValueError):
                return 1.0
    return None


class ServiceClient:
    """Talk to one daemon, absorbing overload and restarts.

    Parameters
    ----------
    host, port:
        Where the daemon listens.
    timeout:
        Per-connection socket timeout in seconds.
    retries:
        Attempts per logical request (>= 1).
    backoff, max_backoff:
        Exponential-backoff base and cap in seconds (attempt ``n`` waits
        ``min(max_backoff, backoff * 2**n)``, jittered to 50-100%).
    deadline:
        Total seconds a logical request may spend including retries.
    rng, sleep:
        Injectable randomness and sleep for deterministic tests.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8734, *,
                 timeout: float = 30.0, retries: int = 8,
                 backoff: float = 0.1, max_backoff: float = 5.0,
                 deadline: float = 120.0, rng=None, sleep=time.sleep):
        if retries < 1:
            raise ValueError("retries must be >= 1")
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.deadline = deadline
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        #: Lifetime counters, handy in drills and tests.
        self.attempts = 0
        self.retried = 0

    # -- one raw attempt ---------------------------------------------------------

    def request_once(self, method: str, path: str, body: dict | None = None):
        """One HTTP exchange; returns ``(status, headers, payload)``.

        Raises ``OSError`` on connection failures; never retries.
        """
        self.attempts += 1
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        try:
            data = (json.dumps(body).encode("utf-8")
                    if body is not None else None)
            headers = {"Content-Type": "application/json"} if data else {}
            connection.request(method, path, body=data, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                payload = {"error": "BadResponse",
                           "message": raw.decode("utf-8", "replace")}
            return response.status, dict(response.getheaders()), payload
        finally:
            connection.close()

    # -- the retrying call -------------------------------------------------------

    def call(self, method: str, path: str, body: dict | None = None) -> dict:
        """A logical request: retried through overload, raised on failure."""
        started = time.monotonic()
        last_error: Exception | None = None
        for attempt in range(self.retries):
            try:
                status, headers, payload = self.request_once(
                    method, path, body)
            except (OSError, http.client.HTTPException) as exc:
                last_error = ServiceUnavailable(
                    f"cannot reach daemon at {self.host}:{self.port}: "
                    f"{type(exc).__name__}: {exc}")
                retry_after = None
            else:
                if status < 400:
                    return payload
                error = self._as_error(status, headers, payload)
                if status not in (429, 503):
                    raise error
                last_error = error
                # Only an explicit server hint overrides the jittered
                # backoff; the error object's retry_after defaults to 1.
                retry_after = _header_retry_after(headers)
            if attempt + 1 >= self.retries:
                break
            wait = self._wait_before(attempt, retry_after)
            if (self.deadline is not None
                    and time.monotonic() - started + wait > self.deadline):
                break
            self.retried += 1
            self._sleep(wait)
        raise last_error if last_error is not None else ServiceError(
            f"request {method} {path} failed")

    def _wait_before(self, attempt: int, retry_after) -> float:
        """Server hint if present, else capped exponential full jitter."""
        if retry_after is not None:
            return float(retry_after)
        base = min(self.max_backoff, self.backoff * (2 ** attempt))
        return base * (0.5 + self._rng.random() / 2.0)

    def _as_error(self, status: int, headers: dict, payload: dict):
        message = payload.get("message", f"HTTP {status}")
        retry_after = _header_retry_after(headers)
        if status == 429:
            return ServiceOverloaded(message,
                                     retry_after=int(retry_after or 1))
        if status == 503:
            return ServiceUnavailable(message,
                                      retry_after=int(retry_after or 1))
        if status == 404:
            return NotFoundError(message)
        if status == 400:
            return InputError(message)
        return ServiceError(f"HTTP {status}: {message}", status=status)

    # -- convenience wrappers ----------------------------------------------------

    def health(self) -> dict:
        return self.call("GET", "/healthz")

    def wait_ready(self, timeout: float = 30.0,
                   poll_every: float = 0.1) -> bool:
        """Poll ``/readyz`` until the daemon is ready (or timeout)."""
        stop_at = time.monotonic() + timeout
        while time.monotonic() < stop_at:
            try:
                status, _, _ = self.request_once("GET", "/readyz")
            except (OSError, http.client.HTTPException):
                status = None
            if status == 200:
                return True
            self._sleep(poll_every)
        return False

    def stats(self) -> dict:
        return self.call("GET", "/stats")

    def create_relation(self, rid: str, attributes) -> dict:
        return self.call("POST", f"/relations/{rid}",
                         {"attributes": list(attributes)})

    def append_rows(self, rid: str, rows, seq: int | None = None) -> dict:
        body = {"rows": [list(row) for row in rows]}
        if seq is not None:
            body["seq"] = seq
        return self.call("POST", f"/relations/{rid}/rows", body)

    def status(self, rid: str) -> dict:
        return self.call("GET", f"/relations/{rid}")

    def build_model(self, rid: str, top: int = 5) -> dict:
        return self.call("POST", f"/relations/{rid}/model?top={top}")

    def top_fds(self, rid: str, k: int = 5) -> dict:
        return self.call("GET", f"/relations/{rid}/fds?k={k}")

    def assign(self, rid: str, row) -> dict:
        return self.call("POST", f"/relations/{rid}/assign",
                         {"row": list(row)})
