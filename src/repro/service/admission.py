"""Admission control for the resident daemon: bounded queueing, load shedding.

The controller guards the daemon's worker capacity with two numbers:

* ``max_inflight`` -- how many requests may execute concurrently (each one
  occupies a worker thread running CPU-bound discovery code, so this is
  effectively the daemon's parallelism);
* ``queue_depth``  -- how many more may *wait* for a slot.

A request that arrives when the queue is full is **shed immediately** with
:class:`repro.errors.ServiceOverloaded` (the HTTP layer turns that into a
429 with a ``Retry-After`` header) instead of being buffered without bound:
unbounded buffering converts overload into latency and memory growth and
sheds nothing until the process dies.  The retry hint is computed from the
live queue occupancy and an exponential moving average of observed service
times -- "how long until the backlog ahead of a retry has drained" -- so
clients back off roughly as long as the overload actually lasts.

The controller is also the drain point for graceful shutdown: after
:meth:`AdmissionController.start_drain` every new request is refused with
:class:`repro.errors.ServiceUnavailable` (HTTP 503) while requests already
admitted run to completion; :meth:`AdmissionController.wait_idle` lets the
server bound how long it waits for them.

All state is mutated from the event-loop thread only (the heavy work runs
in worker threads, but slot acquisition and release happen in coroutines),
so no locks are needed beyond the semaphore itself.
"""

from __future__ import annotations

import asyncio
import math
import time
from contextlib import asynccontextmanager

from repro.errors import ServiceOverloaded, ServiceUnavailable

#: Optimistic prior for the service-time EMA before any request completes.
_INITIAL_SERVICE_TIME = 0.5

#: Floor for the EMA so a burst of sub-millisecond health-style requests
#: cannot drive the retry hint to zero.
_MIN_SERVICE_TIME = 0.05


class AdmissionController:
    """Bounded admission with load shedding and drain support.

    Parameters
    ----------
    max_inflight:
        Concurrent requests allowed to execute (>= 1).
    queue_depth:
        Requests allowed to wait for a slot beyond the in-flight set
        (>= 0; 0 sheds the instant all slots are busy).
    ema_alpha:
        Smoothing factor of the service-time EMA in (0, 1].
    clock:
        Injectable monotonic-seconds source for deterministic tests.
    """

    def __init__(self, max_inflight: int = 4, queue_depth: int = 16,
                 ema_alpha: float = 0.2, clock=time.monotonic):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        self.max_inflight = int(max_inflight)
        self.queue_depth = int(queue_depth)
        self._alpha = float(ema_alpha)
        self._clock = clock
        self._semaphore = asyncio.Semaphore(self.max_inflight)
        self._idle = asyncio.Event()
        self._idle.set()
        self.inflight = 0
        self.waiting = 0
        self.draining = False
        #: Lifetime counters for ``/stats`` and tests.
        self.admitted = 0
        self.shed = 0
        self.refused_draining = 0
        self.service_time_ema = _INITIAL_SERVICE_TIME

    # -- the slot ----------------------------------------------------------------

    @asynccontextmanager
    async def slot(self):
        """Hold one execution slot for the duration of a request.

        Raises :class:`ServiceUnavailable` while draining and
        :class:`ServiceOverloaded` when both the in-flight set and the wait
        queue are full; otherwise waits (bounded by ``queue_depth`` peers)
        for a slot and yields.
        """
        if self.draining:
            self.refused_draining += 1
            raise ServiceUnavailable(
                "daemon is draining; no new requests are admitted",
                retry_after=self.retry_after(),
            )
        if (self.inflight >= self.max_inflight
                and self.waiting >= self.queue_depth):
            self.shed += 1
            raise ServiceOverloaded(
                f"admission queue full ({self.inflight} in flight, "
                f"{self.waiting} waiting); request shed",
                retry_after=self.retry_after(),
                inflight=self.inflight, waiting=self.waiting,
            )
        self.waiting += 1
        try:
            await self._semaphore.acquire()
        finally:
            self.waiting -= 1
        if self.draining:
            # Drain began while this request queued: refuse it rather than
            # start new work behind the server's back.
            self._semaphore.release()
            self.refused_draining += 1
            raise ServiceUnavailable(
                "daemon is draining; no new requests are admitted",
                retry_after=self.retry_after(),
            )
        self.inflight += 1
        self.admitted += 1
        self._idle.clear()
        started = self._clock()
        try:
            yield self
        finally:
            self.observe(self._clock() - started)
            self.inflight -= 1
            self._semaphore.release()
            if self.inflight == 0:
                self._idle.set()

    def observe(self, seconds: float) -> None:
        """Fold one observed service time into the EMA."""
        seconds = max(float(seconds), _MIN_SERVICE_TIME)
        self.service_time_ema += self._alpha * (seconds
                                                - self.service_time_ema)

    def retry_after(self) -> int:
        """Whole seconds until a retry plausibly finds a queue slot.

        The backlog a retry must outlive is everything currently in the
        system beyond the slots that can serve it immediately; the daemon
        drains ``max_inflight`` requests per EMA service time.  Always at
        least 1 (HTTP ``Retry-After`` is integral, and "retry now" on an
        overloaded daemon just re-sheds).
        """
        backlog = max(1, self.waiting + self.inflight + 1 - self.max_inflight)
        estimate = (backlog * max(self.service_time_ema, _MIN_SERVICE_TIME)
                    / self.max_inflight)
        return max(1, math.ceil(estimate))

    # -- drain -------------------------------------------------------------------

    def start_drain(self) -> int:
        """Stop admitting; returns how many requests are still in flight."""
        self.draining = True
        return self.inflight

    async def wait_idle(self, grace: float | None = None) -> bool:
        """Wait until every admitted request finished; ``False`` on timeout."""
        try:
            await asyncio.wait_for(self._idle.wait(), grace)
        except asyncio.TimeoutError:
            return False
        return True

    # -- reporting ---------------------------------------------------------------

    def stats(self) -> dict:
        """Counters for the ``/stats`` endpoint."""
        return {
            "max_inflight": self.max_inflight,
            "queue_depth": self.queue_depth,
            "inflight": self.inflight,
            "waiting": self.waiting,
            "admitted": self.admitted,
            "shed": self.shed,
            "refused_draining": self.refused_draining,
            "draining": self.draining,
            "service_time_ema": self.service_time_ema,
        }
