"""Cooperative resource budgets: deadlines, work-unit caps, and memory.

A :class:`Budget` is created once per run and threaded through the expensive
loops (FDEP pair scans, TANE lattice levels, LIMBO inserts/assignments).
Those loops call :meth:`Budget.checkpoint` every few hundred iterations; the
first checkpoint past the deadline or the unit cap raises
:class:`repro.errors.ResourceLimitExceeded` instead of letting the miner run
unbounded.  Checkpoints are cheap (one ``time.monotonic`` call), so the
granularity is set by the caller's batching, not by the budget itself.

The third dimension is memory.  ``Budget(max_memory_bytes=...)`` attaches a
:class:`MemoryGovernor` (exposed as ``budget.memory``) that combines two
signals:

* **cooperative accounting** -- allocation sites (DCF-tree entry mass,
  dense-kernel matrices, TANE partition levels, ingestion chunks) call
  :meth:`MemoryGovernor.reserve`/:meth:`MemoryGovernor.release` with byte
  estimates, and a reservation that would cross the cap raises
  :class:`repro.errors.MemoryLimitExceeded` *before* the allocation happens;
* **process-level sampling** -- every ``sample_every`` checkpoint ticks the
  governor reads the resident-set size (``/proc/self/statm``, falling back
  to :mod:`tracemalloc` where procfs is unavailable) and raises the same
  error when the process as a whole is over the cap.

Both signals fire only at cooperative call sites -- a reservation or a
budget checkpoint -- never asynchronously, so where a memory error can
surface is deterministic even though the sampled RSS itself is not.
:meth:`MemoryGovernor.set_best_effort` turns the governor into a pure
observer (accounting continues, nothing raises); the discovery ladder flips
it after the last degradation rung so a capped run always completes.

Deadlines are **absolute**: the budget captures ``deadline_at = now +
deadline`` once at construction and every check compares the clock against
that fixed instant.  This is what makes budgets meaningful under sharded
parallel execution (:mod:`repro.parallel`): a budget pickled into a worker
process re-anchors the *remaining* wall-clock allowance (via ``time.time``,
which is comparable across processes, unlike per-process monotonic epochs)
and the *remaining* unit allowance, so no worker can restart the clock or
the counter from zero.

Work units compose shard-local-then-summed: each shard accounts for its own
iterations and the coordinating process folds them back in with
:meth:`Budget.charge` as shard results arrive.  The first charge that
crosses the cap raises, so a parallel run can overshoot by at most one
shard's units -- not by ``workers x checkpoint-cadence`` as naive
per-process counters would allow.

The clock is injectable for deterministic tests: pass any zero-argument
callable returning seconds.
"""

from __future__ import annotations

import os
import time

from repro.errors import MemoryLimitExceeded, ResourceLimitExceeded
from repro.testing.faults import fault_point

#: Default number of checkpoint ticks between process-level RSS samples.
SAMPLE_EVERY = 32

#: How many pressure incidents a governor keeps for the report's health
#: section; older incidents are summarized by the counters, not stored.
_MAX_EVENTS = 64

_SIZE_SUFFIXES = {"": 1, "b": 1, "k": 1024, "m": 1024 ** 2, "g": 1024 ** 3,
                  "t": 1024 ** 4}


def parse_memory_size(text: str) -> int:
    """Parse a human memory size (``"64M"``, ``"512k"``, ``"1GiB"``, bytes).

    Binary units (1K = 1024).  Raises ``ValueError`` on anything that does
    not describe a positive whole number of bytes.
    """
    raw = str(text).strip().lower()
    unit = raw.lstrip("0123456789.")
    number = raw[: len(raw) - len(unit)]
    unit = unit.strip()
    if unit.endswith("ib"):
        unit = unit[:-2]
    elif unit.endswith("b") and unit != "b":
        unit = unit[:-1]
    if not number or unit not in _SIZE_SUFFIXES:
        raise ValueError(f"unrecognized memory size {text!r} "
                         "(expected e.g. 67108864, 64M, 512k, 1G)")
    try:
        n_bytes = int(float(number) * _SIZE_SUFFIXES[unit])
    except ValueError:
        raise ValueError(f"unrecognized memory size {text!r}") from None
    if n_bytes <= 0:
        raise ValueError(f"memory size must be positive: {text!r}")
    return n_bytes


def format_bytes(n_bytes: int | None) -> str:
    """``16777216 -> '16.0M'`` -- compact human rendering for reports."""
    if n_bytes is None:
        return "unlimited"
    value = float(n_bytes)
    for unit in ("B", "K", "M", "G", "T"):
        if value < 1024.0 or unit == "T":
            if unit == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}T"  # pragma: no cover -- loop always returns


_page_size_cache: int | None = None


def _page_size() -> int:
    global _page_size_cache
    if _page_size_cache is None:
        try:
            _page_size_cache = os.sysconf("SC_PAGE_SIZE")
        except (AttributeError, OSError, ValueError):
            _page_size_cache = 4096
    return _page_size_cache


def read_rss() -> int:
    """Resident-set size of this process in bytes.

    Prefers ``/proc/self/statm`` (one read, no allocation); where procfs is
    unavailable (macOS, sandboxes) falls back to :mod:`tracemalloc`, which
    under-counts (Python-allocated memory only) but preserves the contract
    that a byte number comes back.
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _page_size()
    except (OSError, IndexError, ValueError):
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
        current, _peak = tracemalloc.get_traced_memory()
        return current


def peak_rss() -> int | None:
    """High-water-mark RSS in bytes (``ru_maxrss``), for benchmarks.

    ``None`` where the platform offers no peak counter.
    """
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports kilobytes; macOS reports bytes.  Treat plausibly
        # byte-sized values (> 1 GiB as KiB would be > 1 TiB) as bytes.
        return peak * 1024 if peak < 1 << 32 else peak
    except (ImportError, OSError, ValueError):
        return None


class MemoryGovernor:
    """Byte-cap enforcement: cooperative reservations + periodic RSS samples.

    Parameters
    ----------
    max_bytes:
        The cap.  Reservations that would cross it, and RSS samples above
        it, raise :class:`repro.errors.MemoryLimitExceeded`.
    sample_every:
        Checkpoint ticks between RSS samples (count-based so the *sites*
        where a sample can fire are deterministic).
    rss_reader:
        Injectable RSS source for tests; defaults to :func:`read_rss`.
        The sampled value additionally flows through the
        ``memory.sample`` fault point, so tests can corrupt it without
        touching the reader.
    """

    def __init__(self, max_bytes: int, sample_every: int = SAMPLE_EVERY,
                 rss_reader=None):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if sample_every < 1:
            raise ValueError("sample_every must be at least 1")
        self.max_bytes = int(max_bytes)
        self.sample_every = int(sample_every)
        self._rss_reader = rss_reader or read_rss
        self.reserved = 0
        self.peak_reserved = 0
        self.samples = 0
        self.last_rss: int | None = None
        self.peak_sampled_rss = 0
        self.best_effort = False
        self.pressure_events: list[dict] = []
        self._ticks = 0

    # -- cooperative accounting ---------------------------------------------------

    def reserve(self, n_bytes: int, where: str = "") -> None:
        """Account ``n_bytes`` about to be allocated; raise if over the cap.

        A raising reserve does **not** book the bytes -- the caller is
        expected to not allocate (fall back, degrade, or propagate).
        """
        n_bytes = int(n_bytes)
        if n_bytes < 0:
            raise ValueError("cannot reserve a negative byte count")
        if not self.best_effort and self.reserved + n_bytes > self.max_bytes:
            self._note("reserve", where=where, needed=n_bytes)
            raise MemoryLimitExceeded(
                f"memory cap exceeded at {where or 'reserve'}: "
                f"{format_bytes(self.reserved)} reserved + "
                f"{format_bytes(n_bytes)} needed > "
                f"{format_bytes(self.max_bytes)} cap",
                where=where, needed=n_bytes, reserved=self.reserved,
                max_memory_bytes=self.max_bytes,
            )
        self.reserved += n_bytes
        if self.reserved > self.peak_reserved:
            self.peak_reserved = self.reserved

    def release(self, n_bytes: int) -> None:
        """Return previously reserved bytes (clamped at zero)."""
        self.reserved = max(0, self.reserved - int(n_bytes))

    def would_exceed(self, n_bytes: int = 0) -> bool:
        """Non-raising query: would reserving ``n_bytes`` cross the cap?

        Used by the dense kernels to *prefer* the sparse backend instead of
        raising -- a refusal that needs no recovery path.
        """
        if self.best_effort:
            return False
        return self.reserved + int(n_bytes) > self.max_bytes

    # -- process-level sampling ---------------------------------------------------

    def tick(self, where: str = "") -> None:
        """One budget-checkpoint tick; samples RSS every ``sample_every``."""
        self._ticks += 1
        if self._ticks % self.sample_every == 0:
            self.check(where)

    def check(self, where: str = "") -> None:
        """Sample RSS now and raise if the process is over the cap."""
        rss = int(fault_point("memory.sample", self._rss_reader()))
        self.samples += 1
        self.last_rss = rss
        if rss > self.peak_sampled_rss:
            self.peak_sampled_rss = rss
        if not self.best_effort and rss > self.max_bytes:
            self._note("rss", where=where, rss=rss)
            raise MemoryLimitExceeded(
                f"memory cap exceeded at {where or 'memory.check'}: "
                f"RSS {format_bytes(rss)} > {format_bytes(self.max_bytes)} cap",
                where=where, rss=rss, reserved=self.reserved,
                max_memory_bytes=self.max_bytes,
            )

    # -- modes and reporting ------------------------------------------------------

    def set_best_effort(self, on: bool = True) -> None:
        """Observer mode: keep accounting and sampling, stop raising.

        The discovery degradation ladder flips this after its last rung so
        a capped run finishes (with degraded fidelity) instead of dying.
        """
        self.best_effort = bool(on)

    def _note(self, kind: str, **details) -> None:
        if len(self.pressure_events) < _MAX_EVENTS:
            self.pressure_events.append(
                {"kind": kind, **{k: v for k, v in details.items() if v}})

    @property
    def pressured(self) -> bool:
        """Whether any limit was ever hit (even in best-effort mode)."""
        return bool(self.pressure_events)

    def stats(self) -> dict:
        """Counters for the report's ``memory`` health entry."""
        return {
            "max_bytes": self.max_bytes,
            "peak_reserved": self.peak_reserved,
            "samples": self.samples,
            "pressure_events": len(self.pressure_events),
            "best_effort": self.best_effort,
        }

    def describe(self) -> str:
        state = f"cap {format_bytes(self.max_bytes)}"
        state += f", peak reserved {format_bytes(self.peak_reserved)}"
        if self.pressure_events:
            state += f", {len(self.pressure_events)} pressure event(s)"
        if self.best_effort:
            state += ", best-effort"
        return state

    def __repr__(self) -> str:
        return f"MemoryGovernor({self.describe()})"


class Budget:
    """A wall-clock deadline and/or a cap on cooperative work units.

    Parameters
    ----------
    deadline:
        Seconds from construction after which checkpoints raise; ``None``
        means no time limit.
    max_units:
        Total work units (loop iterations, tuple pairs, lattice nodes --
        whatever the instrumented code counts) after which checkpoints
        raise; ``None`` means no unit cap.
    max_memory_bytes:
        Byte cap enforced by an attached :class:`MemoryGovernor`
        (``budget.memory``); ``None`` means no memory governance at all --
        zero overhead, and no ``memory`` entry in any report.
    clock:
        Monotonic-seconds source (injectable for tests).
    """

    __slots__ = ("deadline", "max_units", "max_memory_bytes", "memory",
                 "_clock", "_start", "_deadline_at", "_units", "_listeners")

    def __init__(self, deadline: float | None = None,
                 max_units: int | None = None,
                 max_memory_bytes: int | None = None, clock=time.monotonic):
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if max_units is not None and max_units <= 0:
            raise ValueError("max_units must be positive (or None)")
        if max_memory_bytes is not None and max_memory_bytes <= 0:
            raise ValueError("max_memory_bytes must be positive (or None)")
        self.deadline = deadline
        self.max_units = max_units
        self.max_memory_bytes = max_memory_bytes
        self.memory = (None if max_memory_bytes is None
                       else MemoryGovernor(max_memory_bytes))
        self._clock = clock
        self._start = clock()
        self._deadline_at = None if deadline is None else self._start + deadline
        self._units = 0
        self._listeners: list = []

    # -- accounting --------------------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return self._clock() - self._start

    @property
    def units_used(self) -> int:
        """Work units consumed so far."""
        return self._units

    def remaining_seconds(self) -> float | None:
        """Seconds left before the deadline (``None`` = unlimited).

        Clamped at 0.0 past the deadline, matching
        :meth:`remaining_units` -- "no allowance left" never reads as a
        negative quantity.
        """
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - self._clock())

    def remaining_units(self) -> int | None:
        """Work units left under the cap (``None`` = unlimited)."""
        if self.max_units is None:
            return None
        return max(0, self.max_units - self._units)

    def exhausted(self) -> bool:
        """Whether either limit has already been crossed (non-raising)."""
        if self._deadline_at is not None and self._clock() > self._deadline_at:
            return True
        if self.max_units is not None and self._units > self.max_units:
            return True
        return False

    # -- the cooperative checkpoint ----------------------------------------------

    def on_checkpoint(self, listener) -> None:
        """Register ``listener(units_used, where)``, called on every
        :meth:`checkpoint` / :meth:`charge`.

        This is the hook the durable-checkpoint layer
        (:class:`repro.checkpoint.CheckpointStore`) uses for its intra-stage
        cadence: the budget already sits inside every expensive loop, so its
        tick stream is exactly "the run is making progress".  Listeners run
        in the coordinating process only -- they are process-local state and
        are dropped when a budget is pickled into a worker.  Listeners fire
        *before* the limit checks, so the final tick that crosses a limit is
        still observed.
        """
        self._listeners.append(listener)

    def checkpoint(self, units: int = 1, where: str = "") -> None:
        """Consume ``units`` and raise if a limit is crossed.

        ``where`` names the call site; it ends up in the error context so
        reports can say *which* loop ran out of budget.
        """
        self._units += units
        for listener in self._listeners:
            listener(self._units, where)
        if self.memory is not None:
            self.memory.tick(where)
        if self.max_units is not None and self._units > self.max_units:
            raise ResourceLimitExceeded(
                f"work-unit cap exceeded at {where or 'checkpoint'} "
                f"({self._units} > {self.max_units} units)",
                where=where, units=self._units, max_units=self.max_units,
            )
        if self._deadline_at is not None and self._clock() > self._deadline_at:
            elapsed = self.elapsed
            raise ResourceLimitExceeded(
                f"deadline exceeded at {where or 'checkpoint'} "
                f"({elapsed:.3f}s > {self.deadline:.3f}s)",
                where=where, elapsed=elapsed, deadline=self.deadline,
            )

    def charge(self, units: int, where: str = "") -> None:
        """Fold a shard's locally-counted units back into this budget.

        Semantically identical to :meth:`checkpoint`; the separate name
        marks the shard-local-then-summed accounting sites in
        :mod:`repro.parallel`, where ``units`` is a whole shard's count
        rather than one cadence step.
        """
        self.checkpoint(units=units, where=where)

    # -- derived budgets ---------------------------------------------------------

    def derive(self, deadline: float | None = None,
               max_units: int | None = None) -> "Budget":
        """A child budget for one unit of work inside this budget's scope.

        The child's deadline is clamped to whatever allowance this budget
        has left, so no derived task can outlive its parent; its memory
        governance *shares* the parent's :class:`MemoryGovernor` object
        (same cap, same accounting), because the bytes a child reserves are
        bytes the whole process has spent.  The resident service daemon
        uses this to mint one budget per HTTP request off its process-wide
        budget: ``request_budget = daemon_budget.derive(deadline=30.0)``.

        Unit caps do not inherit -- the parent keeps counting its own units
        via :meth:`charge` if the caller folds child work back in.
        """
        remaining = self.remaining_seconds()
        if deadline is None:
            child_deadline = remaining
        elif remaining is None:
            child_deadline = deadline
        else:
            child_deadline = min(deadline, remaining)
        if child_deadline is not None:
            # A parent already past its deadline leaves epsilon allowance:
            # the child raises at its first checkpoint instead of at
            # construction, matching every other budget-exhaustion site.
            child_deadline = max(child_deadline, 1e-6)
        child = Budget(deadline=child_deadline, max_units=max_units,
                       clock=self._clock)
        child.max_memory_bytes = self.max_memory_bytes
        child.memory = self.memory
        return child

    # -- process portability -----------------------------------------------------

    def __getstate__(self):
        """Serialize the *remaining* allowance, wall-clock anchored.

        Monotonic epochs are per-process state; a pickled budget instead
        carries its remaining deadline plus a ``time.time`` stamp so the
        receiving process (a :mod:`repro.parallel` worker, possibly under
        the ``spawn`` start method) resumes with whatever allowance is
        genuinely left -- including queue time spent in transit.
        """
        return {
            "deadline": self.deadline,
            "max_units": self.max_units,
            "max_memory_bytes": self.max_memory_bytes,
            "remaining_seconds": self.remaining_seconds(),
            "remaining_units": self.remaining_units(),
            "wall_at": time.time(),
        }

    def __setstate__(self, state) -> None:
        self.deadline = state["deadline"]
        self.max_units = state["max_units"]
        self.max_memory_bytes = state.get("max_memory_bytes")
        # Reservations and sampled RSS are process-local observations; the
        # receiving worker starts a fresh governor under the same cap.
        self.memory = (None if self.max_memory_bytes is None
                       else MemoryGovernor(self.max_memory_bytes))
        self._clock = time.monotonic
        self._listeners = []  # listeners are process-local, never shipped
        self._start = self._clock()
        remaining = state["remaining_seconds"]
        if remaining is None:
            self._deadline_at = None
        else:
            in_transit = max(0.0, time.time() - state["wall_at"])
            self._deadline_at = self._start + remaining - in_transit
        if state["remaining_units"] is None:
            self._units = 0
        else:
            # Re-anchor the counter so the cap reflects what is left.
            self._units = (self.max_units or 0) - state["remaining_units"]

    def describe(self) -> str:
        """One human line per governed dimension, with current usage."""
        lines = []
        if self.deadline is not None:
            lines.append(f"deadline: {self.deadline:g}s "
                         f"({self.remaining_seconds():.3f}s left)")
        if self.max_units is not None:
            lines.append(f"units: {self._units}/{self.max_units}")
        if self.memory is not None:
            lines.append(f"memory: {self.memory.describe()}")
        return "; ".join(lines) or "unlimited"

    def __repr__(self) -> str:
        limits = []
        if self.deadline is not None:
            limits.append(f"deadline={self.deadline}s")
        if self.max_units is not None:
            limits.append(f"max_units={self.max_units}")
        if self.max_memory_bytes is not None:
            limits.append(f"max_memory_bytes={self.max_memory_bytes}")
        return f"Budget({', '.join(limits) or 'unlimited'})"


def checkpoint(budget: Budget | None, units: int = 1, where: str = "") -> None:
    """``budget.checkpoint`` that tolerates ``budget=None`` (the common case)."""
    if budget is not None:
        budget.checkpoint(units=units, where=where)


def charge(budget: Budget | None, units: int, where: str = "") -> None:
    """``budget.charge`` that tolerates ``budget=None`` (the common case)."""
    if budget is not None:
        budget.charge(units=units, where=where)


def governor_of(budget: Budget | None) -> MemoryGovernor | None:
    """The attached governor, tolerating ``budget=None`` / no memory cap."""
    return getattr(budget, "memory", None)


def reserve(budget: Budget | None, n_bytes: int, where: str = "") -> None:
    """``budget.memory.reserve`` that tolerates an ungoverned budget."""
    if budget is not None and budget.memory is not None:
        budget.memory.reserve(n_bytes, where=where)


def release(budget: Budget | None, n_bytes: int) -> None:
    """``budget.memory.release`` that tolerates an ungoverned budget."""
    if budget is not None and budget.memory is not None:
        budget.memory.release(n_bytes)
