"""Cooperative resource budgets: wall-clock deadlines and work-unit caps.

A :class:`Budget` is created once per run and threaded through the expensive
loops (FDEP pair scans, TANE lattice levels, LIMBO inserts/assignments).
Those loops call :meth:`Budget.checkpoint` every few hundred iterations; the
first checkpoint past the deadline or the unit cap raises
:class:`repro.errors.ResourceLimitExceeded` instead of letting the miner run
unbounded.  Checkpoints are cheap (one ``time.monotonic`` call), so the
granularity is set by the caller's batching, not by the budget itself.

Deadlines are **absolute**: the budget captures ``deadline_at = now +
deadline`` once at construction and every check compares the clock against
that fixed instant.  This is what makes budgets meaningful under sharded
parallel execution (:mod:`repro.parallel`): a budget pickled into a worker
process re-anchors the *remaining* wall-clock allowance (via ``time.time``,
which is comparable across processes, unlike per-process monotonic epochs)
and the *remaining* unit allowance, so no worker can restart the clock or
the counter from zero.

Work units compose shard-local-then-summed: each shard accounts for its own
iterations and the coordinating process folds them back in with
:meth:`Budget.charge` as shard results arrive.  The first charge that
crosses the cap raises, so a parallel run can overshoot by at most one
shard's units -- not by ``workers x checkpoint-cadence`` as naive
per-process counters would allow.

The clock is injectable for deterministic tests: pass any zero-argument
callable returning seconds.
"""

from __future__ import annotations

import time

from repro.errors import ResourceLimitExceeded


class Budget:
    """A wall-clock deadline and/or a cap on cooperative work units.

    Parameters
    ----------
    deadline:
        Seconds from construction after which checkpoints raise; ``None``
        means no time limit.
    max_units:
        Total work units (loop iterations, tuple pairs, lattice nodes --
        whatever the instrumented code counts) after which checkpoints
        raise; ``None`` means no unit cap.
    clock:
        Monotonic-seconds source (injectable for tests).
    """

    __slots__ = ("deadline", "max_units", "_clock", "_start", "_deadline_at",
                 "_units", "_listeners")

    def __init__(self, deadline: float | None = None,
                 max_units: int | None = None, clock=time.monotonic):
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if max_units is not None and max_units <= 0:
            raise ValueError("max_units must be positive (or None)")
        self.deadline = deadline
        self.max_units = max_units
        self._clock = clock
        self._start = clock()
        self._deadline_at = None if deadline is None else self._start + deadline
        self._units = 0
        self._listeners: list = []

    # -- accounting --------------------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return self._clock() - self._start

    @property
    def units_used(self) -> int:
        """Work units consumed so far."""
        return self._units

    def remaining_seconds(self) -> float | None:
        """Seconds left before the deadline (``None`` = unlimited).

        Clamped at 0.0 past the deadline, matching
        :meth:`remaining_units` -- "no allowance left" never reads as a
        negative quantity.
        """
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - self._clock())

    def remaining_units(self) -> int | None:
        """Work units left under the cap (``None`` = unlimited)."""
        if self.max_units is None:
            return None
        return max(0, self.max_units - self._units)

    def exhausted(self) -> bool:
        """Whether either limit has already been crossed (non-raising)."""
        if self._deadline_at is not None and self._clock() > self._deadline_at:
            return True
        if self.max_units is not None and self._units > self.max_units:
            return True
        return False

    # -- the cooperative checkpoint ----------------------------------------------

    def on_checkpoint(self, listener) -> None:
        """Register ``listener(units_used, where)``, called on every
        :meth:`checkpoint` / :meth:`charge`.

        This is the hook the durable-checkpoint layer
        (:class:`repro.checkpoint.CheckpointStore`) uses for its intra-stage
        cadence: the budget already sits inside every expensive loop, so its
        tick stream is exactly "the run is making progress".  Listeners run
        in the coordinating process only -- they are process-local state and
        are dropped when a budget is pickled into a worker.  Listeners fire
        *before* the limit checks, so the final tick that crosses a limit is
        still observed.
        """
        self._listeners.append(listener)

    def checkpoint(self, units: int = 1, where: str = "") -> None:
        """Consume ``units`` and raise if a limit is crossed.

        ``where`` names the call site; it ends up in the error context so
        reports can say *which* loop ran out of budget.
        """
        self._units += units
        for listener in self._listeners:
            listener(self._units, where)
        if self.max_units is not None and self._units > self.max_units:
            raise ResourceLimitExceeded(
                f"work-unit cap exceeded at {where or 'checkpoint'} "
                f"({self._units} > {self.max_units} units)",
                where=where, units=self._units, max_units=self.max_units,
            )
        if self._deadline_at is not None and self._clock() > self._deadline_at:
            elapsed = self.elapsed
            raise ResourceLimitExceeded(
                f"deadline exceeded at {where or 'checkpoint'} "
                f"({elapsed:.3f}s > {self.deadline:.3f}s)",
                where=where, elapsed=elapsed, deadline=self.deadline,
            )

    def charge(self, units: int, where: str = "") -> None:
        """Fold a shard's locally-counted units back into this budget.

        Semantically identical to :meth:`checkpoint`; the separate name
        marks the shard-local-then-summed accounting sites in
        :mod:`repro.parallel`, where ``units`` is a whole shard's count
        rather than one cadence step.
        """
        self.checkpoint(units=units, where=where)

    # -- process portability -----------------------------------------------------

    def __getstate__(self):
        """Serialize the *remaining* allowance, wall-clock anchored.

        Monotonic epochs are per-process state; a pickled budget instead
        carries its remaining deadline plus a ``time.time`` stamp so the
        receiving process (a :mod:`repro.parallel` worker, possibly under
        the ``spawn`` start method) resumes with whatever allowance is
        genuinely left -- including queue time spent in transit.
        """
        return {
            "deadline": self.deadline,
            "max_units": self.max_units,
            "remaining_seconds": self.remaining_seconds(),
            "remaining_units": self.remaining_units(),
            "wall_at": time.time(),
        }

    def __setstate__(self, state) -> None:
        self.deadline = state["deadline"]
        self.max_units = state["max_units"]
        self._clock = time.monotonic
        self._listeners = []  # listeners are process-local, never shipped
        self._start = self._clock()
        remaining = state["remaining_seconds"]
        if remaining is None:
            self._deadline_at = None
        else:
            in_transit = max(0.0, time.time() - state["wall_at"])
            self._deadline_at = self._start + remaining - in_transit
        if state["remaining_units"] is None:
            self._units = 0
        else:
            # Re-anchor the counter so the cap reflects what is left.
            self._units = (self.max_units or 0) - state["remaining_units"]

    def __repr__(self) -> str:
        limits = []
        if self.deadline is not None:
            limits.append(f"deadline={self.deadline}s")
        if self.max_units is not None:
            limits.append(f"max_units={self.max_units}")
        return f"Budget({', '.join(limits) or 'unlimited'})"


def checkpoint(budget: Budget | None, units: int = 1, where: str = "") -> None:
    """``budget.checkpoint`` that tolerates ``budget=None`` (the common case)."""
    if budget is not None:
        budget.checkpoint(units=units, where=where)


def charge(budget: Budget | None, units: int, where: str = "") -> None:
    """``budget.charge`` that tolerates ``budget=None`` (the common case)."""
    if budget is not None:
        budget.charge(units=units, where=where)
