"""Cooperative resource budgets: wall-clock deadlines and work-unit caps.

A :class:`Budget` is created once per run and threaded through the expensive
loops (FDEP pair scans, TANE lattice levels, LIMBO inserts/assignments).
Those loops call :meth:`Budget.checkpoint` every few hundred iterations; the
first checkpoint past the deadline or the unit cap raises
:class:`repro.errors.ResourceLimitExceeded` instead of letting the miner run
unbounded.  Checkpoints are cheap (one ``time.monotonic`` call), so the
granularity is set by the caller's batching, not by the budget itself.

The clock is injectable for deterministic tests: pass any zero-argument
callable returning seconds.
"""

from __future__ import annotations

import time

from repro.errors import ResourceLimitExceeded


class Budget:
    """A wall-clock deadline and/or a cap on cooperative work units.

    Parameters
    ----------
    deadline:
        Seconds from construction after which checkpoints raise; ``None``
        means no time limit.
    max_units:
        Total work units (loop iterations, tuple pairs, lattice nodes --
        whatever the instrumented code counts) after which checkpoints
        raise; ``None`` means no unit cap.
    clock:
        Monotonic-seconds source (injectable for tests).
    """

    __slots__ = ("deadline", "max_units", "_clock", "_start", "_units")

    def __init__(self, deadline: float | None = None,
                 max_units: int | None = None, clock=time.monotonic):
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if max_units is not None and max_units <= 0:
            raise ValueError("max_units must be positive (or None)")
        self.deadline = deadline
        self.max_units = max_units
        self._clock = clock
        self._start = clock()
        self._units = 0

    # -- accounting --------------------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return self._clock() - self._start

    @property
    def units_used(self) -> int:
        """Work units consumed so far."""
        return self._units

    def remaining_seconds(self) -> float | None:
        """Seconds left before the deadline (``None`` = unlimited)."""
        if self.deadline is None:
            return None
        return self.deadline - self.elapsed

    def exhausted(self) -> bool:
        """Whether either limit has already been crossed (non-raising)."""
        if self.deadline is not None and self.elapsed > self.deadline:
            return True
        if self.max_units is not None and self._units > self.max_units:
            return True
        return False

    # -- the cooperative checkpoint ----------------------------------------------

    def checkpoint(self, units: int = 1, where: str = "") -> None:
        """Consume ``units`` and raise if a limit is crossed.

        ``where`` names the call site; it ends up in the error context so
        reports can say *which* loop ran out of budget.
        """
        self._units += units
        if self.max_units is not None and self._units > self.max_units:
            raise ResourceLimitExceeded(
                f"work-unit cap exceeded at {where or 'checkpoint'} "
                f"({self._units} > {self.max_units} units)",
                where=where, units=self._units, max_units=self.max_units,
            )
        if self.deadline is not None:
            elapsed = self.elapsed
            if elapsed > self.deadline:
                raise ResourceLimitExceeded(
                    f"deadline exceeded at {where or 'checkpoint'} "
                    f"({elapsed:.3f}s > {self.deadline:.3f}s)",
                    where=where, elapsed=elapsed, deadline=self.deadline,
                )

    def __repr__(self) -> str:
        limits = []
        if self.deadline is not None:
            limits.append(f"deadline={self.deadline}s")
        if self.max_units is not None:
            limits.append(f"max_units={self.max_units}")
        return f"Budget({', '.join(limits) or 'unlimited'})"


def checkpoint(budget: Budget | None, units: int = 1, where: str = "") -> None:
    """``budget.checkpoint`` that tolerates ``budget=None`` (the common case)."""
    if budget is not None:
        budget.checkpoint(units=units, where=where)
