"""Brute-force reference implementations used as parity oracles in tests.

The reliable FD miner (:mod:`repro.fd.reliable`) prunes a set-enumeration
lattice with an admissible upper bound; the oracles here do the one thing a
correctness test wants instead -- score **every** candidate with no pruning
at all -- so the miner's output can be checked candidate for candidate.

Two independence levels are provided on purpose:

* :func:`exhaustive_reliable_scores` / :func:`brute_force_topk` call the
  *same* public scoring entry point the miner uses
  (:func:`repro.fd.reliable.reliable_score`), so set-level parity tests
  compare selection logic only -- float ties resolve identically on both
  sides by construction.
* :func:`exact_reliable_score` recomputes the bias-corrected fraction of
  information from first principles -- pure-Python dict partitions,
  ``math.lgamma`` log-factorials, scalar loops, no shared code and no
  numpy -- so numeric agreement (within float tolerance) validates the
  vectorized implementation itself, not just its plumbing.

Both scale exponentially in arity; keep oracle relations at <= 8 attributes.
"""

from __future__ import annotations

import math
from itertools import combinations

from repro.fd.reliable import ReliableFD, reliable_score
from repro.fd.dependency import FD


def _column_classes(relation, names) -> dict:
    """Partition row indices by their projection onto ``names`` (exact)."""
    positions = [list(relation.schema.names).index(a) for a in names]
    classes: dict = {}
    for index, row in enumerate(relation.rows):
        key = tuple(row[p] for p in positions)
        classes.setdefault(key, []).append(index)
    return classes


def _entropy(counts, n) -> float:
    """Plug-in entropy of a count list in nats (scalar loop)."""
    total = 0.0
    for count in counts:
        if count > 0:
            p = count / n
            total -= p * math.log(p)
    return total


def exact_expected_mutual_information(a_counts, b_counts) -> float:
    """EMI under the permutation null, via ``math.lgamma`` scalar sums.

    The textbook triple loop (Vinh et al.): for every class-size pair
    ``(a_i, b_j)`` sum the hypergeometric probability of each feasible
    contingency cell ``n_ij`` times its mutual-information contribution.
    Deliberately shares nothing with the vectorized implementation in
    :func:`repro.fd.reliable.expected_mutual_information`.
    """
    a = [int(c) for c in a_counts if c > 0]
    b = [int(c) for c in b_counts if c > 0]
    n = sum(a)
    if n == 0 or sum(b) != n:
        raise ValueError("count vectors must be positive and sum equally")
    lg = math.lgamma
    total = 0.0
    for ai in a:
        for bj in b:
            lo = max(1, ai + bj - n)
            hi = min(ai, bj)
            for nij in range(lo, hi + 1):
                log_p = (
                    lg(ai + 1) - lg(nij + 1) - lg(ai - nij + 1)
                    + lg(n - ai + 1) - lg(bj - nij + 1)
                    - lg(n - ai - bj + nij + 1)
                    - (lg(n + 1) - lg(bj + 1) - lg(n - bj + 1))
                )
                total += math.exp(log_p) * (nij / n) * math.log(
                    n * nij / (ai * bj)
                )
    return total


def exact_reliable_score(relation, lhs, rhs) -> float:
    """Bias-corrected fraction of information, from first principles.

    ``F0 = clamp((I(X;Y) - EMI) / H(Y), 0, 1)``; 0.0 when ``H(Y) = 0``
    (a constant consequent carries no information to explain).
    """
    n = len(relation)
    if n == 0:
        return 0.0
    x_classes = _column_classes(relation, sorted(lhs))
    y_classes = _column_classes(relation, [rhs])
    xy_classes = _column_classes(relation, sorted(lhs) + [rhs])
    x_counts = [len(c) for c in x_classes.values()]
    y_counts = [len(c) for c in y_classes.values()]
    h_x = _entropy(x_counts, n)
    h_y = _entropy(y_counts, n)
    if h_y <= 0.0:
        return 0.0
    h_xy = _entropy([len(c) for c in xy_classes.values()], n)
    mi = h_x + h_y - h_xy
    emi = exact_expected_mutual_information(x_counts, y_counts)
    return min(1.0, max(0.0, (mi - emi) / h_y))


def exhaustive_reliable_scores(
    relation, max_lhs_size: int | None = None, rhs: str | None = None,
) -> list[tuple[float, tuple, str]]:
    """Score every candidate ``lhs -> rhs`` of the lattice, no pruning.

    Returns ``(score, lhs_names, rhs_name)`` triples -- ``lhs_names`` a
    sorted tuple -- in the miner's deterministic total order
    ``(-score, lhs_names, rhs_name)``.  Constant consequents are excluded
    (the score is 0/0 by definition), exactly as the miner excludes them.
    Scores come from the same public :func:`repro.fd.reliable.reliable_score`
    entry point the miner uses, so comparisons are float-exact.
    """
    names = list(relation.schema.names)
    rhs_names = [rhs] if rhs is not None else names
    cap = max_lhs_size if max_lhs_size is not None else len(names) - 1
    entries = []
    for rhs_name in rhs_names:
        others = [a for a in names if a != rhs_name]
        if len({row[names.index(rhs_name)] for row in relation.rows}) <= 1:
            continue
        for size in range(1, cap + 1):
            for lhs in combinations(sorted(others), size):
                entries.append(
                    (reliable_score(relation, lhs, rhs_name), lhs, rhs_name)
                )
    entries.sort(key=lambda e: (-e[0], e[1], e[2]))
    return entries


def brute_force_topk(relation, k: int, **kwargs) -> list[ReliableFD]:
    """The ``k`` best candidates of the exhaustive scan, as ReliableFDs.

    The direct oracle for :func:`repro.fd.reliable.mine_topk`: same scoring
    entry point, same total order, zero pruning.
    """
    from repro.fd.reliable import fraction_of_information

    entries = exhaustive_reliable_scores(relation, **kwargs)[:k]
    return [
        ReliableFD(
            fd=FD(frozenset(lhs), frozenset({rhs_name})),
            score=score,
            information=fraction_of_information(relation, lhs, rhs_name),
        )
        for score, lhs, rhs_name in entries
    ]
