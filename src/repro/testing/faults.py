"""Deterministic fault injection for the resilient runtime.

Library code marks interesting sites with ``fault_point(name, value)`` --
a no-op (returning ``value`` unchanged) unless a test activated a matching
fault via the :func:`inject` context manager.  Three actions compose:

* ``raises`` -- raise an exception (instance, or class to instantiate);
* ``delay``  -- ``time.sleep`` for a fixed duration, used with tight
  :class:`repro.budget.Budget` deadlines to trigger budget exhaustion
  deterministically;
* ``corrupt`` -- transform the value flowing through the point.

Faults fire on every hit by default; ``after`` skips the first N hits and
``limit`` caps how many times the action runs, so tests can target e.g.
"the third lattice level only".  The yielded :class:`Fault` exposes ``hits``
and ``fired`` counters for assertions that the guarded path really ran.

Example::

    from repro.testing import inject

    with inject("discovery.mining", raises=RuntimeError("miner died")) as f:
        report = StructureDiscovery().run(relation)
    assert f.fired == 1
    assert report.outcome("mining").status == "degraded"

Only names in :data:`FAULT_POINTS` may be injected -- a typo in a test
raises immediately instead of silently never firing.  ``fault_point``
itself accepts any name so library modules can add sites freely; new sites
should be registered here and documented in ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Every named fault point the library currently exposes.
FAULT_POINTS = frozenset({
    # one per discovery-pipeline stage (fired at the top of the stage body)
    "discovery.tuple_clustering",
    "discovery.value_clustering",
    "discovery.attribute_grouping",
    "discovery.mining",
    "discovery.cover",
    "discovery.rank",
    # ingestion: fired once per data row with the parsed record as value
    "io.read_csv.row",
    # miners and clustering hot loops
    "fd.fdep.pairs",
    "fd.tane.level",
    "fd.reliable.node",
    "limbo.fit",
    "limbo.assign",
    # memory governance: fired with the freshly sampled RSS byte count as
    # value -- `corrupt` forges memory pressure (or its absence) so the
    # degradation-ladder tests are independent of the host's real memory
    "memory.sample",
    # space-bounded LIMBO Phase 1: fired when the leaf-entry buffer
    # overflows, just before the threshold-escalating in-place rebuild;
    # value = (n_leaf_entries, escalated_threshold)
    "limbo.buffer_overflow",
    # parallel layer: fired in the coordinating process at pool dispatch,
    # inside the retry/degradation guard (so injected failures exercise the
    # retry-then-fall-back-to-sequential path deterministically under any
    # start method; use after=/limit= to fail once and then succeed)
    "parallel.worker",
    # fired in the coordinating process as each shard result is collected;
    # `raises` with a WorkerMemoryExceeded simulates a worker breaching its
    # per-worker cap (retry once, then sticky sequential + smaller shards)
    "parallel.worker_oom",
    # durable checkpoints: fired with the raw snapshot bytes about to be
    # written (save) / just read back (load); `corrupt` simulates torn or
    # bit-rotted snapshots, `raises` simulates an unwritable/unreadable disk
    "checkpoint.save",
    "checkpoint.load",
    # supervised runs (all fired in the parent/supervisor process):
    # `supervisor.spawn` just before each child spawn (value = attempt
    # number; `raises` simulates a fork/exec failure, which is retried);
    # `supervisor.heartbeat` at every watchdog poll with the fresh
    # HeartbeatStatus as value -- `corrupt` returning a frozen status
    # simulates a hung child without waiting out a real hang_timeout;
    # `supervisor.escalate` when a poison stage's ladder escalation is
    # decided, value = (stage, rung_count)
    "supervisor.spawn",
    "supervisor.heartbeat",
    "supervisor.escalate",
    # resident service daemon (repro.service):
    # `service.accept` as each connection is accepted, before any bytes are
    # parsed (value = peername; `raises` simulates an accept/parse-path
    # crash, which must cost that connection only, never the daemon);
    # `service.handler` at request dispatch, after admission (value =
    # (method, path); `raises` simulates a handler crash -> mapped 500);
    # `service.cache_load` with the raw bytes read back for a model-cache
    # rehydration (`corrupt` simulates a rotted snapshot -> quarantine and
    # recompute); `service.drain` once at drain start with the number of
    # in-flight requests as value (`raises` simulates a drain-path failure,
    # which must still exit the daemon cleanly)
    "service.accept",
    "service.handler",
    "service.cache_load",
    "service.drain",
})

#: Stack of active fault plans (dicts name -> Fault); inner-most wins last.
_ACTIVE: list[dict] = []


@dataclass
class Fault:
    """One activated fault: what to do and when.

    ``hits`` counts how many times the point was reached while this fault
    was active; ``fired`` how many times the action actually ran.
    """

    raises: BaseException | type | None = None
    delay: float = 0.0
    corrupt: object = None  # callable value -> value
    after: int = 0
    limit: int | None = None
    hits: int = field(default=0, init=False)
    fired: int = field(default=0, init=False)


def active_faults() -> dict:
    """The merged view of currently active faults (inner-most wins)."""
    merged: dict = {}
    for plan in _ACTIVE:
        merged.update(plan)
    return merged


def fault_point(name: str, value=None):
    """A named hook in library code; returns ``value`` (possibly corrupted).

    Without active faults this is two attribute loads and a truth test --
    cheap enough for per-row and per-level call sites.
    """
    if not _ACTIVE:
        return value
    for plan in reversed(_ACTIVE):
        fault = plan.get(name)
        if fault is None:
            continue
        fault.hits += 1
        if fault.hits <= fault.after:
            continue
        if fault.limit is not None and fault.fired >= fault.limit:
            continue
        fault.fired += 1
        if fault.delay:
            time.sleep(fault.delay)
        if fault.corrupt is not None:
            value = fault.corrupt(value)
        if fault.raises is not None:
            exc = fault.raises
            if isinstance(exc, type):
                exc = exc(f"injected fault at {name}")
            raise exc
        break  # inner-most matching fault handled the hit
    return value


@contextmanager
def inject(name: str, *, raises=None, delay: float = 0.0, corrupt=None,
           after: int = 0, limit: int | None = None):
    """Activate one fault for the duration of a ``with`` block.

    Yields the :class:`Fault` so tests can assert on ``hits``/``fired``.
    Nest ``with inject(...)`` blocks to arm several points at once.
    """
    if name not in FAULT_POINTS:
        raise ValueError(
            f"unknown fault point {name!r}; known points: "
            f"{sorted(FAULT_POINTS)}"
        )
    if raises is None and not delay and corrupt is None:
        raise ValueError("inject needs at least one of raises/delay/corrupt")
    fault = Fault(raises=raises, delay=delay, corrupt=corrupt,
                  after=after, limit=limit)
    plan = {name: fault}
    _ACTIVE.append(plan)
    try:
        yield fault
    finally:
        for index, active in enumerate(_ACTIVE):
            if active is plan:
                del _ACTIVE[index]
                break
