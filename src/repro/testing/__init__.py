"""Deterministic testing utilities: fault injection and parity oracles."""

from repro.testing.faults import (
    FAULT_POINTS,
    Fault,
    active_faults,
    fault_point,
    inject,
)
#: Oracle re-exports resolved lazily: :mod:`repro.testing.oracles` imports
#: the miners, and eager resolution here would close an import cycle
#: (``repro.budget`` imports this package for ``fault_point``).
_ORACLE_EXPORTS = (
    "brute_force_topk",
    "exact_expected_mutual_information",
    "exact_reliable_score",
    "exhaustive_reliable_scores",
)


def __getattr__(name: str):
    if name in _ORACLE_EXPORTS:
        from repro.testing import oracles

        return getattr(oracles, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FAULT_POINTS",
    "Fault",
    "active_faults",
    "brute_force_topk",
    "exact_expected_mutual_information",
    "exact_reliable_score",
    "exhaustive_reliable_scores",
    "fault_point",
    "inject",
]
