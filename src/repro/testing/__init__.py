"""Deterministic testing utilities: the fault-injection harness."""

from repro.testing.faults import (
    FAULT_POINTS,
    Fault,
    active_faults,
    fault_point,
    inject,
)

__all__ = ["FAULT_POINTS", "Fault", "active_faults", "fault_point", "inject"]
