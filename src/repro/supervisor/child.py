"""Child-process entry point for supervised discovery runs.

The supervisor spawns :func:`run_child` in a fresh process per attempt.
The child rebuilds the :class:`repro.core.StructureDiscovery` driver from a
plain constructor-argument dict (so the target stays importable under the
``spawn`` start method), always attaches the shared checkpoint store, and
hands its result back through a pickled file in the store directory --
richer and more crash-tolerant than a pipe, and the parent can inspect it
even if it outlives the child by a long time.

Exit-code protocol (the parent classifies on this):

=========  ==================================================================
exit code  meaning
=========  ==================================================================
0          report written to ``result.pkl``
1          deliberate :class:`repro.errors.ReproError` (``error.json`` says
           which); deterministic, the parent re-raises instead of retrying
2          deliberate :class:`repro.errors.InputError` (ditto)
3          deliberate :class:`repro.errors.ResourceLimitExceeded` (ditto)
130        interrupted (SIGINT, or the supervisor's forwarded SIGTERM)
< 0        killed by a signal -- the crash case the supervisor restarts
=========  ==================================================================
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import sys
from pathlib import Path

from repro.checkpoint import CheckpointStore
from repro.errors import InputError, ReproError, ResourceLimitExceeded
from repro.relation.io import atomic_write

#: Pickled :class:`repro.core.DiscoveryReport` of a successful attempt.
RESULT_NAME = "result.pkl"

#: JSON record of a deliberate child failure (class name + message).
ERROR_NAME = "error.json"

#: Faulthandler stack dump of a hung (or crashed) child, written on
#: SIGUSR1 from the supervisor just before the reap.
HANG_DUMP_NAME = "hang-traceback.txt"

_EXIT_INTERRUPT = 130


def _sigterm_to_interrupt(signum, frame):
    raise KeyboardInterrupt()


def _arm_hang_dump(directory: Path):
    """Journal all-thread stacks on SIGUSR1 (and on fatal signals).

    The supervisor sends SIGUSR1 to a child it is about to reap as hung;
    :mod:`faulthandler` then writes every thread's stack to
    ``hang-traceback.txt`` in the store directory, which the supervisor
    folds into ``incident.json`` -- so a hang kill still says *where* the
    child was stuck.  The handle must stay referenced for the lifetime of
    the process (faulthandler keeps only the fd).  No-op where SIGUSR1
    does not exist (Windows) or the journal cannot be opened.
    """
    if not hasattr(signal, "SIGUSR1"):
        return None
    try:
        import faulthandler

        handle = open(directory / HANG_DUMP_NAME, "w", encoding="utf-8")
        faulthandler.enable(file=handle, all_threads=True)
        faulthandler.register(signal.SIGUSR1, file=handle, all_threads=True)
        return handle
    except Exception:
        return None


def _write_error(directory: Path, exc: ReproError) -> None:
    """Record a deliberate failure so the parent can re-raise it."""
    try:
        with atomic_write(directory / ERROR_NAME) as handle:
            json.dump({
                "class": type(exc).__name__,
                "message": str(exc),
                "context": {k: repr(v) for k, v in
                            getattr(exc, "context", {}).items()},
            }, handle, sort_keys=True, indent=1)
    except Exception:
        pass  # the exit code still carries the class of failure


def run_child(spec: dict, relation, directory, cadence: int, resume: bool,
              escalations: dict | None, attempt: int, budget_blob,
              child_setup) -> None:
    """One supervised attempt: run the pipeline, leave ``result.pkl``.

    ``spec`` is :attr:`StructureDiscovery._spec`; ``budget_blob`` an
    optional pickled :class:`repro.budget.Budget` (re-pickled by the parent
    per attempt, so wall-clock deadlines keep shrinking across restarts);
    ``child_setup`` an optional picklable callable run first with the
    attempt number -- the deterministic-fault harness uses it to arm
    in-child faults (kill bombs, delays) per attempt.
    """
    directory = Path(directory)
    # The supervisor reaps a hung child with SIGTERM before SIGKILL; map it
    # to KeyboardInterrupt so stages unwind through their ordinary
    # interrupt paths (executor pools close, exit code 130 is preserved).
    signal.signal(signal.SIGTERM, _sigterm_to_interrupt)
    dump_handle = _arm_hang_dump(directory)  # noqa: F841 - keep fd alive
    from repro.core.discovery import StructureDiscovery

    try:
        if child_setup is not None:
            child_setup(attempt)
        store = CheckpointStore(directory, cadence=cadence, resume=resume)
        budget = pickle.loads(budget_blob) if budget_blob is not None else None
        discovery = StructureDiscovery(**spec, checkpoint=store)
        report = discovery.run(relation, budget=budget,
                               escalations=escalations)
        with atomic_write(directory / RESULT_NAME, "wb") as handle:
            pickle.dump(report, handle)
    except KeyboardInterrupt:
        sys.exit(_EXIT_INTERRUPT)
    except ResourceLimitExceeded as exc:
        _write_error(directory, exc)
        sys.exit(3)
    except InputError as exc:
        _write_error(directory, exc)
        sys.exit(2)
    except ReproError as exc:
        _write_error(directory, exc)
        sys.exit(1)


def load_result(directory):
    """The pickled report of a completed attempt, or ``None``."""
    path = Path(directory) / RESULT_NAME
    try:
        data = path.read_bytes()
    except OSError:
        return None
    try:
        return pickle.loads(data)
    except Exception:
        return None


def load_error(directory) -> dict | None:
    """The deliberate-failure record of the last attempt, or ``None``."""
    path = Path(directory) / ERROR_NAME
    try:
        return json.loads(path.read_text("utf-8"))
    except (OSError, ValueError):
        return None


def clear_attempt_artifacts(directory) -> None:
    """Remove stale result/error files before a (re)spawn."""
    for name in (RESULT_NAME, ERROR_NAME, HANG_DUMP_NAME):
        try:
            os.unlink(Path(directory) / name)
        except OSError:
            pass
