"""Supervised discovery runs: crash/hang watchdog with checkpointed
auto-resume and poison-stage escalation.

:class:`Supervisor` runs the pipeline in a child process, detects crashes
(SIGKILL/SIGSEGV), OOM kills and heartbeat hangs, resumes from the durable
checkpoint store with bounded jittered-backoff restarts, escalates the
degradation ladder for a stage that keeps dying, and journals everything to
``incident.json``.  Reached via ``StructureDiscovery(supervise=...)`` or
CLI ``repro discover --supervise``.  See ``docs/ROBUSTNESS.md``.
"""

from repro.supervisor.child import (
    ERROR_NAME,
    RESULT_NAME,
    load_error,
    load_result,
    run_child,
)
from repro.supervisor.supervisor import (
    OOM_RSS_FRACTION,
    PID_NAME,
    STARTUP_STAGE,
    Supervisor,
    SupervisorConfig,
    cgroup_oom_kills,
    classify_exit,
)

__all__ = [
    "ERROR_NAME",
    "OOM_RSS_FRACTION",
    "PID_NAME",
    "RESULT_NAME",
    "STARTUP_STAGE",
    "Supervisor",
    "SupervisorConfig",
    "cgroup_oom_kills",
    "classify_exit",
    "load_error",
    "load_result",
    "run_child",
]
