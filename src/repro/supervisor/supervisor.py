"""Parent-process supervision of discovery runs.

:class:`Supervisor` runs :class:`repro.core.StructureDiscovery` in a child
process and makes *hard* failures recoverable -- the failures the in-process
guards of :mod:`repro.core.discovery` can never see because the interpreter
itself is gone:

* **crashes** -- any death by signal (SIGKILL, SIGSEGV, a C-extension
  abort), detected from the child's exit status;
* **OOM kills** -- classified distinctly from other SIGKILLs using the
  cgroup ``oom_kill`` counter where available, else the last heartbeat's
  RSS against the configured memory limit;
* **hangs** -- no forward progress on the checkpoint store's
  ``progress.json`` heartbeat for ``hang_timeout`` seconds; the stuck
  child is reaped (SIGTERM, then SIGKILL after a grace period);
* **deliberate errors** -- the child exits with the CLI's own exit-code
  protocol; these are deterministic, so they re-raise instead of retrying.

Recovery is *resume, not redo*: every attempt shares one checkpoint store,
so completed stages load from snapshots and only the dying stage recomputes
(bit-identically -- the store's determinism guarantee).  Restarts are
bounded (``max_restarts``) with jittered exponential backoff, and a stage
that dies twice (a **poison stage**) escalates the degradation ladder on
subsequent attempts instead of retrying blindly: attempt ``k`` after the
second death pre-applies the first ``k-1`` ladder positions when the stage
is reached.  The first position, ``sparse-backend``, is byte-identity
preserving; stronger rungs mark the report degraded via a ``supervisor``
health entry.

Every attempt is journaled to ``incident.json`` next to the snapshots --
attempt timeline, failure classes, stages resumed, ladder rungs -- and
``child.pid`` always names the live child so external tooling (CI crash
drills) can target it.  SIGINT/SIGTERM to the parent forward to the child,
wait for a graceful unwind, and preserve exit code 130.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import random
import shutil
import signal
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.checkpoint import CheckpointStore
from repro.errors import (
    InputError,
    ReproError,
    ResourceLimitExceeded,
    SupervisorError,
)
from repro.relation.io import atomic_write
from repro.supervisor.child import (
    HANG_DUMP_NAME,
    clear_attempt_artifacts,
    load_error,
    load_result,
    run_child,
)
from repro.testing.faults import fault_point

#: File naming the currently-running child process, next to the snapshots.
PID_NAME = "child.pid"

#: A SIGKILLed child whose last heartbeat RSS was at least this fraction of
#: the configured memory limit is classified as OOM-killed.
OOM_RSS_FRACTION = 0.8

#: Pseudo-stage for failures before the child wrote any heartbeat.
STARTUP_STAGE = "(startup)"


@dataclass
class SupervisorConfig:
    """Tuning for one :class:`Supervisor`.

    ``max_restarts`` bounds how many times a *failed* attempt may be
    retried (so at most ``max_restarts + 1`` attempts run).  ``hang_timeout``
    is the heartbeat-staleness horizon in seconds: no change on
    ``progress.json`` for that long declares a hang.  Backoff before
    restart ``k`` is ``backoff_base * 2**(k-1)`` capped at ``backoff_cap``,
    then stretched by up to ``jitter`` (a fraction); tests zero both
    ``backoff_base`` and ``jitter`` for speed and determinism.
    ``child_setup`` is an optional picklable callable run inside each child
    first (receiving the attempt number) -- the deterministic-fault
    harness's hook for arming in-child faults per attempt.
    """

    max_restarts: int = 5
    hang_timeout: float = 300.0
    poll_interval: float | None = None
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    jitter: float = 0.25
    term_grace: float = 5.0
    start_method: str | None = None
    child_setup: object = None

    def __post_init__(self):
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.hang_timeout <= 0:
            raise ValueError("hang_timeout must be positive")
        if self.poll_interval is not None and self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    @property
    def effective_poll(self) -> float:
        """Watchdog poll period: frequent enough to see a hang promptly."""
        if self.poll_interval is not None:
            return self.poll_interval
        return max(0.02, min(0.25, self.hang_timeout / 10.0))

    def backoff(self, restart_number: int) -> float:
        """Jittered exponential delay before restart ``restart_number``."""
        if restart_number < 1 or self.backoff_base <= 0:
            return 0.0
        delay = min(self.backoff_cap,
                    self.backoff_base * (2 ** (restart_number - 1)))
        if self.jitter:
            delay *= 1.0 + self.jitter * random.random()
        return delay


def _signal_name(signum: int) -> str:
    try:
        return signal.Signals(signum).name
    except ValueError:
        return f"signal-{signum}"


def _rss_near_limit(heartbeat_payload, memory_limit) -> bool:
    """Did the child's last observed RSS approach the configured cap?"""
    if not heartbeat_payload or not memory_limit:
        return False
    rss = heartbeat_payload.get("rss_bytes")
    return isinstance(rss, (int, float)) and rss >= OOM_RSS_FRACTION * memory_limit


def cgroup_oom_kills() -> int | None:
    """The cgroup-v2 ``oom_kill`` counter for this process tree, if any.

    Children share the parent's cgroup unless something moved them, so a
    counter increment across a child's lifetime is strong OOM evidence.
    ``None`` where unsupported (cgroup v1, macOS, sandboxes).
    """
    try:
        text = Path("/sys/fs/cgroup/memory.events").read_text("ascii")
        for line in text.splitlines():
            if line.startswith("oom_kill "):
                return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return None


def classify_exit(exitcode, heartbeat_payload=None, memory_limit=None,
                  oom_kill_delta: int = 0) -> str:
    """Name the failure class of one child exit status.

    ``multiprocessing`` reports death-by-signal as a negative exit code;
    a shell-style ``128 + N`` is also understood.  SIGKILL splits into
    ``"oom-kill"`` vs ``"sigkill"`` on the evidence provided (cgroup
    counter delta, or last-heartbeat RSS against the memory limit).
    """
    if exitcode == 0:
        return "completed"
    signum = None
    if exitcode is not None and exitcode < 0:
        signum = -exitcode
    elif exitcode is not None and exitcode > 128:
        signum = exitcode - 128
    if signum is None:
        return f"error-exit:{exitcode}"
    if signum == signal.SIGINT:
        return "interrupted"
    if signum == signal.SIGKILL:
        if oom_kill_delta > 0 or _rss_near_limit(heartbeat_payload,
                                                 memory_limit):
            return "oom-kill"
        return "sigkill"
    return f"crash-signal:{_signal_name(signum)}"


#: Deliberate child exit codes mapped back to the error classes they carry.
_DELIBERATE_EXITS = {
    1: ReproError,
    2: InputError,
    3: ResourceLimitExceeded,
}


class Supervisor:
    """Drive one discovery run to completion across child-process attempts.

    Built from a configured :class:`repro.core.StructureDiscovery` (whose
    ``checkpoint`` store, if any, becomes the shared durable state; a
    private temporary store is used otherwise) and a
    :class:`SupervisorConfig`.  :meth:`run` returns the child's
    :class:`repro.core.DiscoveryReport` exactly as an unsupervised run
    would have, raises the child's own error for deterministic failures,
    raises :class:`repro.errors.SupervisorError` once the restart budget is
    exhausted, and raises :class:`KeyboardInterrupt` after forwarding an
    interrupt (the CLI maps it to exit code 130).
    """

    def __init__(self, discovery, config: SupervisorConfig | None = None):
        self.discovery = discovery
        self.config = config or getattr(discovery, "supervise", None) \
            or SupervisorConfig()
        self._signal_received: int | None = None

    # -- signal forwarding -------------------------------------------------------

    def _install_handlers(self) -> dict:
        """Trap SIGINT/SIGTERM so they forward to the child; returns the
        previous handlers (empty off the main thread, where trapping is
        impossible and the default KeyboardInterrupt path applies)."""
        previous = {}

        def _handler(signum, frame):
            self._signal_received = signum

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, _handler)
            except ValueError:
                break
        return previous

    @staticmethod
    def _restore_handlers(previous: dict) -> None:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, TypeError):
                pass

    # -- child lifecycle ---------------------------------------------------------

    def _request_stack_dump(self, proc, directory) -> None:
        """SIGUSR1 a child about to be reaped as hung, and give its
        faulthandler a moment to journal every thread's stack."""
        if not hasattr(signal, "SIGUSR1") or proc.exitcode is not None:
            return
        dump_path = Path(directory) / HANG_DUMP_NAME
        try:
            os.kill(proc.pid, signal.SIGUSR1)
        except OSError:
            return
        deadline = time.monotonic() + min(1.0, self.config.term_grace)
        while time.monotonic() < deadline:
            try:
                if dump_path.stat().st_size > 0:
                    return
            except OSError:
                pass
            time.sleep(0.02)

    @staticmethod
    def _read_hang_dump(directory, limit: int = 8000):
        """The journaled faulthandler dump, tail-truncated, or ``None``."""
        try:
            text = (Path(directory) / HANG_DUMP_NAME).read_text("utf-8")
        except OSError:
            return None
        text = text.strip()
        return text[-limit:] if text else None

    def _reap(self, proc) -> None:
        """SIGTERM, grace, then SIGKILL a child that must die now."""
        if proc.exitcode is None:
            try:
                proc.terminate()
            except Exception:
                pass
            proc.join(self.config.term_grace)
        if proc.exitcode is None:
            try:
                proc.kill()
            except Exception:
                pass
            proc.join()

    def _resumed_stages(self, directory: Path) -> list[str]:
        """Stage snapshots present at spawn time (what a resume can reuse)."""
        stages = []
        for path in sorted(directory.glob("stage.*.ckpt")):
            stages.append(path.name[len("stage."):-len(".ckpt")])
        return stages

    # -- the supervision loop ----------------------------------------------------

    def run(self, relation, budget=None):
        config = self.config
        discovery = self.discovery
        budget = budget if budget is not None else discovery.budget

        store = discovery.checkpoint
        tempdir = None
        if store is None:
            tempdir = tempfile.mkdtemp(prefix="repro-supervised-")
            store = CheckpointStore(tempdir)
        directory = store.directory
        # Attempt 1 honors the store's own resume policy; restarts always
        # resume -- that is the entire point of supervision.
        resume_first = store.resume

        incident = {
            "version": 1,
            "outcome": "running",
            "exit_code": None,
            "config": {
                "max_restarts": config.max_restarts,
                "hang_timeout": config.hang_timeout,
            },
            "restarts_used": 0,
            "stage_failures": {},
            "escalations": [],
            "attempts": [],
        }

        def finalize(outcome: str, exit_code) -> Path | None:
            incident["outcome"] = outcome
            incident["exit_code"] = exit_code
            return store.write_incident(incident)

        stage_failures: dict[str, int] = incident["stage_failures"]
        escalations: dict[str, int] = {}
        attempt = 0
        restarts_used = 0
        previous = self._install_handlers()
        self._signal_received = None
        try:
            while True:
                attempt += 1
                backoff = config.backoff(attempt - 1)
                if backoff:
                    time.sleep(backoff)
                record = {
                    "attempt": attempt,
                    "pid": None,
                    "started_wall": time.time(),
                    "ended_wall": None,
                    "exit_code": None,
                    "failure_class": None,
                    "stage": None,
                    "resumed_stages": self._resumed_stages(directory),
                    "escalations": dict(escalations),
                    "backoff_seconds": backoff,
                    "detail": "",
                }
                incident["attempts"].append(record)

                oom_before = cgroup_oom_kills()
                try:
                    proc = self._spawn(relation, budget, store, attempt,
                                       resume_first if attempt == 1 else True,
                                       escalations)
                except Exception as exc:
                    record["ended_wall"] = time.time()
                    record["failure_class"] = "spawn-failure"
                    record["detail"] = f"{type(exc).__name__}: {exc}"
                    failed_stage = STARTUP_STAGE
                else:
                    record["pid"] = proc.pid
                    hung = self._watch(proc, store)
                    record["ended_wall"] = time.time()
                    record["exit_code"] = proc.exitcode

                    if self._signal_received is not None:
                        record["failure_class"] = "interrupted"
                        incident["restarts_used"] = restarts_used
                        finalize("interrupted", 130)
                        self._cleanup(tempdir, keep=False)
                        raise KeyboardInterrupt()

                    status = store.heartbeat_status()
                    payload = status.payload
                    if payload is not None and payload.get("pid") != proc.pid:
                        payload = None  # a previous attempt's heartbeat
                    failed_stage = (payload or {}).get("stage") or STARTUP_STAGE

                    if hung:
                        record["failure_class"] = "hang"
                        record["detail"] = status.describe()
                        dump = self._read_hang_dump(directory)
                        if dump:
                            record["hang_traceback"] = dump
                    else:
                        oom_after = cgroup_oom_kills()
                        delta = ((oom_after - oom_before)
                                 if None not in (oom_before, oom_after) else 0)
                        record["failure_class"] = classify_exit(
                            proc.exitcode, payload,
                            discovery.memory_limit, delta,
                        )

                    if record["failure_class"] == "completed":
                        report = load_result(directory)
                        if report is not None:
                            record["stage"] = None
                            incident["restarts_used"] = restarts_used
                            finalize("completed", 0)
                            self._cleanup(tempdir, keep=False)
                            return report
                        record["failure_class"] = "no-result"
                        record["detail"] = ("child exited 0 without writing "
                                            "a result")
                    elif record["failure_class"] == "interrupted":
                        # The child was interrupted directly (not via us):
                        # honor it as an interrupt of the whole run.
                        incident["restarts_used"] = restarts_used
                        finalize("interrupted", 130)
                        self._cleanup(tempdir, keep=False)
                        raise KeyboardInterrupt()
                    elif proc.exitcode in _DELIBERATE_EXITS:
                        error = load_error(directory) or {}
                        record["stage"] = failed_stage
                        record["detail"] = error.get("message", "")
                        incident["restarts_used"] = restarts_used
                        finalize("failed", proc.exitcode)
                        self._cleanup(tempdir, keep=True)
                        raise self._reraise(proc.exitcode, error)

                record["stage"] = failed_stage
                stage_failures[failed_stage] = \
                    stage_failures.get(failed_stage, 0) + 1
                if (failed_stage != STARTUP_STAGE
                        and stage_failures[failed_stage] >= 2):
                    positions = stage_failures[failed_stage] - 1
                    fault_point("supervisor.escalate",
                                (failed_stage, positions))
                    escalations[failed_stage] = positions
                    incident["escalations"].append({
                        "attempt": attempt,
                        "stage": failed_stage,
                        "ladder_positions": positions,
                    })

                if restarts_used >= config.max_restarts:
                    incident["restarts_used"] = restarts_used
                    path = finalize("gave-up", 1)
                    self._cleanup(tempdir, keep=True)
                    raise SupervisorError(
                        f"supervised run gave up after {attempt} attempt(s): "
                        f"{record['failure_class']} in stage "
                        f"{failed_stage!r} (restart budget "
                        f"{config.max_restarts} exhausted); "
                        f"see {path or directory / 'incident.json'}",
                        attempts=attempt,
                        failure_class=record["failure_class"],
                        stage=failed_stage,
                        incident_path=str(path) if path else None,
                    )
                restarts_used += 1
                incident["restarts_used"] = restarts_used
                store.write_incident(incident)
        finally:
            self._restore_handlers(previous)

    # -- helpers -----------------------------------------------------------------

    def _spawn(self, relation, budget, store, attempt: int, resume: bool,
               escalations: dict):
        """Start one child attempt; raises on spawn failure (retried)."""
        config = self.config
        fault_point("supervisor.spawn", attempt)
        clear_attempt_artifacts(store.directory)
        budget_blob = pickle.dumps(budget) if budget is not None else None
        ctx = multiprocessing.get_context(config.start_method)
        proc = ctx.Process(
            target=run_child,
            args=(self.discovery._spec, relation, str(store.directory),
                  store.cadence, resume, dict(escalations) or None, attempt,
                  budget_blob, config.child_setup),
            name=f"repro-supervised-{attempt}",
        )
        proc.start()
        try:
            with atomic_write(store.directory / PID_NAME) as handle:
                handle.write(str(proc.pid))
        except OSError:
            pass
        return proc

    def _watch(self, proc, store) -> bool:
        """Block until the child exits or hangs; True means we reaped a
        hang.  Returns promptly when a trapped signal arrives (the caller
        forwards it)."""
        config = self.config
        poll = config.effective_poll
        last_marker = None
        last_progress = time.monotonic()
        while True:
            if self._signal_received is not None:
                try:
                    os.kill(proc.pid, self._signal_received)
                except OSError:
                    pass
                proc.join(config.term_grace)
                self._reap(proc)
                return False
            proc.join(poll)
            if proc.exitcode is not None:
                return False
            status = fault_point("supervisor.heartbeat",
                                 store.heartbeat_status())
            payload = status.payload or {}
            marker = (status.state, status.mtime_ns,
                      payload.get("stage"), payload.get("units_used"),
                      payload.get("wall_time"))
            now = time.monotonic()
            if marker != last_marker:
                last_marker = marker
                last_progress = now
            elif now - last_progress > config.hang_timeout:
                self._request_stack_dump(proc, store.directory)
                self._reap(proc)
                return True

    @staticmethod
    def _reraise(exitcode: int, error: dict) -> ReproError:
        """Rebuild the child's deliberate error for transparent re-raise."""
        import repro.errors as errors_module

        cls = getattr(errors_module, error.get("class", ""), None)
        if not (isinstance(cls, type) and issubclass(cls, ReproError)):
            cls = _DELIBERATE_EXITS[exitcode]
        message = error.get("message") or (
            f"supervised child failed deliberately (exit {exitcode})"
        )
        return cls(message)

    @staticmethod
    def _cleanup(tempdir, keep: bool) -> None:
        """Drop the private temporary store after a decided run.

        ``keep=True`` preserves it (and its ``incident.json``) when the
        run failed -- that file is the whole post-mortem.
        """
        if tempdir is not None and not keep:
            shutil.rmtree(tempdir, ignore_errors=True)
