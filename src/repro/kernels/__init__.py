"""Vectorized numeric kernels for the clustering engine.

The sparse pure-Python implementations in :mod:`repro.clustering.dcf` are
exact and cheap for small inputs, but the AIB/LIMBO hot paths evaluate the
pairwise merge cost ``delta_I`` (paper Eq. 3) O(n^2) times.  This package
packs DCF conditionals into dense NumPy row matrices over a shared support
index and batches those evaluations:

* :class:`DenseDCFSet` -- a read-only packed view of a fixed DCF collection
  (LIMBO Phase-3 representatives, tree entries, ...).
* :class:`DenseMergeEngine` -- an incrementally growing packed store backing
  the dense AIB merge loop (rows are appended as clusters merge).
* :func:`merge_cost_many` / :func:`pairwise_merge_costs` /
  :func:`closest_entry` -- the batched ``delta_I`` kernels.
* :func:`use_dense` / :func:`validate_backend` -- the ``backend=`` knob
  shared by :func:`repro.clustering.aib`, :class:`repro.clustering.DCFTree`
  and :class:`repro.clustering.Limbo`.

The sparse path remains the correctness oracle: ``backend="auto"`` (the
default everywhere) selects it for tiny inputs, and every kernel agrees with
:func:`repro.clustering.dcf.merge_cost` to within floating-point roundoff.
"""

from repro.kernels.dense import (
    BACKENDS,
    DENSE_MAX_CELLS,
    DENSE_MAX_OBJECTS,
    DENSE_MIN_ASSIGN_CELLS,
    DENSE_MIN_ENTRIES,
    DENSE_MIN_OBJECTS,
    DENSE_MIN_REPRESENTATIVES,
    DENSE_MIN_SCAN_CELLS,
    DENSE_WIDE_COLUMNS,
    CandidateMatrix,
    DenseDCFSet,
    DenseMergeEngine,
    assign_many,
    closest_entry,
    dense_bytes,
    merge_cost_many,
    pack_seconds,
    pairwise_merge_costs,
    reset_pack_seconds,
    shared_index,
    use_dense,
    use_dense_assign,
    validate_backend,
)

__all__ = [
    "BACKENDS",
    "CandidateMatrix",
    "DENSE_MAX_CELLS",
    "DENSE_MAX_OBJECTS",
    "DENSE_MIN_ASSIGN_CELLS",
    "DENSE_MIN_ENTRIES",
    "DENSE_MIN_OBJECTS",
    "DENSE_MIN_REPRESENTATIVES",
    "DENSE_MIN_SCAN_CELLS",
    "DENSE_WIDE_COLUMNS",
    "DenseDCFSet",
    "DenseMergeEngine",
    "assign_many",
    "closest_entry",
    "dense_bytes",
    "merge_cost_many",
    "pack_seconds",
    "pairwise_merge_costs",
    "reset_pack_seconds",
    "shared_index",
    "use_dense",
    "use_dense_assign",
    "validate_backend",
]
