"""Dense/packed DCF representations and batched ``delta_I`` kernels.

All kernels work in *joint-mass* space (``m_k = p(c) * p(k|c)``), the same
representation the sparse :class:`repro.clustering.dcf.DCF` uses, and
evaluate the information loss of Eq. 3 through the entropy identity

    delta_I(a, b) * ln 2 = W ln W - w_a ln w_a - w_b ln w_b
                           + S_a + S_b - S_merged

with ``W = w_a + w_b`` and ``S = sum_k m_k ln m_k`` -- the vectorized twin
of the ``H(p_bar) - pi H(p) - pi H(q)`` Jensen-Shannon form.  Because
columns outside the support of the *query* operand cancel between ``S_a``
and ``S_merged``, every kernel restricts its column gather to the query's
support: cost is ``O(rows * |supp(query)|)`` in vectorized element
operations, mirroring the smaller-operand trick of the sparse path.

Zero masses are handled with the ``0 ln 0 = 0`` convention throughout, so
zero-mass columns and disjoint supports agree exactly with the sparse
implementation.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.clustering.dcf import LOSS_FLOOR, LOSS_QUANTUM_BITS, merge_cost

_LOG2 = math.log(2.0)

#: Wall-clock seconds spent packing DCFs into dense form (matrix gathers in
#: ``DenseDCFSet.pack``, ``DenseMergeEngine.__init__`` and the
#: ``closest_entry`` sub-matrix build).  The benchmark's ``pack_s`` metric.
_pack_seconds = 0.0


def reset_pack_seconds() -> None:
    """Zero the pack-time accumulator (call before a timed region)."""
    global _pack_seconds
    _pack_seconds = 0.0


def pack_seconds() -> float:
    """Seconds spent in dense packing since the last reset."""
    return _pack_seconds

#: Legal values of the ``backend=`` knob.
BACKENDS = ("auto", "sparse", "dense")

#: ``backend="auto"`` switches AIB to the dense engine at this many clusters.
#: Measured crossover on narrow (tuple-width) supports: sparse/dense wall
#: ratio 0.83 at 32 clusters, 1.27 at 48 -- the break-even sits near 40.
DENSE_MIN_OBJECTS = 40

#: ``backend="auto"`` also goes dense *below* ``DENSE_MIN_OBJECTS`` when the
#: shared support is at least this wide (and the call site reports it).  Wide
#: supports shift the crossover hard toward dense: on phi=1.0 LIMBO summaries
#: (1100+ columns) the dense engine already wins 1.5x at 9 clusters, while
#: narrow supports stay under ~150 columns well past the object crossover.
DENSE_WIDE_COLUMNS = 512

#: ``backend="auto"`` switches a DCF-tree node scan to the batched kernel at
#: this many entries (below it the NumPy call overhead dominates).
DENSE_MIN_ENTRIES = 8

#: ``backend="auto"`` packs LIMBO Phase-3 representatives at this many reps.
DENSE_MIN_REPRESENTATIVES = 8

#: ``backend="auto"`` falls back to sparse when the packed matrix would
#: exceed this many cells (the dense AIB engine allocates ~2n rows).
DENSE_MAX_CELLS = 50_000_000

#: ``backend="auto"`` caps the dense AIB engine at this many starting
#: clusters: the candidate matrix is O((2n)^2) memory.  AIB inputs are
#: normally LIMBO leaf summaries (hundreds), far below the cap.
DENSE_MAX_OBJECTS = 2048

#: A node scan gathering fewer cells than this (entries x query support)
#: runs the scalar smaller-operand loop inside :func:`closest_entry`: NumPy
#: dispatch overhead dominates the tiny scans a branching-4 DCF-tree does.
DENSE_MIN_SCAN_CELLS = 4096

#: ``backend="auto"`` packs LIMBO Phase-3 representatives only when the
#: assignment workload (objects x representatives) reaches this many cost
#: evaluations -- below it the pack + per-chunk CSR overhead beats nothing.
DENSE_MIN_ASSIGN_CELLS = 2048


def validate_backend(backend: str) -> str:
    """Check a ``backend=`` knob value, returning it unchanged."""
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {'/'.join(BACKENDS)}, got {backend!r}"
        )
    return backend


def dense_bytes(n: int, n_columns: int | None = None,
                candidates: bool = False) -> int:
    """Byte estimate of the dense path's allocations for ``n`` objects.

    The merge engine packs a ``(2n - 1) x d`` float64 joint-mass matrix
    (plus same-shaped scratch); with ``candidates`` the AIB candidate
    matrix adds ``(2n)^2`` float64 cells.  Used for the memory governor's
    cooperative refusal -- deterministic, data-independent given shapes.
    """
    total = 2 * (2 * n) * (n_columns or 1) * 8
    if candidates:
        total += (2 * n) * (2 * n) * 8
    return total


def use_dense(
    backend: str,
    n: int,
    n_columns: int | None = None,
    minimum: int = DENSE_MIN_OBJECTS,
    maximum: int | None = None,
    governor=None,
    candidates: bool = False,
) -> bool:
    """Resolve the knob for a call site over ``n`` objects.

    ``auto`` picks the dense kernels once ``n`` reaches ``minimum``, stays
    at or below ``maximum`` (when given), and the packed matrix fits within
    :data:`DENSE_MAX_CELLS`; explicit values are always honored.  Call sites
    that report ``n_columns`` also go dense below ``minimum`` when the shared
    support is :data:`DENSE_WIDE_COLUMNS` or wider (see that constant's
    rationale) -- the gather amortizes over columns as well as rows.  With a
    :class:`repro.budget.MemoryGovernor`, ``auto`` additionally refuses a
    dense allocation whose :func:`dense_bytes` estimate would cross the
    byte cap -- the sparse oracle needs no recovery path, so this refusal
    degrades performance, never results.
    """
    validate_backend(backend)
    if backend == "sparse":
        return False
    if backend == "dense":
        return True
    if n < minimum:
        wide = (
            n_columns is not None
            and n_columns >= DENSE_WIDE_COLUMNS
            and n >= DENSE_MIN_ENTRIES
        )
        if not wide:
            return False
    if maximum is not None and n > maximum:
        return False
    if n_columns is not None and 2 * n * n_columns > DENSE_MAX_CELLS:
        return False
    if governor is not None and governor.would_exceed(
        dense_bytes(n, n_columns, candidates=candidates)
    ):
        return False
    return True


def use_dense_assign(
    backend: str,
    n_representatives: int,
    n_objects: int,
    governor=None,
) -> bool:
    """Resolve the knob for a Phase-3 assignment workload.

    The decision variable is the number of cost evaluations, ``objects x
    representatives``, not the representative count alone: packing a handful
    of representatives already pays off over thousands of objects (the
    common LIMBO shape, e.g. ``k = 5`` over 10^4 tuples), while a few dozen
    objects never amortize the pack.  ``auto`` also defers to the memory
    governor the way :func:`use_dense` does.
    """
    validate_backend(backend)
    if backend == "sparse":
        return False
    if backend == "dense":
        return True
    if n_representatives < 2:
        return False
    if n_objects * n_representatives < DENSE_MIN_ASSIGN_CELLS:
        return False
    if governor is not None and governor.would_exceed(
        dense_bytes(n_representatives)
    ):
        return False
    return True


def _quantize(losses: np.ndarray) -> np.ndarray:
    """Vectorized twin of :func:`repro.clustering.dcf.quantize_loss`.

    ``frexp``/``ldexp`` are exact and ``np.rint`` rounds half-to-even like
    Python's ``round``, so this produces bitwise the same grid points as the
    scalar version -- the property the cross-backend tie-break relies on.
    """
    mantissa, exponent = np.frexp(losses)
    snapped = np.ldexp(
        np.rint(np.ldexp(mantissa, LOSS_QUANTUM_BITS)),
        exponent - LOSS_QUANTUM_BITS,
    )
    snapped[losses < LOSS_FLOOR] = 0.0
    return snapped


def _xlogx(values: np.ndarray) -> np.ndarray:
    """Elementwise ``x ln x`` with ``0 ln 0 = 0``."""
    values = np.asarray(values, dtype=np.float64)
    out = np.zeros_like(values)
    positive = values > 0.0
    np.log(values, out=out, where=positive)
    out *= values
    return out


def _xlogx_scalar(x: float) -> float:
    return x * math.log(x) if x > 0.0 else 0.0


def shared_index(dcfs) -> dict:
    """A deterministic column index over the union of the DCFs' supports.

    Columns are sorted when the keys allow it (value/group ids are ints
    everywhere in this codebase); unsortable key mixes keep first-seen
    order, which is still deterministic for deterministic inputs.
    """
    keys: dict = {}
    for dcf in dcfs:
        for key in dcf.mass:
            if key not in keys:
                keys[key] = len(keys)
    try:
        ordered = sorted(keys)
    except TypeError:
        return keys
    return {key: position for position, key in enumerate(ordered)}


def _index_lookup(index: dict) -> np.ndarray | None:
    """An ``int64`` key -> matrix-column LUT for an all-int column index.

    Value/group ids are dense non-negative ints everywhere in this codebase,
    so the LUT is about as large as the index itself; ``None`` when the keys
    are not ints (or are too sparse for a table to make sense), in which
    case callers gather through the dict.
    """
    if not index:
        return np.zeros(0, dtype=np.int64)
    keys = list(index.keys())
    if not all(type(key) is int for key in keys):
        return None
    key_array = np.fromiter(keys, dtype=np.int64, count=len(keys))
    low = int(key_array.min())
    high = int(key_array.max())
    if low < 0 or high + 1 > 4 * len(keys) + 1024:
        return None
    lut = np.full(high + 1, -1, dtype=np.int64)
    lut[key_array] = np.fromiter(index.values(), dtype=np.int64, count=len(keys))
    return lut


def _gather_row(lut: np.ndarray, columns: np.ndarray, values: np.ndarray,
                out: np.ndarray) -> bool:
    """Scatter ``values`` into ``out`` at the LUT positions of ``columns``.

    Returns ``False`` (leaving ``out`` untouched) when some column is
    missing from the LUT -- the caller decides whether missing columns are
    droppable or an error.
    """
    if columns.size == 0:
        return True
    if int(columns[0]) < 0 or int(columns[-1]) >= lut.size:
        return False
    positions = lut[columns]
    if positions.min() < 0:
        return False
    out[positions] = values
    return True


def _gather_columns(index: dict, mass) -> tuple[list, np.ndarray]:
    """Positions and values of a sparse mass dict under a column index.

    Columns absent from the index are dropped: their ``m ln m`` contribution
    to ``S_merged`` cancels against ``S_query`` exactly, so they never affect
    the cost (disjoint-support columns are free).
    """
    columns: list = []
    values: list = []
    get = index.get
    for key, m in mass.items():
        if m <= 0.0:
            continue
        position = get(key)
        if position is not None:
            columns.append(position)
            values.append(m)
    return columns, np.asarray(values, dtype=np.float64)


class DenseDCFSet:
    """A packed, read-only view of a fixed collection of DCFs.

    Attributes
    ----------
    index:
        ``{column key: matrix column}`` shared by all rows.
    matrix:
        ``(n, d)`` float64 joint masses; row ``r`` is ``dcfs[r]``.
    weights:
        ``(n,)`` cluster priors ``p(c)``.
    wlogw / row_log_sums:
        Cached ``w ln w`` and ``S = sum m ln m`` per row -- computed once at
        pack time, never per pairwise call.
    """

    __slots__ = ("index", "matrix", "weights", "wlogw", "row_log_sums",
                 "_supports")

    def __init__(self, index: dict, matrix: np.ndarray, weights: np.ndarray):
        self.index = index
        self.matrix = np.asarray(matrix, dtype=np.float64)
        self.weights = np.asarray(weights, dtype=np.float64)
        self.wlogw = _xlogx(self.weights)
        self.row_log_sums = _xlogx(self.matrix).sum(axis=1)
        self._supports = None

    @property
    def supports(self) -> list:
        """Per-row nonzero columns, for support-restricted pairwise scans.

        Computed lazily: the Phase-3 assignment path never touches it.
        """
        if self._supports is None:
            self._supports = [np.flatnonzero(row) for row in self.matrix]
        return self._supports

    @classmethod
    def pack(cls, dcfs, index: dict | None = None) -> "DenseDCFSet":
        """Pack a DCF collection over a shared (or provided) column index.

        Rows gather through each DCF's sorted column arrays and an int
        lookup table where the keys allow it; columns absent from the index
        are dropped (their contribution cancels, see ``_gather_columns``).
        """
        global _pack_seconds
        started = time.perf_counter()
        dcfs = list(dcfs)
        if not dcfs:
            raise ValueError("cannot pack zero DCFs")
        if index is None:
            index = shared_index(dcfs)
        matrix = np.zeros((len(dcfs), len(index)), dtype=np.float64)
        weights = np.empty(len(dcfs), dtype=np.float64)
        lut = _index_lookup(index)
        for r, dcf in enumerate(dcfs):
            weights[r] = dcf.weight
            row = matrix[r]
            arrays = dcf.arrays() if lut is not None else None
            if arrays is not None:
                columns, values = arrays
                if _gather_row(lut, columns, values, row):
                    continue
                if lut.size:
                    # Some column is outside the index: drop just those.
                    keep = (columns >= 0) & (columns < lut.size)
                    positions = lut[np.where(keep, columns, 0)]
                    keep &= positions >= 0
                    row[positions[keep]] = values[keep]
                continue
            for key, m in dcf.mass.items():
                position = index.get(key)
                if position is not None:
                    row[position] = m
        packed = cls(index, matrix, weights)
        _pack_seconds += time.perf_counter() - started
        return packed

    def __len__(self) -> int:
        return self.matrix.shape[0]


def merge_cost_many(dense: DenseDCFSet, mass, weight: float) -> np.ndarray:
    """``delta_I`` (bits) of merging one DCF into every row of ``dense``.

    ``mass`` is the query's sparse joint-mass mapping
    ``{column: p(c) p(t|c)}`` and ``weight`` its prior.  Runs in
    ``O(n * |supp(query)|)`` vectorized element operations.
    """
    columns, values = _gather_columns(dense.index, mass)
    base = _xlogx(dense.weights + weight) - dense.wlogw - _xlogx_scalar(weight)
    if columns:
        sub = dense.matrix[:, columns]
        base += _xlogx(values).sum()
        base += (_xlogx(sub) - _xlogx(sub + values)).sum(axis=1)
    return _quantize(np.maximum(base / _LOG2, 0.0))


def assign_many(dense: DenseDCFSet, rows, priors) -> list[int] | None:
    """Closest packed row per object, for one block of Phase-3 objects.

    ``rows`` are sparse conditionals ``p(T|v)`` and ``priors`` the matching
    ``p(v)``; the block is flattened into one CSR-style gather so the whole
    chunk costs a handful of NumPy calls instead of per-object dispatch.
    Returns ``None`` when the block cannot be packed (non-int column keys,
    an empty row, or an index without a lookup table) -- the caller then
    runs the per-object :func:`merge_cost_many` path, which handles every
    case.  Ties resolve to the lowest representative index and every loss
    passes the shared quantization grid, so assignments are identical to
    the per-object path's.
    """
    lut = _index_lookup(dense.index)
    if lut is None or lut.size == 0:
        return None
    columns: list = []
    values: list = []
    indptr = np.empty(len(rows) + 1, dtype=np.int64)
    indptr[0] = 0
    for i, (row, prior) in enumerate(zip(rows, priors)):
        if prior <= 0.0:
            raise ValueError("cluster prior must be positive")
        before = len(columns)
        for key, p in row.items():
            if p > 0.0:
                columns.append(key)
                values.append(prior * p)
        if len(columns) == before:
            return None  # empty row: np.add.reduceat cannot segment it
        indptr[i + 1] = len(columns)
    try:
        column_array = np.array(columns, dtype=np.int64)
    except (TypeError, ValueError, OverflowError):
        return None
    value_array = np.array(values, dtype=np.float64)

    # Columns outside the packed index contribute exactly zero
    # (xlogx(g) - xlogx(g + 0) = 0), so misses gather column 0 with value 0.
    inside = (column_array >= 0) & (column_array < lut.size)
    positions = lut[np.where(inside, column_array, 0)]
    np.putmask(positions, ~inside, -1)
    misses = positions < 0
    if misses.any():
        positions[misses] = 0
        value_array[misses] = 0.0

    gathered = dense.matrix[:, positions]  # (k, nnz)
    tail = _xlogx(gathered)
    tail -= _xlogx(gathered + value_array)
    starts = indptr[:-1]
    per_object = np.add.reduceat(tail, starts, axis=1)  # (k, n)
    per_object += np.add.reduceat(_xlogx(value_array), starts)
    prior_array = np.asarray(priors, dtype=np.float64)
    costs = (
        _xlogx(dense.weights[:, None] + prior_array[None, :])
        - dense.wlogw[:, None]
        - _xlogx(prior_array)[None, :]
        + per_object
    ) / _LOG2
    np.maximum(costs, 0.0, out=costs)
    costs = _quantize(costs)
    return np.argmin(costs, axis=0).tolist()


def pairwise_merge_costs(dense: DenseDCFSet) -> np.ndarray:
    """The full symmetric ``(n, n)`` matrix of pairwise merge costs (bits).

    Row ``i`` is computed against rows ``i+1..n`` restricted to row ``i``'s
    support, then mirrored; the diagonal is zero.
    """
    n = len(dense)
    matrix, weights, wlogw = dense.matrix, dense.weights, dense.wlogw
    out = np.zeros((n, n), dtype=np.float64)
    for i in range(n - 1):
        columns = dense.supports[i]
        values = matrix[i, columns]
        sub = matrix[i + 1 :, columns]
        losses = (
            _xlogx(weights[i + 1 :] + weights[i])
            - wlogw[i + 1 :]
            - wlogw[i]
            + dense.row_log_sums[i]
            + (_xlogx(sub) - _xlogx(sub + values)).sum(axis=1)
        ) / _LOG2
        np.maximum(losses, 0.0, out=losses)
        losses = _quantize(losses)
        out[i, i + 1 :] = losses
        out[i + 1 :, i] = losses
    return out


def _closest_entry_scalar(entries, dcf) -> tuple[int, float]:
    """The sparse strict-``<`` scan (tiny node scans; identical results)."""
    best_index, best_cost = 0, merge_cost(entries[0], dcf)
    for index in range(1, len(entries)):
        cost = merge_cost(entries[index], dcf)
        if cost < best_cost:
            best_index, best_cost = index, cost
    return best_index, best_cost


def closest_entry(entries, dcf) -> tuple[int, float]:
    """Index and cost of the entry closest to ``dcf`` (minimum ``delta_I``).

    The batched twin of the DCF-tree's sparse node scan: packs only the
    columns in ``supp(dcf)``, so cost is ``O(|entries| * |supp(dcf)|)``
    regardless of how wide the entries' own supports are.  Ties resolve to
    the lowest index, exactly like the sparse strict-``<`` loop.

    Scans gathering fewer than :data:`DENSE_MIN_SCAN_CELLS` cells run that
    sparse loop directly -- on a branching-4 tree node the NumPy dispatch
    overhead is several times the arithmetic.  Both implementations emit
    grid-quantized losses, so the answer is identical either way.
    """
    widest = max(len(entry.mass) for entry in entries)
    if len(entries) * min(len(dcf.mass), widest) < DENSE_MIN_SCAN_CELLS:
        return _closest_entry_scalar(entries, dcf)
    query = dcf.arrays()
    if query is None:
        return _closest_entry_scalar(entries, dcf)
    global _pack_seconds
    started = time.perf_counter()
    q_columns, values = query
    sub = np.zeros((len(entries), q_columns.size), dtype=np.float64)
    for r, entry in enumerate(entries):
        arrays = entry.arrays()
        if arrays is None:
            get = entry.mass.get
            sub[r] = [get(int(key), 0.0) for key in q_columns]
            continue
        e_columns, e_values = arrays
        if e_columns.size == 0:
            continue
        positions = np.minimum(
            np.searchsorted(e_columns, q_columns), e_columns.size - 1
        )
        hits = e_columns[positions] == q_columns
        sub[r, hits] = e_values[positions[hits]]
    weights = np.fromiter(
        (entry.weight for entry in entries), dtype=np.float64, count=len(entries)
    )
    _pack_seconds += time.perf_counter() - started
    costs = (
        _xlogx(weights + dcf.weight)
        - _xlogx(weights)
        - _xlogx_scalar(dcf.weight)
        + _xlogx(values).sum()
        + (_xlogx(sub) - _xlogx(sub + values)).sum(axis=1)
    ) / _LOG2
    np.maximum(costs, 0.0, out=costs)
    costs = _quantize(costs)
    best = int(np.argmin(costs))
    return best, float(costs[best])


class DenseMergeEngine:
    """Incrementally growing packed store backing the dense AIB loop.

    Rows are preallocated for up to ``2n - 1`` nodes so merged clusters get
    fresh ids ``n, n+1, ...`` exactly as the sparse loop assigns them.  Per
    node the engine caches the prior, ``w ln w``, ``S = sum m ln m`` and the
    support column array, all computed once at construction or merge time.
    """

    __slots__ = ("index", "matrix", "weights", "wlogw", "log_sums", "supports")

    def __init__(self, dcfs, index: dict | None = None):
        global _pack_seconds
        started = time.perf_counter()
        dcfs = list(dcfs)
        if not dcfs:
            raise ValueError("cannot build a merge engine over zero DCFs")
        self.index = shared_index(dcfs) if index is None else index
        n = len(dcfs)
        capacity = 2 * n - 1
        d = len(self.index)
        self.matrix = np.zeros((capacity, d), dtype=np.float64)
        self.weights = np.zeros(capacity, dtype=np.float64)
        self.wlogw = np.zeros(capacity, dtype=np.float64)
        self.log_sums = np.zeros(capacity, dtype=np.float64)
        self.supports: list = [None] * capacity
        lut = _index_lookup(self.index)
        for r, dcf in enumerate(dcfs):
            row = self.matrix[r]
            arrays = dcf.arrays() if lut is not None else None
            if arrays is not None and _gather_row(lut, arrays[0], arrays[1], row):
                self.supports[r] = np.flatnonzero(row)
            else:
                # Engine semantics: every key must be in the index (KeyError
                # otherwise, exactly like the direct dict fill).
                for key, m in dcf.mass.items():
                    row[self.index[key]] = m
                self.supports[r] = np.flatnonzero(row)
            self.weights[r] = dcf.weight
            self.wlogw[r] = _xlogx_scalar(dcf.weight)
            # The DCF's additively maintained fsum, not a fresh pairwise
            # sum: workers rebuilding an engine from pickled DCFs land on
            # the very same float the coordinator holds.
            self.log_sums[r] = dcf.mass_log_sum
        _pack_seconds += time.perf_counter() - started

    @property
    def n_columns(self) -> int:
        return self.matrix.shape[1]

    def merge(self, i: int, j: int, new_id: int) -> None:
        """Materialize the merged cluster of nodes ``i`` and ``j`` at ``new_id``."""
        row = self.matrix[new_id]
        np.add(self.matrix[i], self.matrix[j], out=row)
        weight = self.weights[i] + self.weights[j]
        self.weights[new_id] = weight
        self.wlogw[new_id] = _xlogx_scalar(weight)
        support = np.union1d(self.supports[i], self.supports[j])
        self.supports[new_id] = support
        self.log_sums[new_id] = _xlogx(row[support]).sum()

    def costs(self, node: int, others) -> np.ndarray:
        """Merge costs (bits) of ``node`` against each node id in ``others``.

        Restricted to ``node``'s support columns while that support is
        narrow; once it covers most of the index the full-width single-pass
        form (using the cached per-row ``S``) is cheaper and is used
        instead.  Either way a freshly merged cluster is compared against
        all survivors in one vectorized sweep.
        """
        others = np.asarray(others, dtype=np.intp)
        columns = self.supports[node]
        if 2 * columns.size > self.n_columns:
            # Wide support: one xlogx pass over full rows beats two passes
            # over the gathered submatrix.
            merged = self.matrix[others] + self.matrix[node]
            tail = self.log_sums[others] - _xlogx(merged).sum(axis=1)
        else:
            sub = self.matrix[np.ix_(others, columns)]
            tail = (_xlogx(sub) - _xlogx(sub + self.matrix[node, columns])).sum(axis=1)
        losses = (
            _xlogx(self.weights[others] + self.weights[node])
            - self.wlogw[others]
            - self.wlogw[node]
            + self.log_sums[node]
            + tail
        ) / _LOG2
        return _quantize(np.maximum(losses, 0.0))


class CandidateMatrix:
    """Pairwise candidate store with cached per-row minima.

    The dense twin of the sparse AIB loop's lazy-deletion heap.  Cell
    ``(a, b)`` (``a < b``, both alive) holds the merge cost computed when
    the younger node was born; dead and unborn pairs are ``+inf``.
    :meth:`best` returns the lexicographically smallest ``(cost, a, b)``
    triple -- ``np.argmin``'s first-occurrence rule over id-ordered rows and
    columns implements exactly the heap's ``(loss, node ids)`` tie-break, so
    the selected merge sequence is identical.
    """

    __slots__ = ("costs", "row_min", "row_argmin")

    def __init__(self, capacity: int):
        self.costs = np.full((capacity, capacity), np.inf, dtype=np.float64)
        self.row_min = np.full(capacity, np.inf, dtype=np.float64)
        self.row_argmin = np.zeros(capacity, dtype=np.intp)

    def fill_row(self, a: int, costs: np.ndarray) -> None:
        """Set the costs of pairs ``(a, a+1 .. a+len(costs))``."""
        self.costs[a, a + 1 : a + 1 + costs.size] = costs
        self._rescan(a)

    def _rescan(self, a: int) -> None:
        row = self.costs[a]
        b = int(np.argmin(row))
        self.row_min[a] = row[b]
        self.row_argmin[a] = b

    def best(self) -> tuple[int, int, float]:
        """The minimum-cost alive pair ``(a, b, cost)``, heap-tie-broken."""
        a = int(np.argmin(self.row_min))
        return a, int(self.row_argmin[a]), float(self.row_min[a])

    def merge(self, i: int, j: int, new_id: int, others, new_costs) -> None:
        """Retire ``i``/``j``, add ``new_id``'s pairs, refresh cached minima.

        ``others`` are the surviving node ids and ``new_costs`` their costs
        against the merged cluster (pairs ``(other, new_id)``, since
        ``new_id`` is always the largest id).
        """
        costs = self.costs
        costs[i, :] = np.inf
        costs[:, i] = np.inf
        costs[j, :] = np.inf
        costs[:, j] = np.inf
        self.row_min[i] = self.row_min[j] = np.inf
        stale = np.flatnonzero(
            (self.row_argmin == i) | (self.row_argmin == j)
        )
        if len(others):
            others = np.asarray(others, dtype=np.intp)
            new_costs = np.asarray(new_costs, dtype=np.float64)
            costs[others, new_id] = new_costs
            # Strict < keeps the smaller column id on ties (new_id is the
            # largest id, so the incumbent wins them, as in the heap).
            better = new_costs < self.row_min[others]
            improved = others[better]
            self.row_min[improved] = new_costs[better]
            self.row_argmin[improved] = new_id
        for a in stale:
            if a != i and a != j:
                self._rescan(int(a))
