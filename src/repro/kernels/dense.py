"""Dense/packed DCF representations and batched ``delta_I`` kernels.

All kernels work in *joint-mass* space (``m_k = p(c) * p(k|c)``), the same
representation the sparse :class:`repro.clustering.dcf.DCF` uses, and
evaluate the information loss of Eq. 3 through the entropy identity

    delta_I(a, b) * ln 2 = W ln W - w_a ln w_a - w_b ln w_b
                           + S_a + S_b - S_merged

with ``W = w_a + w_b`` and ``S = sum_k m_k ln m_k`` -- the vectorized twin
of the ``H(p_bar) - pi H(p) - pi H(q)`` Jensen-Shannon form.  Because
columns outside the support of the *query* operand cancel between ``S_a``
and ``S_merged``, every kernel restricts its column gather to the query's
support: cost is ``O(rows * |supp(query)|)`` in vectorized element
operations, mirroring the smaller-operand trick of the sparse path.

Zero masses are handled with the ``0 ln 0 = 0`` convention throughout, so
zero-mass columns and disjoint supports agree exactly with the sparse
implementation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.clustering.dcf import LOSS_FLOOR, LOSS_QUANTUM_BITS

_LOG2 = math.log(2.0)

#: Legal values of the ``backend=`` knob.
BACKENDS = ("auto", "sparse", "dense")

#: ``backend="auto"`` switches AIB to the dense engine at this many clusters.
DENSE_MIN_OBJECTS = 32

#: ``backend="auto"`` switches a DCF-tree node scan to the batched kernel at
#: this many entries (below it the NumPy call overhead dominates).
DENSE_MIN_ENTRIES = 8

#: ``backend="auto"`` packs LIMBO Phase-3 representatives at this many reps.
DENSE_MIN_REPRESENTATIVES = 8

#: ``backend="auto"`` falls back to sparse when the packed matrix would
#: exceed this many cells (the dense AIB engine allocates ~2n rows).
DENSE_MAX_CELLS = 50_000_000

#: ``backend="auto"`` caps the dense AIB engine at this many starting
#: clusters: the candidate matrix is O((2n)^2) memory.  AIB inputs are
#: normally LIMBO leaf summaries (hundreds), far below the cap.
DENSE_MAX_OBJECTS = 2048


def validate_backend(backend: str) -> str:
    """Check a ``backend=`` knob value, returning it unchanged."""
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {'/'.join(BACKENDS)}, got {backend!r}"
        )
    return backend


def dense_bytes(n: int, n_columns: int | None = None,
                candidates: bool = False) -> int:
    """Byte estimate of the dense path's allocations for ``n`` objects.

    The merge engine packs a ``(2n - 1) x d`` float64 joint-mass matrix
    (plus same-shaped scratch); with ``candidates`` the AIB candidate
    matrix adds ``(2n)^2`` float64 cells.  Used for the memory governor's
    cooperative refusal -- deterministic, data-independent given shapes.
    """
    total = 2 * (2 * n) * (n_columns or 1) * 8
    if candidates:
        total += (2 * n) * (2 * n) * 8
    return total


def use_dense(
    backend: str,
    n: int,
    n_columns: int | None = None,
    minimum: int = DENSE_MIN_OBJECTS,
    maximum: int | None = None,
    governor=None,
    candidates: bool = False,
) -> bool:
    """Resolve the knob for a call site over ``n`` objects.

    ``auto`` picks the dense kernels once ``n`` reaches ``minimum``, stays
    at or below ``maximum`` (when given), and the packed matrix fits within
    :data:`DENSE_MAX_CELLS`; explicit values are always honored.  With a
    :class:`repro.budget.MemoryGovernor`, ``auto`` additionally refuses a
    dense allocation whose :func:`dense_bytes` estimate would cross the
    byte cap -- the sparse oracle needs no recovery path, so this refusal
    degrades performance, never results.
    """
    validate_backend(backend)
    if backend == "sparse":
        return False
    if backend == "dense":
        return True
    if n < minimum:
        return False
    if maximum is not None and n > maximum:
        return False
    if n_columns is not None and 2 * n * n_columns > DENSE_MAX_CELLS:
        return False
    if governor is not None and governor.would_exceed(
        dense_bytes(n, n_columns, candidates=candidates)
    ):
        return False
    return True


def _quantize(losses: np.ndarray) -> np.ndarray:
    """Vectorized twin of :func:`repro.clustering.dcf.quantize_loss`.

    ``frexp``/``ldexp`` are exact and ``np.rint`` rounds half-to-even like
    Python's ``round``, so this produces bitwise the same grid points as the
    scalar version -- the property the cross-backend tie-break relies on.
    """
    mantissa, exponent = np.frexp(losses)
    snapped = np.ldexp(
        np.rint(np.ldexp(mantissa, LOSS_QUANTUM_BITS)),
        exponent - LOSS_QUANTUM_BITS,
    )
    snapped[losses < LOSS_FLOOR] = 0.0
    return snapped


def _xlogx(values: np.ndarray) -> np.ndarray:
    """Elementwise ``x ln x`` with ``0 ln 0 = 0``."""
    values = np.asarray(values, dtype=np.float64)
    out = np.zeros_like(values)
    positive = values > 0.0
    np.log(values, out=out, where=positive)
    out *= values
    return out


def _xlogx_scalar(x: float) -> float:
    return x * math.log(x) if x > 0.0 else 0.0


def shared_index(dcfs) -> dict:
    """A deterministic column index over the union of the DCFs' supports.

    Columns are sorted when the keys allow it (value/group ids are ints
    everywhere in this codebase); unsortable key mixes keep first-seen
    order, which is still deterministic for deterministic inputs.
    """
    keys: dict = {}
    for dcf in dcfs:
        for key in dcf.mass:
            if key not in keys:
                keys[key] = len(keys)
    try:
        ordered = sorted(keys)
    except TypeError:
        return keys
    return {key: position for position, key in enumerate(ordered)}


def _gather_columns(index: dict, mass) -> tuple[list, np.ndarray]:
    """Positions and values of a sparse mass dict under a column index.

    Columns absent from the index are dropped: their ``m ln m`` contribution
    to ``S_merged`` cancels against ``S_query`` exactly, so they never affect
    the cost (disjoint-support columns are free).
    """
    columns: list = []
    values: list = []
    get = index.get
    for key, m in mass.items():
        if m <= 0.0:
            continue
        position = get(key)
        if position is not None:
            columns.append(position)
            values.append(m)
    return columns, np.asarray(values, dtype=np.float64)


class DenseDCFSet:
    """A packed, read-only view of a fixed collection of DCFs.

    Attributes
    ----------
    index:
        ``{column key: matrix column}`` shared by all rows.
    matrix:
        ``(n, d)`` float64 joint masses; row ``r`` is ``dcfs[r]``.
    weights:
        ``(n,)`` cluster priors ``p(c)``.
    wlogw / row_log_sums:
        Cached ``w ln w`` and ``S = sum m ln m`` per row -- computed once at
        pack time, never per pairwise call.
    """

    __slots__ = ("index", "matrix", "weights", "wlogw", "row_log_sums", "supports")

    def __init__(self, index: dict, matrix: np.ndarray, weights: np.ndarray):
        self.index = index
        self.matrix = np.asarray(matrix, dtype=np.float64)
        self.weights = np.asarray(weights, dtype=np.float64)
        self.wlogw = _xlogx(self.weights)
        self.row_log_sums = _xlogx(self.matrix).sum(axis=1)
        #: Per-row nonzero columns, for support-restricted pairwise scans.
        self.supports = [np.flatnonzero(row) for row in self.matrix]

    @classmethod
    def pack(cls, dcfs, index: dict | None = None) -> "DenseDCFSet":
        """Pack a DCF collection over a shared (or provided) column index."""
        dcfs = list(dcfs)
        if not dcfs:
            raise ValueError("cannot pack zero DCFs")
        if index is None:
            index = shared_index(dcfs)
        matrix = np.zeros((len(dcfs), len(index)), dtype=np.float64)
        weights = np.empty(len(dcfs), dtype=np.float64)
        for r, dcf in enumerate(dcfs):
            weights[r] = dcf.weight
            row = matrix[r]
            for key, m in dcf.mass.items():
                position = index.get(key)
                if position is not None:
                    row[position] = m
        return cls(index, matrix, weights)

    def __len__(self) -> int:
        return self.matrix.shape[0]


def merge_cost_many(dense: DenseDCFSet, mass, weight: float) -> np.ndarray:
    """``delta_I`` (bits) of merging one DCF into every row of ``dense``.

    ``mass`` is the query's sparse joint-mass mapping
    ``{column: p(c) p(t|c)}`` and ``weight`` its prior.  Runs in
    ``O(n * |supp(query)|)`` vectorized element operations.
    """
    columns, values = _gather_columns(dense.index, mass)
    base = _xlogx(dense.weights + weight) - dense.wlogw - _xlogx_scalar(weight)
    if columns:
        sub = dense.matrix[:, columns]
        base += _xlogx(values).sum()
        base += (_xlogx(sub) - _xlogx(sub + values)).sum(axis=1)
    return _quantize(np.maximum(base / _LOG2, 0.0))


def pairwise_merge_costs(dense: DenseDCFSet) -> np.ndarray:
    """The full symmetric ``(n, n)`` matrix of pairwise merge costs (bits).

    Row ``i`` is computed against rows ``i+1..n`` restricted to row ``i``'s
    support, then mirrored; the diagonal is zero.
    """
    n = len(dense)
    matrix, weights, wlogw = dense.matrix, dense.weights, dense.wlogw
    out = np.zeros((n, n), dtype=np.float64)
    for i in range(n - 1):
        columns = dense.supports[i]
        values = matrix[i, columns]
        sub = matrix[i + 1 :, columns]
        losses = (
            _xlogx(weights[i + 1 :] + weights[i])
            - wlogw[i + 1 :]
            - wlogw[i]
            + dense.row_log_sums[i]
            + (_xlogx(sub) - _xlogx(sub + values)).sum(axis=1)
        ) / _LOG2
        np.maximum(losses, 0.0, out=losses)
        losses = _quantize(losses)
        out[i, i + 1 :] = losses
        out[i + 1 :, i] = losses
    return out


def closest_entry(entries, dcf) -> tuple[int, float]:
    """Index and cost of the entry closest to ``dcf`` (minimum ``delta_I``).

    The batched twin of the DCF-tree's sparse node scan: packs only the
    columns in ``supp(dcf)``, so cost is ``O(|entries| * |supp(dcf)|)``
    regardless of how wide the entries' own supports are.  Ties resolve to
    the lowest index, exactly like the sparse strict-``<`` loop.
    """
    keys = list(dcf.mass)
    values = np.fromiter(dcf.mass.values(), dtype=np.float64, count=len(keys))
    sub = np.empty((len(entries), len(keys)), dtype=np.float64)
    for r, entry in enumerate(entries):
        get = entry.mass.get
        sub[r] = [get(key, 0.0) for key in keys]
    weights = np.fromiter(
        (entry.weight for entry in entries), dtype=np.float64, count=len(entries)
    )
    costs = (
        _xlogx(weights + dcf.weight)
        - _xlogx(weights)
        - _xlogx_scalar(dcf.weight)
        + _xlogx(values).sum()
        + (_xlogx(sub) - _xlogx(sub + values)).sum(axis=1)
    ) / _LOG2
    np.maximum(costs, 0.0, out=costs)
    costs = _quantize(costs)
    best = int(np.argmin(costs))
    return best, float(costs[best])


class DenseMergeEngine:
    """Incrementally growing packed store backing the dense AIB loop.

    Rows are preallocated for up to ``2n - 1`` nodes so merged clusters get
    fresh ids ``n, n+1, ...`` exactly as the sparse loop assigns them.  Per
    node the engine caches the prior, ``w ln w``, ``S = sum m ln m`` and the
    support column array, all computed once at construction or merge time.
    """

    __slots__ = ("index", "matrix", "weights", "wlogw", "log_sums", "supports")

    def __init__(self, dcfs, index: dict | None = None):
        dcfs = list(dcfs)
        if not dcfs:
            raise ValueError("cannot build a merge engine over zero DCFs")
        self.index = shared_index(dcfs) if index is None else index
        n = len(dcfs)
        capacity = 2 * n - 1
        d = len(self.index)
        self.matrix = np.zeros((capacity, d), dtype=np.float64)
        self.weights = np.zeros(capacity, dtype=np.float64)
        self.wlogw = np.zeros(capacity, dtype=np.float64)
        self.log_sums = np.zeros(capacity, dtype=np.float64)
        self.supports: list = [None] * capacity
        for r, dcf in enumerate(dcfs):
            row = self.matrix[r]
            for key, m in dcf.mass.items():
                row[self.index[key]] = m
            self.weights[r] = dcf.weight
            self.wlogw[r] = _xlogx_scalar(dcf.weight)
            self.supports[r] = np.flatnonzero(row)
            self.log_sums[r] = _xlogx(row[self.supports[r]]).sum()

    @property
    def n_columns(self) -> int:
        return self.matrix.shape[1]

    def merge(self, i: int, j: int, new_id: int) -> None:
        """Materialize the merged cluster of nodes ``i`` and ``j`` at ``new_id``."""
        row = self.matrix[new_id]
        np.add(self.matrix[i], self.matrix[j], out=row)
        weight = self.weights[i] + self.weights[j]
        self.weights[new_id] = weight
        self.wlogw[new_id] = _xlogx_scalar(weight)
        support = np.union1d(self.supports[i], self.supports[j])
        self.supports[new_id] = support
        self.log_sums[new_id] = _xlogx(row[support]).sum()

    def costs(self, node: int, others) -> np.ndarray:
        """Merge costs (bits) of ``node`` against each node id in ``others``.

        Restricted to ``node``'s support columns while that support is
        narrow; once it covers most of the index the full-width single-pass
        form (using the cached per-row ``S``) is cheaper and is used
        instead.  Either way a freshly merged cluster is compared against
        all survivors in one vectorized sweep.
        """
        others = np.asarray(others, dtype=np.intp)
        columns = self.supports[node]
        if 2 * columns.size > self.n_columns:
            # Wide support: one xlogx pass over full rows beats two passes
            # over the gathered submatrix.
            merged = self.matrix[others] + self.matrix[node]
            tail = self.log_sums[others] - _xlogx(merged).sum(axis=1)
        else:
            sub = self.matrix[np.ix_(others, columns)]
            tail = (_xlogx(sub) - _xlogx(sub + self.matrix[node, columns])).sum(axis=1)
        losses = (
            _xlogx(self.weights[others] + self.weights[node])
            - self.wlogw[others]
            - self.wlogw[node]
            + self.log_sums[node]
            + tail
        ) / _LOG2
        return _quantize(np.maximum(losses, 0.0))


class CandidateMatrix:
    """Pairwise candidate store with cached per-row minima.

    The dense twin of the sparse AIB loop's lazy-deletion heap.  Cell
    ``(a, b)`` (``a < b``, both alive) holds the merge cost computed when
    the younger node was born; dead and unborn pairs are ``+inf``.
    :meth:`best` returns the lexicographically smallest ``(cost, a, b)``
    triple -- ``np.argmin``'s first-occurrence rule over id-ordered rows and
    columns implements exactly the heap's ``(loss, node ids)`` tie-break, so
    the selected merge sequence is identical.
    """

    __slots__ = ("costs", "row_min", "row_argmin")

    def __init__(self, capacity: int):
        self.costs = np.full((capacity, capacity), np.inf, dtype=np.float64)
        self.row_min = np.full(capacity, np.inf, dtype=np.float64)
        self.row_argmin = np.zeros(capacity, dtype=np.intp)

    def fill_row(self, a: int, costs: np.ndarray) -> None:
        """Set the costs of pairs ``(a, a+1 .. a+len(costs))``."""
        self.costs[a, a + 1 : a + 1 + costs.size] = costs
        self._rescan(a)

    def _rescan(self, a: int) -> None:
        row = self.costs[a]
        b = int(np.argmin(row))
        self.row_min[a] = row[b]
        self.row_argmin[a] = b

    def best(self) -> tuple[int, int, float]:
        """The minimum-cost alive pair ``(a, b, cost)``, heap-tie-broken."""
        a = int(np.argmin(self.row_min))
        return a, int(self.row_argmin[a]), float(self.row_min[a])

    def merge(self, i: int, j: int, new_id: int, others, new_costs) -> None:
        """Retire ``i``/``j``, add ``new_id``'s pairs, refresh cached minima.

        ``others`` are the surviving node ids and ``new_costs`` their costs
        against the merged cluster (pairs ``(other, new_id)``, since
        ``new_id`` is always the largest id).
        """
        costs = self.costs
        costs[i, :] = np.inf
        costs[:, i] = np.inf
        costs[j, :] = np.inf
        costs[:, j] = np.inf
        self.row_min[i] = self.row_min[j] = np.inf
        stale = np.flatnonzero(
            (self.row_argmin == i) | (self.row_argmin == j)
        )
        if len(others):
            others = np.asarray(others, dtype=np.intp)
            new_costs = np.asarray(new_costs, dtype=np.float64)
            costs[others, new_id] = new_costs
            # Strict < keeps the smaller column id on ties (new_id is the
            # largest id, so the incumbent wins them, as in the heap).
            better = new_costs < self.row_min[others]
            improved = others[better]
            self.row_min[improved] = new_costs[better]
            self.row_argmin[improved] = new_id
        for a in stale:
            if a != i and a != j:
                self._rescan(int(a))
