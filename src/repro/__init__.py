"""repro -- information-theoretic tools for mining database structure.

A from-scratch reproduction of Andritsos, Miller & Tsaparas,
*Information-Theoretic Tools for Mining Database Structure from Large Data
Sets* (SIGMOD 2004): LIMBO/AIB information-bottleneck clustering, duplication
summaries over tuples / attribute values / attributes, FDEP and TANE
dependency mining, Maier minimum covers, and the FD-RANK redundancy ranking
with the RAD and RTR measures.

Quickstart::

    from repro import Relation, StructureDiscovery

    r = Relation(["A", "B", "C"],
                 [("a", "1", "p"), ("a", "1", "r"),
                  ("w", "2", "x"), ("y", "2", "x"), ("z", "2", "x")])
    print(StructureDiscovery().run(r).render())
"""

from repro.audit import AuditCertificate, Auditor, audit_json_report
from repro.budget import Budget, MemoryGovernor
from repro.checkpoint import CheckpointStore
from repro.clustering import AIBResult, DCF, DCFTree, Dendrogram, Limbo, aib
from repro.core import (
    AttributeGroupingResult,
    Decomposition,
    DiscoveryReport,
    DuplicateGroup,
    HorizontalPartitionResult,
    RankedFD,
    StructureDiscovery,
    TupleClusteringResult,
    ValueClusteringResult,
    ValueGroup,
    cluster_tuples,
    cluster_values,
    decompose_by_fd,
    eliminate_duplicates,
    fd_rank,
    find_duplicate_tuples,
    group_attributes,
    horizontal_partition,
    is_lossless,
    profile_relation,
    rad,
    redundancy_report,
    rtr,
    suggest_k,
    vertical_redesign,
)
from repro.fd import (
    FD,
    fdep,
    mine_approximate_fds,
    g3_error,
    holds,
    minimum_cover,
    tane,
)
from repro.errors import (
    CheckpointError,
    InputError,
    MemoryLimitExceeded,
    ReproError,
    ResourceLimitExceeded,
    SchemaError,
    StageFailure,
    SupervisorError,
)
from repro.parallel import ShardedExecutor
from repro.supervisor import Supervisor, SupervisorConfig
from repro.relation import (
    NULL,
    Attribute,
    IngestReport,
    find_correspondences,
    Relation,
    Schema,
    build_matrix_f,
    build_tuple_view,
    build_value_view,
    equi_join,
    load_csv,
    natural_join,
    read_csv,
    write_csv,
)

__version__ = "1.0.0"

__all__ = [
    "AIBResult",
    "Attribute",
    "AttributeGroupingResult",
    "AuditCertificate",
    "Auditor",
    "Budget",
    "CheckpointError",
    "CheckpointStore",
    "DCF",
    "DCFTree",
    "Decomposition",
    "Dendrogram",
    "DiscoveryReport",
    "DuplicateGroup",
    "FD",
    "HorizontalPartitionResult",
    "IngestReport",
    "InputError",
    "Limbo",
    "MemoryGovernor",
    "MemoryLimitExceeded",
    "NULL",
    "RankedFD",
    "Relation",
    "ReproError",
    "ResourceLimitExceeded",
    "Schema",
    "SchemaError",
    "ShardedExecutor",
    "StageFailure",
    "StructureDiscovery",
    "Supervisor",
    "SupervisorConfig",
    "SupervisorError",
    "TupleClusteringResult",
    "ValueClusteringResult",
    "ValueGroup",
    "aib",
    "audit_json_report",
    "build_matrix_f",
    "build_tuple_view",
    "build_value_view",
    "cluster_tuples",
    "cluster_values",
    "decompose_by_fd",
    "eliminate_duplicates",
    "equi_join",
    "fd_rank",
    "fdep",
    "find_duplicate_tuples",
    "g3_error",
    "group_attributes",
    "holds",
    "horizontal_partition",
    "is_lossless",
    "load_csv",
    "minimum_cover",
    "natural_join",
    "find_correspondences",
    "profile_relation",
    "rad",
    "read_csv",
    "redundancy_report",
    "rtr",
    "mine_approximate_fds",
    "suggest_k",
    "tane",
    "vertical_redesign",
    "write_csv",
]
