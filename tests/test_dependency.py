"""Unit tests for the FD type, closure and implication."""

import pytest

from repro.fd import FD, closure, implies, is_trivial, split_rhs


class TestFDType:
    def test_construction_from_iterables(self):
        fd = FD(["A", "B"], ["C"])
        assert fd.lhs == frozenset({"A", "B"})
        assert fd.rhs == frozenset({"C"})

    def test_construction_from_strings(self):
        fd = FD("A", "B")
        assert fd.lhs == frozenset({"A"})

    def test_empty_rhs_rejected(self):
        with pytest.raises(ValueError):
            FD({"A"}, set())

    def test_empty_lhs_allowed(self):
        fd = FD(set(), {"A"})
        assert fd.lhs == frozenset()

    def test_attributes_union(self):
        assert FD({"A"}, {"B", "C"}).attributes == frozenset("ABC")

    def test_equality_and_hash(self):
        assert FD({"A"}, {"B"}) == FD(["A"], ["B"])
        assert len({FD("A", "B"), FD("A", "B")}) == 1

    def test_str_sorted(self):
        assert str(FD({"B", "A"}, {"C"})) == "[A,B] -> [C]"
        assert str(FD(set(), {"C"})) == "[∅] -> [C]"

    def test_sort_key_deterministic(self):
        fds = [FD("B", "C"), FD("A", "C"), FD("A", "B")]
        ordered = sorted(fds, key=FD.sort_key)
        assert [str(f) for f in ordered] == [
            "[A] -> [B]",
            "[A] -> [C]",
            "[B] -> [C]",
        ]


class TestTrivialAndSplit:
    def test_trivial(self):
        assert is_trivial(FD({"A", "B"}, {"A"}))
        assert not is_trivial(FD({"A"}, {"B"}))

    def test_split_rhs(self):
        parts = split_rhs(FD({"A"}, {"B", "C"}))
        assert parts == [FD({"A"}, {"B"}), FD({"A"}, {"C"})]


class TestClosure:
    def test_reflexive(self):
        assert closure({"A"}, []) == frozenset({"A"})

    def test_chain(self):
        fds = [FD("A", "B"), FD("B", "C"), FD("C", "D")]
        assert closure({"A"}, fds) == frozenset("ABCD")

    def test_needs_full_lhs(self):
        fds = [FD({"A", "B"}, {"C"})]
        assert closure({"A"}, fds) == frozenset({"A"})
        assert closure({"A", "B"}, fds) == frozenset("ABC")

    def test_multi_pass_fixpoint(self):
        # C -> D only fires after A -> C does.
        fds = [FD("C", "D"), FD("A", "C")]
        assert closure({"A"}, fds) == frozenset("ACD")

    def test_empty_lhs_always_fires(self):
        fds = [FD(set(), {"K"}), FD("K", "L")]
        assert closure(set(), fds) == frozenset("KL")


class TestImplies:
    def test_transitivity(self):
        fds = [FD("A", "B"), FD("B", "C")]
        assert implies(fds, FD("A", "C"))

    def test_augmentation(self):
        fds = [FD("A", "B")]
        assert implies(fds, FD({"A", "C"}, {"B", "C"}))

    def test_not_implied(self):
        assert not implies([FD("A", "B")], FD("B", "A"))

    def test_trivial_always_implied(self):
        assert implies([], FD({"A", "B"}, {"A"}))
