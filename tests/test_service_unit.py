"""Unit tests for the service building blocks: admission, cache, client."""

import asyncio
import pickle
import threading
import time

import pytest

from repro.checkpoint import CheckpointStore
from repro.errors import (
    InputError,
    MemoryLimitExceeded,
    NotFoundError,
    ReproError,
    ResourceLimitExceeded,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.service import AdmissionController, ModelCache, ServiceClient
from repro.service.app import status_for
from repro.testing import inject


# -- admission control --------------------------------------------------------------


def run(coro):
    return asyncio.run(coro)


class TestAdmission:
    def test_admits_within_capacity(self):
        async def main():
            controller = AdmissionController(max_inflight=2, queue_depth=0)
            async with controller.slot():
                assert controller.inflight == 1
            assert controller.inflight == 0
            assert controller.admitted == 1

        run(main())

    def test_sheds_when_queue_full(self):
        async def main():
            controller = AdmissionController(max_inflight=1, queue_depth=1)
            release = asyncio.Event()

            async def hold():
                async with controller.slot():
                    await release.wait()

            holder = asyncio.ensure_future(hold())
            await asyncio.sleep(0)  # holder takes the slot
            waiter = asyncio.ensure_future(hold())
            await asyncio.sleep(0)  # waiter fills the queue
            assert controller.inflight == 1
            assert controller.waiting == 1
            with pytest.raises(ServiceOverloaded) as excinfo:
                async with controller.slot():
                    pass
            assert excinfo.value.retry_after >= 1
            assert controller.shed == 1
            release.set()
            await asyncio.gather(holder, waiter)
            assert controller.inflight == 0
            assert controller.admitted == 2

        run(main())

    def test_drain_refuses_new_work_and_waits_idle(self):
        async def main():
            controller = AdmissionController(max_inflight=1, queue_depth=4)
            release = asyncio.Event()

            async def hold():
                async with controller.slot():
                    await release.wait()

            holder = asyncio.ensure_future(hold())
            await asyncio.sleep(0)
            assert controller.start_drain() == 1
            with pytest.raises(ServiceUnavailable):
                async with controller.slot():
                    pass
            assert not await controller.wait_idle(grace=0.01)
            release.set()
            await holder
            assert await controller.wait_idle(grace=1.0)
            assert controller.refused_draining == 1

        run(main())

    def test_retry_after_scales_with_backlog(self):
        async def main():
            controller = AdmissionController(max_inflight=2, queue_depth=8)
            controller.service_time_ema = 2.0
            controller.inflight, controller.waiting = 2, 4
            # Backlog of 5 beyond capacity, drained 2 per 2s -> ceil(5).
            assert controller.retry_after() == 5
            controller.waiting = 0
            assert controller.retry_after() >= 1

        run(main())

    def test_observe_moves_the_ema(self):
        async def main():
            controller = AdmissionController(ema_alpha=0.5)
            before = controller.service_time_ema
            controller.observe(before + 2.0)
            assert controller.service_time_ema == pytest.approx(before + 1.0)

        run(main())


# -- the model cache ----------------------------------------------------------------


class TestModelCache:
    def test_single_flight_dedups_concurrent_computes(self):
        cache = ModelCache()
        calls = []
        barrier = threading.Barrier(4)

        def compute():
            calls.append(1)
            time.sleep(0.05)
            return {"model": 42}

        results = []

        def worker():
            barrier.wait()
            results.append(cache.get_or_compute("k", compute))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1
        assert all(result == {"model": 42} for result in results)
        assert cache.hits + cache.disk_hits + cache.computes >= 4 - 3

    def test_leader_failure_promotes_a_waiter(self):
        cache = ModelCache()
        behavior = [RuntimeError("leader died"), {"model": 1}]
        started = threading.Event()

        def compute():
            started.set()
            time.sleep(0.05)
            action = behavior.pop(0)
            if isinstance(action, Exception):
                raise action
            return action

        outcomes = []

        def worker():
            try:
                outcomes.append(cache.get_or_compute("k", compute))
            except RuntimeError as exc:
                outcomes.append(exc)

        leader = threading.Thread(target=worker)
        leader.start()
        started.wait(2.0)
        follower = threading.Thread(target=worker)
        follower.start()
        leader.join()
        follower.join()
        # The leader's own failure surfaced to it; the waiter recomputed
        # with its "own budget" instead of inheriting the failure.
        assert any(isinstance(outcome, RuntimeError) for outcome in outcomes)
        assert any(outcome == {"model": 1} for outcome in outcomes)

    def test_lru_eviction_under_byte_budget(self):
        payload = "x" * 1000
        nbytes = len(pickle.dumps(payload))
        cache = ModelCache(max_bytes=3 * nbytes + 10)
        for key in ("a", "b", "c"):
            cache.get_or_compute(key, lambda: payload)
        cache.get_or_compute("a", lambda: payload)  # refresh a's recency
        cache.get_or_compute("d", lambda: payload)  # evicts b (LRU)
        assert set(cache.resident_keys()) == {"c", "a", "d"}
        assert cache.evictions == 1

    def test_value_larger_than_budget_stays_disk_only(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cache = ModelCache(store=store, max_bytes=64)
        value = cache.get_or_compute("big", lambda: "y" * 10_000)
        assert value == "y" * 10_000
        assert cache.resident_keys() == []
        # ... but the durable layer still has it.
        assert ModelCache(store=store).peek("big") == "y" * 10_000

    def test_write_through_and_rehydration(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cache = ModelCache(store=store)
        cache.get_or_compute("k", lambda: {"model": 7})
        reborn = ModelCache(store=CheckpointStore(tmp_path))
        assert reborn.peek("k") == {"model": 7}
        assert reborn.disk_hits == 1
        assert reborn.computes == 0

    def test_persist_predicate_gates_write_through(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cache = ModelCache(store=store)
        cache.get_or_compute("degraded", lambda: {"model": 0},
                             persist=lambda value: False)
        assert cache.peek("degraded") == {"model": 0}  # resident
        assert ModelCache(store=store).peek("degraded") is None  # not durable

    def test_corrupt_snapshot_quarantines_and_recomputes(self, tmp_path):
        store = CheckpointStore(tmp_path)
        ModelCache(store=store).get_or_compute("k", lambda: {"model": 1})

        def flip(raw):
            data = bytearray(raw)
            data[-5] ^= 0xFF
            return bytes(data)

        reborn = ModelCache(store=CheckpointStore(tmp_path))
        with inject("service.cache_load", corrupt=flip) as fault:
            value = reborn.get_or_compute("k", lambda: {"model": 1})
        assert fault.fired == 1
        assert value == {"model": 1}
        assert reborn.computes == 1  # rot cost a recompute, never an answer
        assert list(tmp_path.glob("*.quarantined-*"))

    def test_unreadable_snapshot_recomputes(self, tmp_path):
        store = CheckpointStore(tmp_path)
        ModelCache(store=store).get_or_compute("k", lambda: {"model": 1})
        reborn = ModelCache(store=CheckpointStore(tmp_path))
        with inject("service.cache_load", raises=OSError("disk fell off")):
            assert reborn.get_or_compute("k", lambda: {"model": 2}) == \
                {"model": 2}
        assert reborn.rehydrate_failures == 1

    def test_invalidate_drops_both_layers(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cache = ModelCache(store=store)
        cache.get_or_compute("k", lambda: {"model": 1})
        cache.invalidate("k")
        assert cache.resident_keys() == []
        assert ModelCache(store=store).peek("k") is None


# -- the retrying client ------------------------------------------------------------


class _ScriptedClient(ServiceClient):
    """A client whose raw exchanges are a scripted list (no sockets)."""

    def __init__(self, script, **kwargs):
        self.script = list(script)
        self.sleeps = []
        kwargs.setdefault("sleep", self.sleeps.append)
        super().__init__(port=1, **kwargs)

    def request_once(self, method, path, body=None):
        self.attempts += 1
        action = self.script.pop(0)
        if isinstance(action, Exception):
            raise action
        return action


class TestClientRetries:
    def test_retry_honors_retry_after_header(self):
        client = _ScriptedClient([
            (429, {"Retry-After": "3"}, {"message": "shed"}),
            (200, {}, {"ok": True}),
        ])
        assert client.call("GET", "/x") == {"ok": True}
        assert client.sleeps == [3.0]
        assert client.retried == 1

    def test_backoff_is_capped_exponential_with_jitter(self):
        import random

        client = _ScriptedClient(
            [(503, {}, {"message": "draining"})] * 4 + [(200, {}, {})],
            backoff=0.1, max_backoff=0.4, rng=random.Random(7),
        )
        client.call("GET", "/x")
        assert len(client.sleeps) == 4
        for attempt, wait in enumerate(client.sleeps):
            base = min(0.4, 0.1 * 2 ** attempt)
            assert base * 0.5 <= wait <= base

    def test_connection_errors_retry_then_surface_as_unavailable(self):
        client = _ScriptedClient([ConnectionRefusedError()] * 3, retries=3)
        with pytest.raises(ServiceUnavailable, match="cannot reach"):
            client.call("GET", "/x")
        assert client.attempts == 3

    def test_client_errors_never_retry(self):
        client = _ScriptedClient([(400, {}, {"message": "bad row"})])
        with pytest.raises(InputError, match="bad row"):
            client.call("POST", "/x")
        assert client.attempts == 1
        client = _ScriptedClient([(404, {}, {"message": "no such"})])
        with pytest.raises(NotFoundError):
            client.call("GET", "/x")

    def test_deadline_bounds_total_retrying(self):
        client = _ScriptedClient(
            [(429, {"Retry-After": "50"}, {"message": "shed"})] * 5,
            deadline=1.0,
        )
        with pytest.raises(ServiceOverloaded):
            client.call("GET", "/x")
        assert client.attempts == 1  # the 50s hint would blow the deadline
        assert client.sleeps == []


# -- the error -> HTTP mapping ------------------------------------------------------


class TestStatusMapping:
    @pytest.mark.parametrize("exc,status", [
        (InputError("bad"), 400),
        (NotFoundError("gone"), 404),
        (ServiceOverloaded("full"), 429),
        (ServiceUnavailable("draining"), 503),
        (ResourceLimitExceeded("deadline"), 503),
        (MemoryLimitExceeded("cap"), 503),
        (ReproError("other"), 500),
        (RuntimeError("untyped"), 500),
    ])
    def test_most_derived_class_wins(self, exc, status):
        assert status_for(exc) == status
