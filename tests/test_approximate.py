"""Tests for approximate-FD mining under g3."""

import pytest

from repro.datasets import relation_with_fd
from repro.fd import FD, fdep, g3_error, holds, mine_approximate_fds
from repro.relation import Relation


class TestMineApproximateFds:
    def test_zero_error_matches_exact_mining(self):
        rel = Relation(
            ["A", "B", "C"],
            [
                ("a", "1", "p"),
                ("a", "1", "r"),
                ("w", "2", "x"),
                ("y", "2", "x"),
                ("z", "2", "x"),
            ],
        )
        approx = {a.fd for a in mine_approximate_fds(rel, max_error=0.0)}
        assert approx == set(fdep(rel))

    def test_finds_broken_dependency(self):
        rel = relation_with_fd(100, 10, seed=1, noise_tuples=3)
        assert not holds(rel, FD("K", "D"))
        approx = mine_approximate_fds(rel, max_error=0.05)
        match = [a for a in approx if a.fd == FD("K", "D")]
        assert match and 0.0 < match[0].error <= 0.05

    def test_threshold_gates_results(self):
        rel = relation_with_fd(100, 10, seed=1, noise_tuples=30)
        tight = {a.fd for a in mine_approximate_fds(rel, max_error=0.01)}
        assert FD("K", "D") not in tight

    def test_results_sorted_by_error(self):
        rel = relation_with_fd(80, 8, seed=2, noise_tuples=2)
        approx = mine_approximate_fds(rel, max_error=0.2)
        errors = [a.error for a in approx]
        assert errors == sorted(errors)

    def test_minimality(self):
        rel = relation_with_fd(60, 6, seed=3)
        approx = mine_approximate_fds(rel, max_error=0.0)
        lhss_by_rhs: dict = {}
        for a in approx:
            lhss_by_rhs.setdefault(a.fd.rhs, []).append(a.fd.lhs)
        for lhss in lhss_by_rhs.values():
            for i, lhs in enumerate(lhss):
                for j, other in enumerate(lhss):
                    if i != j:
                        assert not other < lhs

    def test_reported_error_matches_g3(self):
        rel = relation_with_fd(60, 6, seed=4, noise_tuples=4)
        for a in mine_approximate_fds(rel, max_error=0.2, max_lhs_size=2):
            assert a.error == pytest.approx(g3_error(rel, a.fd))

    def test_max_lhs_size(self):
        rel = relation_with_fd(60, 6, seed=5)
        approx = mine_approximate_fds(rel, max_error=0.3, max_lhs_size=1)
        assert all(len(a.fd.lhs) == 1 for a in approx)

    def test_validation(self):
        rel = relation_with_fd(20, 4)
        with pytest.raises(ValueError):
            mine_approximate_fds(rel, max_error=1.0)
        with pytest.raises(ValueError):
            mine_approximate_fds(rel, max_lhs_size=0)

    def test_empty_relation(self):
        assert mine_approximate_fds(Relation(["A", "B"], [])) == []

    def test_str(self):
        rel = relation_with_fd(30, 3)
        approx = mine_approximate_fds(rel, max_error=0.0, max_lhs_size=1)
        assert "g3=" in str(approx[0])


class TestErrorPaths:
    """Every rejected parameter, with the exact error text contract."""

    def test_negative_max_error(self):
        rel = relation_with_fd(20, 4)
        with pytest.raises(ValueError, match="max_error"):
            mine_approximate_fds(rel, max_error=-0.1)

    def test_max_error_of_one_rejected(self):
        rel = relation_with_fd(20, 4)
        with pytest.raises(ValueError, match="max_error"):
            mine_approximate_fds(rel, max_error=1.0)

    def test_negative_max_lhs_size(self):
        rel = relation_with_fd(20, 4)
        with pytest.raises(ValueError, match="max_lhs_size"):
            mine_approximate_fds(rel, max_lhs_size=-1)

    def test_validation_precedes_relation_access(self):
        # Bad parameters must fail fast even on degenerate inputs.
        with pytest.raises(ValueError):
            mine_approximate_fds(Relation(["A"], []), max_error=2.0)


class TestDegenerateRelations:
    def test_single_row_everything_qualifies(self):
        rel = Relation(["A", "B"], [("x", "y")])
        approx = mine_approximate_fds(rel, max_error=0.0)
        assert {a.fd for a in approx} == {FD("A", "B"), FD("B", "A")}
        assert all(a.error == 0.0 for a in approx)

    def test_all_duplicate_rows(self):
        rel = Relation(["A", "B", "C"], [("x", "y", "z")] * 10)
        approx = mine_approximate_fds(rel, max_error=0.0, max_lhs_size=1)
        assert approx
        assert all(a.error == 0.0 for a in approx)
        assert all(len(a.fd.lhs) == 1 for a in approx)

    def test_single_attribute_no_candidates(self):
        rel = Relation(["A"], [("x",), ("y",)])
        assert mine_approximate_fds(rel) == []
