"""Supervisor unit behavior: exit classification, config, clean runs.

The heavyweight crash/hang/give-up drills live in
``tests/test_supervisor_resume.py``; this file covers the pure logic and the
cheap in-process paths (clean supervised run, spawn retry, deliberate-error
re-raise).
"""

import json
import multiprocessing
import signal

import pytest

from repro import StructureDiscovery
from repro.checkpoint import CheckpointStore
from repro.datasets import db2_sample
from repro.errors import StageFailure
from repro.supervisor import (
    OOM_RSS_FRACTION,
    Supervisor,
    SupervisorConfig,
    classify_exit,
)
from repro.testing import inject

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(not HAVE_FORK,
                                reason="fork start method unavailable")


@pytest.fixture(scope="module")
def relation():
    return db2_sample(seed=7).relation


@pytest.fixture(scope="module")
def baseline(relation):
    return StructureDiscovery().run(relation).render()


# -- exit-status classification -----------------------------------------------------


class TestClassifyExit:
    def test_completed(self):
        assert classify_exit(0) == "completed"

    def test_sigkill_negative_and_shell_style(self):
        assert classify_exit(-9) == "sigkill"
        assert classify_exit(137) == "sigkill"  # 128 + 9

    def test_sigsegv_named(self):
        assert classify_exit(-int(signal.SIGSEGV)) == "crash-signal:SIGSEGV"

    def test_interrupt_both_spellings(self):
        assert classify_exit(-int(signal.SIGINT)) == "interrupted"
        assert classify_exit(130) == "interrupted"

    def test_deliberate_exit_codes_are_not_signals(self):
        assert classify_exit(1) == "error-exit:1"
        assert classify_exit(3) == "error-exit:3"

    def test_oom_by_cgroup_counter(self):
        assert classify_exit(-9, oom_kill_delta=1) == "oom-kill"

    def test_oom_by_heartbeat_rss_against_limit(self):
        limit = 1_000_000
        near = {"rss_bytes": int(OOM_RSS_FRACTION * limit)}
        far = {"rss_bytes": int(0.5 * limit)}
        assert classify_exit(-9, near, memory_limit=limit) == "oom-kill"
        assert classify_exit(-9, far, memory_limit=limit) == "sigkill"

    def test_rss_without_limit_is_plain_sigkill(self):
        assert classify_exit(-9, {"rss_bytes": 10**12}) == "sigkill"


# -- config -------------------------------------------------------------------------


class TestSupervisorConfig:
    @pytest.mark.parametrize("kwargs", [
        {"max_restarts": -1},
        {"hang_timeout": 0},
        {"hang_timeout": -5.0},
        {"poll_interval": 0},
        {"backoff_base": -1},
        {"jitter": 1.5},
    ])
    def test_out_of_domain_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs)

    def test_backoff_doubles_and_caps(self):
        config = SupervisorConfig(backoff_base=0.5, backoff_cap=4.0, jitter=0)
        assert config.backoff(0) == 0.0  # first attempt: no delay
        assert config.backoff(1) == 0.5
        assert config.backoff(2) == 1.0
        assert config.backoff(3) == 2.0
        assert config.backoff(4) == 4.0
        assert config.backoff(10) == 4.0  # capped

    def test_backoff_jitter_stretches_within_bounds(self):
        config = SupervisorConfig(backoff_base=1.0, jitter=0.25)
        for _ in range(50):
            assert 1.0 <= config.backoff(1) <= 1.25

    def test_effective_poll_tracks_hang_timeout(self):
        assert SupervisorConfig(hang_timeout=1.0).effective_poll == 0.1
        assert SupervisorConfig(hang_timeout=0.05).effective_poll == 0.02
        assert SupervisorConfig(hang_timeout=300).effective_poll == 0.25
        assert SupervisorConfig(poll_interval=0.07).effective_poll == 0.07


# -- clean supervised runs ----------------------------------------------------------


@needs_fork
class TestCleanSupervisedRun:
    def test_supervised_report_matches_unsupervised(self, relation, baseline):
        report = StructureDiscovery(supervise=True).run(relation)
        assert report.render() == baseline

    def test_supervise_accepts_config_and_journals(self, relation, baseline,
                                                   tmp_path):
        config = SupervisorConfig(max_restarts=2, hang_timeout=60.0,
                                  backoff_base=0, jitter=0)
        store = CheckpointStore(tmp_path / "ckpt")
        report = StructureDiscovery(
            checkpoint=store, supervise=config,
        ).run(relation)
        assert report.render() == baseline

        incident = json.loads(
            (tmp_path / "ckpt" / "incident.json").read_text("utf-8"))
        assert incident["outcome"] == "completed"
        assert incident["exit_code"] == 0
        assert incident["restarts_used"] == 0
        assert incident["stage_failures"] == {}
        assert incident["escalations"] == []
        assert incident["config"] == {"max_restarts": 2, "hang_timeout": 60.0}
        (attempt,) = incident["attempts"]
        assert attempt["attempt"] == 1
        assert attempt["failure_class"] == "completed"
        assert attempt["exit_code"] == 0
        assert attempt["pid"] is not None
        assert attempt["resumed_stages"] == []
        assert attempt["ended_wall"] >= attempt["started_wall"]

    def test_spawn_failure_is_retried(self, relation, baseline, tmp_path):
        config = SupervisorConfig(max_restarts=2, backoff_base=0, jitter=0)
        store = CheckpointStore(tmp_path / "ckpt")
        discovery = StructureDiscovery(checkpoint=store)
        with inject("supervisor.spawn", raises=OSError("fork: EAGAIN"),
                    limit=1):
            report = Supervisor(discovery, config=config).run(relation)
        assert report.render() == baseline

        incident = json.loads(
            (tmp_path / "ckpt" / "incident.json").read_text("utf-8"))
        assert incident["outcome"] == "completed"
        assert incident["restarts_used"] == 1
        classes = [a["failure_class"] for a in incident["attempts"]]
        assert classes == ["spawn-failure", "completed"]
        assert "EAGAIN" in incident["attempts"][0]["detail"]
        # Startup failures never poison a pipeline stage.
        assert incident["escalations"] == []

    def test_deliberate_child_error_reraises_without_retry(
        self, relation, tmp_path
    ):
        # strict=True turns an injected stage failure into a StageFailure
        # (a ReproError): deterministic, so the supervisor must re-raise it
        # after one attempt instead of burning the restart budget.
        config = SupervisorConfig(max_restarts=5, backoff_base=0, jitter=0,
                                  child_setup=_arm_strict_mining_failure)
        store = CheckpointStore(tmp_path / "ckpt")
        discovery = StructureDiscovery(checkpoint=store, strict=True)
        with pytest.raises(StageFailure, match="injected"):
            Supervisor(discovery, config=config).run(relation)

        incident = json.loads(
            (tmp_path / "ckpt" / "incident.json").read_text("utf-8"))
        assert incident["outcome"] == "failed"
        assert incident["exit_code"] == 1
        assert incident["restarts_used"] == 0
        assert len(incident["attempts"]) == 1
        assert incident["attempts"][0]["failure_class"] == "error-exit:1"


#: In-child fault contexts armed by ``child_setup`` hooks.  The entered
#: context managers MUST be retained: a garbage-collected ``inject`` context
#: closes its generator, which pops the fault plan and disarms the fault.
_ARMED = []


def _arm_strict_mining_failure(attempt):
    ctx = inject("discovery.mining", raises=RuntimeError("injected"))
    ctx.__enter__()
    _ARMED.append(ctx)
