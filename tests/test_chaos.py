"""Tests for the chaos campaign (``repro.audit.chaos``).

The full 47-cell matrix runs in CI via ``scripts/chaos_sweep.py``; this
file keeps the structural guarantees under plain pytest -- the drill
registry covers every fault point, the cell matrix is deterministic and
seeded subsets reproducible -- and runs a small representative slice of
actual drill cells so a regression in the campaign machinery itself is
caught without the full sweep.
"""

import pytest

from repro.audit.chaos import (
    CHAOS_MODES,
    ChaosCampaign,
    ChaosCell,
    campaign_cells,
    chaos_relation,
    drill_registry,
)
from repro.testing import FAULT_POINTS


class TestRegistry:
    def test_covers_every_fault_point(self):
        assert set(drill_registry()) == FAULT_POINTS

    def test_every_drill_declares_valid_modes(self):
        for point, drill in drill_registry().items():
            assert drill.modes, point
            assert set(drill.modes) <= set(CHAOS_MODES), point

    def test_corrupt_drills_carry_a_corruptor(self):
        for point, drill in drill_registry().items():
            if "corrupt" in drill.modes:
                assert drill.corrupt is not None, point

    def test_registry_is_stable(self):
        assert drill_registry().keys() == drill_registry().keys()


class TestCampaignCells:
    def test_full_matrix_is_deterministic(self):
        assert campaign_cells() == campaign_cells()

    def test_every_point_appears(self):
        points = {point for point, _ in campaign_cells()}
        assert points == FAULT_POINTS

    def test_point_filter(self):
        cells = campaign_cells(points=["checkpoint.save"])
        assert {point for point, _ in cells} == {"checkpoint.save"}
        assert {mode for _, mode in cells} == {"raise", "corrupt", "once"}

    def test_mode_filter(self):
        cells = campaign_cells(modes=["corrupt"])
        assert cells
        assert all(mode == "corrupt" for _, mode in cells)

    def test_seeded_subset_is_reproducible_and_proper(self):
        full = campaign_cells()
        subset = campaign_cells(sample=5, seed=11)
        assert len(subset) == 5
        assert subset == campaign_cells(sample=5, seed=11)
        assert set(subset) <= set(full)
        assert campaign_cells(sample=5, seed=12) != subset

    def test_oversized_sample_returns_everything(self):
        assert len(campaign_cells(sample=10_000)) == len(campaign_cells())

    def test_unknown_point_yields_no_cells(self):
        assert campaign_cells(points=["no.such.point"]) == []


class TestChaosRelation:
    def test_deterministic_and_structured(self):
        rel = chaos_relation(36)
        assert len(rel) == 36
        assert rel.schema.names == ("emp", "dept", "loc", "mgr", "proj")
        assert list(rel.rows) == list(chaos_relation(36).rows)
        # dept -> loc holds by construction; proj -> dept does not.
        assert len(rel.domain("dept")) == 4


class TestCellRendering:
    def test_render_mentions_the_contract_bits(self):
        cell = ChaosCell(point="discovery.mining", mode="raise",
                         runner="pipeline", fired=1, flagged=True,
                         identical=False, audited=True)
        rendered = cell.render()
        assert "discovery.mining" in rendered
        assert "flagged-degraded" in rendered
        assert "diverged" in rendered
        assert "audit=ok" in rendered


@pytest.mark.parametrize("point,mode", [
    ("discovery.rank", "raise"),
    ("checkpoint.save", "corrupt"),
    ("io.read_csv.row", "corrupt"),
    ("fd.fdep.pairs", "once"),
])
def test_representative_cells_pass(tmp_path, point, mode):
    campaign = ChaosCampaign(base_dir=tmp_path, seed=0)
    cell = campaign.run_cell(point, mode)
    assert cell.status == "ok"
    assert cell.fired >= 1
    if cell.audited is not None:
        assert cell.audited


def test_campaign_reuses_baselines(tmp_path):
    campaign = ChaosCampaign(base_dir=tmp_path, seed=0)
    campaign.run_cell("discovery.mining", "raise")
    baselines_after_first = dict(campaign._baselines)
    campaign.run_cell("discovery.tuple_clustering", "raise")
    # Same discovery configuration: the second cell reuses the first
    # cell's clean baseline instead of re-mining it.
    assert campaign._baselines == baselines_after_first
