"""Edge-case coverage across the library."""

import pytest

from repro.clustering import Limbo, aib, DCF
from repro.clustering.dendrogram import Dendrogram
from repro.core import (
    StructureDiscovery,
    cluster_tuples,
    cluster_values,
    horizontal_partition,
    suggest_k,
)
from repro.datasets import dblp
from repro.fd import fdep, tane
from repro.relation import NULL, Relation, read_csv, write_csv


class TestDegenerateData:
    def test_all_identical_tuples(self):
        """I(T;V) = 0: threshold is 0 but everything still merges."""
        rel = Relation(["A", "B"], [("x", "y")] * 10)
        result = cluster_tuples(rel, phi_t=0.5)
        assert len(result.limbo.summaries) == 1
        assert len(result.duplicate_groups) == 1
        assert len(result.duplicate_groups[0]) == 10

    def test_single_tuple_relation(self):
        rel = Relation(["A", "B"], [("x", "y")])
        result = cluster_tuples(rel, phi_t=0.0)
        assert result.duplicate_groups == []

    def test_single_attribute_relation(self):
        rel = Relation(["A"], [("x",), ("x",), ("y",)])
        values = cluster_values(rel, phi_v=0.0)
        # One attribute -> no group can span two attributes -> C_V^D empty.
        assert values.duplicate_groups == []

    def test_all_null_column(self):
        rel = Relation(["A", "B"], [(str(i), NULL) for i in range(6)])
        report = StructureDiscovery().run(rel)
        assert report.dependencies  # B is constant -> singleton FDs exist

    def test_constant_relation_fds(self):
        rel = Relation(["A", "B"], [("k", "v")] * 4)
        assert fdep(rel) == tane(rel)

    def test_two_tuples(self):
        rel = Relation(["A", "B", "C"], [("a", "b", "c"), ("a", "b", "d")])
        report = StructureDiscovery().run(rel)
        assert report.cover


class TestDendrogramEdges:
    def test_single_leaf(self):
        d = Dendrogram(1, [], labels=["only"])
        assert d.cut(1) == [[0]]
        assert d.max_loss == 0.0
        assert "only" in d.render()
        assert d.is_complete()

    def test_merge_table_empty(self):
        d = Dendrogram(2, [])
        assert "step" in d.merge_table()


class TestLimboEdges:
    def test_single_object(self):
        limbo = Limbo(phi=0.0).fit([{0: 1.0}], [1.0])
        assert len(limbo.summaries) == 1
        assert limbo.cluster(1) == [0]

    def test_zero_information_data(self):
        # All objects identical: I = 0 so the phi threshold is 0, yet
        # identical objects merge (zero loss passes a zero threshold).
        rows = [{5: 1.0} for _ in range(8)]
        limbo = Limbo(phi=1.0).fit(rows, [1 / 8] * 8)
        assert len(limbo.summaries) == 1

    def test_aib_single_dcf(self):
        result = aib([DCF.singleton(0, 1.0, {0: 1.0})])
        assert result.clusters(1)[0].members == [0]


class TestSuggestKEdges:
    def test_tiny_sequences(self):
        result = aib(
            [DCF.singleton(i, 0.5, {i: 1.0}) for i in range(2)]
        )
        suggestions = suggest_k(result)
        assert suggestions[0].k >= 1

    def test_k_bounds_respected(self):
        result = aib(
            [DCF.singleton(i, 0.1, {i % 3: 1.0}) for i in range(10)]
        )
        for suggestion in suggest_k(result, k_min=2, k_max=4):
            assert 2 <= suggestion.k <= 4


class TestAttributeScopedValues:
    def test_pipeline_with_attribute_scope(self):
        rel = Relation(
            ["A", "B"],
            [("x", "x"), ("x", "x"), ("y", "z")],
        )
        result = cluster_values(rel, phi_v=0.0, value_scope="attribute")
        labels = {label for g in result.groups for label in g.labels}
        assert "A='x'" in labels and "B='x'" in labels

    def test_attribute_scope_blocks_cross_column_identity(self):
        rel = Relation(["A", "B"], [("x", "x")] * 3)
        scoped = cluster_values(rel, phi_v=0.0, value_scope="attribute")
        # A='x' and B='x' co-occur perfectly, so they cluster as a *group*
        # spanning two attributes -- but they are two catalog entries.
        assert scoped.view.n_values == 2


class TestCsvEdgeCases:
    def test_values_with_commas_and_quotes(self, tmp_path):
        rel = Relation(
            ["Name", "Note"],
            [("Miller, R.", 'says "hi"'), ("Tsaparas, P.", "a\nnewline")],
        )
        path = tmp_path / "tricky.csv"
        write_csv(rel, path)
        assert read_csv(path) == rel

    def test_unicode_values(self, tmp_path):
        rel = Relation(["City"], [("Zürich",), ("København",), ("東京",)])
        path = tmp_path / "unicode.csv"
        write_csv(rel, path)
        assert read_csv(path) == rel


class TestHorizontalEdges:
    def test_k_equals_one(self):
        rel = dblp(300, seed=1).project(["Author", "Year"])
        result = horizontal_partition(rel, k=1, phi_t=1.0)
        assert len(result.partitions) == 1
        assert len(result.partitions[0]) == 300

    def test_k_larger_than_patterns(self):
        rel = Relation(["A"], [("x",)] * 5 + [("y",)] * 5)
        # Only two distinct patterns exist; k=2 must work cleanly.
        result = horizontal_partition(rel, k=2, phi_t=0.0)
        assert sorted(len(p) for p in result.partitions) == [5, 5]


class TestDiscoveryAutoMiner:
    def test_auto_switches_to_tane_on_large_input(self):
        relation = dblp(2500, seed=2).project(
            ["Author", "Year", "Volume", "Journal", "Number"]
        )
        report = StructureDiscovery(miner="auto").run(relation)
        # tane path: dependencies found and capped lattice did not explode.
        assert isinstance(report.dependencies, list)
