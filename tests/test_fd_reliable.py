"""Tests for :mod:`repro.fd.reliable`: scoring, search, and pipeline wiring.

The statistical *correctness* claims (score range, admissibility, sampled
confidence) live in ``test_properties_fd_reliable.py``; this file covers
the deterministic contract -- oracle parity on fixed relations, filters,
edge cases, seeding, worker-count bit-identity, budget/governor behaviour
and the ``StructureDiscovery``/CLI integration.
"""

import pytest

from repro.budget import Budget
from repro.core import StructureDiscovery
from repro.datasets import dblp
from repro.errors import MemoryLimitExceeded, ResourceLimitExceeded
from repro.fd import FD, ReliableFD, ReliableMiningStats
from repro.fd.reliable import (
    confidence_radius,
    expected_mutual_information,
    fraction_of_information,
    mine_reliable_fds,
    mine_topk,
    reliable_score,
    specialization_upper_bound,
)
from repro.relation import Relation
from repro.seeding import derive_seed, sample_indices
from repro.testing import inject
from repro.testing.oracles import (
    brute_force_topk,
    exact_expected_mutual_information,
    exact_reliable_score,
    exhaustive_reliable_scores,
)

NAMES = ("A", "B", "C", "D")


def fixed_relation(n=60):
    """A deterministic 4-attribute relation with an exact FD A -> B."""
    rows = [
        (f"a{i % 6}", f"b{(i % 6) % 3}", f"c{i % 4}", f"d{(i * 7) % 5}")
        for i in range(n)
    ]
    return Relation(NAMES, rows)


class TestExpectedMutualInformation:
    def test_matches_lgamma_reference(self):
        cases = [
            ([3, 2, 1], [4, 2]),
            ([10], [5, 5]),
            ([1] * 8, [4, 4]),
            ([7, 3, 2], [6, 3, 3]),
        ]
        for a, b in cases:
            fast = expected_mutual_information(a, b)
            slow = exact_expected_mutual_information(a, b)
            assert fast == pytest.approx(slow, abs=1e-10)

    def test_single_class_is_zero(self):
        assert expected_mutual_information([12], [12]) == pytest.approx(0.0)

    def test_nonnegative(self):
        assert expected_mutual_information([5, 4, 3], [6, 6]) >= 0.0

    def test_mismatched_totals_rejected(self):
        with pytest.raises(ValueError):
            expected_mutual_information([3, 2], [4, 2])


class TestScoring:
    def test_exact_fd_scores_near_one(self):
        relation = fixed_relation()
        assert fraction_of_information(relation, ("A",), "B") == 1.0
        assert reliable_score(relation, ("A",), "B") > 0.9

    def test_matches_first_principles_oracle(self):
        relation = fixed_relation(40)
        for lhs, rhs in [(("A",), "B"), (("C", "D"), "A"), (("B",), "D")]:
            assert reliable_score(relation, lhs, rhs) == pytest.approx(
                exact_reliable_score(relation, lhs, rhs), abs=1e-9
            )

    def test_constant_rhs_scores_zero(self):
        relation = Relation(("X", "Y"), [(str(i), "c") for i in range(9)])
        assert fraction_of_information(relation, ("X",), "Y") == 0.0
        assert reliable_score(relation, ("X",), "Y") == 0.0

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ValueError):
            reliable_score(fixed_relation(), ("Nope",), "B")

    def test_empty_lhs_rejected(self):
        with pytest.raises(ValueError):
            reliable_score(fixed_relation(), (), "B")

    def test_upper_bound_dominates_own_score(self):
        relation = fixed_relation(40)
        bound = specialization_upper_bound(relation, ("C",), ("A", "D"), "B")
        assert bound >= reliable_score(relation, ("C",), "B") - 1e-12

    def test_confidence_radius_capped_and_positive(self):
        assert confidence_radius(0, 1, 0.05, 1.0) == 1.0
        radius = confidence_radius(10_000, 3, 0.05, 1.5)
        assert 0.0 < radius < 1.0


class TestValidation:
    def test_bad_parameters_rejected(self):
        relation = fixed_relation(10)
        with pytest.raises(ValueError):
            mine_reliable_fds(relation, mode="bogus")
        with pytest.raises(ValueError):
            mine_reliable_fds(relation, mode="topk", k=0)
        with pytest.raises(ValueError):
            mine_reliable_fds(relation, alpha=0.0)
        with pytest.raises(ValueError):
            mine_reliable_fds(relation, alpha=1.0)
        with pytest.raises(ValueError):
            mine_reliable_fds(relation, mode="reliable", min_score=1.5)
        with pytest.raises(ValueError):
            mine_reliable_fds(relation, max_lhs_size=0)
        with pytest.raises(ValueError):
            mine_reliable_fds(relation, sample_rows=0)
        with pytest.raises(ValueError):
            mine_reliable_fds(relation, rhs="Nope")


class TestTopK:
    def test_matches_brute_force_oracle(self):
        relation = fixed_relation(45)
        for k in (1, 3, 10, 100):
            mined = mine_topk(relation, k=k)
            oracle = brute_force_topk(relation, k)
            assert [(m.fd, m.score) for m in mined] == [
                (o.fd, o.score) for o in oracle
            ]

    def test_rhs_filter(self):
        relation = fixed_relation(30)
        mined = mine_topk(relation, k=5, rhs="B")
        assert mined
        assert all(entry.fd.rhs == frozenset({"B"}) for entry in mined)
        oracle = brute_force_topk(relation, 5, rhs="B")
        assert [(m.fd, m.score) for m in mined] == [
            (o.fd, o.score) for o in oracle
        ]

    def test_max_lhs_size_filter(self):
        relation = fixed_relation(30)
        mined = mine_topk(relation, k=50, max_lhs_size=1)
        assert mined
        assert all(len(entry.fd.lhs) == 1 for entry in mined)
        oracle = brute_force_topk(relation, 50, max_lhs_size=1)
        assert [(m.fd, m.score) for m in mined] == [
            (o.fd, o.score) for o in oracle
        ]

    def test_deterministic_result_order(self):
        mined = mine_topk(fixed_relation(30), k=8)
        keys = [(-m.score, tuple(sorted(m.fd.lhs)), min(m.fd.rhs))
                for m in mined]
        assert keys == sorted(keys)

    def test_degenerate_relations_yield_nothing(self):
        assert mine_topk(Relation(NAMES, []), k=3) == []
        assert mine_topk(Relation(("A",), [("x",)] * 5), k=3) == []
        single = Relation(("A", "B"), [("x", "y")])
        assert mine_topk(single, k=3) == []

    def test_all_duplicate_rows_yield_nothing(self):
        relation = Relation(("A", "B"), [("x", "y")] * 12)
        # Both columns are constant: no consequent carries information.
        assert mine_topk(relation, k=5) == []


class TestReliableMode:
    def test_threshold_matches_exhaustive_scan(self):
        relation = fixed_relation(40)
        threshold = 0.4
        mined = mine_reliable_fds(
            relation, mode="reliable", min_score=threshold
        )
        oracle = [
            (FD(frozenset(lhs), frozenset({rhs})), score)
            for score, lhs, rhs in exhaustive_reliable_scores(relation)
            if score >= threshold
        ]
        assert [(m.fd, m.score) for m in mined] == oracle

    def test_default_min_score_is_one_minus_alpha(self):
        relation = fixed_relation(40)
        by_default = mine_reliable_fds(relation, mode="reliable", alpha=0.3)
        explicit = mine_reliable_fds(
            relation, mode="reliable", min_score=0.7
        )
        assert [(m.fd, m.score) for m in by_default] == [
            (m.fd, m.score) for m in explicit
        ]


class TestStats:
    def test_counters_and_pruning_recorded(self):
        relation = dblp(n_tuples=250, seed=7)
        stats = ReliableMiningStats()
        mine_topk(relation, k=5, stats=stats)
        assert stats.nodes_visited > 0
        assert stats.candidates_scored > 0
        assert stats.partitions_computed > 0
        assert stats.nodes_visited >= stats.candidates_scored
        assert stats.sampled_rows is None

    def test_sampled_rows_recorded(self):
        relation = fixed_relation(60)
        stats = ReliableMiningStats()
        mine_topk(relation, k=3, sample_rows=20, stats=stats)
        assert stats.sampled_rows == 20


class TestSampledMode:
    def test_sampled_results_are_flagged(self):
        relation = fixed_relation(80)
        mined = mine_topk(relation, k=4, sample_rows=25, seed=3)
        assert mined
        assert all(entry.sampled for entry in mined)
        assert all(0.0 < entry.confidence_radius <= 1.0 for entry in mined)

    def test_sample_covering_all_rows_degenerates_to_exact(self):
        relation = fixed_relation(30)
        sampled = mine_topk(relation, k=4, sample_rows=30)
        exact = mine_topk(relation, k=4)
        assert sampled == exact
        assert not any(entry.sampled for entry in sampled)

    def test_same_seed_same_result(self):
        relation = fixed_relation(90)
        first = mine_topk(relation, k=5, sample_rows=30, seed=11)
        second = mine_topk(relation, k=5, sample_rows=30, seed=11)
        assert first == second

    def test_seed_changes_the_sample(self):
        indices_a = sample_indices(1000, 50, 1, "fd.reliable.sample")
        indices_b = sample_indices(1000, 50, 2, "fd.reliable.sample")
        assert list(indices_a) != list(indices_b)


class TestSeedingModule:
    def test_derive_seed_deterministic_and_scoped(self):
        assert derive_seed(7, "x") == derive_seed(7, "x")
        assert derive_seed(7, "x") != derive_seed(7, "y")
        assert derive_seed(7, "x") != derive_seed(8, "x")

    def test_sample_indices_contract(self):
        indices = sample_indices(100, 10, 0, "scope")
        assert len(indices) == 10
        assert len(set(indices.tolist())) == 10
        assert list(indices) == sorted(indices)
        assert all(0 <= i < 100 for i in indices)

    def test_sample_indices_identity_when_size_covers(self):
        assert list(sample_indices(5, 9, 0, "scope")) == [0, 1, 2, 3, 4]

    def test_sample_indices_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            sample_indices(-1, 3, 0, "scope")
        with pytest.raises(ValueError):
            sample_indices(10, 0, 0, "scope")


class TestParallel:
    def test_worker_counts_bit_identical(self):
        from repro.parallel import ShardedExecutor

        relation = dblp(n_tuples=250, seed=7)
        baseline = mine_topk(relation, k=8, max_lhs_size=2)
        for workers in (1, 2, 4):
            executor = ShardedExecutor(workers=workers)
            try:
                result = mine_topk(
                    relation, k=8, max_lhs_size=2, executor=executor
                )
            finally:
                executor.close()
            assert result == baseline


class TestBudget:
    def test_budget_exhaustion_raises(self):
        relation = dblp(n_tuples=250, seed=7)
        with pytest.raises(ResourceLimitExceeded):
            mine_topk(relation, k=5, budget=Budget(max_units=100))

    def test_tiny_memory_cap_raises(self):
        relation = dblp(n_tuples=250, seed=7)
        with pytest.raises(MemoryLimitExceeded):
            mine_topk(relation, k=5, budget=Budget(max_memory_bytes=1024))

    def test_generous_memory_cap_changes_nothing(self):
        relation = fixed_relation(60)
        capped = mine_topk(
            relation, k=6, budget=Budget(max_memory_bytes=1 << 30)
        )
        assert capped == mine_topk(relation, k=6)

    def test_fault_point_fires_per_node(self):
        relation = fixed_relation(40)
        with inject("fd.reliable.node", raises=RuntimeError):
            with pytest.raises(RuntimeError):
                mine_topk(relation, k=3)


class TestDiscoveryIntegration:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            StructureDiscovery(fd_mode="bogus")
        with pytest.raises(ValueError):
            StructureDiscovery(fd_k=0)
        with pytest.raises(ValueError):
            StructureDiscovery(fd_alpha=1.5)
        with pytest.raises(ValueError):
            StructureDiscovery(fd_max_lhs=0)

    def test_topk_mode_feeds_rank_directly(self):
        relation = dblp(n_tuples=300, seed=7)
        report = StructureDiscovery(fd_mode="topk", fd_k=5).run(relation)
        assert report.healthy
        assert len(report.dependencies) == 5
        assert all(isinstance(d, ReliableFD) for d in report.dependencies)
        cover_outcome = report.outcome("cover")
        assert cover_outcome.ok and "skipped" in cover_outcome.detail
        assert report.cover == [d.fd for d in report.dependencies]
        assert report.ranked
        rendered = report.render()
        assert "Reliable FD scores" in rendered
        assert "minimum cover" not in rendered

    def test_exact_mode_render_unchanged(self):
        relation = dblp(n_tuples=300, seed=7)
        rendered = StructureDiscovery().run(relation).render()
        assert "Reliable FD scores" not in rendered
        assert "minimum cover" in rendered

    def test_manifest_distinguishes_fd_modes(self):
        exact = StructureDiscovery()._manifest_params()
        topk = StructureDiscovery(fd_mode="topk")._manifest_params()
        assert exact != topk
        for key in ("fd_mode", "fd_k", "fd_alpha", "fd_max_lhs", "seed"):
            assert key in exact
        capped = StructureDiscovery(fd_max_lhs=2)._manifest_params()
        uncapped = StructureDiscovery(fd_max_lhs=None)._manifest_params()
        assert capped != uncapped

    def test_sampled_fallback_marks_run_degraded(self, tmp_path):
        from repro.checkpoint import CheckpointStore

        relation = dblp(n_tuples=300, seed=7)
        store = CheckpointStore(tmp_path / "ckpt", resume=True)
        with inject("discovery.mining", raises=RuntimeError("boom")):
            report = StructureDiscovery(
                fd_mode="topk", fd_k=4, checkpoint=store
            ).run(relation)
        outcome = report.outcome("mining")
        assert outcome.status == "degraded"
        assert "sample" in outcome.fallback
        assert report.dependencies
        assert all(d.sampled for d in report.dependencies)
        assert "[sampled, radius" in report.render()
        # Degraded results must never be checkpointed as exact.
        resumed = CheckpointStore(tmp_path / "ckpt", resume=True)
        resumed.open_run(
            relation,
            StructureDiscovery(fd_mode="topk", fd_k=4)._manifest_params(),
        )
        assert resumed.load_stage("mining") is None

    def test_same_seed_byte_identical_reports(self):
        relation = dblp(n_tuples=300, seed=7)

        def run():
            with inject("discovery.mining", raises=RuntimeError("boom")):
                return StructureDiscovery(
                    fd_mode="topk", fd_k=4, seed=42
                ).run(relation).render()

        assert run() == run()


class TestCli:
    def _write_csv(self, tmp_path):
        from repro.relation import write_csv

        path = tmp_path / "relation.csv"
        write_csv(fixed_relation(80), str(path))
        return str(path)

    def test_discover_topk_flags(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_csv(tmp_path)
        assert main([
            "discover", path, "--fd-mode", "topk", "--fd-k", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "Reliable FD scores" in out
        assert "cover: skipped" in out

    def test_rank_topk_flags(self, tmp_path, capsys):
        from repro.cli import main
        from repro.relation import write_csv

        # fixed_relation has no duplicate value groups for the grouping
        # stage; rank needs them, so use the DBLP generator instead.
        path = str(tmp_path / "dblp.csv")
        write_csv(dblp(n_tuples=200, seed=7), path)
        assert main([
            "rank", path, "--fd-mode", "topk", "--fd-k", "4", "--top", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "reliable dependencies mined (topk)" in out

    def test_same_seed_byte_identical_stdout(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_csv(tmp_path)
        argv = ["discover", path, "--fd-mode", "topk", "--fd-k", "3",
                "--seed", "9"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_bad_fd_flags_are_usage_errors(self, tmp_path):
        from repro.cli import main

        path = self._write_csv(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            main(["discover", path, "--fd-k", "0"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            main(["discover", path, "--fd-alpha", "1.0"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            main(["discover", path, "--fd-max-lhs", "-1"])
        assert excinfo.value.code == 2
