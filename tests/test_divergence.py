"""Unit tests for repro.infotheory.divergence."""

import math

import pytest

from repro.infotheory import (
    information_loss,
    jensen_shannon,
    kl_divergence,
    mixture,
)


class TestKLDivergence:
    def test_identical_distributions(self):
        p = {0: 0.5, 1: 0.5}
        assert kl_divergence(p, p) == 0.0

    def test_known_value(self):
        p = {0: 1.0}
        q = {0: 0.5, 1: 0.5}
        assert kl_divergence(p, q) == pytest.approx(1.0)

    def test_asymmetric(self):
        p = {0: 0.8, 1: 0.2}
        q = {0: 0.5, 1: 0.5}
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_unsupported_outcome_is_infinite(self):
        assert kl_divergence({0: 0.5, 1: 0.5}, {0: 1.0}) == math.inf

    def test_zero_mass_in_p_is_ignored(self):
        p = {0: 1.0, 1: 0.0}
        q = {0: 1.0}
        assert kl_divergence(p, q) == 0.0

    def test_nonnegative(self):
        p = {0: 0.3, 1: 0.7}
        q = {0: 0.31, 1: 0.69}
        assert kl_divergence(p, q) >= 0.0


class TestMixture:
    def test_blends_supports(self):
        blended = mixture({0: 1.0}, {1: 1.0}, 0.25, 0.75)
        assert blended == {0: 0.25, 1: 0.75}

    def test_overlapping_support_accumulates(self):
        blended = mixture({0: 1.0}, {0: 0.5, 1: 0.5}, 0.5, 0.5)
        assert blended[0] == pytest.approx(0.75)
        assert blended[1] == pytest.approx(0.25)


class TestJensenShannon:
    def test_identical_distributions(self):
        p = {0: 0.4, 1: 0.6}
        assert jensen_shannon(p, p) == 0.0

    def test_disjoint_support_equal_weights_is_one_bit(self):
        # The classic bound: JS of two disjoint distributions is 1 bit.
        assert jensen_shannon({0: 1.0}, {1: 1.0}) == pytest.approx(1.0)

    def test_bounded_above_by_one(self):
        p = {0: 0.9, 1: 0.1}
        q = {2: 0.3, 3: 0.7}
        assert jensen_shannon(p, q) <= 1.0 + 1e-12

    def test_symmetric_in_arguments_and_weights(self):
        p = {0: 0.9, 1: 0.1}
        q = {0: 0.2, 1: 0.3, 2: 0.5}
        assert jensen_shannon(p, q, 0.3, 0.7) == pytest.approx(
            jensen_shannon(q, p, 0.7, 0.3)
        )

    def test_weights_need_not_be_normalized(self):
        p = {0: 1.0}
        q = {1: 1.0}
        assert jensen_shannon(p, q, 2.0, 2.0) == pytest.approx(
            jensen_shannon(p, q, 0.5, 0.5)
        )

    def test_extreme_weighting_approaches_zero(self):
        p = {0: 1.0}
        q = {1: 1.0}
        assert jensen_shannon(p, q, 1.0, 1e-9) == pytest.approx(0.0, abs=1e-6)

    def test_matches_explicit_kl_form(self):
        # D_JS = pi_p KL(p||pbar) + pi_q KL(q||pbar), the paper's definition.
        p = {0: 0.7, 1: 0.3}
        q = {0: 0.1, 1: 0.5, 2: 0.4}
        w_p, w_q = 0.4, 0.6
        blended = mixture(p, q, w_p, w_q)
        expected = w_p * kl_divergence(p, blended) + w_q * kl_divergence(q, blended)
        assert jensen_shannon(p, q, w_p, w_q) == pytest.approx(expected)

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            jensen_shannon({0: 1.0}, {1: 1.0}, 0.0, 0.0)


class TestInformationLoss:
    def test_merging_identical_clusters_is_free(self):
        p = {0: 0.5, 1: 0.5}
        assert information_loss(p, p, 0.3, 0.2) == 0.0

    def test_scales_with_total_prior(self):
        p = {0: 1.0}
        q = {1: 1.0}
        small = information_loss(p, q, 0.1, 0.1)
        large = information_loss(p, q, 0.2, 0.2)
        assert large == pytest.approx(2 * small)

    def test_merging_disjoint_equal_clusters(self):
        # delta_I = (w+w) * 1 bit for disjoint equal-weight conditionals.
        assert information_loss({0: 1.0}, {1: 1.0}, 0.25, 0.25) == pytest.approx(0.5)

    def test_loss_depends_only_on_the_pair(self):
        # Equation 3's locality: the value never references other clusters,
        # so computing it twice with unrelated context must agree.
        p = {0: 0.6, 1: 0.4}
        q = {1: 1.0}
        assert information_loss(p, q, 0.2, 0.05) == pytest.approx(
            information_loss(dict(p), dict(q), 0.2, 0.05)
        )
