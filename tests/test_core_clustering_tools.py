"""Tests for the Section 6 tools: tuple/value clustering, attribute grouping,
horizontal partitioning."""

import pytest

from repro.core import (
    cluster_tuples,
    cluster_values,
    find_duplicate_tuples,
    group_attributes,
    horizontal_partition,
    suggest_k,
)
from repro.relation import NULL, Relation


@pytest.fixture
def figure4():
    return Relation(
        ["A", "B", "C"],
        [
            ("a", "1", "p"),
            ("a", "1", "r"),
            ("w", "2", "x"),
            ("y", "2", "x"),
            ("z", "2", "x"),
        ],
    )


@pytest.fixture
def with_duplicates():
    base = [
        ("e1", "Pat", "Sales"),
        ("e2", "Sal", "Sales"),
        ("e3", "Lee", "R&D"),
        ("e4", "Kim", "R&D"),
    ]
    # e5 is a near-duplicate of e1 (differs only in the employee number).
    return Relation(["EmpNo", "Name", "Dept"], base + [("e5", "Pat", "Sales")])


class TestTupleClustering:
    def test_exact_duplicates_found_at_phi_zero(self):
        rel = Relation(
            ["A", "B"],
            [("x", "1"), ("y", "2"), ("x", "1"), ("z", "3"), ("y", "2")],
        )
        groups = find_duplicate_tuples(rel, phi_t=0.0)
        found = {frozenset(g.tuple_indices) for g in groups}
        assert frozenset({0, 2}) in found
        assert frozenset({1, 4}) in found

    def test_no_duplicates_no_groups(self):
        rel = Relation(["A"], [(str(i),) for i in range(5)])
        assert find_duplicate_tuples(rel, phi_t=0.0) == []

    def test_near_duplicate_found_with_positive_phi(self, with_duplicates):
        result = cluster_tuples(with_duplicates, phi_t=0.4)
        assert result.are_candidate_duplicates(0, 4)

    def test_near_duplicate_missed_at_phi_zero(self, with_duplicates):
        result = cluster_tuples(with_duplicates, phi_t=0.0)
        group = result.group_of(0)
        assert group is None or 4 not in group.tuple_indices

    def test_assignment_covers_all_tuples(self, figure4):
        result = cluster_tuples(figure4, phi_t=0.0)
        assert len(result.assignment) == len(figure4)

    def test_group_of_returns_none_for_singletons(self, figure4):
        result = cluster_tuples(figure4, phi_t=0.0)
        assert result.group_of(0) is None


class TestValueClustering:
    def test_figure4_duplicate_groups(self, figure4):
        result = cluster_values(figure4, phi_v=0.0)
        duplicate_members = {
            frozenset(g.labels) for g in result.duplicate_groups
        }
        assert duplicate_members == {
            frozenset({"'a'", "'1'"}),
            frozenset({"'2'", "'x'"}),
        }

    def test_figure4_non_duplicates(self, figure4):
        result = cluster_values(figure4, phi_v=0.0)
        non_dup = {label for g in result.non_duplicate_groups for label in g.labels}
        assert non_dup == {"'w'", "'y'", "'z'", "'p'", "'r'"}

    def test_group_support_counts(self, figure4):
        result = cluster_values(figure4, phi_v=0.0)
        for group in result.duplicate_groups:
            if "'a'" in group.labels:
                assert group.support == {"A": 2, "B": 2}  # Figure 7
                assert group.occurrences == 4
                assert group.n_tuples == 2

    def test_figure5_anomaly_captured_with_phi(self):
        """The Figure 5 variant: x also sits in tuple 2's C column."""
        rel = Relation(
            ["A", "B", "C"],
            [
                ("a", "1", "p"),
                ("a", "1", "x"),
                ("w", "2", "x"),
                ("y", "2", "x"),
                ("z", "2", "x"),
            ],
        )
        exact = cluster_values(rel, phi_v=0.0)
        assert all(
            not {"'2'", "'x'"} <= set(g.labels) for g in exact.groups
        ), "no longer a perfect co-occurrence"
        fuzzy = cluster_values(rel, phi_v=0.30)
        assert any({"'2'", "'x'"} <= set(g.labels) for g in fuzzy.groups)

    def test_group_of_value(self, figure4):
        result = cluster_values(figure4, phi_v=0.0)
        a_id = result.view.catalog.ids["a"]
        group = result.group_of_value(a_id)
        assert group is not None and "'1'" in group.labels
        assert result.group_of_value(10**6) is None

    def test_double_clustering_smoke(self, figure4):
        result = cluster_values(figure4, phi_v=0.0, phi_t=0.5)
        assert result.view.double_clustered
        assert result.groups  # still produces a clustering

    def test_multi_value_groups(self, figure4):
        result = cluster_values(figure4, phi_v=0.0)
        assert len(result.multi_value_groups()) == 2


class TestAttributeGrouping:
    def test_figure10_dendrogram(self, figure4):
        grouping = group_attributes(figure4, phi_v=0.0)
        dendrogram = grouping.dendrogram
        assert grouping.attribute_names == ["A", "B", "C"]
        # First merge joins B and C (the pair with most duplication).
        first = dendrogram.merges[0]
        names = {grouping.attribute_names[first.left], grouping.attribute_names[first.right]}
        assert names == {"B", "C"}
        # Maximum loss matches the paper's ~0.52.
        assert dendrogram.max_loss == pytest.approx(0.5155, abs=0.01)

    def test_merge_loss_queries(self, figure4):
        grouping = group_attributes(figure4, phi_v=0.0)
        assert grouping.merge_loss(["B", "C"]) == pytest.approx(0.1576, abs=0.001)
        assert grouping.merge_loss(["A", "B"]) == pytest.approx(
            grouping.dendrogram.max_loss
        )
        assert grouping.merge_loss(["A", "Z"]) is None
        assert grouping.merge_loss(["A"]) == 0.0

    def test_clusters(self, figure4):
        grouping = group_attributes(figure4, phi_v=0.0)
        two = {frozenset(c) for c in grouping.clusters(2)}
        assert frozenset({"B", "C"}) in two

    def test_render_mentions_attributes(self, figure4):
        text = group_attributes(figure4, phi_v=0.0).render()
        for name in "ABC":
            assert name in text

    def test_requires_input(self):
        with pytest.raises(ValueError, match="relation or a value_clustering"):
            group_attributes()

    def test_rejects_nonzero_phi_a(self, figure4):
        with pytest.raises(ValueError, match="phi_a"):
            group_attributes(figure4, phi_a=0.5)

    def test_no_duplicates_raises(self):
        rel = Relation(["A", "B"], [("a", "1"), ("b", "2")])
        with pytest.raises(ValueError, match="C_V\\^D is empty"):
            group_attributes(rel, phi_v=0.0)

    def test_precomputed_value_clustering(self, figure4):
        values = cluster_values(figure4, phi_v=0.0)
        grouping = group_attributes(value_clustering=values)
        assert grouping.value_clustering is values

    def test_include_all_groups_widens_ad(self, figure4):
        restricted = group_attributes(figure4, phi_v=0.0)
        widened = group_attributes(
            value_clustering=cluster_values(figure4, phi_v=0.0),
            include_all_groups=True,
        )
        # With every value group included, A^D is at least as large and the
        # F matrix carries more columns.
        assert set(restricted.attribute_names) <= set(widened.attribute_names)
        assert len(widened.matrix_f.groups) >= len(restricted.matrix_f.groups)


class TestHorizontalPartitioning:
    @pytest.fixture
    def overloaded(self):
        """An order table overloaded with two tuple types (Section 6.1.2)."""
        rows = []
        for i in range(30):
            rows.append((f"o{i}", "product", f"sku{i % 5}", NULL))
        for i in range(20):
            rows.append((f"o{30 + i}", "service", NULL, f"plan{i % 3}"))
        return Relation(["OrderId", "Kind", "Sku", "Plan"], rows)

    def test_partitions_by_type(self, overloaded):
        result = horizontal_partition(overloaded, k=2, phi_t=0.5)
        assert result.k == 2
        assert sorted(len(p) for p in result.partitions) == [20, 30]
        kinds = [set(p.column("Kind")) for p in result.partitions]
        assert {"product"} in kinds and {"service"} in kinds

    def test_suggested_k_finds_two(self, overloaded):
        result = horizontal_partition(overloaded, phi_t=0.5)
        assert result.k == 2

    def test_information_loss_reported(self, overloaded):
        # The unique OrderId column dominates I(T;V), so even a perfect
        # 2-way split loses most of it; dropping the identifier first (as
        # the paper drops the NULL-heavy DBLP attributes) keeps losses low.
        with_id = horizontal_partition(overloaded, k=2, phi_t=0.5)
        assert 0.0 <= with_id.relative_information_loss <= 1.0
        without_id = horizontal_partition(overloaded.drop(["OrderId"]), k=2, phi_t=0.5)
        assert without_id.relative_information_loss < with_id.relative_information_loss

    def test_partition_sizes_sorted(self, overloaded):
        result = horizontal_partition(overloaded, k=2, phi_t=0.5)
        sizes = result.partition_sizes()
        assert sizes == sorted(sizes, reverse=True)

    def test_max_summaries_respected(self, overloaded):
        result = horizontal_partition(overloaded, k=2, phi_t=0.0, max_summaries=10)
        assert len(result.limbo.summaries) <= 10

    def test_suggest_k_scores(self, overloaded):
        result = horizontal_partition(overloaded, k=2, phi_t=0.5)
        suggestions = suggest_k(result.aib_result)
        assert suggestions[0].k == 2
        assert suggestions[0].score >= suggestions[-1].score
