"""Tests for the M/N/O/F matrix builders against the paper's worked examples."""

import pytest

from repro.relation import (
    Relation,
    build_matrix_f,
    build_tuple_view,
    build_value_view,
)


@pytest.fixture
def figure1():
    """Figure 1/2: the Ename-City-Zip example."""
    return Relation(
        ["Ename", "City", "Zip"],
        [
            ("Pat", "Boston", "02139"),
            ("Pat", "Boston", "02138"),
            ("Sal", "Boston", "02139"),
        ],
    )


@pytest.fixture
def figure4():
    """Figure 4: the A/B/C relation with perfect co-occurrences."""
    return Relation(
        ["A", "B", "C"],
        [
            ("a", "1", "p"),
            ("a", "1", "r"),
            ("w", "2", "x"),
            ("y", "2", "x"),
            ("z", "2", "x"),
        ],
    )


class TestTupleView:
    def test_figure2_masses(self, figure1):
        view = build_tuple_view(figure1)
        catalog = view.catalog
        pat = catalog.ids["Pat"]
        boston = catalog.ids["Boston"]
        z39 = catalog.ids["02139"]
        z38 = catalog.ids["02138"]
        sal = catalog.ids["Sal"]
        # Row t1: Pat, Boston, 02139 each at 1/3 (Figure 2).
        assert view.rows[0] == pytest.approx({pat: 1 / 3, boston: 1 / 3, z39: 1 / 3})
        assert view.rows[1][z38] == pytest.approx(1 / 3)
        assert view.rows[2][sal] == pytest.approx(1 / 3)

    def test_priors_are_uniform(self, figure1):
        view = build_tuple_view(figure1)
        assert view.priors == [pytest.approx(1 / 3)] * 3

    def test_rows_normalized(self, figure4):
        view = build_tuple_view(figure4)
        for row in view.rows:
            assert sum(row.values()) == pytest.approx(1.0)

    def test_value_catalog_size(self, figure4):
        view = build_tuple_view(figure4)
        # Figure 4 has 9 distinct values: a,w,y,z,1,2,p,r,x.
        assert view.n_values == 9

    def test_repeated_literal_within_tuple_accumulates(self):
        rel = Relation(["A", "B"], [("x", "x")])
        view = build_tuple_view(rel)
        (only_row,) = view.rows
        assert only_row == {0: pytest.approx(1.0)}

    def test_attribute_scope_distinguishes_literals(self):
        rel = Relation(["A", "B"], [("x", "x")])
        view = build_tuple_view(rel, value_scope="attribute")
        assert view.n_values == 2

    def test_mutual_information_positive_for_distinct_tuples(self, figure4):
        view = build_tuple_view(figure4)
        assert view.mutual_information() > 0

    def test_empty_relation_rejected(self):
        with pytest.raises(ValueError):
            build_tuple_view(Relation(["A"], []))

    def test_bad_scope_rejected(self, figure4):
        with pytest.raises(ValueError, match="value_scope"):
            build_tuple_view(figure4, value_scope="bogus")


class TestValueView:
    def test_figure6_n_rows(self, figure4):
        view = build_value_view(figure4)
        ids = view.catalog.ids
        # Value 'a' appears in tuples 0,1 -> 1/2 each (Figure 6 left).
        assert view.rows[ids["a"]] == pytest.approx({0: 0.5, 1: 0.5})
        # Value 'x' appears in tuples 2,3,4 -> 1/3 each.
        assert view.rows[ids["x"]] == pytest.approx({2: 1 / 3, 3: 1 / 3, 4: 1 / 3})
        # Value 'p' appears only in tuple 0.
        assert view.rows[ids["p"]] == pytest.approx({0: 1.0})

    def test_figure6_priors(self, figure4):
        view = build_value_view(figure4)
        assert view.priors == [pytest.approx(1 / 9)] * 9

    def test_figure6_o_matrix(self, figure4):
        view = build_value_view(figure4)
        ids = view.catalog.ids
        # Figure 6 right: O[a] = (2,0,0), O[2] = (0,3,0), O[x] = (0,0,3).
        assert view.support[ids["a"]] == {"A": 2}
        assert view.support[ids["2"]] == {"B": 3}
        assert view.support[ids["x"]] == {"C": 3}
        assert view.occurrences(ids["x"]) == 3
        assert view.attributes_of(ids["x"]) == frozenset({"C"})

    def test_row_sums_and_support_totals(self, figure4):
        view = build_value_view(figure4)
        for value_id, row in enumerate(view.rows):
            assert sum(row.values()) == pytest.approx(1.0)
            assert view.occurrences(value_id) >= len(row)

    def test_double_clustering_columns(self, figure4):
        # Collapse tuples {0,1} and {2,3,4} into two clusters.
        clusters = [0, 0, 1, 1, 1]
        view = build_value_view(figure4, tuple_clusters=clusters)
        ids = view.catalog.ids
        assert view.n_columns == 2
        assert view.rows[ids["a"]] == pytest.approx({0: 1.0})
        assert view.rows[ids["x"]] == pytest.approx({1: 1.0})

    def test_double_clustering_requires_full_assignment(self, figure4):
        with pytest.raises(ValueError, match="every tuple"):
            build_value_view(figure4, tuple_clusters=[0, 0])

    def test_shared_literal_across_attributes_counts_once_in_n(self):
        rel = Relation(["A", "B"], [("x", "x"), ("x", "y")])
        view = build_value_view(rel)
        x = view.catalog.ids["x"]
        # N is an indicator over tuples: x appears in both tuples.
        assert view.rows[x] == pytest.approx({0: 0.5, 1: 0.5})
        # O counts occurrences: 2 in A, 1 in B.
        assert view.support[x] == {"A": 2, "B": 1}

    def test_catalog_label(self, figure4):
        view = build_value_view(figure4)
        assert view.catalog.label(view.catalog.ids["a"]) == "'a'"
        scoped = build_value_view(figure4, value_scope="attribute")
        assert scoped.catalog.label(scoped.catalog.ids[("A", "a")]) == "A='a'"


class TestMatrixF:
    def test_figure9(self, figure4):
        view = build_value_view(figure4)
        ids = view.catalog.ids
        groups = [(ids["a"], ids["1"]), (ids["2"], ids["x"])]
        f = build_matrix_f(view, groups)
        assert f.attribute_names == ["A", "B", "C"]
        by_name = dict(zip(f.attribute_names, f.counts))
        # Figure 9 (built from the Figure 5 variant) shows C at 4; on the
        # clean Figure 4 relation 'x' occurs 3 times in C, so F[C] = (0, 3).
        assert by_name["A"] == {0: 2}
        assert by_name["B"] == {0: 2, 1: 3}
        assert by_name["C"] == {1: 3}

    def test_rows_normalized(self, figure4):
        view = build_value_view(figure4)
        ids = view.catalog.ids
        f = build_matrix_f(view, [(ids["a"], ids["1"]), (ids["2"], ids["x"])])
        for row in f.rows:
            assert sum(row.values()) == pytest.approx(1.0)

    def test_attributes_without_duplicate_mass_excluded(self, figure4):
        view = build_value_view(figure4)
        ids = view.catalog.ids
        f = build_matrix_f(view, [(ids["a"], ids["1"])])
        # Only A and B carry the {a,1} group; C is not in A^D.
        assert f.attribute_names == ["A", "B"]

    def test_groups_recorded(self, figure4):
        view = build_value_view(figure4)
        ids = view.catalog.ids
        groups = [(ids["a"], ids["1"])]
        f = build_matrix_f(view, groups)
        assert f.groups == [tuple(groups[0])]
