"""Tests for the FDEP and TANE miners, individually and against each other."""

import itertools

import pytest

from repro.fd import FD, fdep, holds, tane
from repro.fd.fdep import agree_sets, negative_cover
from repro.relation import NULL, Relation


@pytest.fixture
def figure4():
    return Relation(
        ["A", "B", "C"],
        [
            ("a", "1", "p"),
            ("a", "1", "r"),
            ("w", "2", "x"),
            ("y", "2", "x"),
            ("z", "2", "x"),
        ],
    )


def brute_force_minimal_fds(relation):
    """Reference miner: test every LHS subset, keep minimal valid ones."""
    names = relation.schema.names
    result = set()
    for rhs in names:
        others = [n for n in names if n != rhs]
        valid = []
        for size in range(1, len(others) + 1):
            for lhs in itertools.combinations(others, size):
                candidate = FD(set(lhs), {rhs})
                if any(found.lhs < candidate.lhs for found in valid):
                    continue
                if holds(relation, candidate):
                    valid.append(candidate)
        result.update(valid)
    return result


class TestAgreeSets:
    def test_figure4(self, figure4):
        sets = agree_sets(figure4)
        assert frozenset({"A", "B"}) in sets  # tuples 0,1 agree on A,B
        assert frozenset({"B", "C"}) in sets  # tuples 2,3 agree on B,C
        assert frozenset() in sets  # tuples 0,2 agree nowhere

    def test_pair_count_coverage(self):
        rel = Relation(["A"], [("x",), ("x",), ("y",)])
        assert agree_sets(rel) == {frozenset({"A"}), frozenset()}


class TestNegativeCover:
    def test_witnesses_are_maximal(self, figure4):
        cover = negative_cover(figure4)
        for witnesses in cover.values():
            for a, b in itertools.combinations(witnesses, 2):
                assert not a <= b and not b <= a

    def test_witness_semantics(self, figure4):
        # {A,B} witnesses the invalidity of A,B -> C (tuples 0,1).
        assert frozenset({"A", "B"}) in negative_cover(figure4)["C"]


class TestFdep:
    def test_figure4_dependencies(self, figure4):
        found = set(fdep(figure4))
        assert found == {FD("A", "B"), FD("C", "B")}

    def test_all_results_hold(self, figure4):
        for fd in fdep(figure4):
            assert holds(figure4, fd)

    def test_matches_brute_force(self):
        rel = Relation(
            ["A", "B", "C", "D"],
            [
                ("a1", "b1", "c1", "d1"),
                ("a1", "b1", "c2", "d2"),
                ("a2", "b1", "c1", "d1"),
                ("a2", "b2", "c2", "d1"),
                ("a3", "b2", "c1", "d2"),
            ],
        )
        assert set(fdep(rel)) == brute_force_minimal_fds(rel)

    def test_empty_relation(self):
        assert fdep(Relation(["A", "B"], [])) == []

    def test_constant_attribute_promoted_to_singletons(self):
        rel = Relation(["A", "B"], [("x", "k"), ("y", "k"), ("z", "k")])
        found = set(fdep(rel))
        assert FD("A", "B") in found

    def test_constant_attribute_empty_lhs(self):
        rel = Relation(["A", "B"], [("x", "k"), ("y", "k")])
        found = set(fdep(rel, allow_empty_lhs=True))
        assert FD(set(), {"B"}) in found

    def test_key_discovered(self):
        rel = Relation(
            ["K", "X", "Y"],
            [("k1", "x1", "y1"), ("k2", "x1", "y2"), ("k3", "x2", "y1")],
        )
        found = set(fdep(rel))
        assert FD("K", "X") in found and FD("K", "Y") in found

    def test_nulls_compare_equal(self):
        rel = Relation(["A", "B"], [(NULL, "x"), (NULL, "x"), ("v", "y")])
        assert FD("A", "B") in set(fdep(rel))


class TestTane:
    def test_figure4_dependencies(self, figure4):
        assert set(tane(figure4)) == {FD("A", "B"), FD("C", "B")}

    def test_agrees_with_fdep(self):
        rel = Relation(
            ["A", "B", "C", "D"],
            [
                ("a1", "b1", "c1", "d1"),
                ("a1", "b1", "c2", "d2"),
                ("a2", "b1", "c1", "d1"),
                ("a2", "b2", "c2", "d1"),
                ("a3", "b2", "c1", "d2"),
                ("a3", "b1", "c3", "d3"),
            ],
        )
        assert set(tane(rel)) == set(fdep(rel))

    def test_agrees_with_brute_force_random(self):
        import random

        rng = random.Random(42)
        for trial in range(5):
            rows = [
                tuple(rng.choice("abc") for _ in range(4)) for _ in range(12)
            ]
            rel = Relation(["W", "X", "Y", "Z"], rows)
            assert set(tane(rel)) == brute_force_minimal_fds(rel), f"trial {trial}"

    def test_empty_relation(self):
        assert tane(Relation(["A"], [])) == []

    def test_constant_attribute_promotion(self):
        rel = Relation(["A", "B"], [("x", "k"), ("y", "k"), ("z", "k")])
        assert FD("A", "B") in set(tane(rel))
        assert FD(set(), {"B"}) in set(tane(rel, allow_empty_lhs=True))

    def test_max_lhs_size_caps_levels(self):
        rel = Relation(
            ["A", "B", "C", "D"],
            [
                ("a1", "b1", "c1", "d1"),
                ("a1", "b2", "c1", "d2"),
                ("a2", "b1", "c2", "d1"),
                ("a2", "b2", "c2", "d3"),
            ],
        )
        capped = tane(rel, max_lhs_size=1)
        assert all(len(fd.lhs) <= 1 for fd in capped)

    def test_results_hold_and_are_minimal(self):
        import random

        rng = random.Random(7)
        rows = [tuple(rng.choice("ab") for _ in range(3)) for _ in range(20)]
        rel = Relation(["X", "Y", "Z"], rows)
        found = tane(rel)
        for fd in found:
            assert holds(rel, fd)
        for fd in found:
            for attribute in fd.lhs:
                if len(fd.lhs) > 1:
                    smaller = FD(fd.lhs - {attribute}, fd.rhs)
                    assert not holds(rel, smaller) or any(
                        other.lhs <= smaller.lhs and other.rhs == fd.rhs
                        for other in found
                        if other != fd
                    )
