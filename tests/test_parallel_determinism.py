"""Worker-count invariance: any ``workers=N`` is bit-identical to ``workers=1``.

The parallel layer's contract is that the shard layout is a pure function of
the input (never of the worker count) and that every task function either
reuses its sequential twin's code path or computes a content-based result.
These tests pin the contract down empirically: LIMBO merge sequences, FD
minimum covers, FD-RANK orderings and whole discovery reports must compare
``==`` -- not approximately -- across ``workers in {1, 2, 4, 7}`` and both
clustering backends.

``workers=1`` is the in-process oracle: same payloads, same shard layout,
no pool.  Comparing the pooled runs against it proves process boundaries
(and fork vs. spawn) leak nothing into the results.
"""

import importlib
import multiprocessing

import pytest

from repro import ShardedExecutor, StructureDiscovery
from repro.clustering import DCF, Limbo, aib
from repro.core import fd_rank, group_attributes
from repro.fd import fdep, minimum_cover, tane
from repro.relation import build_tuple_view

WORKERS = (1, 2, 4, 7)
BACKENDS = ("sparse", "dense")

#: Small enough that sharding kicks in on the 90-tuple fixture.
SHARD_SIZE = 16


@pytest.fixture(scope="module")
def relation():
    from repro.datasets import db2_sample

    return db2_sample(seed=0).relation


@pytest.fixture(scope="module")
def view(relation):
    return build_tuple_view(relation)


@pytest.fixture(scope="module")
def tight_gates():
    """Shrink the parallel-dispatch gates so the 90-tuple fixture fans out.

    The production gates only engage the pool when a fan-out is big enough
    to win; at test scale they would leave every map with a single payload
    and the invariance claim unexercised.  Only sizes change -- the code
    paths under test are the production ones.
    """
    fdep_mod = importlib.import_module("repro.fd.fdep")
    tane_mod = importlib.import_module("repro.fd.tane")
    aib_mod = importlib.import_module("repro.clustering.aib")
    saved = (
        fdep_mod._PARALLEL_MIN_TUPLES, fdep_mod._PAIRS_PER_BLOCK,
        tane_mod._PARALLEL_MIN_CANDIDATES, tane_mod._CANDIDATE_CHUNK,
        aib_mod._PARALLEL_MIN_OBJECTS, aib_mod._PAIRS_PER_BLOCK,
    )
    fdep_mod._PARALLEL_MIN_TUPLES = 8
    fdep_mod._PAIRS_PER_BLOCK = 512
    tane_mod._PARALLEL_MIN_CANDIDATES = 2
    tane_mod._CANDIDATE_CHUNK = 4
    aib_mod._PARALLEL_MIN_OBJECTS = 16
    aib_mod._PAIRS_PER_BLOCK = 512
    yield
    (
        fdep_mod._PARALLEL_MIN_TUPLES, fdep_mod._PAIRS_PER_BLOCK,
        tane_mod._PARALLEL_MIN_CANDIDATES, tane_mod._CANDIDATE_CHUNK,
        aib_mod._PARALLEL_MIN_OBJECTS, aib_mod._PAIRS_PER_BLOCK,
    ) = saved


def make_executor(workers: int) -> ShardedExecutor:
    return ShardedExecutor(workers=workers, shard_size=SHARD_SIZE)


def summary_fingerprints(summaries) -> list[tuple]:
    """Bitwise identity of Phase-1 leaves: weight, masses, member order."""
    return [
        (s.weight, tuple(sorted(s.conditional.items())), tuple(s.members))
        for s in summaries
    ]


def merge_records(dendrogram) -> list[tuple]:
    return [(m.left, m.right, m.parent, m.loss) for m in dendrogram.merges]


def canonical(fds) -> list:
    return sorted(fds, key=lambda fd: fd.sort_key())


# -- LIMBO --------------------------------------------------------------------------


def run_limbo(view, backend: str, workers: int, phi: float):
    with make_executor(workers) as executor:
        limbo = Limbo(phi=phi, backend=backend, executor=executor)
        limbo.fit(view.rows, view.priors)
        dendrogram = limbo.merge_sequence().dendrogram
        assignment = limbo.assign(limbo.summaries)
        assert executor.events == []
    return (
        summary_fingerprints(limbo.summaries),
        merge_records(dendrogram),
        assignment,
    )


class TestLimboInvariance:
    _oracle: dict = {}

    @classmethod
    def oracle(cls, view, backend, phi):
        key = (backend, phi)
        if key not in cls._oracle:
            cls._oracle[key] = run_limbo(view, backend, workers=1, phi=phi)
        return cls._oracle[key]

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", WORKERS)
    def test_phi_zero_bit_identical(self, view, backend, workers):
        summaries, merges, assignment = run_limbo(view, backend, workers, phi=0.0)
        base_summaries, base_merges, base_assignment = self.oracle(view, backend, 0.0)
        assert summaries == base_summaries
        assert merges == base_merges
        assert assignment == base_assignment

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", WORKERS)
    def test_positive_phi_bit_identical(self, view, backend, workers):
        # The positive-threshold path (per-shard DCF trees + cross-shard
        # re-insert) must be just as worker-invariant as the phi=0 one.
        result = run_limbo(view, backend, workers, phi=0.5)
        assert result == self.oracle(view, backend, 0.5)


# -- AIB ----------------------------------------------------------------------------


def synthetic_dcfs(n: int = 150, universe: int = 40) -> list[DCF]:
    """Deterministic, collision-rich DCFs big enough to cross the AIB gate."""
    dcfs = []
    for i in range(n):
        row = {(i * 7 + k) % universe: (k + 1) / 6.0 for k in range(3)}
        dcfs.append(DCF.singleton(i, 1.0 / n, row))
    return dcfs


class TestAIBInvariance:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_pairwise_block_build_bit_identical(self, tight_gates, workers):
        baseline = merge_records(aib(synthetic_dcfs(), backend="dense").dendrogram)
        with make_executor(workers) as executor:
            result = aib(synthetic_dcfs(), backend="dense", executor=executor)
            assert executor.events == []
        assert merge_records(result.dendrogram) == baseline


# -- FD mining and ranking ----------------------------------------------------------


class TestMinerInvariance:
    @pytest.fixture(scope="class")
    def fdep_baseline(self, relation):
        return canonical(fdep(relation))

    @pytest.fixture(scope="class")
    def tane_baseline(self, relation):
        return canonical(tane(relation, max_lhs_size=2))

    @pytest.mark.parametrize("workers", WORKERS)
    def test_fdep_minimum_cover_invariant(
        self, relation, tight_gates, fdep_baseline, workers
    ):
        with make_executor(workers) as executor:
            fds = fdep(relation, executor=executor)
            assert executor.events == []
        assert canonical(fds) == fdep_baseline
        assert minimum_cover(fds, group_rhs=True) == minimum_cover(
            fdep_baseline, group_rhs=True
        )

    @pytest.mark.parametrize("workers", WORKERS)
    def test_tane_invariant(self, relation, tight_gates, tane_baseline, workers):
        with make_executor(workers) as executor:
            fds = tane(relation, max_lhs_size=2, executor=executor)
            assert executor.events == []
        assert canonical(fds) == tane_baseline

    @pytest.mark.parametrize("workers", WORKERS)
    def test_fd_rank_ordering_invariant(
        self, relation, tight_gates, fdep_baseline, workers
    ):
        with make_executor(workers) as executor:
            fds = fdep(relation, executor=executor)
            grouping = group_attributes(relation, phi_v=0.0, executor=executor)
            ranked = fd_rank(
                minimum_cover(fds, group_rhs=True), grouping, psi=0.5
            )
            assert executor.events == []
        baseline = fd_rank(
            minimum_cover(fdep_baseline, group_rhs=True),
            group_attributes(relation, phi_v=0.0),
            psi=0.5,
        )
        assert [(str(e.fd), e.rank) for e in ranked] == [
            (str(e.fd), e.rank) for e in baseline
        ]


# -- end to end ---------------------------------------------------------------------


class TestDiscoveryInvariance:
    def test_report_renders_byte_identical(self, relation, tight_gates):
        renders = {}
        for workers in WORKERS:
            report = StructureDiscovery(workers=workers).run(relation)
            assert report.healthy
            assert report.outcome("parallel").status == "ok"
            renders[workers] = report.render()
        distinct = set(renders.values())
        assert len(distinct) == 1, (
            "discovery reports differ across worker counts: "
            f"{sorted(renders)}"
        )


# -- start methods ------------------------------------------------------------------


class TestStartMethodInvariance:
    @pytest.mark.parametrize(
        "start_method", multiprocessing.get_all_start_methods()
    )
    def test_fdep_invariant_under_every_start_method(
        self, relation, tight_gates, start_method
    ):
        with ShardedExecutor(
            workers=2, start_method=start_method, shard_size=SHARD_SIZE
        ) as executor:
            fds = fdep(relation, executor=executor)
            assert executor.events == []
        assert canonical(fds) == canonical(fdep(relation))
