"""CLI-level resilience: exit codes, flags, validation, degraded discover."""

import pytest

from repro.cli import (
    EXIT_INPUT,
    EXIT_INTERRUPT,
    EXIT_OK,
    EXIT_RESOURCE_LIMIT,
    main,
)
from repro.datasets import db2_sample
from repro.testing import inject
from repro.relation import write_csv


@pytest.fixture
def db2_csv(tmp_path):
    path = tmp_path / "db2.csv"
    write_csv(db2_sample(seed=0).relation, path)
    return str(path)


class TestExitCodes:
    def test_missing_file_is_input_error(self, capsys):
        assert main(["profile", "/no/such/file.csv"]) == EXIT_INPUT
        err = capsys.readouterr().err
        assert "input error" in err
        assert "Traceback" not in err

    def test_ragged_csv_strict_is_input_error(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2,3\n")
        assert main(["profile", str(path)]) == EXIT_INPUT
        assert "input error" in capsys.readouterr().err

    def test_ragged_csv_coerce_succeeds_and_reports(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2,3\n4,5\n")
        assert main(["profile", str(path), "--on-error", "coerce"]) == EXIT_OK
        assert "truncated 1 long row(s)" in capsys.readouterr().err

    def test_deadline_exceeded_is_exit_3(self, db2_csv, capsys):
        # The tane.level delay makes the budget check fire deterministically.
        with inject("fd.tane.level", delay=0.03):
            code = main(["rank", db2_csv, "--miner", "tane",
                         "--deadline", "0.02"])
        assert code == EXIT_RESOURCE_LIMIT
        err = capsys.readouterr().err
        assert "resource limit exceeded" in err
        assert "Traceback" not in err

    def test_keyboard_interrupt_is_exit_130(self, db2_csv, capsys):
        with inject("limbo.fit", raises=KeyboardInterrupt):
            code = main(["partition", db2_csv, "--k", "2"])
        assert code == EXIT_INTERRUPT
        assert "interrupted" in capsys.readouterr().err


class TestDegradedDiscover:
    @pytest.mark.parametrize("stage", [
        "tuple_clustering", "value_clustering", "attribute_grouping",
        "mining", "cover", "rank",
    ])
    def test_discover_exits_zero_per_injected_stage(self, db2_csv, capsys, stage):
        with inject(f"discovery.{stage}", raises=RuntimeError("injected")):
            assert main(["discover", db2_csv]) == EXIT_OK
        out = capsys.readouterr().out
        assert "Pipeline health: DEGRADED" in out
        assert stage in out

    def test_strict_stages_flag_fails_fast(self, db2_csv, capsys):
        with inject("discovery.mining", raises=RuntimeError("injected")):
            code = main(["discover", db2_csv, "--strict-stages"])
        assert code == 1
        assert "mining" in capsys.readouterr().err


class TestParameterValidation:
    @pytest.mark.parametrize("argv", [
        ["discover", "x.csv", "--psi", "1.5"],
        ["discover", "x.csv", "--phi-t", "-1"],
        ["discover", "x.csv", "--top", "0"],
        ["rank", "x.csv", "--psi", "-0.1"],
        ["rank", "x.csv", "--phi-v", "-2"],
        ["partition", "x.csv", "--k", "1"],
        ["redesign", "x.csv", "--min-rtr", "2"],
        ["redesign", "x.csv", "--max-fragments", "0"],
        ["profile", "x.csv", "--deadline", "0"],
        ["dataset", "dblp", "--out", "x.csv", "--n", "0"],
        ["discover", "x.csv", "--max-restarts", "2"],     # needs --supervise
        ["discover", "x.csv", "--hang-timeout", "5"],     # needs --supervise
        ["discover", "x.csv", "--supervise", "--max-restarts", "-1"],
        ["discover", "x.csv", "--supervise", "--hang-timeout", "0"],
    ])
    def test_out_of_domain_parameters_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as info:
            main(argv)
        assert info.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_valid_edge_values_accepted(self, db2_csv):
        assert main(["rank", db2_csv, "--psi", "1.0", "--top", "1"]) == EXIT_OK


class TestCheckpointFlags:
    def test_resume_requires_checkpoint_dir(self, db2_csv, capsys):
        # Not a parser error: the message explains *why* the directory is
        # needed and what to pass, so it runs after argv parsing and exits
        # through the ordinary input-error path.
        assert main(["discover", db2_csv, "--resume"]) == EXIT_INPUT
        err = capsys.readouterr().err
        assert "--resume needs --checkpoint-dir DIR" in err
        assert "the directory the interrupted run was checkpointing into" in err

    def test_checkpoint_cadence_validated(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["discover", "x.csv", "--checkpoint-dir", "d",
                  "--checkpoint-cadence", "0"])
        assert info.value.code == 2
        assert "--checkpoint-cadence" in capsys.readouterr().err

    def test_discover_writes_and_resumes_snapshots(
        self, db2_csv, tmp_path, capsys
    ):
        ckpt = tmp_path / "ckpt"
        assert main(["discover", db2_csv, "--checkpoint-dir", str(ckpt)]) == EXIT_OK
        first = capsys.readouterr().out
        assert (ckpt / "manifest.json").exists()
        assert (ckpt / "stage.mining.ckpt").exists()

        code = main(["discover", db2_csv, "--checkpoint-dir", str(ckpt),
                     "--resume"])
        assert code == EXIT_OK
        resumed = capsys.readouterr().out
        assert resumed == first  # bit-identical resume, no checkpoint line
        assert "checkpoint" not in resumed

    def test_corrupt_snapshot_surfaces_in_health_not_exit_code(
        self, db2_csv, tmp_path, capsys
    ):
        ckpt = tmp_path / "ckpt"
        assert main(["discover", db2_csv, "--checkpoint-dir", str(ckpt)]) == EXIT_OK
        first = capsys.readouterr().out
        victim = ckpt / "stage.cover.ckpt"
        data = bytearray(victim.read_bytes())
        data[-3] ^= 0xFF
        victim.write_bytes(bytes(data))

        code = main(["discover", db2_csv, "--checkpoint-dir", str(ckpt),
                     "--resume"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "quarantine" in out
        assert out.split("Pipeline health:")[0] == (
            first.split("Pipeline health:")[0]
        )

    def test_unusable_checkpoint_dir_is_exit_1(self, db2_csv, tmp_path, capsys):
        blocker = tmp_path / "occupied"
        blocker.write_text("not a directory")
        code = main(["discover", db2_csv, "--checkpoint-dir", str(blocker)])
        assert code == 1
        assert "checkpoint" in capsys.readouterr().err


class TestSupervisedDiscover:
    def test_clean_supervised_run_matches_unsupervised(self, db2_csv, capsys):
        assert main(["discover", db2_csv]) == EXIT_OK
        plain = capsys.readouterr().out
        assert main(["discover", db2_csv, "--supervise"]) == EXIT_OK
        assert capsys.readouterr().out == plain

    def test_supervised_with_checkpoint_dir_leaves_incident(
        self, db2_csv, tmp_path, capsys
    ):
        import json

        ckpt = tmp_path / "ckpt"
        code = main(["discover", db2_csv, "--supervise",
                     "--checkpoint-dir", str(ckpt),
                     "--max-restarts", "1", "--hang-timeout", "60"])
        assert code == EXIT_OK
        incident = json.loads((ckpt / "incident.json").read_text("utf-8"))
        assert incident["outcome"] == "completed"
        assert incident["restarts_used"] == 0
        assert incident["config"]["max_restarts"] == 1
        capsys.readouterr()
