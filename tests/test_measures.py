"""Tests for the RAD and RTR duplication measures."""

import math

import pytest

from repro.core import rad, rtr
from repro.relation import Relation


@pytest.fixture
def figure4():
    return Relation(
        ["A", "B", "C"],
        [
            ("a", "1", "p"),
            ("a", "1", "r"),
            ("w", "2", "x"),
            ("y", "2", "x"),
            ("z", "2", "x"),
        ],
    )


class TestRTR:
    def test_all_identical_column(self):
        rel = Relation(["A"], [("v",)] * 3)
        assert rtr(rel, ["A"]) == pytest.approx(2 / 3)

    def test_all_distinct(self):
        rel = Relation(["A"], [(str(i),) for i in range(4)])
        assert rtr(rel, ["A"]) == 0.0

    def test_paper_example_c_to_b(self, figure4):
        # Projecting on {B,C}: distinct rows {(1,p),(1,r),(2,x)} -> 3 of 5.
        assert rtr(figure4, ["B", "C"]) == pytest.approx(1 - 3 / 5)

    def test_paper_example_a_to_b(self, figure4):
        # Projecting on {A,B}: 4 distinct rows of 5.
        assert rtr(figure4, ["A", "B"]) == pytest.approx(1 - 4 / 5)

    def test_decomposition_preference_matches_paper(self, figure4):
        # Section 7: decomposing by C -> B removes more tuples than A -> B.
        assert rtr(figure4, ["B", "C"]) > rtr(figure4, ["A", "B"])

    def test_empty_relation(self):
        assert rtr(Relation(["A"], []), ["A"]) == 0.0

    def test_unknown_attribute_rejected(self, figure4):
        with pytest.raises(KeyError):
            rtr(figure4, ["Nope"])

    def test_string_attribute_accepted(self, figure4):
        assert rtr(figure4, "B") == rtr(figure4, ["B"])

    def test_bounds(self, figure4):
        for attrs in (["A"], ["B"], ["C"], ["A", "B", "C"]):
            assert 0.0 <= rtr(figure4, attrs) < 1.0


class TestRAD:
    def test_single_repeated_value_is_one(self):
        # The paper's own example: a single-attribute relation with one
        # repeated value has RAD = 1 whether it has 2 or 3 tuples.
        two = Relation(["A"], [("v",)] * 2)
        three = Relation(["A"], [("v",)] * 3)
        assert rad(two, ["A"]) == pytest.approx(1.0)
        assert rad(three, ["A"]) == pytest.approx(1.0)

    def test_all_distinct_single_attribute(self):
        rel = Relation(["A"], [(str(i),) for i in range(8)])
        # H = log n, p(C_A) = 1 -> RAD = 0.
        assert rad(rel, ["A"]) == pytest.approx(0.0)

    def test_weighted_formula(self, figure4):
        # Hand-computed: projection on B has counts {1:2, 2:3}.
        h = -(2 / 5) * math.log2(2 / 5) - (3 / 5) * math.log2(3 / 5)
        expected = 1 - (1 / 3) * h / math.log2(5)
        assert rad(figure4, ["B"]) == pytest.approx(expected)

    def test_unweighted_variant(self, figure4):
        h = -(2 / 5) * math.log2(2 / 5) - (3 / 5) * math.log2(3 / 5)
        assert rad(figure4, ["B"], weighted=False) == pytest.approx(
            1 - h / math.log2(5)
        )

    def test_width_sensitivity(self, figure4):
        # Adding a perfectly correlated attribute must not raise RAD:
        # weighting by |C_A|/m penalizes wider sets with the same entropy.
        narrow = rad(figure4, ["B"])
        wide = rad(figure4, ["B", "C"])
        assert wide < narrow

    def test_small_relations(self):
        assert rad(Relation(["A"], []), ["A"]) == 0.0
        assert rad(Relation(["A"], [("x",)]), ["A"]) == 0.0

    def test_ranking_agreement_with_paper(self, figure4):
        # Duplication of {B,C} beats {A,B} (Proposition 1's conclusion).
        assert rad(figure4, ["B", "C"]) > rad(figure4, ["A", "B"])

    def test_bounds(self, figure4):
        for attrs in (["A"], ["B"], ["C"], ["A", "B"], ["B", "C"]):
            value = rad(figure4, attrs)
            assert 0.0 <= value <= 1.0

    def test_needs_an_attribute(self, figure4):
        with pytest.raises(ValueError):
            rad(figure4, [])
