"""Graceful degradation of the discovery pipeline, proven by fault injection."""

import pytest

from repro import Budget, Relation, StructureDiscovery
from repro.core.discovery import STAGES, deterministic_sample
from repro.errors import StageFailure
from repro.testing import inject


@pytest.fixture(scope="module")
def relation():
    from repro.datasets import db2_sample

    return db2_sample(seed=0).relation


#: The fallback each stage is expected to apply when its primary path dies
#: (None = the stage has no ladder rung and reports ``failed``).
EXPECTED_FALLBACK = {
    "tuple_clustering": "exact-duplicate scan",
    "value_clustering": "sample",
    "attribute_grouping": None,
    "mining": "FDEP",
    "cover": "raw mined dependencies",
    "rank": "singleton grouping",
}


class TestStageGuards:
    @pytest.mark.parametrize("stage", STAGES)
    def test_injected_failure_degrades_not_dies(self, relation, stage):
        with inject(f"discovery.{stage}", raises=RuntimeError("injected")) as fault:
            report = StructureDiscovery().run(relation)
        assert fault.fired == 1
        outcome = report.outcome(stage)
        assert outcome is not None
        expected = EXPECTED_FALLBACK[stage]
        if expected is None:
            assert outcome.status == "failed"
        else:
            assert outcome.status == "degraded"
            assert expected in outcome.fallback
        assert not report.healthy
        # The report still renders, and its health section names the stage.
        rendered = report.render()
        assert "Pipeline health: DEGRADED" in rendered
        assert stage in rendered

    @pytest.mark.parametrize("stage", STAGES)
    def test_strict_mode_raises_stage_failure(self, relation, stage):
        with inject(f"discovery.{stage}", raises=RuntimeError("injected")):
            with pytest.raises(StageFailure) as info:
                StructureDiscovery(strict=True).run(relation)
        assert info.value.stage == stage

    def test_healthy_run_reports_all_ok(self, relation):
        report = StructureDiscovery().run(relation)
        assert report.healthy
        assert [o.stage for o in report.outcomes] == list(STAGES)
        assert "Pipeline health: all stages ok" in report.render()

    def test_keyboard_interrupt_propagates(self, relation):
        with inject("discovery.mining", raises=KeyboardInterrupt):
            with pytest.raises(KeyboardInterrupt):
                StructureDiscovery().run(relation)

    def test_grouping_failure_degrades_rank_to_cover_order(self, relation):
        with inject("discovery.attribute_grouping", raises=RuntimeError("x")):
            report = StructureDiscovery().run(relation)
        assert report.attribute_grouping is None
        assert report.cover
        # The cover is still surfaced, unranked, in deterministic order.
        assert [r.fd for r in report.ranked] == sorted(
            report.cover, key=lambda fd: fd.sort_key()
        )
        assert all(r.gathered_loss is None for r in report.ranked)
        assert report.outcome("rank").status == "degraded"

    def test_double_fault_marks_stage_failed(self, relation):
        # Kill the miner AND its sample fallback (FDEP's pair scan).
        with inject("discovery.mining", raises=RuntimeError("primary")):
            with inject("fd.fdep.pairs", raises=RuntimeError("fallback too")):
                report = StructureDiscovery().run(relation)
        outcome = report.outcome("mining")
        assert outcome.status == "failed"
        assert "fallback" in outcome.detail
        assert report.dependencies == []
        assert report.render()  # still renders


class TestParallelStage:
    """The pool degrades to sequential execution -- it never takes the run down."""

    @pytest.fixture
    def small_shards(self, monkeypatch):
        """Force a multi-shard layout on the 90-tuple fixture.

        The discovery driver resolves ``ShardedExecutor`` from
        :mod:`repro.parallel` at run time, so wrapping the constructor is
        enough to shrink the shards without touching production defaults.
        """
        import repro.parallel as parallel

        real = parallel.ShardedExecutor

        def factory(**kwargs):
            kwargs.setdefault("shard_size", 8)
            return real(**kwargs)

        monkeypatch.setattr(parallel, "ShardedExecutor", factory)

    def test_sequential_default_records_no_parallel_stage(self, relation):
        report = StructureDiscovery().run(relation)
        assert report.outcome("parallel") is None

    def test_healthy_parallel_run_reports_ok(self, relation, small_shards):
        report = StructureDiscovery(workers=2).run(relation)
        assert report.healthy
        assert [o.stage for o in report.outcomes] == list(STAGES) + ["parallel"]
        assert report.outcome("parallel").status == "ok"
        assert "Pipeline health: all stages ok" in report.render()

    def test_worker_fault_degrades_not_dies(self, relation, small_shards):
        with inject("parallel.worker", raises=RuntimeError("injected")) as fault:
            report = StructureDiscovery(workers=2).run(relation)
        # Retry-then-sticky-degradation: the dispatch and its one retry hit
        # the fault, then everything ran sequentially.
        assert fault.fired == 2
        outcome = report.outcome("parallel")
        assert outcome is not None
        assert outcome.status == "degraded"
        assert "dispatch-failure" in outcome.detail
        assert outcome.fallback == "sequential execution"
        assert not report.healthy
        assert "Pipeline health: DEGRADED" in report.render()
        # Every *pipeline* stage still took its primary path.
        for stage in STAGES:
            assert report.outcome(stage).status == "ok"

    def test_single_worker_fault_recovers_without_degrading(
        self, relation, small_shards
    ):
        with inject(
            "parallel.worker", raises=RuntimeError("injected"), limit=1
        ) as fault:
            report = StructureDiscovery(workers=2).run(relation)
        assert fault.fired == 1
        outcome = report.outcome("parallel")
        assert outcome is not None
        assert outcome.status == "ok"
        assert outcome.detail.startswith("recovered: ")
        assert report.healthy
        assert "Pipeline health: all stages ok" in report.render()

    def test_degraded_run_matches_clean_run(self, relation, small_shards):
        # Re-executed shards are pure functions of their payloads, so a
        # run that lost its pool produces the same artifacts as one that
        # kept it.
        with inject("parallel.worker", raises=RuntimeError("injected")):
            degraded = StructureDiscovery(workers=2).run(relation)
        clean = StructureDiscovery(workers=2).run(relation)
        assert degraded.dependencies == clean.dependencies
        assert degraded.cover == clean.cover
        assert [r.fd for r in degraded.ranked] == [r.fd for r in clean.ranked]
        assert (
            len(degraded.tuple_clustering.duplicate_groups)
            == len(clean.tuple_clustering.duplicate_groups)
        )


class TestBudgetedRun:
    def test_exhausted_budget_yields_degraded_report(self, relation):
        report = StructureDiscovery().run(relation, budget=Budget(max_units=1))
        assert not report.healthy
        outcome = report.outcome("tuple_clustering")
        assert outcome.status == "degraded"
        assert "budget exhausted" in outcome.detail
        assert report.render()

    def test_constructor_budget_is_default(self, relation):
        discovery = StructureDiscovery(budget=Budget(max_units=1))
        assert not discovery.run(relation).healthy

    def test_mining_over_budget_falls_back_to_sampled_fdep(self, relation):
        # Let clustering run unbudgeted; starve only the miner via a delay
        # fault right before TANE's first level with a tiny deadline.
        discovery = StructureDiscovery(miner="tane")
        with inject("fd.tane.level", delay=0.05):
            report = discovery.run(relation, budget=Budget(deadline=0.04))
        outcome = report.outcome("mining")
        assert outcome.status == "degraded"
        assert "FDEP" in outcome.fallback
        assert report.dependencies  # the sampled miner still found FDs


class TestDeterministicSample:
    def test_small_relation_returned_whole(self):
        r = Relation(["A"], [("1",), ("2",)])
        assert deterministic_sample(r, cap=10) is r

    def test_sample_is_capped_and_stable(self):
        rows = [(str(i), str(i % 7)) for i in range(1000)]
        r = Relation(["A", "B"], rows)
        first = deterministic_sample(r, cap=50)
        second = deterministic_sample(r, cap=50)
        assert len(first) == 50
        assert first.rows == second.rows
        assert first.schema == r.schema
