"""Unit and integration tests for the LIMBO driver."""

import pytest

from repro.clustering import Limbo, clustering_information
from repro.relation import Relation, build_tuple_view, build_value_view


@pytest.fixture
def two_blocks():
    """20 tuples in two obvious blocks that share no values."""
    rows = []
    for i in range(10):
        rows.append((f"a{i % 2}", "x", "left"))
    for i in range(10):
        rows.append((f"b{i % 2}", "y", "right"))
    return Relation(["P", "Q", "R"], rows)


class TestFitValidation:
    def test_requires_fit_before_use(self):
        limbo = Limbo()
        with pytest.raises(RuntimeError):
            _ = limbo.summaries

    def test_rejects_negative_phi(self):
        with pytest.raises(ValueError):
            Limbo(phi=-0.1)

    def test_rejects_bad_max_summaries(self):
        with pytest.raises(ValueError):
            Limbo(max_summaries=0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            Limbo().fit([{0: 1.0}], [0.5, 0.5])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Limbo().fit([], [])

    def test_rejects_support_mismatch(self):
        with pytest.raises(ValueError):
            Limbo().fit([{0: 1.0}], [1.0], supports=[])


class TestPhase1:
    def test_phi_zero_keeps_distinct_tuples(self, two_blocks):
        view = build_tuple_view(two_blocks)
        limbo = Limbo(phi=0.0).fit(view.rows, view.priors)
        # 4 distinct tuple patterns exist.
        assert len(limbo.summaries) == 4

    def test_threshold_value(self, two_blocks):
        view = build_tuple_view(two_blocks)
        limbo = Limbo(phi=0.5).fit(view.rows, view.priors)
        assert limbo.threshold == pytest.approx(
            0.5 * limbo.total_information / len(view.rows)
        )

    def test_larger_phi_coarser_summaries(self, two_blocks):
        view = build_tuple_view(two_blocks)
        fine = Limbo(phi=0.0).fit(view.rows, view.priors)
        coarse = Limbo(phi=1.0).fit(view.rows, view.priors)
        assert len(coarse.summaries) <= len(fine.summaries)

    def test_max_summaries_cap(self, two_blocks):
        view = build_tuple_view(two_blocks)
        limbo = Limbo(phi=0.0, max_summaries=2).fit(view.rows, view.priors)
        assert len(limbo.summaries) <= 2

    def test_summary_weights_sum_to_one(self, two_blocks):
        view = build_tuple_view(two_blocks)
        limbo = Limbo(phi=0.2).fit(view.rows, view.priors)
        assert sum(s.weight for s in limbo.summaries) == pytest.approx(1.0)

    def test_precomputed_mutual_information_used(self, two_blocks):
        view = build_tuple_view(two_blocks)
        info = view.mutual_information()
        limbo = Limbo(phi=0.5).fit(view.rows, view.priors, mutual_information=info)
        assert limbo.total_information == info


class TestPhases2And3:
    def test_recovers_two_blocks(self, two_blocks):
        view = build_tuple_view(two_blocks)
        limbo = Limbo(phi=0.0).fit(view.rows, view.priors)
        assignment = limbo.cluster(2)
        left = {assignment[i] for i in range(10)}
        right = {assignment[i] for i in range(10, 20)}
        assert len(left) == 1 and len(right) == 1 and left != right

    def test_representatives_count(self, two_blocks):
        view = build_tuple_view(two_blocks)
        limbo = Limbo(phi=0.0).fit(view.rows, view.priors)
        assert len(limbo.representatives(3)) == 3

    def test_assign_external_rows(self, two_blocks):
        view = build_tuple_view(two_blocks)
        limbo = Limbo(phi=0.0).fit(view.rows, view.priors)
        reps = limbo.representatives(2)
        # A fresh object identical to a left-block tuple must go left.
        assignment = limbo.assign(reps, rows=[view.rows[0]], priors=[1.0])
        assert assignment == [limbo.assign(reps)[0]]

    def test_assign_requires_representatives(self, two_blocks):
        view = build_tuple_view(two_blocks)
        limbo = Limbo(phi=0.0).fit(view.rows, view.priors)
        with pytest.raises(ValueError):
            limbo.assign([])

    def test_merge_sequence_labels(self, two_blocks):
        view = build_tuple_view(two_blocks)
        limbo = Limbo(phi=0.0).fit(view.rows, view.priors)
        labels = [f"s{i}" for i in range(len(limbo.summaries))]
        result = limbo.merge_sequence(labels=labels)
        assert result.dendrogram.labels == labels


class TestInformationAccounting:
    def test_zero_loss_for_perfect_clustering(self, two_blocks):
        view = build_tuple_view(two_blocks)
        limbo = Limbo(phi=0.0).fit(view.rows, view.priors)
        # k = number of distinct patterns: assignment loses nothing.
        assignment = limbo.cluster(4)
        assert limbo.relative_information_loss(assignment) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_one_cluster_loses_everything(self, two_blocks):
        view = build_tuple_view(two_blocks)
        limbo = Limbo(phi=0.0).fit(view.rows, view.priors)
        assignment = limbo.cluster(1)
        assert limbo.relative_information_loss(assignment) == pytest.approx(1.0)

    def test_loss_monotone_in_k(self, two_blocks):
        view = build_tuple_view(two_blocks)
        limbo = Limbo(phi=0.0).fit(view.rows, view.priors)
        losses = [
            limbo.relative_information_loss(limbo.cluster(k)) for k in (4, 2, 1)
        ]
        assert losses[0] <= losses[1] + 1e-9 <= losses[2] + 2e-9

    def test_clustering_information_validates_length(self):
        with pytest.raises(ValueError):
            clustering_information([{0: 1.0}], [1.0], [0, 1])


class TestValueClusteringIntegration:
    def test_figure4_through_limbo(self):
        relation = Relation(
            ["A", "B", "C"],
            [
                ("a", "1", "p"),
                ("a", "1", "r"),
                ("w", "2", "x"),
                ("y", "2", "x"),
                ("z", "2", "x"),
            ],
        )
        view = build_value_view(relation)
        limbo = Limbo(phi=0.0).fit(view.rows, view.priors, supports=view.support)
        ids = view.catalog.ids
        # phi=0 merges only the perfect co-occurrences: 9 values -> 7 leaves.
        assert len(limbo.summaries) == 7
        member_sets = {frozenset(s.members) for s in limbo.summaries}
        assert frozenset({ids["a"], ids["1"]}) in member_sets
        assert frozenset({ids["2"], ids["x"]}) in member_sets
        # ADCF support survives Phase 1 (Figure 7's O-rows).
        for summary in limbo.summaries:
            if frozenset(summary.members) == frozenset({ids["a"], ids["1"]}):
                assert summary.support == {"A": 2, "B": 2}


class RecordingBudget:
    """Fake budget capturing every cooperative checkpoint call."""

    def __init__(self):
        self.calls = []

    def checkpoint(self, units=1, where=""):
        self.calls.append((units, where))


class TestAssignCheckpointCadence:
    """Regression for the Phase-3 loop-variable shadowing bug.

    The inner representative scan used to reuse the outer object loop's
    ``index`` variable; these tests pin the checkpoint cadence (one call per
    ``_CHECK_EVERY`` objects, charged ``_CHECK_EVERY * len(reps)`` units) so
    any reintroduction of the shadowing -- or a silent cadence change --
    fails loudly.
    """

    @staticmethod
    def _fitted_limbo(n_objects, budget=None, backend="auto"):
        rows = [{i % 7: 0.5, (i % 7) + 7: 0.5} for i in range(n_objects)]
        priors = [1.0 / n_objects] * n_objects
        limbo = Limbo(phi=0.0, budget=budget, backend=backend)
        return limbo.fit(rows, priors), rows, priors

    def test_sparse_path_cadence(self):
        from repro.clustering.limbo import _CHECK_EVERY

        n = 3 * _CHECK_EVERY + 5
        limbo, rows, priors = self._fitted_limbo(n)
        budget = RecordingBudget()
        limbo.budget = budget
        reps = [s.copy() for s in limbo.summaries[:3]]  # below the dense min
        limbo.assign(reps)
        assign_calls = [c for c in budget.calls if c[1] == "limbo.assign"]
        assert len(assign_calls) == -(-n // _CHECK_EVERY)  # ceil
        assert all(units == _CHECK_EVERY * len(reps) for units, _ in assign_calls)

    def test_dense_path_cadence_matches_sparse(self):
        from repro import kernels
        from repro.clustering.limbo import _CHECK_EVERY

        n = 2 * _CHECK_EVERY
        limbo, rows, priors = self._fitted_limbo(n)
        reps = [s.copy() for s in limbo.summaries[: kernels.DENSE_MIN_REPRESENTATIVES]]
        counts = {}
        for backend in ("sparse", "dense"):
            budget = RecordingBudget()
            limbo.budget = budget
            limbo.backend = backend
            limbo.assign(reps)
            counts[backend] = [c for c in budget.calls if c[1] == "limbo.assign"]
        assert counts["sparse"] == counts["dense"]
        assert len(counts["sparse"]) == n // _CHECK_EVERY

    def test_assignment_unaffected_by_many_representatives(self):
        from repro.clustering.limbo import _CHECK_EVERY

        # With len(reps) > _CHECK_EVERY the old shadowed index would have
        # desynchronized anything reading it after the inner scan; every
        # object must still land on its own (zero-cost) representative.
        n = _CHECK_EVERY + 6
        rows = [{i: 1.0} for i in range(n)]
        priors = [1.0 / n] * n
        limbo = Limbo(phi=0.0, backend="sparse").fit(rows, priors)
        reps = limbo.summaries
        assert len(reps) > _CHECK_EVERY
        assignment = limbo.assign(reps)
        assert len(assignment) == n
        assert all(reps[a].members == [i] for i, a in enumerate(assignment))

    def test_backends_agree_on_assignment(self):
        limbo, rows, priors = self._fitted_limbo(40)
        reps = [s.copy() for s in limbo.summaries]
        sparse = dense = None
        limbo.backend = "sparse"
        sparse = limbo.assign(reps)
        limbo.backend = "dense"
        dense = limbo.assign(reps)
        assert sparse == dense
