"""Property-based tests (hypothesis) for dependency mining and covers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import rad, rtr
from repro.fd import (
    FD,
    closure,
    fdep,
    g3_error,
    holds,
    implies,
    minimum_cover,
    tane,
)
from repro.fd.partitions import partition_of, product
from repro.relation import Relation

ATTRS = ("W", "X", "Y", "Z")


@st.composite
def small_relation(draw, max_rows=14, max_card=3):
    """A random 4-attribute categorical relation."""
    n = draw(st.integers(min_value=1, max_value=max_rows))
    rows = [
        tuple(
            f"{a}{draw(st.integers(min_value=0, max_value=max_card - 1))}"
            for a in ATTRS
        )
        for _ in range(n)
    ]
    return Relation(ATTRS, rows)


@st.composite
def fd_set(draw, max_fds=6):
    n = draw(st.integers(min_value=1, max_value=max_fds))
    fds = []
    for _ in range(n):
        lhs = draw(
            st.sets(st.sampled_from(ATTRS), min_size=1, max_size=2)
        )
        rhs = draw(
            st.sets(st.sampled_from(ATTRS), min_size=1, max_size=2)
        )
        fds.append(FD(lhs, rhs))
    return fds


class TestClosureProperties:
    @given(st.sets(st.sampled_from(ATTRS), min_size=1), fd_set())
    def test_extensive(self, attrs, fds):
        assert frozenset(attrs) <= closure(attrs, fds)

    @given(st.sets(st.sampled_from(ATTRS), min_size=1), fd_set())
    def test_idempotent(self, attrs, fds):
        once = closure(attrs, fds)
        assert closure(once, fds) == once

    @given(st.sets(st.sampled_from(ATTRS), min_size=1),
           st.sets(st.sampled_from(ATTRS), min_size=1), fd_set())
    def test_monotone(self, a, b, fds):
        if frozenset(a) <= frozenset(b):
            assert closure(a, fds) <= closure(b, fds)


class TestMinerProperties:
    @given(small_relation())
    @settings(max_examples=40, deadline=None)
    def test_fdep_results_hold(self, relation):
        for fd in fdep(relation):
            assert holds(relation, fd)

    @given(small_relation())
    @settings(max_examples=40, deadline=None)
    def test_fdep_results_minimal(self, relation):
        found = fdep(relation)
        for fd in found:
            for attribute in fd.lhs:
                smaller = fd.lhs - {attribute}
                if smaller:
                    assert not holds(relation, FD(smaller, fd.rhs)), str(fd)

    @given(small_relation())
    @settings(max_examples=30, deadline=None)
    def test_fdep_and_tane_agree(self, relation):
        assert set(fdep(relation)) == set(tane(relation))

    @given(small_relation())
    @settings(max_examples=30, deadline=None)
    def test_g3_zero_iff_holds(self, relation):
        for fd in (FD("W", "X"), FD({"X", "Y"}, {"Z"})):
            if holds(relation, fd):
                assert g3_error(relation, fd) == 0.0
            else:
                assert g3_error(relation, fd) > 0.0


@pytest.fixture(scope="module")
def pool_executor():
    """A real two-worker pool, shared across examples, with the dispatch
    gates shrunk so the tiny hypothesis relations actually fan out."""
    import importlib

    from repro.parallel import ShardedExecutor

    fdep_mod = importlib.import_module("repro.fd.fdep")
    tane_mod = importlib.import_module("repro.fd.tane")
    saved = (
        fdep_mod._PARALLEL_MIN_TUPLES, fdep_mod._PAIRS_PER_BLOCK,
        tane_mod._PARALLEL_MIN_CANDIDATES, tane_mod._CANDIDATE_CHUNK,
    )
    fdep_mod._PARALLEL_MIN_TUPLES = 2
    fdep_mod._PAIRS_PER_BLOCK = 8
    tane_mod._PARALLEL_MIN_CANDIDATES = 2
    tane_mod._CANDIDATE_CHUNK = 2
    executor = ShardedExecutor(workers=2, shard_size=4)
    try:
        yield executor
    finally:
        executor.close()
        (
            fdep_mod._PARALLEL_MIN_TUPLES, fdep_mod._PAIRS_PER_BLOCK,
            tane_mod._PARALLEL_MIN_CANDIDATES, tane_mod._CANDIDATE_CHUNK,
        ) = saved


class TestParallelMinerProperties:
    """Distributed mining returns the *exact* sequential dependency sets."""

    @given(small_relation())
    @settings(max_examples=15, deadline=None)
    def test_parallel_fdep_exact(self, pool_executor, relation):
        assert set(fdep(relation, executor=pool_executor)) == set(fdep(relation))
        assert pool_executor.events == []

    @given(small_relation())
    @settings(max_examples=15, deadline=None)
    def test_parallel_tane_exact(self, pool_executor, relation):
        assert set(tane(relation, executor=pool_executor)) == set(tane(relation))
        assert pool_executor.events == []


class TestCoverProperties:
    @given(fd_set())
    @settings(max_examples=60)
    def test_cover_equivalent_to_input(self, fds):
        cover = minimum_cover(fds)
        for fd in fds:
            assert implies(cover, fd), str(fd)
        for fd in cover:
            assert implies(fds, fd), str(fd)

    @given(fd_set())
    @settings(max_examples=60)
    def test_cover_nonredundant(self, fds):
        cover = minimum_cover(fds)
        for index, fd in enumerate(cover):
            rest = cover[:index] + cover[index + 1 :]
            assert not implies(rest, fd), str(fd)

    @given(fd_set())
    @settings(max_examples=60)
    def test_cover_idempotent(self, fds):
        once = minimum_cover(fds)
        assert minimum_cover(once) == once


class TestPartitionProperties:
    @given(small_relation(),
           st.sets(st.sampled_from(ATTRS), min_size=1, max_size=2),
           st.sets(st.sampled_from(ATTRS), min_size=1, max_size=2))
    @settings(max_examples=40, deadline=None)
    def test_product_matches_direct(self, relation, left, right):
        direct = partition_of(relation, sorted(left | right))
        combined = product(
            partition_of(relation, sorted(left)),
            partition_of(relation, sorted(right)),
        )
        assert combined == direct

    @given(small_relation(),
           st.sets(st.sampled_from(ATTRS), min_size=1, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_error_decreases_with_more_attributes(self, relation, attrs):
        small = partition_of(relation, sorted(attrs))
        full = partition_of(relation, ATTRS)
        assert full.error <= small.error


class TestMeasureProperties:
    @given(small_relation(),
           st.sets(st.sampled_from(ATTRS), min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, relation, attrs):
        assert 0.0 <= rad(relation, sorted(attrs)) <= 1.0
        assert 0.0 <= rtr(relation, sorted(attrs)) < 1.0

    @given(small_relation(),
           st.sets(st.sampled_from(ATTRS), min_size=1, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_rtr_monotone_in_width(self, relation, attrs):
        # Adding attributes can only split projected groups further.
        wider = sorted(set(attrs) | {"W"})
        assert rtr(relation, wider) <= rtr(relation, sorted(attrs)) + 1e-12

    @given(small_relation())
    @settings(max_examples=40, deadline=None)
    def test_rtr_equals_realized_reduction(self, relation):
        from repro.core import decompose_by_fd

        fd = FD({"W", "X"}, {"Y"})
        decomposition = decompose_by_fd(relation, fd)
        assert decomposition.tuple_reduction == pytest.approx(
            rtr(relation, sorted(fd.attributes))
        )
