"""Tests for FD-RANK, decomposition, and the discovery driver."""

import pytest

from repro.core import (
    StructureDiscovery,
    decompose_by_fd,
    fd_rank,
    group_attributes,
    is_lossless,
    redundancy_report,
)
from repro.fd import FD, fdep, minimum_cover
from repro.relation import Relation


@pytest.fixture
def figure4():
    return Relation(
        ["A", "B", "C"],
        [
            ("a", "1", "p"),
            ("a", "1", "r"),
            ("w", "2", "x"),
            ("y", "2", "x"),
            ("z", "2", "x"),
        ],
    )


@pytest.fixture
def grouping(figure4):
    return group_attributes(figure4, phi_v=0.0)


class TestFDRank:
    def test_paper_example_order(self, figure4, grouping):
        """Section 7: with psi=0.5, C->B ranks above A->B."""
        ranked = fd_rank([FD("A", "B"), FD("C", "B")], grouping, psi=0.5)
        assert [str(r.fd) for r in ranked] == ["[C] -> [B]", "[A] -> [B]"]

    def test_qualified_rank_is_merge_loss(self, figure4, grouping):
        ranked = fd_rank([FD("C", "B")], grouping, psi=0.5)
        assert ranked[0].qualified
        assert ranked[0].rank == pytest.approx(0.1576, abs=0.001)

    def test_unqualified_rank_is_max_loss(self, figure4, grouping):
        # A,B gather only at the final merge (loss 0.5155 > psi * max).
        ranked = fd_rank([FD("A", "B")], grouping, psi=0.5)
        assert not ranked[0].qualified
        assert ranked[0].rank == pytest.approx(grouping.dendrogram.max_loss)

    def test_psi_zero_qualifies_nothing_lossy(self, figure4, grouping):
        ranked = fd_rank([FD("C", "B")], grouping, psi=0.0)
        assert not ranked[0].qualified

    def test_psi_one_qualifies_everything_gathered(self, figure4, grouping):
        ranked = fd_rank([FD("A", "B"), FD("C", "B")], grouping, psi=1.0)
        assert all(r.qualified for r in ranked)

    def test_invalid_psi_rejected(self, grouping):
        with pytest.raises(ValueError):
            fd_rank([], grouping, psi=1.5)

    def test_attributes_outside_ad_stay_at_max(self, figure4, grouping):
        ranked = fd_rank([FD("A", "Z")], grouping, psi=0.5)
        assert ranked[0].rank == pytest.approx(grouping.dendrogram.max_loss)

    def test_equal_antecedent_collapse(self, figure4):
        """Step 2: same LHS and same rank merge into one dependency."""
        rel = Relation(
            ["A", "B", "C"],
            [
                ("k1", "u1", "v1"),
                ("k1", "u1", "v1"),
                ("k2", "u2", "v2"),
                ("k2", "u2", "v2"),
                ("k3", "u3", "v3"),
            ],
        )
        grouping = group_attributes(rel, phi_v=0.0)
        ranked = fd_rank([FD("A", "B"), FD("A", "C")], grouping, psi=1.0)
        assert len(ranked) == 1
        assert ranked[0].fd == FD("A", {"B", "C"})

    def test_tie_break_prefers_more_attributes(self, figure4):
        rel = Relation(
            ["A", "B", "C"],
            [
                ("k1", "u1", "v1"),
                ("k1", "u1", "v1"),
                ("k2", "u2", "v2"),
                ("k2", "u2", "v2"),
                ("k3", "u3", "v3"),
            ],
        )
        grouping = group_attributes(rel, phi_v=0.0)
        # Different antecedents so no collapse; equal ranks tie-break on size.
        ranked = fd_rank([FD("B", "A"), FD({"A", "B"}, {"C"})], grouping, psi=1.0)
        assert ranked[0].fd == FD({"A", "B"}, {"C"})

    def test_str(self, figure4, grouping):
        ranked = fd_rank([FD("C", "B")], grouping, psi=0.5)
        assert "rank=" in str(ranked[0])


class TestDecomposition:
    def test_paper_example_c_to_b(self, figure4):
        """Decomposing by C -> B yields S1=(B,C) with 3 tuples, S2=(A,C)."""
        decomposition = decompose_by_fd(figure4, FD("C", "B"))
        assert set(decomposition.s1.attributes) == {"B", "C"}
        assert set(decomposition.s2.attributes) == {"A", "C"}
        assert len(decomposition.s1) == 3
        assert decomposition.tuple_reduction == pytest.approx(0.4)

    def test_a_to_b_reduces_less(self, figure4):
        by_c = decompose_by_fd(figure4, FD("C", "B"))
        by_a = decompose_by_fd(figure4, FD("A", "B"))
        assert by_c.tuple_reduction > by_a.tuple_reduction

    def test_lossless_when_fd_holds(self, figure4):
        decomposition = decompose_by_fd(figure4, FD("C", "B"))
        assert is_lossless(figure4, decomposition)

    def test_lossy_when_fd_fails(self):
        # The classic lossy split: shared B values cross-multiply on rejoin.
        rel = Relation(["A", "B", "C"], [("a1", "b", "c1"), ("a2", "b", "c2")])
        decomposition = decompose_by_fd(rel, FD("B", "A"))
        assert not is_lossless(rel, decomposition)

    def test_empty_lhs_rejected(self, figure4):
        with pytest.raises(ValueError):
            decompose_by_fd(figure4, FD(set(), {"B"}))

    def test_redundancy_report_fields(self, figure4):
        report = redundancy_report(figure4, FD("C", "B"))
        assert set(report) == {
            "fd",
            "attributes",
            "rad",
            "rtr",
            "s1_tuples",
            "s2_tuples",
            "original_tuples",
        }
        assert report["rtr"] == pytest.approx(0.4)
        assert report["original_tuples"] == 5


class TestStructureDiscovery:
    def test_full_pipeline_on_figure4(self, figure4):
        report = StructureDiscovery().run(figure4)
        assert len(report.dependencies) == 2
        assert [str(r.fd) for r in report.ranked] == [
            "[C] -> [B]",
            "[A] -> [B]",
        ]

    def test_render_mentions_key_sections(self, figure4):
        text = StructureDiscovery().run(figure4).render()
        assert "Duplicate value groups" in text
        assert "[C] -> [B]" in text
        assert "RAD=" in text

    def test_top_dependencies(self, figure4):
        report = StructureDiscovery().run(figure4)
        assert len(report.top_dependencies(1)) == 1

    def test_miner_selection_validated(self):
        with pytest.raises(ValueError):
            StructureDiscovery(miner="bogus")

    def test_tane_miner_agrees(self, figure4):
        fdep_report = StructureDiscovery(miner="fdep").run(figure4)
        tane_report = StructureDiscovery(miner="tane").run(figure4)
        assert set(fdep_report.dependencies) == set(tane_report.dependencies)

    def test_no_duplicate_groups_still_works(self):
        rel = Relation(["A", "B"], [("a", "1"), ("b", "2"), ("c", "3")])
        report = StructureDiscovery().run(rel)
        assert report.attribute_grouping is None
        assert report.ranked == []
        assert "Dependencies mined" in report.render()
