"""Unit tests for DCFs and the merge equations (paper Eqs. 1-3)."""

import pytest

from repro.clustering import DCF, merge, merge_all, merge_cost
from repro.infotheory import information_loss


class TestDCF:
    def test_singleton(self):
        dcf = DCF.singleton(7, 0.1, {0: 1.0})
        assert dcf.members == [7]
        assert dcf.weight == 0.1
        assert dcf.size == 1

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            DCF(0.0, {0: 1.0})

    def test_entropy_cached_and_correct(self):
        dcf = DCF(0.5, {0: 0.5, 1: 0.5})
        assert dcf.entropy_bits() == pytest.approx(1.0)
        assert dcf.entropy_bits() == pytest.approx(1.0)  # cached path

    def test_repr(self):
        assert "weight" in repr(DCF(0.5, {0: 1.0}))


class TestMerge:
    def test_equation_1_weight_adds(self):
        a = DCF(0.25, {0: 1.0})
        b = DCF(0.75, {1: 1.0})
        assert merge(a, b).weight == pytest.approx(1.0)

    def test_equation_2_weighted_mixture(self):
        a = DCF(0.25, {0: 1.0})
        b = DCF(0.75, {1: 1.0})
        merged = merge(a, b)
        assert merged.conditional[0] == pytest.approx(0.25)
        assert merged.conditional[1] == pytest.approx(0.75)

    def test_members_concatenate(self):
        a = DCF.singleton(0, 0.5, {0: 1.0})
        b = DCF.singleton(1, 0.5, {1: 1.0})
        assert sorted(merge(a, b).members) == [0, 1]

    def test_adcf_support_adds(self):
        a = DCF(0.5, {0: 1.0}, support={"A": 2})
        b = DCF(0.5, {1: 1.0}, support={"A": 1, "B": 3})
        merged = merge(a, b)
        assert merged.support == {"A": 3, "B": 3}

    def test_support_none_when_both_plain(self):
        merged = merge(DCF(0.5, {0: 1.0}), DCF(0.5, {1: 1.0}))
        assert merged.support is None

    def test_merge_is_commutative(self):
        a = DCF(0.3, {0: 0.5, 1: 0.5})
        b = DCF(0.7, {1: 0.2, 2: 0.8})
        ab, ba = merge(a, b), merge(b, a)
        assert ab.weight == pytest.approx(ba.weight)
        for key in set(ab.conditional) | set(ba.conditional):
            assert ab.conditional.get(key, 0) == pytest.approx(ba.conditional.get(key, 0))

    def test_merge_conditional_stays_normalized(self):
        a = DCF(0.3, {0: 0.5, 1: 0.5})
        b = DCF(0.7, {1: 0.2, 2: 0.8})
        assert sum(merge(a, b).conditional.values()) == pytest.approx(1.0)

    def test_merge_all(self):
        dcfs = [DCF.singleton(i, 0.25, {i: 1.0}) for i in range(4)]
        merged = merge_all(dcfs)
        assert merged.weight == pytest.approx(1.0)
        assert merged.size == 4

    def test_merge_all_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_all([])


class TestMergeCost:
    def test_equation_3_against_reference(self):
        a = DCF(0.2, {0: 0.7, 1: 0.3})
        b = DCF(0.3, {0: 0.1, 2: 0.9})
        expected = information_loss(a.conditional, b.conditional, 0.2, 0.3)
        assert merge_cost(a, b) == pytest.approx(expected)

    def test_identical_conditionals_cost_nothing(self):
        a = DCF(0.2, {0: 0.5, 1: 0.5})
        b = DCF(0.4, {0: 0.5, 1: 0.5})
        assert merge_cost(a, b) == pytest.approx(0.0, abs=1e-12)

    def test_symmetric(self):
        a = DCF(0.2, {0: 1.0})
        b = DCF(0.5, {1: 1.0})
        assert merge_cost(a, b) == pytest.approx(merge_cost(b, a))

    def test_bounded_by_total_weight(self):
        # delta_I = (w_a + w_b) * JS and JS <= 1 bit.
        a = DCF(0.2, {0: 1.0})
        b = DCF(0.5, {1: 1.0})
        assert merge_cost(a, b) <= 0.7 + 1e-12

    def test_information_loss_equals_information_drop(self):
        # I(before) - I(after) across a merge must equal merge_cost.
        from repro.infotheory import mutual_information_rows

        a = DCF(0.4, {0: 0.75, 1: 0.25})
        b = DCF(0.6, {1: 0.5, 2: 0.5})
        before = mutual_information_rows(
            [a.conditional, b.conditional], [a.weight, b.weight]
        )
        merged = merge(a, b)
        after = mutual_information_rows([merged.conditional], [merged.weight])
        assert merge_cost(a, b) == pytest.approx(before - after)
