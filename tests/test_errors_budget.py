"""The error taxonomy and the cooperative Budget."""

import pickle

import pytest

from repro.budget import (
    Budget,
    MemoryGovernor,
    charge,
    checkpoint,
    format_bytes,
    parse_memory_size,
)
from repro.errors import (
    InputError,
    MemoryLimitExceeded,
    ReproError,
    ResourceLimitExceeded,
    SchemaError,
    StageFailure,
)


class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(InputError, ReproError)
        assert issubclass(SchemaError, InputError)
        assert issubclass(ResourceLimitExceeded, ReproError)
        assert issubclass(MemoryLimitExceeded, ResourceLimitExceeded)
        assert issubclass(StageFailure, ReproError)

    def test_input_errors_are_value_errors(self):
        # Pre-taxonomy call sites used `except ValueError`; keep them working.
        assert issubclass(InputError, ValueError)
        assert issubclass(SchemaError, ValueError)

    def test_context_is_machine_readable(self):
        exc = InputError("bad row", path="/tmp/x.csv", line=7, got=3)
        assert exc.path == "/tmp/x.csv"
        assert exc.line == 7
        assert exc.context == {"path": "/tmp/x.csv", "line": 7, "got": 3}
        assert str(exc) == "bad row"

    def test_none_context_values_dropped(self):
        exc = ReproError("x", a=None, b=1)
        assert exc.context == {"b": 1}

    def test_stage_failure_carries_stage(self):
        exc = StageFailure("stage 'mining' failed", stage="mining")
        assert exc.stage == "mining"
        assert exc.context["stage"] == "mining"


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestBudget:
    def test_deadline_fires_deterministically(self):
        clock = FakeClock()
        budget = Budget(deadline=5.0, clock=clock)
        budget.checkpoint(where="loop")  # within deadline
        clock.now += 5.01
        with pytest.raises(ResourceLimitExceeded) as info:
            budget.checkpoint(where="loop")
        assert info.value.context["where"] == "loop"
        assert info.value.context["deadline"] == 5.0

    def test_unit_cap_fires(self):
        budget = Budget(max_units=100)
        budget.checkpoint(units=100, where="scan")
        with pytest.raises(ResourceLimitExceeded) as info:
            budget.checkpoint(units=1, where="scan")
        assert info.value.context["max_units"] == 100
        assert budget.units_used == 101

    def test_unlimited_budget_never_raises(self):
        budget = Budget()
        for _ in range(1000):
            budget.checkpoint(units=10**6)
        assert not budget.exhausted()

    def test_exhausted_is_non_raising(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        assert not budget.exhausted()
        clock.now += 2.0
        assert budget.exhausted()

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            Budget(deadline=0)
        with pytest.raises(ValueError):
            Budget(max_units=-1)

    def test_module_checkpoint_tolerates_none(self):
        checkpoint(None, units=5, where="anywhere")  # must not raise

    def test_remaining_seconds(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock)
        clock.now += 4.0
        assert budget.remaining_seconds() == pytest.approx(6.0)
        assert Budget().remaining_seconds() is None

    def test_remaining_seconds_clamps_at_zero(self):
        # A blown deadline reads as 0.0 remaining, never a negative number
        # that a caller might feed somewhere expecting a duration.
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        clock.now += 5.0
        assert budget.remaining_seconds() == 0.0

    def test_checkpoint_listeners_observe_every_tick(self):
        # Listeners see the *cumulative* units used, which is what a
        # cadence-based consumer (checkpoint heartbeats) wants.
        budget = Budget(max_units=100)
        seen = []
        budget.on_checkpoint(lambda units, where: seen.append((units, where)))
        budget.checkpoint(units=10, where="limbo.fit")
        budget.checkpoint(units=5, where="aib.merge")
        assert seen == [(10, "limbo.fit"), (15, "aib.merge")]

    def test_listeners_fire_before_the_limit_check(self):
        budget = Budget(max_units=10)
        seen = []
        budget.on_checkpoint(lambda units, where: seen.append(units))
        with pytest.raises(ResourceLimitExceeded):
            budget.checkpoint(units=20, where="loop")
        # The tick that blew the cap was still observed.
        assert seen == [20]

    def test_listeners_are_process_local(self):
        budget = Budget(max_units=100)
        budget.on_checkpoint(lambda units, where: None)
        restored = pickle.loads(pickle.dumps(budget))
        restored.checkpoint(units=5, where="loop")  # must not raise
        assert restored._listeners == []


class TestShardAccounting:
    """Shard-local-then-summed unit accounting (:meth:`Budget.charge`)."""

    def test_charge_records_the_whole_shard_then_raises(self):
        budget = Budget(max_units=10)
        budget.charge(units=8, where="limbo.fit")
        with pytest.raises(ResourceLimitExceeded) as info:
            budget.charge(units=8, where="limbo.fit")
        # The crossing shard's units are recorded before the raise: the
        # overshoot is visible and bounded by that one shard.
        assert budget.units_used == 16
        assert info.value.context["where"] == "limbo.fit"

    def test_module_charge_tolerates_none(self):
        charge(None, units=5, where="anywhere")  # must not raise

    def test_charge_and_checkpoint_share_one_counter(self):
        budget = Budget(max_units=100)
        budget.checkpoint(units=30, where="loop")
        budget.charge(units=20, where="shard")
        assert budget.units_used == 50
        assert budget.remaining_units() == 50


class TestMemorySizes:
    """`parse_memory_size` / `format_bytes` round the human byte notation."""

    @pytest.mark.parametrize("text,expected", [
        ("64M", 64 * 1024 ** 2),
        ("512k", 512 * 1024),
        ("1GiB", 1024 ** 3),
        ("2g", 2 * 1024 ** 3),
        ("1024", 1024),
        ("100B", 100),
        ("1.5M", int(1.5 * 1024 ** 2)),
        (" 16M ", 16 * 1024 ** 2),
    ])
    def test_parse(self, text, expected):
        assert parse_memory_size(text) == expected

    @pytest.mark.parametrize("text", ["", "M", "64Q", "-1M", "0", "lots"])
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            parse_memory_size(text)

    def test_format(self):
        assert format_bytes(16 * 1024 ** 2) == "16.0M"
        assert format_bytes(512) == "512B"
        assert format_bytes(1024 ** 3) == "1.0G"
        assert format_bytes(None) == "unlimited"

    def test_round_trip(self):
        assert parse_memory_size(format_bytes(64 * 1024 ** 2)) == 64 * 1024 ** 2


class TestMemoryGovernor:
    def test_reserve_raises_without_booking(self):
        gov = MemoryGovernor(max_bytes=100)
        gov.reserve(60, where="dcf.entry")
        with pytest.raises(MemoryLimitExceeded) as info:
            gov.reserve(60, where="dcf.entry")
        # The failed reservation is NOT booked: the caller did not allocate.
        assert gov.reserved == 60
        ctx = info.value.context
        assert ctx["where"] == "dcf.entry"
        assert ctx["needed"] == 60
        assert ctx["reserved"] == 60
        assert ctx["max_memory_bytes"] == 100

    def test_release_clamps_at_zero(self):
        gov = MemoryGovernor(max_bytes=100)
        gov.reserve(10)
        gov.release(50)
        assert gov.reserved == 0
        gov.reserve(100)  # the full cap is available again

    def test_would_exceed_is_non_raising(self):
        gov = MemoryGovernor(max_bytes=100)
        gov.reserve(90)
        assert gov.would_exceed(20)
        assert not gov.would_exceed(10)
        assert gov.reserved == 90  # queries never book

    def test_tick_samples_on_cadence_only(self):
        reads = []

        def rss():
            reads.append(1)
            return 10

        gov = MemoryGovernor(max_bytes=100, sample_every=4, rss_reader=rss)
        for _ in range(11):
            gov.tick(where="loop")
        assert len(reads) == 2  # ticks 4 and 8
        assert gov.samples == 2
        assert gov.last_rss == 10

    def test_rss_breach_raises_with_context(self):
        gov = MemoryGovernor(max_bytes=100, rss_reader=lambda: 250)
        with pytest.raises(MemoryLimitExceeded) as info:
            gov.check(where="aib.merge")
        ctx = info.value.context
        assert ctx["where"] == "aib.merge"
        assert ctx["rss"] == 250
        assert ctx["max_memory_bytes"] == 100
        assert gov.peak_sampled_rss == 250

    def test_best_effort_observes_without_raising(self):
        gov = MemoryGovernor(max_bytes=100, rss_reader=lambda: 999)
        gov.set_best_effort()
        gov.reserve(10 ** 6, where="huge")  # over the cap; must not raise
        gov.check(where="loop")             # RSS over the cap; must not raise
        assert gov.reserved == 10 ** 6      # accounting continues
        assert gov.peak_sampled_rss == 999
        assert not gov.would_exceed(10 ** 9)

    def test_pressured_and_stats(self):
        gov = MemoryGovernor(max_bytes=100)
        assert not gov.pressured
        with pytest.raises(MemoryLimitExceeded):
            gov.reserve(200, where="x")
        assert gov.pressured
        stats = gov.stats()
        assert stats["max_bytes"] == 100
        assert stats["pressure_events"] == 1
        assert stats["best_effort"] is False

    def test_describe_mentions_cap_and_pressure(self):
        gov = MemoryGovernor(max_bytes=16 * 1024 ** 2)
        assert "cap 16.0M" in gov.describe()
        with pytest.raises(MemoryLimitExceeded):
            gov.reserve(10 ** 9, where="x")
        gov.set_best_effort()
        text = gov.describe()
        assert "pressure event" in text
        assert "best-effort" in text

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            MemoryGovernor(max_bytes=0)
        with pytest.raises(ValueError):
            MemoryGovernor(max_bytes=100, sample_every=0)
        gov = MemoryGovernor(max_bytes=100)
        with pytest.raises(ValueError):
            gov.reserve(-1)


class TestBudgetMemory:
    """The memory dimension as seen through Budget itself."""

    def test_budget_attaches_a_governor(self):
        budget = Budget(max_memory_bytes=1024)
        assert isinstance(budget.memory, MemoryGovernor)
        assert budget.memory.max_bytes == 1024
        assert Budget().memory is None

    def test_invalid_memory_cap_rejected(self):
        with pytest.raises(ValueError):
            Budget(max_memory_bytes=0)

    def test_checkpoint_ticks_the_governor(self):
        budget = Budget(max_memory_bytes=100)
        budget.memory._rss_reader = lambda: 500
        budget.memory.sample_every = 2
        budget.checkpoint(where="loop")  # tick 1: no sample
        with pytest.raises(MemoryLimitExceeded) as info:
            budget.checkpoint(where="loop")  # tick 2: samples, breaches
        assert info.value.context["rss"] == 500

    def test_describe_and_repr_carry_memory(self):
        budget = Budget(deadline=5.0, max_memory_bytes=16 * 1024 ** 2)
        assert "memory: cap 16.0M" in budget.describe()
        assert "max_memory_bytes=16777216" in repr(budget)
        assert "memory" not in Budget(deadline=5.0).describe()

    def test_module_helpers_tolerate_ungoverned_budgets(self):
        from repro.budget import governor_of, release, reserve

        assert governor_of(None) is None
        assert governor_of(Budget()) is None
        reserve(None, 10)           # must not raise
        reserve(Budget(), 10)       # must not raise
        release(Budget(), 10)       # must not raise
        budget = Budget(max_memory_bytes=100)
        reserve(budget, 40, where="x")
        assert budget.memory.reserved == 40
        release(budget, 40)
        assert budget.memory.reserved == 0
        assert governor_of(budget) is budget.memory


class TestBudgetPickle:
    """Budgets cross process boundaries carrying their *remaining* allowance."""

    def test_unit_allowance_survives_pickling(self):
        budget = Budget(max_units=100)
        budget.checkpoint(units=30)
        restored = pickle.loads(pickle.dumps(budget))
        assert restored.remaining_units() == 70
        restored.checkpoint(units=70)  # exactly the allowance left
        with pytest.raises(ResourceLimitExceeded):
            restored.checkpoint(units=1)

    def test_deadline_pickles_as_remaining_time(self):
        # The monotonic epoch is per-process state; what must survive is
        # the time still left, not the original start instant.
        clock = FakeClock()
        budget = Budget(deadline=100.0, clock=clock)
        clock.now += 40.0
        restored = pickle.loads(pickle.dumps(budget))
        assert restored.remaining_seconds() == pytest.approx(60.0, abs=1.0)
        assert not restored.exhausted()

    def test_exhausted_budget_stays_exhausted(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        clock.now += 5.0
        restored = pickle.loads(pickle.dumps(budget))
        assert restored.exhausted()
        with pytest.raises(ResourceLimitExceeded):
            restored.checkpoint(where="after transit")

    def test_unlimited_budget_round_trips(self):
        restored = pickle.loads(pickle.dumps(Budget()))
        assert restored.remaining_seconds() is None
        assert restored.remaining_units() is None
        restored.checkpoint(units=10**6)  # still unlimited

    def test_memory_cap_survives_with_a_fresh_governor(self):
        budget = Budget(max_memory_bytes=4096)
        budget.memory.reserve(1000, where="parent")
        restored = pickle.loads(pickle.dumps(budget))
        # The cap travels; reservations are process-local observations and
        # the receiving worker starts clean under the same cap.
        assert restored.max_memory_bytes == 4096
        assert isinstance(restored.memory, MemoryGovernor)
        assert restored.memory.max_bytes == 4096
        assert restored.memory.reserved == 0
        assert restored.memory is not budget.memory

    def test_ungoverned_budget_stays_ungoverned_after_transit(self):
        restored = pickle.loads(pickle.dumps(Budget(max_units=10)))
        assert restored.max_memory_bytes is None
        assert restored.memory is None


class TestBudgetedAlgorithms:
    def test_fdep_respects_unit_cap(self):
        from repro.datasets import db2_sample
        from repro.fd import fdep

        relation = db2_sample(seed=0).relation
        with pytest.raises(ResourceLimitExceeded):
            fdep(relation, budget=Budget(max_units=10))

    def test_tane_respects_unit_cap(self):
        from repro.datasets import db2_sample
        from repro.fd import tane

        relation = db2_sample(seed=0).relation
        with pytest.raises(ResourceLimitExceeded):
            tane(relation, budget=Budget(max_units=10))

    def test_limbo_respects_unit_cap(self):
        from repro.core.tuple_clustering import cluster_tuples
        from repro.datasets import db2_sample

        relation = db2_sample(seed=0).relation
        with pytest.raises(ResourceLimitExceeded):
            cluster_tuples(relation, budget=Budget(max_units=10))

    def test_generous_budget_changes_nothing(self):
        from repro.datasets import db2_sample
        from repro.fd import fdep

        relation = db2_sample(seed=0).relation
        assert fdep(relation) == fdep(relation, budget=Budget(deadline=300.0))
