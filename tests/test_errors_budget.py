"""The error taxonomy and the cooperative Budget."""

import pickle

import pytest

from repro.budget import Budget, charge, checkpoint
from repro.errors import (
    InputError,
    ReproError,
    ResourceLimitExceeded,
    SchemaError,
    StageFailure,
)


class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(InputError, ReproError)
        assert issubclass(SchemaError, InputError)
        assert issubclass(ResourceLimitExceeded, ReproError)
        assert issubclass(StageFailure, ReproError)

    def test_input_errors_are_value_errors(self):
        # Pre-taxonomy call sites used `except ValueError`; keep them working.
        assert issubclass(InputError, ValueError)
        assert issubclass(SchemaError, ValueError)

    def test_context_is_machine_readable(self):
        exc = InputError("bad row", path="/tmp/x.csv", line=7, got=3)
        assert exc.path == "/tmp/x.csv"
        assert exc.line == 7
        assert exc.context == {"path": "/tmp/x.csv", "line": 7, "got": 3}
        assert str(exc) == "bad row"

    def test_none_context_values_dropped(self):
        exc = ReproError("x", a=None, b=1)
        assert exc.context == {"b": 1}

    def test_stage_failure_carries_stage(self):
        exc = StageFailure("stage 'mining' failed", stage="mining")
        assert exc.stage == "mining"
        assert exc.context["stage"] == "mining"


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestBudget:
    def test_deadline_fires_deterministically(self):
        clock = FakeClock()
        budget = Budget(deadline=5.0, clock=clock)
        budget.checkpoint(where="loop")  # within deadline
        clock.now += 5.01
        with pytest.raises(ResourceLimitExceeded) as info:
            budget.checkpoint(where="loop")
        assert info.value.context["where"] == "loop"
        assert info.value.context["deadline"] == 5.0

    def test_unit_cap_fires(self):
        budget = Budget(max_units=100)
        budget.checkpoint(units=100, where="scan")
        with pytest.raises(ResourceLimitExceeded) as info:
            budget.checkpoint(units=1, where="scan")
        assert info.value.context["max_units"] == 100
        assert budget.units_used == 101

    def test_unlimited_budget_never_raises(self):
        budget = Budget()
        for _ in range(1000):
            budget.checkpoint(units=10**6)
        assert not budget.exhausted()

    def test_exhausted_is_non_raising(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        assert not budget.exhausted()
        clock.now += 2.0
        assert budget.exhausted()

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            Budget(deadline=0)
        with pytest.raises(ValueError):
            Budget(max_units=-1)

    def test_module_checkpoint_tolerates_none(self):
        checkpoint(None, units=5, where="anywhere")  # must not raise

    def test_remaining_seconds(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock)
        clock.now += 4.0
        assert budget.remaining_seconds() == pytest.approx(6.0)
        assert Budget().remaining_seconds() is None

    def test_remaining_seconds_clamps_at_zero(self):
        # A blown deadline reads as 0.0 remaining, never a negative number
        # that a caller might feed somewhere expecting a duration.
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        clock.now += 5.0
        assert budget.remaining_seconds() == 0.0

    def test_checkpoint_listeners_observe_every_tick(self):
        # Listeners see the *cumulative* units used, which is what a
        # cadence-based consumer (checkpoint heartbeats) wants.
        budget = Budget(max_units=100)
        seen = []
        budget.on_checkpoint(lambda units, where: seen.append((units, where)))
        budget.checkpoint(units=10, where="limbo.fit")
        budget.checkpoint(units=5, where="aib.merge")
        assert seen == [(10, "limbo.fit"), (15, "aib.merge")]

    def test_listeners_fire_before_the_limit_check(self):
        budget = Budget(max_units=10)
        seen = []
        budget.on_checkpoint(lambda units, where: seen.append(units))
        with pytest.raises(ResourceLimitExceeded):
            budget.checkpoint(units=20, where="loop")
        # The tick that blew the cap was still observed.
        assert seen == [20]

    def test_listeners_are_process_local(self):
        budget = Budget(max_units=100)
        budget.on_checkpoint(lambda units, where: None)
        restored = pickle.loads(pickle.dumps(budget))
        restored.checkpoint(units=5, where="loop")  # must not raise
        assert restored._listeners == []


class TestShardAccounting:
    """Shard-local-then-summed unit accounting (:meth:`Budget.charge`)."""

    def test_charge_records_the_whole_shard_then_raises(self):
        budget = Budget(max_units=10)
        budget.charge(units=8, where="limbo.fit")
        with pytest.raises(ResourceLimitExceeded) as info:
            budget.charge(units=8, where="limbo.fit")
        # The crossing shard's units are recorded before the raise: the
        # overshoot is visible and bounded by that one shard.
        assert budget.units_used == 16
        assert info.value.context["where"] == "limbo.fit"

    def test_module_charge_tolerates_none(self):
        charge(None, units=5, where="anywhere")  # must not raise

    def test_charge_and_checkpoint_share_one_counter(self):
        budget = Budget(max_units=100)
        budget.checkpoint(units=30, where="loop")
        budget.charge(units=20, where="shard")
        assert budget.units_used == 50
        assert budget.remaining_units() == 50


class TestBudgetPickle:
    """Budgets cross process boundaries carrying their *remaining* allowance."""

    def test_unit_allowance_survives_pickling(self):
        budget = Budget(max_units=100)
        budget.checkpoint(units=30)
        restored = pickle.loads(pickle.dumps(budget))
        assert restored.remaining_units() == 70
        restored.checkpoint(units=70)  # exactly the allowance left
        with pytest.raises(ResourceLimitExceeded):
            restored.checkpoint(units=1)

    def test_deadline_pickles_as_remaining_time(self):
        # The monotonic epoch is per-process state; what must survive is
        # the time still left, not the original start instant.
        clock = FakeClock()
        budget = Budget(deadline=100.0, clock=clock)
        clock.now += 40.0
        restored = pickle.loads(pickle.dumps(budget))
        assert restored.remaining_seconds() == pytest.approx(60.0, abs=1.0)
        assert not restored.exhausted()

    def test_exhausted_budget_stays_exhausted(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        clock.now += 5.0
        restored = pickle.loads(pickle.dumps(budget))
        assert restored.exhausted()
        with pytest.raises(ResourceLimitExceeded):
            restored.checkpoint(where="after transit")

    def test_unlimited_budget_round_trips(self):
        restored = pickle.loads(pickle.dumps(Budget()))
        assert restored.remaining_seconds() is None
        assert restored.remaining_units() is None
        restored.checkpoint(units=10**6)  # still unlimited


class TestBudgetedAlgorithms:
    def test_fdep_respects_unit_cap(self):
        from repro.datasets import db2_sample
        from repro.fd import fdep

        relation = db2_sample(seed=0).relation
        with pytest.raises(ResourceLimitExceeded):
            fdep(relation, budget=Budget(max_units=10))

    def test_tane_respects_unit_cap(self):
        from repro.datasets import db2_sample
        from repro.fd import tane

        relation = db2_sample(seed=0).relation
        with pytest.raises(ResourceLimitExceeded):
            tane(relation, budget=Budget(max_units=10))

    def test_limbo_respects_unit_cap(self):
        from repro.core.tuple_clustering import cluster_tuples
        from repro.datasets import db2_sample

        relation = db2_sample(seed=0).relation
        with pytest.raises(ResourceLimitExceeded):
            cluster_tuples(relation, budget=Budget(max_units=10))

    def test_generous_budget_changes_nothing(self):
        from repro.datasets import db2_sample
        from repro.fd import fdep

        relation = db2_sample(seed=0).relation
        assert fdep(relation) == fdep(relation, budget=Budget(deadline=300.0))
