"""Supervised crash/hang drills: kill mid-run, hang, give up, interrupt.

Each drill runs a real child process against a shared checkpoint store and
asserts both the outward behavior (byte-identical report, right exception,
right exit code) and the ``incident.json`` journal.  In-child faults are
armed through ``SupervisorConfig.child_setup`` hooks; the entered ``inject``
contexts are retained in module globals because a garbage-collected context
pops its fault plan and silently disarms the fault.
"""

import functools
import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import StructureDiscovery, SupervisorError
from repro.checkpoint import CheckpointStore, HeartbeatStatus
from repro.cli import main
from repro.datasets import db2_sample
from repro.relation import write_csv
from repro.supervisor import SupervisorConfig
from repro.testing import inject

SRC = str(Path(__file__).resolve().parent.parent / "src")

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(not HAVE_FORK,
                                reason="fork start method unavailable")

#: Retains entered in-child fault contexts (see module docstring).
_ARMED = []


def _sigkill_self(value):
    os.kill(os.getpid(), signal.SIGKILL)


def _arm_kill_bomb(kill_attempts, attempt):
    """SIGKILL this child at the top of the mining stage on listed attempts.

    Mining runs *after* the three clustering stages snapshot, so every death
    leaves a resumable prefix behind -- the same deterministic kill site as
    ``tests/test_checkpoint_resume.py``.
    """
    if attempt in kill_attempts:
        ctx = inject("discovery.mining", corrupt=_sigkill_self)
        ctx.__enter__()
        _ARMED.append(ctx)


def _arm_mining_stall(stall_attempts, attempt):
    """Make the mining stage sleep far past any test's hang timeout."""
    if attempt in stall_attempts:
        ctx = inject("discovery.mining", delay=60.0)
        ctx.__enter__()
        _ARMED.append(ctx)


def _fast(max_restarts, hang_timeout=60.0, child_setup=None):
    """A config with no backoff sleeps and no jitter: drills stay quick."""
    return SupervisorConfig(max_restarts=max_restarts,
                            hang_timeout=hang_timeout,
                            backoff_base=0, jitter=0,
                            child_setup=child_setup)


@pytest.fixture(scope="module")
def relation():
    return db2_sample(seed=7).relation


@pytest.fixture(scope="module")
def baseline(relation):
    """Uninterrupted pooled report; see tests/test_checkpoint_resume.py for
    why any workers >= 1 and either backend renders identically."""
    return StructureDiscovery(workers=1).run(relation).render()


def read_incident(ckpt_dir):
    return json.loads((ckpt_dir / "incident.json").read_text("utf-8"))


# -- crash recovery -----------------------------------------------------------------


@needs_fork
@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("backend", ["sparse", "dense"])
def test_killed_twice_mid_mining_still_bit_identical(
    tmp_path, relation, baseline, workers, backend
):
    """The tentpole guarantee: SIGKILL the child twice mid-mining and the
    supervised run still returns the byte-identical report, via checkpoint
    resume plus an identity-preserving ladder escalation."""
    ckpt_dir = tmp_path / "ckpt"
    config = _fast(max_restarts=5,
                   child_setup=functools.partial(_arm_kill_bomb, {1, 2}))
    report = StructureDiscovery(
        workers=workers, backend=backend,
        checkpoint=CheckpointStore(ckpt_dir), supervise=config,
    ).run(relation)
    assert report.render() == baseline

    incident = read_incident(ckpt_dir)
    assert incident["outcome"] == "completed"
    assert incident["exit_code"] == 0
    assert incident["restarts_used"] == 2
    assert incident["stage_failures"] == {"mining": 2}
    classes = [a["failure_class"] for a in incident["attempts"]]
    assert classes == ["sigkill", "sigkill", "completed"]
    stages = [a["stage"] for a in incident["attempts"]]
    assert stages == ["mining", "mining", None]
    # Both restarts resumed the snapshotted clustering prefix.
    for attempt in incident["attempts"][1:]:
        assert attempt["resumed_stages"] == [
            "attribute_grouping", "tuple_clustering", "value_clustering",
        ]
    # The second death made mining a poison stage; the escalation consumed
    # only the identity-preserving first rung, hence the identical bytes.
    assert incident["escalations"] == [
        {"attempt": 2, "stage": "mining", "ladder_positions": 1},
    ]
    assert incident["attempts"][2]["escalations"] == {"mining": 1}


# -- hang detection -----------------------------------------------------------------


def _frozen_status(status):
    """A heartbeat that never changes, as the watchdog fault sees it."""
    return HeartbeatStatus(state="ok", age_seconds=99.0, mtime_ns=1,
                           payload={"stage": "mining", "units_used": 0,
                                    "wall_time": 0.0, "pid": -1})


@needs_fork
def test_hung_child_is_reaped_within_timeout_and_resumed(
    tmp_path, relation, baseline
):
    """A genuinely stalled mining stage plus a frozen ``supervisor.heartbeat``
    reading: the watchdog must declare the hang within ``hang_timeout``,
    reap the child (SIGTERM unwinds as exit 130), and resume to the
    identical report."""
    ckpt_dir = tmp_path / "ckpt"
    hang_timeout = 0.75
    config = _fast(max_restarts=2, hang_timeout=hang_timeout,
                   child_setup=functools.partial(_arm_mining_stall, {1}))
    discovery = StructureDiscovery(
        workers=1, checkpoint=CheckpointStore(ckpt_dir), supervise=config,
    )
    started = time.monotonic()
    with inject("supervisor.heartbeat", corrupt=_frozen_status):
        report = discovery.run(relation)
    elapsed = time.monotonic() - started
    assert report.render() == baseline

    incident = read_incident(ckpt_dir)
    assert incident["outcome"] == "completed"
    assert incident["restarts_used"] == 1
    first, second = incident["attempts"]
    assert first["failure_class"] == "hang"
    assert first["stage"] == "mining"
    assert first["exit_code"] == 130  # SIGTERM unwound gracefully
    assert "heartbeat" in first["detail"]
    assert second["failure_class"] == "completed"
    # Detection must key off hang_timeout, not the 60s the stage would
    # actually have slept.
    assert first["ended_wall"] - first["started_wall"] < hang_timeout + 3.0
    assert elapsed < 30.0


# -- restart-budget exhaustion ------------------------------------------------------


@needs_fork
def test_stage_dying_every_attempt_gives_up_after_escalating(
    tmp_path, relation
):
    ckpt_dir = tmp_path / "ckpt"
    config = _fast(max_restarts=2,
                   child_setup=functools.partial(_arm_kill_bomb,
                                                 {1, 2, 3, 4, 5}))
    discovery = StructureDiscovery(
        checkpoint=CheckpointStore(ckpt_dir), supervise=config,
    )
    escalate_calls = []

    def record(value):
        escalate_calls.append(value)
        return value

    with inject("supervisor.escalate", corrupt=record):
        with pytest.raises(SupervisorError) as info:
            discovery.run(relation)
    # Each poison-stage decision fired the registered fault point, in order.
    assert escalate_calls == [("mining", 1), ("mining", 2)]
    assert info.value.context["attempts"] == 3
    assert info.value.context["failure_class"] == "sigkill"
    assert info.value.context["stage"] == "mining"
    assert info.value.context["incident_path"] == str(
        ckpt_dir / "incident.json")

    incident = read_incident(ckpt_dir)
    assert incident["outcome"] == "gave-up"
    assert incident["exit_code"] == 1
    assert incident["restarts_used"] == 2
    assert incident["stage_failures"] == {"mining": 3}
    classes = [a["failure_class"] for a in incident["attempts"]]
    assert classes == ["sigkill", "sigkill", "sigkill"]
    # It only gave up after actually trying the ladder: positions 1 then 2.
    assert incident["escalations"] == [
        {"attempt": 2, "stage": "mining", "ladder_positions": 1},
        {"attempt": 3, "stage": "mining", "ladder_positions": 2},
    ]


@needs_fork
def test_give_up_maps_to_cli_exit_1(tmp_path, capsys):
    csv = tmp_path / "db2.csv"
    write_csv(db2_sample(seed=7).relation, csv)
    # Every spawn fails: with --max-restarts 0 the single attempt exhausts
    # the budget immediately and the CLI surfaces the give-up as exit 1.
    with inject("supervisor.spawn", raises=OSError("fork: EAGAIN")):
        code = main(["discover", str(csv), "--supervise",
                     "--max-restarts", "0",
                     "--checkpoint-dir", str(tmp_path / "ckpt")])
    assert code == 1
    err = capsys.readouterr().err
    assert "supervised run gave up" in err
    assert "Traceback" not in err
    incident = read_incident(tmp_path / "ckpt")
    assert incident["outcome"] == "gave-up"
    assert incident["attempts"][0]["failure_class"] == "spawn-failure"


# -- interrupt propagation ----------------------------------------------------------


@needs_fork
@pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
def test_interrupt_propagates_to_child_and_exits_130(tmp_path, signum):
    """SIGINT/SIGTERM to the supervising CLI forwards to the child, unwinds
    both processes, and preserves exit code 130."""
    csv = tmp_path / "dblp.csv"
    from repro.datasets import dblp

    write_csv(dblp(n_tuples=4000, seed=7), csv)
    ckpt_dir = tmp_path / "ckpt"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "discover", str(csv),
         "--supervise", "--checkpoint-dir", str(ckpt_dir)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        text=True,
    )
    try:
        # Interrupt only once the child is provably up and heartbeating.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if (ckpt_dir / "child.pid").exists() \
                    and (ckpt_dir / "progress.json").exists():
                break
            if proc.poll() is not None:
                pytest.fail(f"run ended early: {proc.stderr.read()}")
            time.sleep(0.05)
        else:
            pytest.fail("child never came up")
        child_pid = int((ckpt_dir / "child.pid").read_text())
        proc.send_signal(signum)
        code = proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert code == 130, proc.stderr.read()

    incident = read_incident(ckpt_dir)
    assert incident["outcome"] == "interrupted"
    assert incident["exit_code"] == 130
    assert incident["attempts"][0]["failure_class"] == "interrupted"
    # The child is gone too (forwarded signal, not just the parent dying).
    with pytest.raises(OSError):
        os.kill(child_pid, 0)
