"""Durable checkpoints: store mechanics, quarantine, and discovery wiring."""

import json
import os
import shutil

import pytest

from repro import CheckpointError, Relation, StructureDiscovery
from repro.budget import Budget
from repro.checkpoint import (
    CheckpointStore,
    relation_fingerprint,
)
from repro.core.discovery import STAGES
from repro.relation import NULL
from repro.testing import inject


@pytest.fixture(scope="module")
def relation():
    from repro.datasets import db2_sample

    return db2_sample(seed=0).relation


PARAMS = {"phi_t": 0.0, "miner": "auto"}


def flip_byte(path, offset=-10):
    """Corrupt one byte of a file in place."""
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


# -- store mechanics ----------------------------------------------------------------


class TestStoreMechanics:
    def test_stage_round_trip(self, tmp_path, relation):
        writer = CheckpointStore(tmp_path)
        assert writer.open_run(relation, PARAMS) is False
        writer.save_stage("mining", {"result": [1, 2, 3]})
        assert writer.stage_saves == 1

        reader = CheckpointStore(tmp_path, resume=True)
        assert reader.open_run(relation, PARAMS) is True
        assert reader.load_stage("mining") == {"result": [1, 2, 3]}
        assert reader.stage_loads == 1
        assert reader.events == []

    def test_phase_round_trip_is_key_addressed(self, tmp_path, relation):
        writer = CheckpointStore(tmp_path)
        writer.open_run(relation, PARAMS)
        writer.save_phase("value_clustering", ("limbo.fit", 42), ["summary"])

        reader = CheckpointStore(tmp_path, resume=True)
        reader.open_run(relation, PARAMS)
        assert reader.load_phase("value_clustering", ("limbo.fit", 42)) == ["summary"]
        assert reader.load_phase("value_clustering", ("limbo.fit", 43)) is None
        assert reader.events == []

    def test_non_resuming_store_never_loads(self, tmp_path, relation):
        writer = CheckpointStore(tmp_path)
        writer.open_run(relation, PARAMS)
        writer.save_stage("mining", "old")

        fresh = CheckpointStore(tmp_path, resume=False)
        assert fresh.open_run(relation, PARAMS) is False
        assert fresh.load_stage("mining") is None

    def test_stage_loads_stop_at_the_first_gap(self, tmp_path, relation):
        writer = CheckpointStore(tmp_path)
        writer.open_run(relation, PARAMS)
        writer.save_stage("tuple_clustering", "A")
        writer.save_stage("attribute_grouping", "C")  # B never completed

        reader = CheckpointStore(tmp_path, resume=True)
        reader.open_run(relation, PARAMS)
        assert reader.load_stage("tuple_clustering") == "A"
        assert reader.load_stage("value_clustering") is None
        # C exists on disk but follows the gap: it was computed downstream
        # of state this run is about to recompute, so it must not load.
        assert reader.load_stage("attribute_grouping") is None
        assert reader.stage_loads == 1

    def test_phase_loads_survive_the_stage_gap(self, tmp_path, relation):
        writer = CheckpointStore(tmp_path)
        writer.open_run(relation, PARAMS)
        writer.save_phase("value_clustering", ("k",), "artifact")

        reader = CheckpointStore(tmp_path, resume=True)
        reader.open_run(relation, PARAMS)
        assert reader.load_stage("tuple_clustering") is None  # halts stages
        # Content-addressed phase snapshots only load on an exact key
        # match, so they stay safe -- and useful -- past the halt.
        assert reader.load_phase("value_clustering", ("k",)) == "artifact"

    def test_cadence_validated(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, cadence=0)

    def test_unusable_directory_raises_checkpoint_error(self, tmp_path):
        blocker = tmp_path / "occupied"
        blocker.write_text("a file, not a directory")
        with pytest.raises(CheckpointError):
            CheckpointStore(blocker)


# -- quarantine ---------------------------------------------------------------------


class TestQuarantine:
    def _resumed(self, tmp_path, relation):
        writer = CheckpointStore(tmp_path)
        writer.open_run(relation, PARAMS)
        writer.save_stage("mining", {"result": "good"})
        reader = CheckpointStore(tmp_path, resume=True)
        reader.open_run(relation, PARAMS)
        return reader

    def test_flipped_byte_quarantines_and_recomputes(self, tmp_path, relation):
        reader = self._resumed(tmp_path, relation)
        flip_byte(tmp_path / "stage.mining.ckpt")
        assert reader.load_stage("mining") is None
        assert [e.kind for e in reader.events] == ["quarantine"]
        assert "checksum" in reader.events[0].detail
        assert not (tmp_path / "stage.mining.ckpt").exists()
        assert (tmp_path / "stage.mining.ckpt.quarantined-1").exists()

    def test_truncation_quarantines(self, tmp_path, relation):
        reader = self._resumed(tmp_path, relation)
        path = tmp_path / "stage.mining.ckpt"
        path.write_bytes(path.read_bytes()[:-5])
        assert reader.load_stage("mining") is None
        assert [e.kind for e in reader.events] == ["quarantine"]
        assert "truncated" in reader.events[0].detail

    def test_injected_read_corruption_quarantines(self, tmp_path, relation):
        reader = self._resumed(tmp_path, relation)
        with inject("checkpoint.load", corrupt=lambda raw: b"garbage" + raw):
            assert reader.load_stage("mining") is None
        assert [e.kind for e in reader.events] == ["quarantine"]
        assert "bad magic" in reader.events[0].detail

    def test_foreign_run_token_quarantines(self, tmp_path, relation):
        writer = CheckpointStore(tmp_path)
        writer.open_run(relation, PARAMS)
        writer.save_stage("mining", "stale")
        # A second fresh run re-mints the token but crashes before saving.
        CheckpointStore(tmp_path).open_run(relation, PARAMS)

        reader = CheckpointStore(tmp_path, resume=True)
        reader.open_run(relation, PARAMS)
        assert reader.load_stage("mining") is None
        assert [e.kind for e in reader.events] == ["quarantine"]
        assert "different run" in reader.events[0].detail

    def test_save_failure_degrades_to_no_checkpoint(self, tmp_path, relation):
        writer = CheckpointStore(tmp_path)
        writer.open_run(relation, PARAMS)
        with inject("checkpoint.save", raises=OSError("disk full")):
            writer.save_stage("mining", "result")  # must not raise
        assert writer.stage_saves == 0
        assert [e.kind for e in writer.events] == ["save-failure"]

    def test_unpicklable_payload_is_a_save_failure(self, tmp_path, relation):
        writer = CheckpointStore(tmp_path)
        writer.open_run(relation, PARAMS)
        writer.save_stage("mining", lambda: None)  # lambdas don't pickle
        assert writer.stage_saves == 0
        assert [e.kind for e in writer.events] == ["save-failure"]


# -- manifest validation ------------------------------------------------------------


class TestManifest:
    def test_parameter_drift_starts_fresh(self, tmp_path, relation):
        writer = CheckpointStore(tmp_path)
        writer.open_run(relation, PARAMS)
        writer.save_stage("mining", "tuned for phi_t=0")

        reader = CheckpointStore(tmp_path, resume=True)
        assert reader.open_run(relation, {**PARAMS, "phi_t": 0.3}) is False
        assert [e.kind for e in reader.events] == ["manifest-mismatch"]
        assert "parameters changed" in reader.events[0].detail
        # The stale snapshot went aside with the manifest.
        assert not (tmp_path / "stage.mining.ckpt").exists()
        assert (tmp_path / "stage.mining.ckpt.quarantined-1").exists()
        assert reader.load_stage("mining") is None

    def test_different_relation_starts_fresh(self, tmp_path, relation):
        writer = CheckpointStore(tmp_path)
        writer.open_run(relation, PARAMS)

        other = Relation(["A"], [("x",), ("y",)])
        reader = CheckpointStore(tmp_path, resume=True)
        assert reader.open_run(other, PARAMS) is False
        assert "fingerprint" in reader.events[0].detail

    def test_schema_version_bump_starts_fresh(self, tmp_path, relation):
        writer = CheckpointStore(tmp_path)
        writer.open_run(relation, PARAMS)
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text("utf-8"))
        manifest["schema_version"] = 999
        manifest_path.write_text(json.dumps(manifest))

        reader = CheckpointStore(tmp_path, resume=True)
        assert reader.open_run(relation, PARAMS) is False
        assert "schema version" in reader.events[0].detail

    def test_unreadable_manifest_starts_fresh(self, tmp_path, relation):
        writer = CheckpointStore(tmp_path)
        writer.open_run(relation, PARAMS)
        (tmp_path / "manifest.json").write_text("{not json")

        reader = CheckpointStore(tmp_path, resume=True)
        assert reader.open_run(relation, PARAMS) is False
        assert "unreadable manifest" in reader.events[0].detail


class TestFingerprint:
    def test_identical_relations_agree(self):
        a = Relation(["A", "B"], [("x", "1"), ("y", "2")])
        b = Relation(["A", "B"], [("x", "1"), ("y", "2")])
        assert relation_fingerprint(a) == relation_fingerprint(b)

    def test_row_order_matters(self):
        a = Relation(["A"], [("x",), ("y",)])
        b = Relation(["A"], [("y",), ("x",)])
        assert relation_fingerprint(a) != relation_fingerprint(b)

    def test_null_is_not_the_string_null(self):
        a = Relation(["A"], [(NULL,)])
        b = Relation(["A"], [("NULL",)])
        assert relation_fingerprint(a) != relation_fingerprint(b)

    def test_schema_names_matter(self):
        a = Relation(["A", "B"], [("x", "1")])
        b = Relation(["A", "C"], [("x", "1")])
        assert relation_fingerprint(a) != relation_fingerprint(b)


# -- heartbeats ---------------------------------------------------------------------


class TestHeartbeat:
    def test_progress_written_at_cadence(self, tmp_path, relation):
        store = CheckpointStore(tmp_path, cadence=10)
        store.open_run(relation, PARAMS)
        budget = Budget(max_units=10_000)
        store.attach(budget)
        store.enter_stage("mining")
        # Entering a stage writes an immediate heartbeat so a supervisor can
        # attribute a crash to the right stage even before the first
        # cadence-gated beat.
        progress = json.loads((tmp_path / "progress.json").read_text("utf-8"))
        assert progress["where"] == "stage-entry"
        assert progress["stage"] == "mining"
        budget.checkpoint(units=4, where="fdep.pairs")
        progress = json.loads((tmp_path / "progress.json").read_text("utf-8"))
        assert progress["where"] == "stage-entry"  # below cadence: unchanged
        budget.checkpoint(units=20, where="fdep.pairs")
        progress = json.loads((tmp_path / "progress.json").read_text("utf-8"))
        assert progress["stage"] == "mining"
        assert progress["units_used"] == 24
        assert progress["where"] == "fdep.pairs"
        # Supervisor-facing fields ride along on every beat.
        assert progress["pid"] == os.getpid()
        assert progress["wall_time"] > 0
        assert "rss_bytes" in progress

    def test_attach_tolerates_no_budget(self, tmp_path, relation):
        store = CheckpointStore(tmp_path)
        store.open_run(relation, PARAMS)
        store.attach(None)  # must not raise


# -- heartbeat staleness classification ---------------------------------------------


class TestHeartbeatStatus:
    """The watchdog-facing read side: every way progress.json can look."""

    def test_missing_heartbeat(self, tmp_path):
        status = CheckpointStore(tmp_path).heartbeat_status()
        assert status.state == "missing"
        assert status.age_seconds is None
        assert status.payload is None
        assert status.describe() == "no heartbeat written yet"

    def test_ok_heartbeat_with_age(self, tmp_path, relation):
        store = CheckpointStore(tmp_path, cadence=1)
        store.open_run(relation, PARAMS)
        store.enter_stage("mining")
        mtime = (tmp_path / "progress.json").stat().st_mtime
        status = store.heartbeat_status(now=mtime + 7.5)
        assert status.state == "ok"
        assert status.age_seconds == pytest.approx(7.5)
        assert status.payload["stage"] == "mining"
        assert "stage 'mining'" in status.describe()

    def test_truncated_heartbeat_is_unreadable_but_aged(self, tmp_path):
        path = tmp_path / "progress.json"
        path.write_bytes(b'{"token": "abc", "stage": "mini')  # torn write
        mtime = path.stat().st_mtime
        status = CheckpointStore(tmp_path).heartbeat_status(now=mtime + 3.0)
        assert status.state == "unreadable"
        assert status.age_seconds == pytest.approx(3.0)
        assert status.payload is None
        assert "unreadable" in status.describe()

    def test_non_object_json_is_unreadable(self, tmp_path):
        (tmp_path / "progress.json").write_text("[1, 2, 3]", "utf-8")
        assert CheckpointStore(tmp_path).heartbeat_status().state == "unreadable"

    def test_future_mtime_clamps_to_fresh(self, tmp_path):
        # Clock skew (NFS, suspended VM) can stamp progress.json in the
        # future; that must read as a *fresh* heartbeat, never a negative
        # age that could confuse a staleness comparison.
        path = tmp_path / "progress.json"
        path.write_text(json.dumps({"stage": "mining"}), "utf-8")
        future = path.stat().st_mtime + 3600
        os.utime(path, (future, future))
        status = CheckpointStore(tmp_path).heartbeat_status()
        assert status.state == "ok"
        assert status.age_seconds == 0.0

    def test_past_mtime_reads_as_stale(self, tmp_path):
        path = tmp_path / "progress.json"
        path.write_text(json.dumps({"stage": "mining"}), "utf-8")
        past = path.stat().st_mtime - 3600
        os.utime(path, (past, past))
        status = CheckpointStore(tmp_path).heartbeat_status()
        assert status.state == "ok"
        assert status.age_seconds >= 3600


# -- quarantine retention -----------------------------------------------------------


class TestQuarantineRetention:
    def test_max_quarantined_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max_quarantined"):
            CheckpointStore(tmp_path, max_quarantined=0)

    def test_only_newest_n_quarantines_survive(self, tmp_path):
        store = CheckpointStore(tmp_path, max_quarantined=3)
        for i in range(7):
            victim = tmp_path / "stage.mining.ckpt"
            victim.write_bytes(b"corrupt-%d" % i)
            # Distinct, increasing mtimes so "newest" is unambiguous even
            # on coarse-granularity filesystems.
            os.utime(victim, (1_000_000 + i, 1_000_000 + i))
            store._quarantine(victim)
        survivors = sorted(tmp_path.glob("*.quarantined-*"))
        assert len(survivors) == 3
        contents = {p.read_bytes() for p in survivors}
        assert contents == {b"corrupt-4", b"corrupt-5", b"corrupt-6"}

    def test_repeated_corruption_during_resume_stays_bounded(
        self, relation, tmp_path
    ):
        # End-to-end: a run that keeps finding the same snapshot corrupt
        # (the supervised crash-loop shape) never accumulates more than
        # max_quarantined forensic copies.
        directory = tmp_path / "run"
        StructureDiscovery(checkpoint=CheckpointStore(directory)).run(relation)
        for _ in range(5):
            flip_byte(directory / "stage.mining.ckpt")
            store = CheckpointStore(directory, resume=True, max_quarantined=2)
            StructureDiscovery(checkpoint=store).run(relation)
        assert len(list(directory.glob("*.quarantined-*"))) <= 2


# -- discovery wiring ---------------------------------------------------------------


@pytest.fixture(scope="module")
def checkpointed_run(relation, tmp_path_factory):
    """One full checkpointed run plus its uncheckpointed baseline render."""
    directory = tmp_path_factory.mktemp("ckpt") / "run"
    discovery = StructureDiscovery(checkpoint=CheckpointStore(directory))
    report = discovery.run(relation)
    baseline = StructureDiscovery().run(relation).render()
    assert report.render() == baseline
    return directory, baseline


class TestDiscoveryWiring:
    def test_full_run_snapshots_every_stage(self, checkpointed_run):
        directory, _ = checkpointed_run
        for stage in STAGES:
            assert (directory / f"stage.{stage}.ckpt").exists()
        assert (directory / "manifest.json").exists()

    def test_resume_is_bit_identical_and_loads_everything(
        self, relation, checkpointed_run, tmp_path
    ):
        directory, baseline = checkpointed_run
        workdir = tmp_path / "copy"
        shutil.copytree(directory, workdir)
        store = CheckpointStore(workdir, resume=True)
        report = StructureDiscovery(checkpoint=store).run(relation)
        assert store.stage_loads == len(STAGES)
        assert store.events == []
        # A clean resume renders byte-identically: no checkpoint health
        # entry, same stages, same artifacts.
        assert report.render() == baseline
        assert report.outcome("checkpoint") is None

    @pytest.mark.parametrize("victim", list(STAGES))
    def test_any_corrupted_stage_snapshot_is_survived(
        self, relation, checkpointed_run, tmp_path, victim
    ):
        directory, baseline = checkpointed_run
        workdir = tmp_path / "copy"
        shutil.copytree(directory, workdir)
        flip_byte(workdir / f"stage.{victim}.ckpt")

        store = CheckpointStore(workdir, resume=True)
        report = StructureDiscovery(checkpoint=store).run(relation)
        assert any(e.kind == "quarantine" for e in store.events)
        assert list(workdir.glob(f"stage.{victim}.ckpt.quarantined-*"))
        # The run recomputed and the *content* is unchanged; only the
        # health section gains the checkpoint incident line.
        outcome = report.outcome("checkpoint")
        assert outcome is not None and outcome.status == "degraded"
        assert outcome.fallback == "recomputed from source data"
        content = report.render().split("Pipeline health:")[0]
        assert content == baseline.split("Pipeline health:")[0]
        for stage in STAGES:
            assert report.outcome(stage).status == "ok"

    def test_corrupted_phase_snapshot_is_survived(
        self, relation, checkpointed_run, tmp_path
    ):
        directory, baseline = checkpointed_run
        workdir = tmp_path / "copy"
        shutil.copytree(directory, workdir)
        # Drop the stage prefix so the run actually reaches the phase
        # snapshots, then corrupt every one of them.
        phases = list(workdir.glob("phase.*.ckpt"))
        assert phases
        for path in workdir.glob("stage.*.ckpt"):
            path.unlink()
        for path in phases:
            flip_byte(path)

        store = CheckpointStore(workdir, resume=True)
        report = StructureDiscovery(checkpoint=store).run(relation)
        assert sum(e.kind == "quarantine" for e in store.events) == len(phases)
        content = report.render().split("Pipeline health:")[0]
        assert content == baseline.split("Pipeline health:")[0]

    def test_phase_snapshots_alone_still_help(
        self, relation, checkpointed_run, tmp_path
    ):
        directory, baseline = checkpointed_run
        workdir = tmp_path / "copy"
        shutil.copytree(directory, workdir)
        for path in workdir.glob("stage.*.ckpt"):
            path.unlink()

        store = CheckpointStore(workdir, resume=True)
        report = StructureDiscovery(checkpoint=store).run(relation)
        assert store.stage_loads == 0
        assert store.phase_loads > 0  # LIMBO/AIB artifacts were reused
        assert store.events == []
        assert report.render() == baseline

    def test_degraded_stage_is_not_snapshotted_and_heals_on_resume(
        self, relation, tmp_path
    ):
        directory = tmp_path / "run"
        store = CheckpointStore(directory)
        with inject("discovery.mining", raises=RuntimeError("injected")):
            degraded = StructureDiscovery(checkpoint=store).run(relation)
        assert degraded.outcome("mining").status == "degraded"
        # Snapshots stop at the first non-ok outcome: the three healthy
        # stages persisted, the degraded one and everything after did not.
        assert store.stage_saves == 3
        assert not (directory / "stage.mining.ckpt").exists()

        resumed_store = CheckpointStore(directory, resume=True)
        resumed = StructureDiscovery(checkpoint=resumed_store).run(relation)
        assert resumed_store.stage_loads == 3
        # The resume recomputed the degraded tail with the fault gone, so
        # the final report is the healthy baseline.
        assert resumed.healthy
        assert resumed.render() == StructureDiscovery().run(relation).render()

    def test_path_argument_is_opened_for_resume(self, relation, tmp_path):
        directory = tmp_path / "run"
        first = StructureDiscovery(checkpoint=directory)
        first.run(relation)
        second = StructureDiscovery(checkpoint=directory)
        second.run(relation)
        assert second.checkpoint.stage_loads == len(STAGES)

    def test_backend_is_validated(self):
        with pytest.raises(ValueError):
            StructureDiscovery(backend="imaginary")

    def test_backend_mismatch_invalidates_snapshots(self, relation, tmp_path):
        directory = tmp_path / "run"
        StructureDiscovery(checkpoint=directory, backend="sparse").run(relation)
        store = CheckpointStore(directory, resume=True)
        StructureDiscovery(checkpoint=store, backend="dense").run(relation)
        assert store.stage_loads == 0
        assert any(e.kind == "manifest-mismatch" for e in store.events)


class TestNamedSnapshots:
    """Run-token-free snapshots: the daemon's durable cache layer."""

    def test_round_trip_across_store_instances(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.save_named("model", "abc123", {"cover": [1, 2]})
        reborn = CheckpointStore(tmp_path)
        assert reborn.load_named("model", "abc123") == {"cover": [1, 2]}
        assert reborn.named_loads == 1

    def test_save_returns_size_and_load_missing_returns_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        nbytes = store.save_named("model", "k", list(range(100)))
        assert nbytes == store._named_path("model", "k").stat().st_size
        assert store.load_named("model", "absent") is None

    def test_list_and_delete(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for name in ("b", "a", "c"):
            store.save_named("relation", name, {"rows": name})
        store.save_named("model", "other-kind", {})
        assert store.list_named("relation") == ["a", "b", "c"]
        store.delete_named("relation", "b")
        store.delete_named("relation", "never-existed")  # must not raise
        assert store.list_named("relation") == ["a", "c"]

    def test_corrupt_named_snapshot_quarantines(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_named("model", "k", {"cover": [1]})
        flip_byte(store._named_path("model", "k"))
        assert store.load_named("model", "k") is None
        assert any(e.kind == "quarantine" for e in store.events)
        assert not store._named_path("model", "k").exists()

    def test_bad_names_are_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ValueError):
            store.save_named("model", "../escape", {})
        with pytest.raises(ValueError):
            store.load_named("bad kind", "k")

    def test_save_failure_degrades_to_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with inject("checkpoint.save", raises=OSError("disk full")):
            assert store.save_named("model", "k", {"cover": [1]}) is None
        assert store.load_named("model", "k") is None  # nothing half-written


class TestDaemonLock:
    """One daemon per checkpoint directory, enforced by flock."""

    def test_acquire_is_exclusive_and_idempotent(self, tmp_path):
        first = CheckpointStore(tmp_path)
        first.acquire_lock()
        first.acquire_lock()  # same holder: no-op
        assert first.locked
        second = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError, match="locked by another daemon"):
            second.acquire_lock()
        assert not second.locked
        first.release_lock()

    def test_release_frees_the_directory(self, tmp_path):
        first = CheckpointStore(tmp_path)
        first.acquire_lock()
        first.release_lock()
        assert not first.locked
        first.release_lock()  # no-op when not held
        second = CheckpointStore(tmp_path)
        second.acquire_lock()  # must succeed now
        second.release_lock()

    def test_conflict_message_names_the_holder_pid(self, tmp_path):
        first = CheckpointStore(tmp_path)
        first.acquire_lock()
        try:
            second = CheckpointStore(tmp_path)
            with pytest.raises(CheckpointError, match=f"pid {os.getpid()}"):
                second.acquire_lock()
        finally:
            first.release_lock()
