"""Tests for minimum cover (Maier) and instance verification."""

import pytest

from repro.fd import FD, g3_error, holds, implies, minimum_cover, violating_pairs
from repro.fd.cover import left_reduce, regroup, remove_redundant
from repro.relation import NULL, Relation


class TestLeftReduce:
    def test_removes_extraneous_attribute(self):
        fds = [FD("A", "B"), FD({"A", "C"}, {"B"})]
        reduced = left_reduce(fds)
        assert all(fd.lhs == frozenset({"A"}) for fd in reduced if fd.rhs == frozenset({"B"}))

    def test_splits_rhs(self):
        reduced = left_reduce([FD("A", {"B", "C"})])
        assert FD("A", "B") in reduced and FD("A", "C") in reduced

    def test_keeps_needed_attributes(self):
        fds = [FD({"A", "B"}, {"C"})]
        assert left_reduce(fds) == [FD({"A", "B"}, {"C"})]

    def test_never_reduces_to_empty(self):
        fds = [FD(set(), {"B"}), FD("A", "B")]
        reduced = left_reduce(fds)
        assert all(fd.lhs or fd == FD(set(), {"B"}) for fd in reduced)


class TestRemoveRedundant:
    def test_transitive_redundancy(self):
        fds = [FD("A", "B"), FD("B", "C"), FD("A", "C")]
        kept = remove_redundant(fds)
        assert FD("A", "C") not in kept
        assert len(kept) == 2

    def test_nothing_redundant(self):
        fds = [FD("A", "B"), FD("B", "A")]
        assert sorted(remove_redundant(fds), key=FD.sort_key) == sorted(
            fds, key=FD.sort_key
        )


class TestMinimumCover:
    def test_empty_input(self):
        assert minimum_cover([]) == []

    def test_cover_is_equivalent(self):
        fds = [
            FD("A", {"B", "C"}),
            FD("B", "C"),
            FD({"A", "B"}, {"D"}),
            FD("A", "D"),
        ]
        cover = minimum_cover(fds)
        for fd in fds:
            assert implies(cover, fd)
        for fd in cover:
            assert implies(fds, fd)

    def test_cover_is_nonredundant(self):
        fds = [FD("A", "B"), FD("B", "C"), FD("A", "C"), FD({"A", "B"}, {"C"})]
        cover = minimum_cover(fds)
        for fd in cover:
            rest = [other for other in cover if other != fd]
            assert not implies(rest, fd)

    def test_group_rhs(self):
        fds = [FD("A", "B"), FD("A", "C")]
        grouped = minimum_cover(fds, group_rhs=True)
        assert grouped == [FD("A", {"B", "C"})]

    def test_deterministic(self):
        fds = [FD("B", "C"), FD("A", "B"), FD("A", "C"), FD("C", "A")]
        assert minimum_cover(fds) == minimum_cover(list(reversed(fds)))

    def test_regroup(self):
        grouped = regroup([FD("A", "B"), FD("A", "C"), FD("B", "C")])
        assert FD("A", {"B", "C"}) in grouped


class TestHolds:
    @pytest.fixture
    def rel(self):
        return Relation(
            ["A", "B", "C"],
            [("x", "1", "p"), ("x", "1", "q"), ("y", "2", "p")],
        )

    def test_holds(self, rel):
        assert holds(rel, FD("A", "B"))
        assert holds(rel, FD("B", "A"))

    def test_violated(self, rel):
        assert not holds(rel, FD("A", "C"))

    def test_composite_lhs(self, rel):
        assert holds(rel, FD({"A", "C"}, {"B"}))

    def test_empty_lhs_constant(self):
        rel = Relation(["A", "B"], [("x", "k"), ("y", "k")])
        assert holds(rel, FD(set(), {"B"}))
        assert not holds(rel, FD(set(), {"A"}))

    def test_null_semantics(self):
        rel = Relation(["A", "B"], [(NULL, "x"), (NULL, "y")])
        assert not holds(rel, FD("A", "B"))


class TestG3:
    def test_exact_dependency_zero_error(self):
        rel = Relation(["A", "B"], [("x", "1"), ("x", "1"), ("y", "2")])
        assert g3_error(rel, FD("A", "B")) == 0.0

    def test_single_violation(self):
        rel = Relation(
            ["A", "B"],
            [("x", "1"), ("x", "1"), ("x", "2"), ("y", "3")],
        )
        # Remove one tuple (the x->2 one) to repair: g3 = 1/4.
        assert g3_error(rel, FD("A", "B")) == pytest.approx(0.25)

    def test_empty_relation(self):
        assert g3_error(Relation(["A", "B"], []), FD("A", "B")) == 0.0

    def test_bounds(self):
        rel = Relation(["A", "B"], [("x", str(i)) for i in range(10)])
        error = g3_error(rel, FD("A", "B"))
        assert 0.0 <= error < 1.0
        assert error == pytest.approx(0.9)


class TestViolatingPairs:
    def test_witnesses_found(self):
        rel = Relation(["A", "B"], [("x", "1"), ("x", "2"), ("y", "3")])
        pairs = violating_pairs(rel, FD("A", "B"))
        assert (0, 1) in pairs

    def test_no_witnesses_when_holds(self):
        rel = Relation(["A", "B"], [("x", "1"), ("y", "2")])
        assert violating_pairs(rel, FD("A", "B")) == []

    def test_limit(self):
        rel = Relation(["A", "B"], [("x", str(i)) for i in range(10)])
        assert len(violating_pairs(rel, FD("A", "B"), limit=3)) == 3


class TestVerifyDegenerateRelations:
    """`holds` / `g3_error` / `violating_pairs` on the empty, single-row
    and all-duplicate instances (every dependency holds vacuously)."""

    def test_empty_relation(self):
        rel = Relation(["A", "B"], [])
        assert holds(rel, FD("A", "B"))
        assert holds(rel, FD(set(), {"B"}))
        assert g3_error(rel, FD("A", "B")) == 0.0
        assert violating_pairs(rel, FD("A", "B")) == []

    def test_single_row_relation(self):
        rel = Relation(["A", "B"], [("x", "y")])
        for fd in (FD("A", "B"), FD("B", "A"), FD(set(), {"A"})):
            assert holds(rel, fd)
            assert g3_error(rel, fd) == 0.0
        assert violating_pairs(rel, FD("A", "B")) == []

    def test_all_duplicate_rows(self):
        rel = Relation(["A", "B", "C"], [("x", "y", "z")] * 8)
        for fd in (FD("A", "B"), FD({"A", "B"}, {"C"}), FD(set(), {"C"})):
            assert holds(rel, fd)
            assert g3_error(rel, fd) == 0.0
            assert violating_pairs(rel, fd) == []
