"""Tests for the synthetic data-set generators and error injection."""

import pytest

from repro.datasets import (
    DBLP_ATTRIBUTES,
    NULL_HEAVY_ATTRIBUTES,
    db2_sample,
    dblp,
    inject_erroneous_tuples,
    planted_partitions,
    random_categorical,
    relation_with_fd,
)
from repro.fd import FD, g3_error, holds
from repro.relation import NULL


class TestDb2Sample:
    @pytest.fixture(scope="class")
    def sample(self):
        return db2_sample(seed=0)

    def test_join_shape_matches_paper(self, sample):
        assert len(sample.relation) == 90
        assert sample.relation.arity == 19

    def test_value_count_scale(self, sample):
        # The paper reports 255 values; the generator lands in the ballpark.
        assert 180 <= sample.relation.value_count() <= 300

    def test_base_table_keys(self, sample):
        assert len(sample.employee.domain("EmpNo")) == len(sample.employee)
        assert len(sample.department.domain("DepNo")) == len(sample.department)
        assert len(sample.project.domain("ProjNo")) == len(sample.project)

    def test_join_key_fds_hold(self, sample):
        r = sample.relation
        assert holds(r, FD("DeptNo", {"DeptName", "MgrNo", "AdminDepNo"}))
        assert holds(r, FD("DeptName", "MgrNo"))
        assert holds(
            r,
            FD(
                "EmpNo",
                {"FirstName", "LastName", "PhoneNo", "HireYear", "BirthYear"},
            ),
        )
        assert holds(
            r, FD("ProjNo", {"ProjName", "RespEmpNo", "StartDate", "EndDate"})
        )

    def test_foreign_keys_resolve(self, sample):
        dep_nos = sample.department.domain("DepNo")
        assert sample.employee.domain("WorkDepNo") <= dep_nos
        assert sample.project.domain("DeptNo") <= dep_nos
        emp_nos = sample.employee.domain("EmpNo")
        assert sample.department.domain("MgrNo") <= emp_nos
        assert sample.project.domain("RespEmpNo") <= emp_nos

    def test_deterministic(self):
        assert db2_sample(seed=3).relation == db2_sample(seed=3).relation

    def test_seeds_vary_data(self):
        a = db2_sample(seed=1).relation
        b = db2_sample(seed=2).relation
        assert a != b

    def test_department_skew(self, sample):
        from collections import Counter

        counts = Counter(sample.relation.column("DeptNo"))
        assert max(counts.values()) == 20 and min(counts.values()) == 9


class TestDblp:
    @pytest.fixture(scope="class")
    def relation(self):
        return dblp(n_tuples=3000, seed=7)

    def test_shape(self, relation):
        assert len(relation) == 3000
        assert relation.attributes == DBLP_ATTRIBUTES

    def test_null_heavy_attributes(self, relation):
        for name in NULL_HEAVY_ATTRIBUTES:
            assert relation.null_fraction(name) >= 0.98, name

    def test_type_mix(self, relation):
        conference = relation.select(lambda r: r["BookTitle"] is not NULL)
        journal = relation.select(lambda r: r["Journal"] is not NULL)
        assert 0.65 <= len(conference) / len(relation) <= 0.78
        assert 0.22 <= len(journal) / len(relation) <= 0.34
        assert len(conference) + len(journal) < len(relation)  # misc exists

    def test_conference_rows_have_null_journal_attrs(self, relation):
        conference = relation.select(lambda r: r["BookTitle"] is not NULL)
        for name in ("Journal", "Volume", "Number"):
            assert conference.null_fraction(name) == 1.0

    def test_journal_issue_determines_year(self, relation):
        journal = relation.select(lambda r: r["Journal"] is not NULL)
        assert holds(journal, FD({"Journal", "Volume", "Number"}, {"Year"}))

    def test_volume_alone_does_not_determine_year(self, relation):
        journal = relation.select(lambda r: r["Journal"] is not NULL)
        assert not holds(journal, FD({"Volume"}, {"Year"}))
        # The straddling journals keep Journal+Volume from sufficing either.
        assert g3_error(journal, FD({"Journal", "Volume"}, {"Year"})) > 0.0

    def test_author_home_journal(self, relation):
        journal = relation.select(lambda r: r["Journal"] is not NULL)
        assert holds(journal, FD("Author", "Journal"))

    def test_multi_author_duplication(self, relation):
        # Papers with several authors repeat Pages+venue across tuples.
        from collections import Counter

        pages = Counter(relation.column("Pages"))
        assert max(pages.values()) >= 2

    def test_deterministic(self):
        assert dblp(500, seed=1) == dblp(500, seed=1)

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            dblp(50)


class TestErrorInjection:
    @pytest.fixture
    def base(self):
        return db2_sample().relation

    def test_appends_requested_tuples(self, base):
        injection = inject_erroneous_tuples(base, n_tuples=5, n_errors=2, seed=1)
        assert len(injection.relation) == len(base) + 5
        assert injection.n_injected == 5

    def test_changes_recorded(self, base):
        injection = inject_erroneous_tuples(base, n_tuples=3, n_errors=4, seed=2)
        for injected in injection.injected:
            assert len(injected.changes) == 4
            dirty = injection.relation.rows[injected.index]
            clean = base.rows[injected.source_index]
            for name, (old, new) in injected.changes.items():
                position = base.schema.position(name)
                assert clean[position] == old
                assert dirty[position] == new
                assert old != new

    def test_unchanged_attributes_match_source(self, base):
        injection = inject_erroneous_tuples(base, n_tuples=2, n_errors=1, seed=3)
        for injected in injection.injected:
            dirty = injection.relation.rows[injected.index]
            clean = base.rows[injected.source_index]
            differing = sum(1 for a, b in zip(dirty, clean) if a != b)
            assert differing == 1

    def test_null_style(self, base):
        injection = inject_erroneous_tuples(
            base, n_tuples=2, n_errors=2, seed=4, style="null"
        )
        for injected in injection.injected:
            assert all(new is NULL for _, new in injected.changes.values())

    def test_swap_style_uses_domain_values(self, base):
        injection = inject_erroneous_tuples(
            base, n_tuples=2, n_errors=2, seed=5, style="swap"
        )
        for injected in injection.injected:
            for name, (_, new) in injected.changes.items():
                assert new in base.domain(name)

    def test_validation(self, base):
        with pytest.raises(ValueError, match="style"):
            inject_erroneous_tuples(base, style="bogus")
        with pytest.raises(ValueError, match="n_errors"):
            inject_erroneous_tuples(base, n_errors=0)
        with pytest.raises(ValueError, match="n_tuples"):
            inject_erroneous_tuples(base, n_tuples=0)

    def test_original_not_mutated(self, base):
        before = len(base)
        inject_erroneous_tuples(base, n_tuples=5)
        assert len(base) == before


class TestSyntheticGenerators:
    def test_random_categorical_shape(self):
        rel = random_categorical(50, [2, 3, 5], seed=0)
        assert len(rel) == 50 and rel.arity == 3
        assert len(rel.domain("A2")) <= 5

    def test_random_categorical_no_shared_literals(self):
        rel = random_categorical(50, [2, 2], seed=0)
        assert not (rel.domain("A0") & rel.domain("A1"))

    def test_planted_partitions_ground_truth(self):
        rel, labels = planted_partitions(60, 3, seed=1)
        assert len(rel) == 60 and len(labels) == 60
        # Tuples in different blocks share no values.
        for i in range(10):
            if labels[i] != labels[i + 1]:
                assert not (set(rel.rows[i]) & set(rel.rows[i + 1]))

    def test_planted_partitions_validation(self):
        with pytest.raises(ValueError):
            planted_partitions(2, 5)

    def test_relation_with_fd_clean(self):
        rel = relation_with_fd(100, 10, seed=0)
        assert holds(rel, FD("K", "D"))

    def test_relation_with_fd_noise(self):
        rel = relation_with_fd(100, 10, seed=0, noise_tuples=5)
        assert not holds(rel, FD("K", "D"))
        assert 0.0 < g3_error(rel, FD("K", "D")) <= 0.06
