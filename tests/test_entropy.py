"""Unit tests for repro.infotheory.entropy."""

import math

import numpy as np
import pytest

from repro.infotheory import (
    conditional_entropy,
    entropy,
    entropy_of_counts,
    max_entropy,
    mutual_information,
    mutual_information_rows,
)


class TestEntropy:
    def test_point_mass_has_zero_entropy(self):
        assert entropy([1.0]) == 0.0
        assert entropy({"x": 1.0}) == 0.0

    def test_uniform_is_log_n(self):
        assert entropy([0.25] * 4) == pytest.approx(2.0)
        assert entropy([1 / 8] * 8) == pytest.approx(3.0)

    def test_accepts_numpy_arrays(self):
        assert entropy(np.array([0.5, 0.5])) == pytest.approx(1.0)

    def test_zero_masses_contribute_nothing(self):
        assert entropy([0.5, 0.5, 0.0, 0.0]) == pytest.approx(1.0)

    def test_base_e(self):
        assert entropy([0.5, 0.5], base=math.e) == pytest.approx(math.log(2))

    def test_biased_coin(self):
        h = entropy([0.9, 0.1])
        assert h == pytest.approx(-0.9 * math.log2(0.9) - 0.1 * math.log2(0.1))

    def test_rejects_negative_mass(self):
        with pytest.raises(ValueError, match="non-negative"):
            entropy([1.5, -0.5])

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError, match="sum to 1"):
            entropy([0.5, 0.6])

    def test_validation_can_be_skipped(self):
        # Unnormalized input accepted when validate=False (caller's problem).
        assert entropy([0.5, 0.5, 0.5], validate=False) > 0


class TestEntropyOfCounts:
    def test_matches_normalized_entropy(self):
        assert entropy_of_counts([3, 1]) == pytest.approx(entropy([0.75, 0.25]))

    def test_mapping_input(self):
        assert entropy_of_counts({"a": 2, "b": 2}) == pytest.approx(1.0)

    def test_all_same_value(self):
        assert entropy_of_counts([7]) == 0.0

    def test_empty_counts(self):
        assert entropy_of_counts([]) == 0.0

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            entropy_of_counts([1, -1])


class TestMaxEntropy:
    def test_log_n(self):
        assert max_entropy(8) == pytest.approx(3.0)
        assert max_entropy(1) == 0.0

    def test_entropy_never_exceeds_max(self):
        p = np.array([0.5, 0.2, 0.2, 0.1])
        assert entropy(p) <= max_entropy(4) + 1e-12

    def test_rejects_zero_states(self):
        with pytest.raises(ValueError):
            max_entropy(0)


class TestConditionalEntropy:
    def test_independent_variables(self):
        # V uniform on 2, T uniform on 2, independent: H(T|V) = H(T) = 1.
        joint = np.full((2, 2), 0.25)
        assert conditional_entropy(joint) == pytest.approx(1.0)

    def test_deterministic_function(self):
        # T is a function of V: H(T|V) = 0.
        joint = np.array([[0.5, 0.0], [0.0, 0.5]])
        assert conditional_entropy(joint) == 0.0

    def test_mapping_form(self):
        joint = {("v1", "t1"): 0.5, ("v2", "t2"): 0.5}
        assert conditional_entropy(joint) == 0.0

    def test_rejects_unnormalized_joint(self):
        with pytest.raises(ValueError):
            conditional_entropy(np.array([[0.5, 0.5], [0.5, 0.5]]))


class TestMutualInformation:
    def test_independence_gives_zero(self):
        joint = np.full((2, 2), 0.25)
        assert mutual_information(joint) == pytest.approx(0.0)

    def test_perfect_dependence(self):
        joint = np.array([[0.5, 0.0], [0.0, 0.5]])
        assert mutual_information(joint) == pytest.approx(1.0)

    def test_symmetry(self):
        rng = np.random.default_rng(7)
        joint = rng.random((3, 5))
        joint /= joint.sum()
        assert mutual_information(joint) == pytest.approx(
            mutual_information(joint.T)
        )

    def test_nonnegative(self):
        rng = np.random.default_rng(11)
        for _ in range(10):
            joint = rng.random((4, 4))
            joint /= joint.sum()
            assert mutual_information(joint) >= -1e-12


class TestMutualInformationRows:
    def test_matches_dense_computation(self):
        joint = np.array([[0.2, 0.1], [0.05, 0.65]])
        priors = joint.sum(axis=1)
        rows = [
            {t: joint[v, t] / priors[v] for t in range(2)} for v in range(2)
        ]
        assert mutual_information_rows(rows, priors) == pytest.approx(
            mutual_information(joint)
        )

    def test_identical_rows_carry_no_information(self):
        rows = [{0: 0.5, 1: 0.5}, {0: 0.5, 1: 0.5}]
        assert mutual_information_rows(rows, [0.5, 0.5]) == pytest.approx(0.0)

    def test_disjoint_rows_carry_full_information(self):
        rows = [{0: 1.0}, {1: 1.0}]
        assert mutual_information_rows(rows, [0.5, 0.5]) == pytest.approx(1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            mutual_information_rows([{0: 1.0}], [0.5, 0.5])

    def test_unnormalized_priors_rejected(self):
        with pytest.raises(ValueError, match="sum to 1"):
            mutual_information_rows([{0: 1.0}], [0.7])
