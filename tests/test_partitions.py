"""Unit tests for stripped partitions."""

import pytest

from repro.fd.partitions import Partition, partition_of, product
from repro.relation import NULL, Relation


@pytest.fixture
def rel():
    return Relation(
        ["A", "B", "C"],
        [
            ("x", "1", "p"),
            ("x", "1", "q"),
            ("y", "1", "p"),
            ("y", "2", "q"),
            ("z", "2", "p"),
        ],
    )


class TestPartitionOf:
    def test_single_attribute(self, rel):
        part = partition_of(rel, ["A"])
        assert part.classes == ((0, 1), (2, 3))  # z is stripped

    def test_strips_singletons(self, rel):
        part = partition_of(rel, ["A", "B"])
        assert part.classes == ((0, 1),)

    def test_superkey_detection(self, rel):
        assert partition_of(rel, ["A", "B", "C"]).is_superkey()
        assert not partition_of(rel, ["A"]).is_superkey()

    def test_empty_attribute_set_is_one_class(self, rel):
        part = partition_of(rel, [])
        assert part.classes == ((0, 1, 2, 3, 4),)

    def test_string_attribute_accepted(self, rel):
        assert partition_of(rel, "A") == partition_of(rel, ["A"])

    def test_null_equals_null(self):
        rel = Relation(["A"], [(NULL,), (NULL,), ("x",)])
        part = partition_of(rel, ["A"])
        assert part.classes == ((0, 1),)


class TestErrorAndCounts:
    def test_error(self, rel):
        # pi_A: {0,1},{2,3},{4}: error = (2-1)+(2-1) = 2.
        assert partition_of(rel, ["A"]).error == 2

    def test_superkey_error_zero(self, rel):
        assert partition_of(rel, ["A", "B", "C"]).error == 0

    def test_n_classes_counts_stripped(self, rel):
        assert partition_of(rel, ["A"]).n_classes == 3

    def test_fd_validity_via_error(self, rel):
        # A -> B fails (tuples 2,3 agree on A, differ on B).
        pa = partition_of(rel, ["A"])
        pab = partition_of(rel, ["A", "B"])
        assert pa.error != pab.error
        # {A,B} -> A holds trivially.
        assert pab.error == partition_of(rel, ["A", "B"]).error


class TestProduct:
    def test_matches_direct_partition(self, rel):
        pa = partition_of(rel, ["A"])
        pb = partition_of(rel, ["B"])
        assert product(pa, pb) == partition_of(rel, ["A", "B"])

    def test_commutative(self, rel):
        pa = partition_of(rel, ["A"])
        pc = partition_of(rel, ["C"])
        assert product(pa, pc) == product(pc, pa)

    def test_product_with_self(self, rel):
        pa = partition_of(rel, ["A"])
        assert product(pa, pa) == pa

    def test_mismatched_sizes_rejected(self, rel):
        other = Partition.from_classes([(0, 1)], 2)
        with pytest.raises(ValueError):
            product(partition_of(rel, ["A"]), other)


class TestRefines:
    def test_refinement_is_fd(self, rel):
        # C -> A fails; A,B -> C fails; but {A,B,C} refines everything.
        pabc = partition_of(rel, ["A", "B", "C"])
        pa = partition_of(rel, ["A"])
        assert pabc.refines(pa)

    def test_non_refinement(self, rel):
        pa = partition_of(rel, ["A"])
        pb = partition_of(rel, ["B"])
        assert not pa.refines(pb)  # tuples 2,3 agree on A, differ on B


def _refines_reference(left: Partition, right: Partition) -> bool:
    """The original dict-based refinement check, kept as the parity oracle."""
    owner = {}
    for class_index, members in enumerate(right.classes):
        for row in members:
            owner[row] = class_index
    for members in left.classes:
        first = owner.get(members[0], ("single", members[0]))
        for row in members[1:]:
            if owner.get(row, ("single", row)) != first:
                return False
    return True


def _product_reference(left: Partition, right: Partition) -> Partition:
    """The original dict-based TANE product, kept as the parity oracle."""
    label: dict = {}
    for class_index, members in enumerate(left.classes):
        for row in members:
            label[row] = class_index
    classes = []
    for members in right.classes:
        sub: dict = {}
        for row in members:
            owner = label.get(row)
            if owner is not None:
                sub.setdefault(owner, []).append(row)
        classes.extend(group for group in sub.values() if len(group) > 1)
    return Partition.from_classes(classes, left.n_rows)


class TestLabelArrayParity:
    """The label-array fast paths agree with the dict-based reference."""

    @staticmethod
    def _random_relation(seed, n_rows=60, n_attributes=4, cardinality=5):
        import random

        rng = random.Random(seed)
        names = [f"A{i}" for i in range(n_attributes)]
        rows = [
            tuple(str(rng.randrange(cardinality)) for _ in names)
            for _ in range(n_rows)
        ]
        return Relation(names, rows)

    def test_labels_round_trip(self, rel):
        part = partition_of(rel, ["A"])
        labels = part.labels
        for class_index, members in enumerate(part.classes):
            assert all(labels[row] == class_index for row in members)
        covered = {row for members in part.classes for row in members}
        for row in range(part.n_rows):
            if row not in covered:
                assert labels[row] == -1

    def test_refines_matches_reference_on_random_relations(self):
        for seed in range(8):
            relation = self._random_relation(seed)
            names = relation.schema.names
            partitions = [partition_of(relation, [a]) for a in names]
            partitions.append(partition_of(relation, names[:2]))
            partitions.append(partition_of(relation, names))
            for left in partitions:
                for right in partitions:
                    assert left.refines(right) == _refines_reference(left, right), (
                        seed, left, right,
                    )

    def test_product_matches_reference_on_random_relations(self):
        for seed in range(8):
            relation = self._random_relation(seed, n_rows=80)
            names = relation.schema.names
            partitions = [partition_of(relation, [a]) for a in names]
            for left in partitions:
                for right in partitions:
                    fast = product(left, right)
                    assert fast == _product_reference(left, right), (seed, left, right)

    def test_product_matches_direct_partition(self):
        for seed in (3, 4):
            relation = self._random_relation(seed, n_rows=50)
            names = relation.schema.names
            for a in names:
                for b in names:
                    if a == b:
                        continue
                    combined = product(
                        partition_of(relation, [a]), partition_of(relation, [b])
                    )
                    assert combined == partition_of(relation, [a, b])
