"""Unit tests for stripped partitions."""

import pytest

from repro.fd.partitions import Partition, partition_of, product
from repro.relation import NULL, Relation


@pytest.fixture
def rel():
    return Relation(
        ["A", "B", "C"],
        [
            ("x", "1", "p"),
            ("x", "1", "q"),
            ("y", "1", "p"),
            ("y", "2", "q"),
            ("z", "2", "p"),
        ],
    )


class TestPartitionOf:
    def test_single_attribute(self, rel):
        part = partition_of(rel, ["A"])
        assert part.classes == ((0, 1), (2, 3))  # z is stripped

    def test_strips_singletons(self, rel):
        part = partition_of(rel, ["A", "B"])
        assert part.classes == ((0, 1),)

    def test_superkey_detection(self, rel):
        assert partition_of(rel, ["A", "B", "C"]).is_superkey()
        assert not partition_of(rel, ["A"]).is_superkey()

    def test_empty_attribute_set_is_one_class(self, rel):
        part = partition_of(rel, [])
        assert part.classes == ((0, 1, 2, 3, 4),)

    def test_string_attribute_accepted(self, rel):
        assert partition_of(rel, "A") == partition_of(rel, ["A"])

    def test_null_equals_null(self):
        rel = Relation(["A"], [(NULL,), (NULL,), ("x",)])
        part = partition_of(rel, ["A"])
        assert part.classes == ((0, 1),)


class TestErrorAndCounts:
    def test_error(self, rel):
        # pi_A: {0,1},{2,3},{4}: error = (2-1)+(2-1) = 2.
        assert partition_of(rel, ["A"]).error == 2

    def test_superkey_error_zero(self, rel):
        assert partition_of(rel, ["A", "B", "C"]).error == 0

    def test_n_classes_counts_stripped(self, rel):
        assert partition_of(rel, ["A"]).n_classes == 3

    def test_fd_validity_via_error(self, rel):
        # A -> B fails (tuples 2,3 agree on A, differ on B).
        pa = partition_of(rel, ["A"])
        pab = partition_of(rel, ["A", "B"])
        assert pa.error != pab.error
        # {A,B} -> A holds trivially.
        assert pab.error == partition_of(rel, ["A", "B"]).error


class TestProduct:
    def test_matches_direct_partition(self, rel):
        pa = partition_of(rel, ["A"])
        pb = partition_of(rel, ["B"])
        assert product(pa, pb) == partition_of(rel, ["A", "B"])

    def test_commutative(self, rel):
        pa = partition_of(rel, ["A"])
        pc = partition_of(rel, ["C"])
        assert product(pa, pc) == product(pc, pa)

    def test_product_with_self(self, rel):
        pa = partition_of(rel, ["A"])
        assert product(pa, pa) == pa

    def test_mismatched_sizes_rejected(self, rel):
        other = Partition.from_classes([(0, 1)], 2)
        with pytest.raises(ValueError):
            product(partition_of(rel, ["A"]), other)


class TestRefines:
    def test_refinement_is_fd(self, rel):
        # C -> A fails; A,B -> C fails; but {A,B,C} refines everything.
        pabc = partition_of(rel, ["A", "B", "C"])
        pa = partition_of(rel, ["A"])
        assert pabc.refines(pa)

    def test_non_refinement(self, rel):
        pa = partition_of(rel, ["A"])
        pb = partition_of(rel, ["B"])
        assert not pa.refines(pb)  # tuples 2,3 agree on A, differ on B
