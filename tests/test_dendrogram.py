"""Unit tests for the merge-sequence / dendrogram structure."""

import pytest

from repro.clustering import Dendrogram, Merge


@pytest.fixture
def abc():
    """Three leaves A,B,C: B and C merge first (loss 0.1), then A (0.5)."""
    merges = [
        Merge(left=1, right=2, parent=3, loss=0.1),
        Merge(left=0, right=3, parent=4, loss=0.5),
    ]
    return Dendrogram(3, merges, labels=["A", "B", "C"])


class TestConstruction:
    def test_default_labels(self):
        d = Dendrogram(2, [])
        assert d.labels == ["0", "1"]

    def test_rejects_label_mismatch(self):
        with pytest.raises(ValueError):
            Dendrogram(2, [], labels=["only-one"])

    def test_rejects_too_many_merges(self):
        with pytest.raises(ValueError):
            Dendrogram(1, [Merge(0, 1, 2, 0.0)])

    def test_rejects_zero_leaves(self):
        with pytest.raises(ValueError):
            Dendrogram(0, [])


class TestQueries:
    def test_losses_and_max(self, abc):
        assert abc.losses == [0.1, 0.5]
        assert abc.max_loss == 0.5

    def test_max_loss_empty(self):
        assert Dendrogram(3, []).max_loss == 0.0

    def test_is_complete(self, abc):
        assert abc.is_complete()
        assert not Dendrogram(3, abc.merges[:1]).is_complete()


class TestCut:
    def test_cut_k3_is_singletons(self, abc):
        assert sorted(abc.cut(3)) == [[0], [1], [2]]

    def test_cut_k2(self, abc):
        clusters = sorted(abc.cut(2))
        assert clusters == [[0], [1, 2]]

    def test_cut_k1(self, abc):
        assert abc.cut(1) == [[0, 1, 2]]

    def test_cut_out_of_range(self, abc):
        with pytest.raises(ValueError):
            abc.cut(0)
        with pytest.raises(ValueError):
            abc.cut(4)

    def test_cut_beyond_partial_sequence(self):
        partial = Dendrogram(3, [Merge(1, 2, 3, 0.1)])
        assert sorted(partial.cut(2)) == [[0], [1, 2]]
        with pytest.raises(ValueError, match="cannot reach"):
            partial.cut(1)

    def test_cut_at_loss(self, abc):
        assert sorted(abc.cut_at_loss(0.2)) == [[0], [1, 2]]
        assert abc.cut_at_loss(1.0) == [[0, 1, 2]]
        assert sorted(abc.cut_at_loss(0.05)) == [[0], [1], [2]]

    def test_assignment(self, abc):
        assignment = abc.assignment(2)
        assert assignment[1] == assignment[2]
        assert assignment[0] != assignment[1]


class TestMergeGathering:
    def test_first_gathering_merge(self, abc):
        m = abc.merge_gathering([1, 2])
        assert m is not None and m.loss == pytest.approx(0.1)

    def test_gathering_across_steps(self, abc):
        m = abc.merge_gathering([0, 1])
        assert m is not None and m.loss == pytest.approx(0.5)

    def test_all_leaves(self, abc):
        m = abc.merge_gathering([0, 1, 2])
        assert m.loss == pytest.approx(0.5)

    def test_single_leaf_needs_no_merge(self, abc):
        assert abc.merge_gathering([0]) is None

    def test_never_gathered_in_partial_sequence(self):
        partial = Dendrogram(4, [Merge(0, 1, 4, 0.1)])
        assert partial.merge_gathering([2, 3]) is None

    def test_unknown_leaf_rejected(self, abc):
        with pytest.raises(ValueError, match="unknown"):
            abc.merge_gathering([0, 99])

    def test_merge_index(self, abc):
        assert abc.merge_index(abc.merges[1]) == 1


class TestRendering:
    def test_render_contains_labels_and_losses(self, abc):
        text = abc.render()
        for token in ("A", "B", "C", "loss=0.1000", "loss=0.5000"):
            assert token in text

    def test_render_partial_forest_has_multiple_roots(self):
        partial = Dendrogram(4, [Merge(0, 1, 4, 0.1)], labels=list("WXYZ"))
        text = partial.render()
        assert "Y" in text and "Z" in text

    def test_merge_table(self, abc):
        table = abc.merge_table()
        assert "step" in table
        assert "{B, C}" in table
        assert "{A, B, C}" in table

    def test_label_truncation(self):
        d = Dendrogram(2, [Merge(0, 1, 2, 0.0)], labels=["x" * 100, "y"])
        assert "x" * 25 not in d.render(max_label=24)

    def test_repr(self, abc):
        assert "3 leaves" in repr(abc)
