"""Smoke tests: every example script runs and prints its key findings."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "[C] -> [B]" in out
        assert "Duplicate value groups" in out
        assert "tuple reduction" in out

    def test_data_quality_audit(self):
        out = run_example("data_quality_audit.py")
        assert "near-duplicates" in out
        assert "4/4 injected duplicates surfaced" in out

    @pytest.mark.slow
    def test_dblp_redesign(self):
        out = run_example("dblp_redesign.py", "2500")
        assert "NULL attributes to store separately" in out
        assert "rank=" in out

    def test_fd_ranking_tour(self):
        out = run_example("fd_ranking_tour.py")
        assert "minimum cover keeps" in out
        assert "lossless: True" in out

    def test_schema_exploration(self):
        out = run_example("schema_exploration.py")
        assert "key candidates: ['EmpNo'" in out
        assert "DEPARTMENT.DepNo ~ EMPLOYEE.WorkDepNo" in out
        assert "rank=" in out
