"""Kill-and-resume integration: SIGKILL mid-stage, then a bit-identical resume.

A child process runs the discovery pipeline with a checkpoint directory and a
budget listener that SIGKILLs the process on the first ``fdep.*`` budget tick
-- i.e. deterministically *inside* the mining stage, after the three
clustering stages have been snapshotted.  The parent then resumes from the
same directory and the resumed report must be byte-identical to an
uninterrupted run, across worker counts and both numeric backends.
"""

import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import StructureDiscovery
from repro.datasets import db2_sample

SRC = str(Path(__file__).resolve().parent.parent / "src")

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")

#: Runs the pipeline in a child; mode "kill" arms the SIGKILL listener.
CHILD = """
import os, signal, sys

mode, ckpt_dir, workers, backend = sys.argv[1:5]

from repro import Budget, StructureDiscovery
from repro.checkpoint import CheckpointStore
from repro.datasets import db2_sample

relation = db2_sample(seed=7).relation
budget = Budget()
if mode == "kill":
    def bomb(units_used, where):
        if where.startswith("fdep."):
            os.kill(os.getpid(), signal.SIGKILL)
    budget.on_checkpoint(bomb)

store = CheckpointStore(ckpt_dir, resume=(mode == "resume"))
report = StructureDiscovery(
    workers=int(workers), backend=backend, checkpoint=store,
).run(relation, budget=budget)
print(f"STAGE_LOADS={store.stage_loads}", file=sys.stderr)
print(f"EVENTS={len(store.events)}", file=sys.stderr)
sys.stdout.write(report.render())
"""


def run_child(mode, ckpt_dir, workers, backend):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", CHILD, mode, str(ckpt_dir), str(workers), backend],
        capture_output=True, text=True, timeout=300, env=env,
    )


@pytest.fixture(scope="module")
def baseline():
    """The uninterrupted pooled report.

    Any worker count >= 1 and either backend renders identically (the
    sharded layout is a pure function of the data), so one baseline covers
    the whole matrix.  ``workers=None`` would not: the executor-less code
    path builds Phase-1 summaries through a single DCF tree rather than
    sharded trees, which is a different (equally valid) clustering.
    """
    return StructureDiscovery(workers=1).run(db2_sample(seed=7).relation).render()


@needs_fork
@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("backend", ["sparse", "dense"])
def test_sigkill_mid_stage_then_resume_is_bit_identical(
    tmp_path, baseline, workers, backend
):
    ckpt_dir = tmp_path / "ckpt"

    killed = run_child("kill", ckpt_dir, workers, backend)
    assert killed.returncode == -9, killed.stderr
    # The kill landed mid-mining: the three clustering stages had been
    # snapshotted, mining had not.
    for stage in ("tuple_clustering", "value_clustering", "attribute_grouping"):
        assert (ckpt_dir / f"stage.{stage}.ckpt").exists()
    assert not (ckpt_dir / "stage.mining.ckpt").exists()

    resumed = run_child("resume", ckpt_dir, workers, backend)
    assert resumed.returncode == 0, resumed.stderr
    assert "STAGE_LOADS=3" in resumed.stderr  # the completed prefix was reused
    assert "EVENTS=0" in resumed.stderr  # no quarantines, no save failures
    assert resumed.stdout == baseline


@needs_fork
def test_resume_after_corrupted_survivor_still_matches(tmp_path, baseline):
    """SIGKILL plus bit-rot on a surviving snapshot: still the right report."""
    ckpt_dir = tmp_path / "ckpt"
    killed = run_child("kill", ckpt_dir, 2, "auto")
    assert killed.returncode == -9, killed.stderr

    victim = ckpt_dir / "stage.value_clustering.ckpt"
    data = bytearray(victim.read_bytes())
    data[-1] ^= 0xFF
    victim.write_bytes(bytes(data))

    resumed = run_child("resume", ckpt_dir, 2, "auto")
    assert resumed.returncode == 0, resumed.stderr
    assert "STAGE_LOADS=1" in resumed.stderr  # prefix stops at the corruption
    # Content identical; only the health section records the quarantine.
    assert resumed.stdout.split("Pipeline health:")[0] == (
        baseline.split("Pipeline health:")[0]
    )
    assert "quarantine" in resumed.stdout
