"""Unit tests for the DCF-tree (LIMBO Phase 1)."""

import pytest

from repro.clustering import DCF, DCFTree


def _singleton(i, row, weight=0.01):
    return DCF.singleton(i, weight, row)


class TestConstruction:
    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            DCFTree(-1.0)

    def test_rejects_small_branching(self):
        with pytest.raises(ValueError):
            DCFTree(0.0, branching=1)

    def test_empty_tree(self):
        tree = DCFTree(0.0)
        assert tree.leaves() == []
        assert tree.height == 1


class TestZeroThreshold:
    """phi = 0: only identical objects merge (LIMBO == AIB equivalence)."""

    def test_identical_objects_collapse(self):
        tree = DCFTree(0.0)
        for i in range(10):
            tree.insert(_singleton(i, {42: 1.0}))
        leaves = tree.leaves()
        assert len(leaves) == 1
        assert leaves[0].size == 10
        assert tree.n_absorbed == 9

    def test_distinct_objects_stay_distinct(self):
        tree = DCFTree(0.0, branching=4)
        for i in range(25):
            tree.insert(_singleton(i, {i: 1.0}))
        assert len(tree.leaves()) == 25

    def test_mixed(self):
        tree = DCFTree(0.0)
        rows = [{0: 1.0}, {1: 1.0}, {0: 1.0}, {2: 1.0}, {1: 1.0}, {0: 1.0}]
        for i, row in enumerate(rows):
            tree.insert(_singleton(i, row))
        sizes = sorted(leaf.size for leaf in tree.leaves())
        assert sizes == [1, 2, 3]

    def test_members_preserved_across_splits(self):
        tree = DCFTree(0.0, branching=2)
        for i in range(40):
            tree.insert(_singleton(i, {i % 20: 1.0}))
        members = sorted(m for leaf in tree.leaves() for m in leaf.members)
        assert members == list(range(40))


class TestThresholdMerging:
    def test_near_duplicates_absorbed(self):
        tree = DCFTree(1.0)  # generous threshold
        tree.insert(_singleton(0, {0: 0.5, 1: 0.5}))
        tree.insert(_singleton(1, {0: 0.5, 2: 0.5}))
        assert len(tree.leaves()) == 1

    def test_tight_threshold_keeps_apart(self):
        tree = DCFTree(1e-9)
        tree.insert(_singleton(0, {0: 1.0}))
        tree.insert(_singleton(1, {1: 1.0}))
        assert len(tree.leaves()) == 2

    def test_larger_threshold_fewer_leaves(self):
        rows = [{i // 3: 0.6, 100 + i: 0.4} for i in range(30)]

        def leaf_count(threshold):
            tree = DCFTree(threshold)
            for i, row in enumerate(rows):
                tree.insert(_singleton(i, row))
            return len(tree.leaves())

        assert leaf_count(0.05) <= leaf_count(0.0001)


class TestTreeShape:
    def test_height_grows_with_splits(self):
        tree = DCFTree(0.0, branching=2)
        for i in range(16):
            tree.insert(_singleton(i, {i: 1.0}))
        assert tree.height > 1

    def test_branching_respected(self):
        tree = DCFTree(0.0, branching=3)
        for i in range(50):
            tree.insert(_singleton(i, {i: 1.0}))

        def check(node):
            assert len(node.entries) <= 3
            if node.children is not None:
                assert len(node.children) == len(node.entries)
                for child in node.children:
                    check(child)

        check(tree._root)

    def test_total_weight_conserved(self):
        tree = DCFTree(0.0, branching=4)
        n = 30
        for i in range(n):
            tree.insert(_singleton(i, {i % 7: 1.0}, weight=1.0 / n))
        assert sum(leaf.weight for leaf in tree.leaves()) == pytest.approx(1.0)

    def test_insertion_counters(self):
        tree = DCFTree(0.0)
        for i in range(5):
            tree.insert(_singleton(i, {0: 1.0}))
        assert tree.n_inserted == 5
        assert tree.n_absorbed == 4
